"""The measurement service: routing, warmup, concurrency, shutdown."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.history import ArtefactStats, HistoryStore, RunRecord
from repro.server import MeasurementServer, ServerState, create_server
from repro.server.state import RequestError


def _get(url, timeout=30.0):
    """GET -> (status, parsed-json body), following the JSON error shape."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One warm in-process server shared by the read-only tests."""
    history = tmp_path_factory.mktemp("server-history")
    HistoryStore(history).append(RunRecord(
        run_id="seeded-run", created_unix=1.0, seed=2024, scale=0.05,
        jobs=1, total_wall_s=1.5,
        artefacts={"T2": ArtefactStats(wall_s=1.5)},
    ))
    srv = create_server(
        scale=0.05, history_dir=str(history), warm_artefacts=("T2",),
        debug_delay=True,
    ).start()
    assert srv.state.ready.wait(timeout=180), srv.state.warm_error
    yield srv
    srv.stop()


def test_healthz_reports_ready_state(server):
    status, payload = _get(f"{server.url}/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["phase"] == "ready"
    assert payload["datasets"]["device"] > 0
    assert payload["datasets"]["web"] == 116
    assert payload["warm_wall_s"] > 0


def test_index_lists_endpoints(server):
    status, payload = _get(f"{server.url}/")
    assert status == 200
    paths = {entry["path"] for entry in payload["endpoints"]}
    assert {"/healthz", "/query", "/artefact/<id>", "/history",
            "/regress"} <= paths


def test_query_matches_direct_results(server):
    status, payload = _get(
        f"{server.url}/query?kind=traceroute&count_by=country"
    )
    assert status == 200
    direct = server.state.query(
        "traceroute", where={}, count_by=("country",)
    )
    assert payload["count"] == direct["count"] > 0
    assert payload["counts"] == json.loads(json.dumps(direct["counts"]))


def test_query_enum_dimension_coerced_from_string(server):
    status, payload = _get(
        f"{server.url}/query?kind=speedtest&sim_kind=esim"
    )
    assert status == 200
    assert payload["count"] > 0
    # An unmatched value is an empty slice, not an error.
    status, payload = _get(
        f"{server.url}/query?kind=speedtest&sim_kind=carrier-pigeon"
    )
    assert status == 200
    assert payload["count"] == 0


def test_concurrent_clients_get_byte_identical_responses(server):
    urls = [
        f"{server.url}/query?kind=traceroute&count_by=country",
        f"{server.url}/query?kind=speedtest&group_by=sim_kind",
        f"{server.url}/query?kind=web&count_by=country",
        f"{server.url}/query?kind=dns&country=USA",
    ]
    reference = {}
    for url in urls:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            reference[url] = response.read()

    results = {url: [] for url in urls}
    errors = []

    def hammer(url):
        try:
            for _ in range(5):
                with urllib.request.urlopen(url, timeout=30.0) as response:
                    results[url].append(response.read())
        except Exception as error:  # noqa: BLE001 — collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(url,))
        for url in urls for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors
    for url in urls:
        assert len(results[url]) == 20
        assert all(body == reference[url] for body in results[url])


def test_malformed_requests_get_400s(server):
    cases = {
        "/query": "requires a kind",
        "/query?kind=bogus": "unknown record kind",
        "/query?kind=traceroute&nope=1": "unknown dimension",
        "/query?kind=traceroute&group_by=country&count_by=country":
            "not both",
        "/query?kind=traceroute&records=x": "must be an integer",
        "/query?kind=traceroute&day=abc": "day must be an integer",
        "/artefact": "must be /artefact/<id>",
        "/artefact/T2?scale=abc": "bad scale",
    }
    for path, needle in cases.items():
        status, payload = _get(f"{server.url}{path}")
        assert status == 400, path
        assert needle in payload["error"], path


def test_unknown_paths_get_404(server):
    status, payload = _get(f"{server.url}/nope")
    assert status == 404
    assert "endpoints" in payload["error"]
    status, payload = _get(f"{server.url}/artefact/NOPE")
    assert status == 404
    assert "unknown artefact" in payload["error"]


def test_post_is_405(server):
    request = urllib.request.Request(
        f"{server.url}/query", data=b"{}", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30.0)
    assert excinfo.value.code == 405


def test_artefact_served_from_memo_after_warm(server):
    status, payload = _get(f"{server.url}/artefact/t2")
    assert status == 200
    assert payload["artefact"] == "T2"
    assert payload["source"] == "memo"  # warmed at startup
    assert payload["result"]
    status, rendered = _get(f"{server.url}/artefact/T2?render=1")
    assert status == 200
    assert "b-MNO" in rendered["rendered"]


def test_population_route_matches_direct_stats(server):
    from repro.experiments import common

    status, payload = _get(f"{server.url}/population")
    assert status == 200
    population = common.get_population(server.state.seed, server.state.scale)
    assert payload["subscribers"] == len(population)
    assert payload["stats"]["esims"] + payload["stats"]["physical_sims"] == (
        payload["subscribers"]
    )
    assert payload["store_bytes"] == population.store.nbytes


def test_population_route_pivots_and_filters(server):
    status, payload = _get(f"{server.url}/population?by=architecture")
    assert status == 200
    assert sum(payload["counts"].values()) == payload["subscribers"]

    status, by_kind = _get(f"{server.url}/population?by=kind&country=jpn")
    assert status == 200
    assert set(by_kind["counts"]) <= {"esim", "physical"}
    assert by_kind["subscribers"] == sum(by_kind["counts"].values())
    assert by_kind["where"] == {"country": "JPN"}

    status, payload = _get(f"{server.url}/population?by=bogus")
    assert status == 400
    status, payload = _get(f"{server.url}/population?bogus=1")
    assert status == 400


def test_healthz_reports_subscribers(server):
    status, payload = _get(f"{server.url}/healthz")
    assert status == 200
    assert payload["subscribers"] > 0


def test_history_endpoint_lists_seeded_run(server):
    status, payload = _get(f"{server.url}/history")
    assert status == 200
    assert payload["total"] == 1
    (run,) = payload["runs"]
    assert run["run_id"] == "seeded-run"
    assert run["kind"] == "run_all"


def test_regress_endpoint_maps_errors(server):
    status, payload = _get(f"{server.url}/regress?run=nope")
    assert status == 404
    # One recorded run, no baselines, no SLOs: nothing to compare.
    status, payload = _get(f"{server.url}/regress")
    assert status == 409
    assert "baseline" in payload["error"]


def test_healthz_during_warmup_and_data_routes_503():
    state = ServerState(scale=0.02, datasets=("device",), warm_artefacts=())
    srv = MeasurementServer(state)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        status, payload = _get(f"{srv.url}/healthz")
        assert status == 503
        assert payload["status"] == "warming"
        assert payload["phase"] == "pending"
        status, payload = _get(f"{srv.url}/query?kind=traceroute")
        assert status == 503
        state.warm()
        status, payload = _get(f"{srv.url}/healthz")
        assert status == 200
        status, payload = _get(f"{srv.url}/query?kind=traceroute")
        assert status == 200
        assert payload["count"] > 0
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=30.0)


def test_stop_drains_in_flight_requests():
    srv = create_server(
        scale=0.02, datasets=("device",), warm_artefacts=(),
        debug_delay=True,
    ).start()
    assert srv.state.ready.wait(timeout=120), srv.state.warm_error
    outcome = {}

    def slow_request():
        outcome["status"], outcome["payload"] = _get(
            f"{srv.url}/query?kind=traceroute&count_by=country&delay_s=1.0"
        )

    thread = threading.Thread(target=slow_request)
    thread.start()
    time.sleep(0.3)  # let the request reach the handler's sleep
    started = time.perf_counter()
    srv.stop()
    stop_wall = time.perf_counter() - started
    thread.join(timeout=30.0)
    # stop() must have waited for the in-flight request, and the client
    # must have received the full, valid response.
    assert stop_wall >= 0.5
    assert outcome["status"] == 200
    assert outcome["payload"]["count"] > 0


def test_sigterm_shuts_down_with_exit_zero(tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--scale", "0.02", "--datasets", "device"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    try:
        line = process.stdout.readline()
        assert "listening on" in line
        url = next(
            token for token in line.split() if token.startswith("http://")
        )
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            status, _ = _get(f"{url}/healthz", timeout=5.0)
            if status == 200:
                break
            time.sleep(0.25)
        else:
            pytest.fail("server never became ready")
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


def test_request_error_carries_status():
    error = RequestError(400, "nope")
    assert error.status == 400
    assert error.message == "nope"
