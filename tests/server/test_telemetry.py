"""The live telemetry plane, end to end against a real server.

Covers the ISSUE's integration bar: a /metrics double-scrape with
monotone counters, SSE framing read off a real socket at the sampler's
cadence, the on-demand profiler endpoint (including its 409 mutex),
distributed trace re-parenting via traceparent/X-Repro-Span, and the
ops routes answering before the server is warm.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import exposition
from repro.server import ROUTE_SLOS_P99_S, LoadGenerator, create_server
from repro.server.loadgen import MIX


def _get(url, timeout=30.0, headers=None):
    """GET -> (status, body bytes, headers)."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), response.headers
    except urllib.error.HTTPError as error:
        return error.code, error.read(), error.headers


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One warm server with a fast sampler (0.2 s ticks, 50 retained)."""
    history = tmp_path_factory.mktemp("telemetry-history")
    srv = create_server(
        scale=0.05, history_dir=str(history), warm_artefacts=("T2",),
        sample_interval_s=0.2, sample_capacity=50,
    ).start()
    assert srv.state.ready.wait(timeout=180), srv.state.warm_error
    yield srv
    srv.stop()


def test_sampler_config_is_plumbed(server):
    assert server.sampler.interval_s == 0.2
    assert server.sampler.capacity == 50
    assert server.sampler.alive()


def test_metrics_scrape_is_valid_and_monotone(server):
    # Complete one request first so the request counters exist: a
    # counter is born when its route *finishes*, and this test may be
    # the first traffic the module server sees.
    assert _get(f"{server.url}/healthz")[0] == 200
    status, first_body, headers = _get(f"{server.url}/metrics")
    assert status == 200
    assert headers["Content-Type"] == exposition.CONTENT_TYPE
    first = first_body.decode("utf-8")
    parsed = exposition.parse_exposition(first)  # syntactically valid
    names = set(parsed["types"])
    assert "repro_server_requests_total" in names
    assert "process_resident_memory_bytes" in names

    # Traffic between scrapes: every counter must move monotonically.
    for _ in range(3):
        assert _get(f"{server.url}/query?kind=web&count_by=country")[0] == 200
    second = _get(f"{server.url}/metrics")[1].decode("utf-8")

    before = exposition.counter_values(first)
    after = exposition.counter_values(second)
    assert set(before) <= set(after)
    assert all(after[name] >= value for name, value in before.items())
    assert (
        after["repro_server_requests_total"]
        >= before["repro_server_requests_total"] + 4
    )


def test_stats_reports_the_retained_window(server):
    _get(f"{server.url}/query?kind=web&count_by=country")
    time.sleep(0.5)  # let at least two ticks land
    status, body, headers = _get(
        f"{server.url}/stats?window=30&series=server.requests"
    )
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    payload = json.loads(body)
    assert payload["window_s"] == 30.0
    assert payload["sampler"]["ticks"] > 0
    assert payload["sampler"]["alive"] is True
    requests = payload["counters"]["server.requests"]
    assert requests["value"] > 0
    assert requests["samples"] > 0
    points = payload["series"]["server.requests"]
    assert points and all(len(point) == 2 for point in points)
    # The request latency histograms ride along, windowed.
    assert any(
        name.startswith("server.latency_s.")
        for name in payload["histograms"]
    )
    assert _get(f"{server.url}/stats?window=0")[0] == 400
    assert _get(f"{server.url}/stats?window=banana")[0] == 400


def test_events_streams_sse_frames_at_tick_cadence(server):
    """Real-socket SSE: framing, JSON payloads, and <= 2 s deltas."""
    sock = socket.create_connection(
        ("127.0.0.1", server.port), timeout=30.0
    )
    chunks = []
    try:
        sock.sendall(
            b"GET /events?max_events=3 HTTP/1.1\r\n"
            b"Host: localhost\r\nAccept: text/event-stream\r\n\r\n"
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            data = sock.recv(65536)
            if not data:
                break  # server closed: the stream is complete
            chunks.append((time.monotonic(), data))
    finally:
        sock.close()

    raw = b"".join(data for _, data in chunks).decode("utf-8")
    head, _, body = raw.partition("\r\n\r\n")
    assert head.startswith("HTTP/1.1 200")
    assert "text/event-stream" in head
    assert "Content-Length" not in head  # stream ends by connection close

    assert body.startswith("retry: 2000\n\n")
    frames = [frame for frame in body.split("\n\n") if frame.strip()]
    events = []
    for frame in frames:
        if frame.startswith(("retry:", ": ")):
            continue  # reconnect hint / keepalive comment
        lines = frame.split("\n")
        assert lines[0].startswith("event: "), frame
        assert lines[1].startswith("data: "), frame
        events.append(
            (lines[0][len("event: "):], json.loads(lines[1][len("data: "):]))
        )
    assert events[0][0] == "hello"
    assert events[0][1]["sampler"]["alive"] is True
    ticks = [payload for name, payload in events if name == "tick"]
    assert len(ticks) == 3
    tick_ids = [payload["tick"] for payload in ticks]
    assert tick_ids == sorted(tick_ids)
    assert all("counters" in payload for payload in ticks)

    # Cadence: with a 0.2 s sampler each tick arrives well inside the
    # ISSUE's <= 2 s delta bound. Chunk timestamps bound arrival gaps.
    arrivals = []
    seen = b""
    needed = 1
    for stamp, data in chunks:
        seen += data
        while seen.count(b"event: tick") >= needed:
            arrivals.append(stamp)
            needed += 1
    assert len(arrivals) == 3
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(gap < 2.0 for gap in gaps), gaps


def test_dashboard_serves_the_live_page(server):
    status, body, headers = _get(f"{server.url}/dashboard")
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    page = body.decode("utf-8")
    assert "EventSource('/events')" in page
    assert "/healthz" in page
    assert "server.latency_s." in page


def test_profile_endpoint_returns_collapsed_stacks(server):
    status, body, headers = _get(
        f"{server.url}/profile?seconds=0.3&interval_ms=5"
    )
    assert status == 200
    assert int(headers["X-Repro-Profile-Ticks"]) > 10
    for line in body.decode("utf-8").splitlines():
        frames, _, count = line.rpartition(" ")
        assert count.isdigit(), line
        assert ";" in frames, line


def test_profile_endpoint_validates_and_serializes(server):
    assert _get(f"{server.url}/profile?seconds=0")[0] == 400
    assert _get(f"{server.url}/profile?seconds=9999")[0] == 400
    assert _get(f"{server.url}/profile?seconds=1&interval_ms=0.1")[0] == 400
    # While one profile runs, a second request is refused, not queued.
    assert server.profile_lock.acquire(timeout=5.0)
    try:
        status, body, _ = _get(f"{server.url}/profile?seconds=0.2")
        assert status == 409
        assert b"already running" in body
    finally:
        server.profile_lock.release()


def test_healthz_reports_the_telemetry_plane(server):
    status, body, _ = _get(f"{server.url}/healthz")
    assert status == 200
    payload = json.loads(body)
    assert payload["uptime_s"] > 0
    telemetry = payload["telemetry"]
    assert telemetry["requests_total"] > 0
    assert telemetry["requests_started"] >= telemetry["requests_total"]
    assert telemetry["errors_5xx"] == 0
    assert telemetry["sampler"]["alive"] is True
    assert telemetry["sampler"]["ticks"] > 0
    assert telemetry["sampler"]["last_tick_age_s"] < 5.0


def test_traceparent_yields_an_adoptable_server_span(server):
    status, _, headers = _get(
        f"{server.url}/query?kind=web&count_by=country",
        headers={"traceparent": "00-trace1234-span5678-01"},
    )
    assert status == 200
    export = json.loads(headers["X-Repro-Span"])
    assert export["name"] == "server.request"
    assert export["parent_id"] == "span5678"
    assert export["status"] == "ok"
    assert export["duration_s"] > 0
    assert export["attrs"]["route"] == "query"
    assert export["attrs"]["trace_id"] == "trace1234"
    assert export["attrs"]["status"] == 200

    # The export slots straight into a client trace as a child.
    recorder = obs.TraceRecorder(trace_id="trace1234")
    with recorder.span("client.request") as span:
        pass
    recorder.adopt({"spans": [export]}, parent_id=span.span_id)
    adopted = {s.name: s for s in recorder.spans}
    assert adopted["server.request"].parent_id == span.span_id

    # No traceparent -> no span export header.
    _, _, plain = _get(f"{server.url}/healthz")
    assert plain.get("X-Repro-Span") is None


def test_traced_loadgen_merges_both_sides(server):
    generator = LoadGenerator(
        "127.0.0.1", server.port, clients=4, duration_s=1.5,
        seed=7, think_s=0.05, trace=True,
    )
    report = generator.run()
    assert report.total_requests > 0
    assert report.total_errors == 0
    recorder = report.trace_recorder
    assert recorder is not None
    by_name = {}
    for span in recorder.spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["loadgen.run"]) == 1
    client_spans = by_name["loadgen.request"]
    server_spans = by_name.get("server.request", [])
    assert len(client_spans) == report.total_requests
    # Every server-side span is parented under some client request span.
    client_ids = {span.span_id for span in client_spans}
    assert server_spans
    assert len(server_spans) == len(client_spans)
    assert all(span.parent_id in client_ids for span in server_spans)


def test_ops_routes_answer_before_the_server_is_warm(tmp_path):
    """You can watch a warmup: telemetry works while data routes 503."""
    srv = create_server(
        scale=0.05, history_dir=str(tmp_path), warm_artefacts=(),
        sample_interval_s=0.2,
    )
    # Accept loop + sampler only — warm() is never started, so the
    # server stays un-ready for the whole test.
    srv.sampler.start()
    accept = threading.Thread(target=srv.serve_forever, daemon=True)
    accept.start()
    try:
        url = f"http://127.0.0.1:{srv.port}"
        assert _get(f"{url}/metrics")[0] == 200
        assert _get(f"{url}/stats")[0] == 200
        assert _get(f"{url}/dashboard")[0] == 200
        status, body, _ = _get(f"{url}/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "warming"
        assert payload["telemetry"]["sampler"]["alive"] is True
        assert _get(f"{url}/query?kind=web")[0] == 503
    finally:
        srv.stop()
        accept.join(timeout=30.0)
    assert not srv.sampler.alive()


def test_loadgen_mix_includes_telemetry_inside_slo_gates():
    assert sum(weight for _, weight in MIX) == 100
    routes = {route for route, _ in MIX}
    assert {"metrics", "stats"} <= routes
    # Telemetry routes are part of the SLO surface, so the gate has
    # budgets for them.
    assert ROUTE_SLOS_P99_S["metrics"] > 0
    assert ROUTE_SLOS_P99_S["stats"] > 0
