"""The load harness and the SLO gate it feeds."""

import json

import pytest

from repro.obs.history import HistoryStore
from repro.obs.regress import KIND_LATENCY, KIND_SLO, compare, detect
from repro.server import create_server
from repro.server.loadgen import (
    LoadGenerator,
    LoadgenReport,
    RouteStats,
    _Client,
    run_loadgen,
)
from repro.server.slo import (
    MAX_ERROR_RATE,
    ROUTE_SLOS_P99_S,
    check,
    record_from_loadgen,
)


def make_report(p99_s=0.01, route="query", count=100, errors=0):
    """A synthetic single-route report whose p99 is exactly ``p99_s``."""
    stats = RouteStats(
        count=count, errors=errors,
        latencies_s=[p99_s * 0.1] * (count - 1) + [p99_s],
    )
    return LoadgenReport(
        url="http://test:0", clients=10, duration_s=1.0, seed=1,
        wall_s=1.0, total_requests=count, total_errors=errors,
        routes={route: stats},
    )


def test_percentiles_are_exact_order_statistics():
    stats = RouteStats(latencies_s=[float(i) for i in range(1, 101)])
    assert stats.percentile(0.50) == 51.0
    assert stats.percentile(0.95) == 96.0
    assert stats.percentile(0.99) == 100.0
    assert RouteStats().percentile(0.99) == 0.0


def test_workload_walk_is_deterministic_per_seed():
    def walk(seed):
        generator = LoadGenerator("h", 1, clients=1, seed=seed)
        generator.countries = ("USA", "ESP", "JPN")
        client = _Client(generator, 0)
        return [client._pick() for _ in range(50)]

    assert walk(7) == walk(7)
    assert walk(7) != walk(8)
    routes = {route for route, _ in walk(7)}
    assert "query" in routes and "healthz" in routes


def test_slo_check_flags_only_over_budget_routes():
    assert check(make_report(p99_s=0.001)) == {}
    violations = check(make_report(p99_s=ROUTE_SLOS_P99_S["query"] * 2))
    assert list(violations) == ["query"]
    assert "SLO" in violations["query"]
    # Routes with no declared budget are never flagged.
    assert check(make_report(p99_s=99.0, route="exotic")) == {}


def test_record_from_loadgen_shape():
    report = make_report(p99_s=0.02)
    record = record_from_loadgen(report, now=123.0, host="ci")
    assert record.kind == "loadgen"
    assert record.group_key().startswith("loadgen-")
    assert record.jobs == report.clients
    assert record.status == "ok"
    stats = record.artefacts["query"]
    assert stats.wall_s == pytest.approx(0.02)
    assert stats.slo_s == ROUTE_SLOS_P99_S["query"]
    assert record.metrics["loadgen.requests"] == 100.0


def test_record_from_loadgen_fails_on_error_rate():
    errors = int(100 * MAX_ERROR_RATE) + 5
    report = make_report(count=100, errors=errors)
    record = record_from_loadgen(report)
    assert record.status == "failed"
    assert not record.ok


def test_slo_violation_verdict_needs_no_baseline():
    record = record_from_loadgen(
        make_report(p99_s=ROUTE_SLOS_P99_S["query"] * 3)
    )
    report = compare(record, [])
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_SLO
    assert verdict.artefact_id == "query"
    assert "SLO budget" in verdict.detail


def test_detect_gates_first_ever_loadgen_run(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(record_from_loadgen(
        make_report(p99_s=ROUTE_SLOS_P99_S["query"] * 3)
    ))
    report = detect(store)
    assert not report.ok()
    assert report.verdicts[0].kind == KIND_SLO


def test_detect_flags_seeded_latency_regression(tmp_path):
    store = HistoryStore(tmp_path)
    for offset in range(3):
        store.append(record_from_loadgen(
            make_report(p99_s=0.02), now=100.0 + offset
        ))
    chaos = record_from_loadgen(make_report(p99_s=0.5), now=200.0)
    store.append(chaos)
    report = detect(store, run_id=chaos.run_id)
    kinds = {verdict.kind for verdict in report.verdicts}
    assert KIND_LATENCY in kinds


def test_loadgen_input_validation():
    with pytest.raises(ValueError):
        LoadGenerator("h", 1, clients=0)
    with pytest.raises(ValueError):
        LoadGenerator("h", 1, duration_s=0)


def test_loadgen_against_live_server(tmp_path):
    srv = create_server(
        scale=0.02, datasets=("device",), warm_artefacts=("T2",),
    ).start()
    try:
        report = run_loadgen(
            "127.0.0.1", srv.port, clients=8, duration_s=1.5, seed=3,
            think_s=0.05,
        )
        assert report.total_requests > 0
        assert report.total_errors == 0
        assert report.throughput_rps > 0
        assert set(report.routes) <= {"query", "artefact", "history",
                                      "healthz", "metrics", "stats"}
        for stats in report.routes.values():
            assert stats.count == len(stats.latencies_s)
        # The JSON report round-trips.
        payload = json.loads(json.dumps(report.to_jsonable()))
        assert payload["total_requests"] == report.total_requests
        assert "p99_s" in payload["routes"]["query"]
        # The rendered summary is human-shaped.
        text = report.render()
        assert "clients" in text and "req/s" in text
    finally:
        srv.stop()


def test_chaos_latency_is_injected_into_recordings(tmp_path):
    srv = create_server(
        scale=0.02, datasets=("device",), warm_artefacts=(),
    ).start()
    try:
        report = run_loadgen(
            "127.0.0.1", srv.port, clients=2, duration_s=1.0, seed=3,
            think_s=0.05, chaos_latency_s=2.0,
        )
        latencies = [
            latency for stats in report.routes.values()
            for latency in stats.latencies_s
        ]
        assert latencies
        assert min(latencies) >= 2.0
        assert report.chaos_latency_s == 2.0
        # The chaos run violates every declared budget it touched.
        violations = check(report)
        assert violations
    finally:
        srv.stop()
