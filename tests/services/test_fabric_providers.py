"""Tests for the service fabric and service providers."""

import random

import pytest

from repro.geo import GeoPoint
from repro.net import LatencyModel
from repro.net.ipv4 import parse_ip
from repro.services import ServerSite, ServiceFabric, ServiceProvider


def test_public_stretch_validation(topology):
    with pytest.raises(ValueError):
        ServiceFabric(LatencyModel(), topology, public_stretch=0.9)


def test_session_rtt_composition(fabric, ihbo_session, cities):
    server = cities.get("Amsterdam", "NLD").location
    total = fabric.session_rtt_ms(ihbo_session, server)
    private = fabric.private_rtt_ms(ihbo_session)
    # The Amsterdam server is next to the PGW: public share is tiny.
    assert total >= private
    assert total - private < 3.0


def test_hr_session_dominated_by_private_path(fabric, hr_session, cities):
    # HR to Singapore, then back to a Dubai edge: private >> public? No —
    # the edge near the PGW (Singapore) is what the paper observes.
    server = cities.get("Singapore", "SGP").location
    total = fabric.session_rtt_ms(hr_session, server)
    private = fabric.private_rtt_ms(hr_session)
    assert private / total > 0.95


def test_radio_conditions_increase_rtt(fabric, ihbo_session):
    from repro.cellular import RadioAccessTechnology, RadioConditions

    server = GeoPoint(52.37, 4.90)
    base = fabric.session_rtt_ms(ihbo_session, server)
    cond = RadioConditions(RadioAccessTechnology.LTE, cqi=8, rsrp_dbm=-100, snr_db=5)
    with_radio = fabric.session_rtt_ms(ihbo_session, server, conditions=cond)
    assert with_radio > base + 20


def test_sampled_rtt_deterministic_per_seed(fabric, ihbo_session):
    server = GeoPoint(52.37, 4.90)
    a = fabric.session_rtt_ms(ihbo_session, server, rng=random.Random(5))
    b = fabric.session_rtt_ms(ihbo_session, server, rng=random.Random(5))
    assert a == b


def test_as_path_direct_peering(fabric, ihbo_session):
    # Packet Host peers with Google: two ASNs, like most paper traceroutes.
    assert fabric.as_path(ihbo_session, 15169) == [54825, 15169]


def test_as_path_fallback_when_unrouted(fabric, ihbo_session):
    # An ASN absent from the topology still yields the 2-AS opaque view.
    assert fabric.as_path(ihbo_session, 64512) == [54825, 64512]


def test_provider_nearest_edge(google, cities):
    madrid = cities.get("Madrid", "ESP").location
    assert google.nearest_edge(madrid).city.name == "Madrid"
    bangkok = cities.get("Bangkok", "THA").location
    assert google.nearest_edge(bangkok).city.name == "Bangkok"


def test_provider_internal_hops_bounded(google):
    rng = random.Random(3)
    for _ in range(100):
        hops = google.sample_internal_hops(rng)
        assert 2 <= hops <= 7


def test_provider_validation(cities):
    with pytest.raises(ValueError):
        ServiceProvider(name="X", asn=1, edges=[])
    site = ServerSite(city=cities.get("Madrid", "ESP"), ip=parse_ip("192.0.2.9"))
    with pytest.raises(ValueError):
        ServiceProvider(name="X", asn=1, edges=[site], internal_hop_range=(5, 2))
    with pytest.raises(ValueError):
        ServiceProvider(name="X", asn=1, edges=[site], icmp_response_rate=1.5)
