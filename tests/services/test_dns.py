"""Tests for DNS services, anycast selection and DoH overhead."""

import random
import statistics

import pytest

from repro.net.ipv4 import parse_ip
from repro.services import DNSService, DoHOverheadModel, ServerSite


def test_anycast_selects_resolver_near_breakout(google_dns, ihbo_session):
    resolver = google_dns.select_resolver(ihbo_session.pgw_site.location)
    # Breakout in Amsterdam -> Amsterdam resolver (same-country in Fig. terms).
    assert resolver.city.name == "Amsterdam"
    assert resolver.city.country_iso3 == ihbo_session.breakout_country


def test_unicast_always_answers_from_home(singtel_dns, cities):
    madrid = cities.get("Madrid", "ESP").location
    assert singtel_dns.select_resolver(madrid).city.name == "Singapore"


def test_resolve_reports_resolver_country(google_dns, fabric, ihbo_session, rng):
    answer = google_dns.resolve(ihbo_session, fabric, rng)
    assert answer.resolver_country == "NLD"
    assert answer.service_name == "Google DNS"
    assert answer.lookup_ms > 0


def test_ihbo_resolution_uses_doh_by_default(google_dns, fabric, ihbo_session, rng):
    answer = google_dns.resolve(ihbo_session, fabric, rng)
    assert answer.used_doh  # session negotiated DoH (Android default)


def test_doh_override_disables(google_dns, fabric, ihbo_session, rng):
    answer = google_dns.resolve(ihbo_session, fabric, rng, use_doh=False)
    assert not answer.used_doh


def test_hr_resolution_never_doh(singtel_dns, fabric, hr_session, rng):
    # Operator resolver does not support DoH regardless of device setting.
    answer = singtel_dns.resolve(hr_session, fabric, rng)
    assert not answer.used_doh


def test_doh_inflates_median_lookup(google_dns, fabric, ihbo_session):
    rng = random.Random(7)
    with_doh = [
        google_dns.resolve(ihbo_session, fabric, rng, use_doh=True).lookup_ms
        for _ in range(300)
    ]
    rng = random.Random(7)
    without = [
        google_dns.resolve(ihbo_session, fabric, rng, use_doh=False).lookup_ms
        for _ in range(300)
    ]
    assert statistics.median(with_doh) > statistics.median(without)


def test_hr_lookup_slower_than_ihbo(singtel_dns, google_dns, fabric, hr_session, ihbo_session):
    rng = random.Random(9)
    hr_times = [singtel_dns.resolve(hr_session, fabric, rng).lookup_ms for _ in range(100)]
    ihbo_times = [
        google_dns.resolve(ihbo_session, fabric, rng, use_doh=False).lookup_ms
        for _ in range(100)
    ]
    # GTP tunnel to Singapore dwarfs Madrid->Amsterdam even without DoH.
    assert statistics.median(hr_times) > 2 * statistics.median(ihbo_times)


def test_cache_misses_cost_more(google_dns, fabric, ihbo_session):
    rng = random.Random(21)
    answers = [google_dns.resolve(ihbo_session, fabric, rng, use_doh=False) for _ in range(400)]
    hits = [a.lookup_ms for a in answers if a.cache_hit]
    misses = [a.lookup_ms for a in answers if not a.cache_hit]
    assert hits and misses
    assert statistics.median(misses) > statistics.median(hits)


def test_validation():
    with pytest.raises(ValueError):
        DNSService(name="bad", sites=[])
    with pytest.raises(ValueError):
        DoHOverheadModel(cold_probability=1.5)
    with pytest.raises(ValueError):
        DoHOverheadModel(extra_rtts=-1)


def test_dns_service_cache_rate_validation(cities):
    site = ServerSite(city=cities.get("Madrid", "ESP"), ip=parse_ip("192.0.2.50"))
    with pytest.raises(ValueError):
        DNSService(name="bad", sites=[site], cache_hit_rate=2.0)
    with pytest.raises(ValueError):
        DNSService(name="bad", sites=[site], recursive_penalty_ms=-1.0)


def test_anycast_miss_routes_to_runner_up(cities):
    """With a miss rate of 1.0 every query lands at the second-nearest site."""
    service = DNSService(
        name="miss", anycast=True, anycast_miss_rate=1.0,
        sites=[
            ServerSite(city=cities.get("Amsterdam", "NLD"), ip=parse_ip("192.0.2.60")),
            ServerSite(city=cities.get("Frankfurt", "DEU"), ip=parse_ip("192.0.2.61")),
            ServerSite(city=cities.get("Singapore", "SGP"), ip=parse_ip("192.0.2.62")),
        ],
    )
    origin = cities.get("Amsterdam", "NLD").location
    rng = random.Random(4)
    assert service.select_resolver(origin, rng).city.name == "Frankfurt"
    # Without an rng the selection stays deterministic nearest.
    assert service.select_resolver(origin).city.name == "Amsterdam"


def test_anycast_miss_rate_shapes_same_country_share(cities):
    service = DNSService(
        name="share", anycast=True, anycast_miss_rate=0.25,
        sites=[
            ServerSite(city=cities.get("Amsterdam", "NLD"), ip=parse_ip("192.0.2.70")),
            ServerSite(city=cities.get("Frankfurt", "DEU"), ip=parse_ip("192.0.2.71")),
        ],
    )
    origin = cities.get("Amsterdam", "NLD").location
    rng = random.Random(8)
    same = sum(
        1 for _ in range(1000)
        if service.select_resolver(origin, rng).city.country_iso3 == "NLD"
    )
    assert 0.68 < same / 1000 < 0.82  # ~the paper's 74%
