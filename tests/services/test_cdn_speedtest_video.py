"""Tests for CDN fetch timing, speedtest fleets, and the ABR player."""

import random
import statistics

import pytest

from repro.cellular import BandwidthPolicy, RadioAccessTechnology, RadioConditions
from repro.services import (
    AdaptiveBitratePlayer,
    Asset,
    CDNProvider,
    JQUERY_ASSET,
    SpeedtestFleet,
    VideoLadderRung,
)
from repro.services.cdn import slow_start_rounds


GOOD = RadioConditions(RadioAccessTechnology.NR, cqi=12, rsrp_dbm=-80, snr_db=15)

POLICY = BandwidthPolicy(
    native_downlink_mbps=80.0,
    native_uplink_mbps=25.0,
    roaming_downlink_mbps=12.0,
    roaming_uplink_mbps=6.0,
)


def test_slow_start_rounds():
    assert slow_start_rounds(1) == 1
    assert slow_start_rounds(14_600) == 1          # fits the initial window
    assert slow_start_rounds(14_601) == 2
    assert slow_start_rounds(JQUERY_ASSET.size_bytes) == 2
    assert slow_start_rounds(1_000_000) > 4
    with pytest.raises(ValueError):
        slow_start_rounds(0)
    with pytest.raises(ValueError):
        slow_start_rounds(10, initcwnd_bytes=0)


def test_asset_validation():
    with pytest.raises(ValueError):
        Asset("bad", 0)
    assert JQUERY_ASSET.size_bytes == 30_288


def test_edge_steering_by_resolver_location(cloudflare, cities):
    # Resolver near the Amsterdam PGW steers to the Amsterdam edge.
    assert cloudflare.edge_for(cities.get("Amsterdam", "NLD").location).city.name == "Amsterdam"
    assert cloudflare.edge_for(cities.get("Bangkok", "THA").location).city.name == "Bangkok"


def test_fetch_phases_positive_and_total(cloudflare, fabric, ihbo_session, cities, rng):
    result = cloudflare.fetch(
        session=ihbo_session,
        fabric=fabric,
        asset=JQUERY_ASSET,
        dns_ms=25.0,
        resolver_location=cities.get("Amsterdam", "NLD").location,
        bandwidth_mbps=12.0,
        rng=rng,
    )
    assert result.dns_ms == 25.0
    for phase in (result.connect_ms, result.tls_ms, result.ttfb_ms):
        assert phase > 0
    assert result.total_ms == pytest.approx(
        result.dns_ms + result.connect_ms + result.tls_ms + result.ttfb_ms + result.transfer_ms
    )
    assert result.provider == "Cloudflare"


def test_hr_fetch_much_slower_than_native(cloudflare, fabric, hr_session, native_session, cities):
    rng = random.Random(3)

    def fetch_many(session, resolver_city, n=60):
        loc = cities.get(*resolver_city).location
        return [
            cloudflare.fetch(session, fabric, JQUERY_ASSET, 30.0, loc, 10.0, rng).total_ms
            for _ in range(n)
        ]

    hr = fetch_many(hr_session, ("Singapore", "SGP"))
    native = fetch_many(native_session, ("Bangkok", "THA"))
    # Paper: HR CDN downloads are several times slower than native.
    assert statistics.median(hr) > 3 * statistics.median(native)


def test_cache_miss_inflates_ttfb(cloudflare, fabric, native_session, cities):
    rng = random.Random(5)
    cold = CDNProvider(
        name="Cold",
        edges=cloudflare.edges,
        origin=cloudflare.origin,
        cache_hit_rate=0.0,
    )
    loc = cities.get("Bangkok", "THA").location
    hit = cloudflare.fetch(native_session, fabric, JQUERY_ASSET, 10.0, loc, 10.0, rng)
    miss = cold.fetch(native_session, fabric, JQUERY_ASSET, 10.0, loc, 10.0, rng)
    assert not miss.cache_hit
    assert miss.ttfb_ms > hit.ttfb_ms


def test_country_cache_override(cloudflare, native_session, fabric, cities):
    rng = random.Random(7)
    tuned = CDNProvider(
        name="Tuned",
        edges=cloudflare.edges,
        origin=cloudflare.origin,
        cache_hit_rate=1.0,
        country_cache_hit_rate={"THA": 0.0},
    )
    assert tuned.hit_rate_for("tha") == 0.0
    assert tuned.hit_rate_for("ESP") == 1.0
    loc = cities.get("Bangkok", "THA").location
    result = tuned.fetch(native_session, fabric, JQUERY_ASSET, 10.0, loc, 10.0, rng)
    assert not result.cache_hit


def test_cdn_validation(cloudflare):
    with pytest.raises(ValueError):
        CDNProvider(name="bad", edges=[], origin=cloudflare.origin)
    with pytest.raises(ValueError):
        CDNProvider(
            name="bad", edges=cloudflare.edges, origin=cloudflare.origin, cache_hit_rate=1.1
        )


def test_fetch_rejects_nonpositive_bandwidth(cloudflare, fabric, native_session, cities, rng):
    with pytest.raises(ValueError):
        cloudflare.fetch(
            native_session, fabric, JQUERY_ASSET, 10.0,
            cities.get("Bangkok", "THA").location, 0.0, rng,
        )


def test_speedtest_server_selection_follows_pgw(ookla, ihbo_session, hr_session):
    # IHBO in Madrid breaks out in Amsterdam -> Amsterdam Ookla server.
    assert ookla.nearest_server(ihbo_session.pgw_site.location).site.city.name == "Amsterdam"
    assert ookla.nearest_server(hr_session.pgw_site.location).site.city.name == "Singapore"


def test_speedtest_run_roaming_policy(ookla, fabric, ihbo_session, rng):
    result = ookla.run(ihbo_session, fabric, POLICY, GOOD, rng)
    assert result.latency_ms > 0
    # Roaming policy caps downlink well below the native rate.
    assert result.download_mbps < POLICY.native_downlink_mbps
    assert result.upload_mbps < result.download_mbps


def test_speedtest_native_faster_than_roaming(ookla, fabric, native_session, ihbo_session):
    rng = random.Random(17)
    native = [ookla.run(native_session, fabric, POLICY, GOOD, rng).download_mbps for _ in range(40)]
    roaming = [ookla.run(ihbo_session, fabric, POLICY, GOOD, rng).download_mbps for _ in range(40)]
    assert statistics.median(native) > 2 * statistics.median(roaming)


def test_speedtest_uplink_asymmetry(ookla, fabric, ihbo_session):
    rng_a = random.Random(23)
    rng_b = random.Random(23)
    normal = ookla.run(ihbo_session, fabric, POLICY, GOOD, rng_a)
    throttled = ookla.run(ihbo_session, fabric, POLICY, GOOD, rng_b, uplink_asymmetry=0.4)
    assert throttled.upload_mbps == pytest.approx(0.4 * normal.upload_mbps)
    with pytest.raises(ValueError):
        ookla.run(ihbo_session, fabric, POLICY, GOOD, rng_a, uplink_asymmetry=0.0)


def test_speedtest_fleet_validation():
    with pytest.raises(ValueError):
        SpeedtestFleet(name="empty", servers=[])


def test_ladder_and_player_validation():
    with pytest.raises(ValueError):
        VideoLadderRung(0, 5.0)
    with pytest.raises(ValueError):
        AdaptiveBitratePlayer(ladder=[])
    with pytest.raises(ValueError):
        AdaptiveBitratePlayer(safety=0.0)
    with pytest.raises(ValueError):
        AdaptiveBitratePlayer(max_rung_p=100)


def test_player_caps_at_1440p():
    player = AdaptiveBitratePlayer()
    assert max(r.resolution_p for r in player.ladder) == 1440


def test_fast_link_reaches_1080p_or_better():
    player = AdaptiveBitratePlayer()
    report = player.play(40.0, random.Random(3), duration_s=240)
    assert report.share_at_or_above(1080) > 0.7
    assert report.rebuffer_events <= 2


def test_moderate_link_sits_at_720p():
    # ~8 Mbps: 720p (5 Mbps) fits with safety margin, 1080p (8) does not.
    player = AdaptiveBitratePlayer()
    report = player.play(8.0, random.Random(5), duration_s=240)
    assert report.dominant_resolution == "720p"


def test_slow_link_degrades_and_rebuffers():
    player = AdaptiveBitratePlayer()
    report = player.play(1.0, random.Random(7), duration_s=240)
    assert report.share_at_or_above(720) < 0.3
    assert report.mean_buffer_s < 40.0


def test_playback_deterministic_per_seed():
    player = AdaptiveBitratePlayer()
    a = player.play(10.0, random.Random(11), duration_s=120)
    b = player.play(10.0, random.Random(11), duration_s=120)
    assert a == b


def test_playback_input_validation():
    player = AdaptiveBitratePlayer()
    with pytest.raises(ValueError):
        player.play(0.0, random.Random(1))
    with pytest.raises(ValueError):
        player.play(5.0, random.Random(1), duration_s=0)


def test_report_share_and_counts():
    player = AdaptiveBitratePlayer()
    report = player.play(6.0, random.Random(13), duration_s=120)
    counts = report.resolution_counts
    assert sum(counts.values()) == len(report.segment_resolutions) == 30
    assert 0.0 <= report.share_at_or_above(480) <= 1.0
