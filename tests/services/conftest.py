"""Service-layer fixtures: mini world + fabric + server fleets."""

import random

import pytest

from repro.net import ASTopology, LatencyModel
from repro.net.ipv4 import parse_ip
from repro.services import (
    CDNProvider,
    DNSService,
    ServerSite,
    ServiceFabric,
    ServiceProvider,
    SpeedtestFleet,
    SpeedtestServer,
)
from tests.worldkit import build_mini_world


def _site(cities, name, iso3, ip):
    return ServerSite(city=cities.get(name, iso3), ip=parse_ip(ip))


@pytest.fixture()
def world():
    return build_mini_world()


@pytest.fixture()
def cities(world):
    return world["cities"]


@pytest.fixture()
def topology():
    topo = ASTopology()
    # PGW providers, SPs, and a transit backbone.
    for asn in (54825, 45143, 9587, 3352, 5384, 15169, 32934, 3356):
        topo.add_as(asn)
    for customer in (54825, 45143, 9587, 3352, 5384, 15169, 32934):
        topo.add_transit(customer=customer, provider=3356)
    # Direct peering between PGW providers and SPs (the Figure 6 norm).
    topo.add_peering(54825, 15169)
    topo.add_peering(54825, 32934)
    topo.add_peering(45143, 15169)
    return topo


@pytest.fixture()
def fabric(topology):
    return ServiceFabric(latency=LatencyModel(), topology=topology)


@pytest.fixture()
def google(cities):
    return ServiceProvider(
        name="Google",
        asn=15169,
        edges=[
            _site(cities, "Amsterdam", "NLD", "192.0.2.1"),
            _site(cities, "Singapore", "SGP", "192.0.2.2"),
            _site(cities, "Madrid", "ESP", "192.0.2.3"),
            _site(cities, "Bangkok", "THA", "192.0.2.4"),
            _site(cities, "Dubai", "ARE", "192.0.2.5"),
        ],
    )


@pytest.fixture()
def google_dns(cities):
    return DNSService(
        name="Google DNS",
        anycast=True,
        supports_doh=True,
        anycast_miss_rate=0.0,  # deterministic nearest-site for unit tests
        sites=[
            _site(cities, "Amsterdam", "NLD", "192.0.2.10"),
            _site(cities, "Singapore", "SGP", "192.0.2.11"),
            _site(cities, "Madrid", "ESP", "192.0.2.12"),
        ],
    )


@pytest.fixture()
def singtel_dns(cities):
    return DNSService(
        name="Singtel",
        anycast=False,
        supports_doh=False,
        sites=[_site(cities, "Singapore", "SGP", "192.0.2.20")],
    )


@pytest.fixture()
def cloudflare(cities):
    return CDNProvider(
        name="Cloudflare",
        edges=[
            _site(cities, "Amsterdam", "NLD", "192.0.2.30"),
            _site(cities, "Singapore", "SGP", "192.0.2.31"),
            _site(cities, "Madrid", "ESP", "192.0.2.32"),
            _site(cities, "Bangkok", "THA", "192.0.2.33"),
        ],
        origin=_site(cities, "San Jose", "USA", "192.0.2.39"),
    )


@pytest.fixture()
def ookla(cities):
    return SpeedtestFleet(
        name="Ookla",
        servers=[
            SpeedtestServer(_site(cities, "Amsterdam", "NLD", "192.0.2.40")),
            SpeedtestServer(_site(cities, "Singapore", "SGP", "192.0.2.41")),
            SpeedtestServer(_site(cities, "Madrid", "ESP", "192.0.2.42")),
            SpeedtestServer(_site(cities, "Bangkok", "THA", "192.0.2.43")),
            SpeedtestServer(_site(cities, "Abu Dhabi", "ARE", "192.0.2.44")),
        ],
    )


@pytest.fixture()
def rng():
    return random.Random(99)


def _esim(world, b_mno, plan, rng):
    from repro.cellular import RSPServer

    return RSPServer("Airalo").issue(world["operators"].get(b_mno), plan, rng)


@pytest.fixture()
def ihbo_session(world, rng):
    """Airalo eSIM in Madrid breaking out at Packet Host Amsterdam."""
    from repro.cellular import UserEquipment

    sim = _esim(world, "Play", "ESP", rng)
    ue = UserEquipment.provision("Samsung S21+ 5G", world["cities"].get("Madrid", "ESP"), rng)
    ue.install_sim(sim)
    return ue.switch_to(0, "Movistar", world["factory"], rng)


@pytest.fixture()
def hr_session(world, rng):
    """Airalo eSIM in Abu Dhabi home-routed to Singtel Singapore."""
    from repro.cellular import UserEquipment

    sim = _esim(world, "Singtel", "ARE", rng)
    ue = UserEquipment.provision("Samsung S21+ 5G", world["cities"].get("Abu Dhabi", "ARE"), rng)
    ue.install_sim(sim)
    return ue.switch_to(0, "Etisalat", world["factory"], rng)


@pytest.fixture()
def native_session(world, rng):
    """Native Airalo eSIM on dtac in Bangkok."""
    from repro.cellular import UserEquipment

    sim = _esim(world, "dtac", "THA", rng)
    ue = UserEquipment.provision("Samsung S21+ 5G", world["cities"].get("Bangkok", "THA"), rng)
    ue.install_sim(sim)
    return ue.switch_to(0, "dtac", world["factory"], rng)
