"""Reusable mini-world builder for unit tests.

A reduced ecosystem with one IHBO corridor (Play Poland -> Spain via
Packet Host Amsterdam), one HR corridor (Singtel -> UAE), and one native
operator (dtac Thailand). Unit tests across packages share it; the full
calibrated world lives in ``repro.worlds``.
"""

from repro.cellular import (
    AgreementRegistry,
    IMSIRange,
    MobileOperator,
    OperatorRegistry,
    PGWSite,
    PLMN,
    PGWSelection,
    RoamingAgreement,
    RoamingArchitecture,
    SessionFactory,
)
from repro.geo import default_city_registry
from repro.net import CarrierGradeNAT, LatencyModel


def build_mini_world():
    """Construct the shared mini world; returns a dict of its parts."""
    cities = default_city_registry()
    operators = OperatorRegistry()
    play = MobileOperator(name="Play", country_iso3="POL", plmn=PLMN("260", "06"), asn=12912,
                          home_city=cities.get("Warsaw", "POL"))
    play.rent_range("Airalo", IMSIRange(prefix="2600677", label="airalo"))
    singtel = MobileOperator(
        name="Singtel", country_iso3="SGP", plmn=PLMN("525", "01"), asn=45143,
        core_hop_depths=(8,), home_city=cities.get("Singapore", "SGP"),
    )
    singtel.rent_range("Airalo", IMSIRange(prefix="5250144", label="airalo"))
    movistar = MobileOperator(
        name="Movistar", country_iso3="ESP", plmn=PLMN("214", "07"), asn=3352
    )
    etisalat = MobileOperator(
        name="Etisalat", country_iso3="ARE", plmn=PLMN("424", "02"), asn=5384
    )
    dtac = MobileOperator(
        name="dtac", country_iso3="THA", plmn=PLMN("520", "05"), asn=9587,
        core_hop_depths=(4, 5, 6, 7, 8, 9, 10),
        home_city=cities.get("Bangkok", "THA"),
    )
    dtac.rent_range("Airalo", IMSIRange(prefix="5200533", label="airalo"))
    for op in (play, singtel, movistar, etisalat, dtac):
        operators.add(op)

    pgw_sites = {
        "packet-host-ams": PGWSite(
            site_id="packet-host-ams",
            provider_org="Packet Host",
            provider_asn=54825,
            city=cities.get("Amsterdam", "NLD"),
            cgnat=CarrierGradeNAT(
                [f"198.18.0.{i}" for i in range(1, 5)], name="ph-ams"
            ),
            private_hop_depths=(6, 7),
        ),
        "singtel-sgp": PGWSite(
            site_id="singtel-sgp",
            provider_org="Singtel",
            provider_asn=45143,
            city=cities.get("Singapore", "SGP"),
            cgnat=CarrierGradeNAT(
                [f"198.18.1.{i}" for i in range(1, 5)], name="singtel"
            ),
            private_hop_depths=(8,),
        ),
        "dtac-tha": PGWSite(
            site_id="dtac-tha",
            provider_org="dtac",
            provider_asn=9587,
            city=cities.get("Bangkok", "THA"),
            cgnat=CarrierGradeNAT(
                [f"198.18.2.{i}" for i in range(1, 16)], name="dtac"
            ),
            private_hop_depths=(4, 5, 6, 7, 8, 9, 10),
        ),
        "movistar-esp": PGWSite(
            site_id="movistar-esp",
            provider_org="Movistar",
            provider_asn=3352,
            city=cities.get("Madrid", "ESP"),
            cgnat=CarrierGradeNAT(
                [f"198.18.3.{i}" for i in range(1, 9)], name="movistar"
            ),
            private_hop_depths=(4, 5),
        ),
        "etisalat-are": PGWSite(
            site_id="etisalat-are",
            provider_org="Etisalat",
            provider_asn=5384,
            city=cities.get("Abu Dhabi", "ARE"),
            cgnat=CarrierGradeNAT(
                [f"198.18.4.{i}" for i in range(1, 9)], name="etisalat"
            ),
            private_hop_depths=(4, 5),
        ),
    }

    agreements = AgreementRegistry(
        [
            RoamingAgreement(
                b_mno_name="Play",
                v_mno_name="Movistar",
                architecture=RoamingArchitecture.IHBO,
                pgw_site_ids=("packet-host-ams",),
                selection=PGWSelection.UNIFORM,
            ),
            RoamingAgreement(
                b_mno_name="Singtel",
                v_mno_name="Etisalat",
                architecture=RoamingArchitecture.HR,
                pgw_site_ids=("singtel-sgp",),
                tunnel_stretch=3.0,
                extra_rtt_ms=40.0,
            ),
        ]
    )

    factory = SessionFactory(
        operators=operators,
        agreements=agreements,
        pgw_sites=pgw_sites,
        latency=LatencyModel(),
        native_site_ids={
            "dtac": "dtac-tha",
            "Movistar": "movistar-esp",
            "Etisalat": "etisalat-are",
            "Singtel": "singtel-sgp",
        },
    )
    return {
        "operators": operators,
        "agreements": agreements,
        "pgw_sites": pgw_sites,
        "factory": factory,
        "cities": cities,
    }
