"""Reusable mini-world builder for unit tests.

A reduced ecosystem with one IHBO corridor (Play Poland -> Spain via
Packet Host Amsterdam), one HR corridor (Singtel -> UAE), and one native
operator (dtac Thailand). Unit tests across packages share it; the full
calibrated world lives in ``repro.worlds``.

``build_mini_testbed`` layers a complete AmiGo testbed on top — servers,
resolvers, CDNs and three country deployments — so chaos/property tests
can run whole (tiny) campaigns without the calibrated world's cost.
"""

import random

from repro.cellular import (
    AgreementRegistry,
    IMSIRange,
    MobileOperator,
    OperatorRegistry,
    PGWSite,
    PLMN,
    PGWSelection,
    RoamingAgreement,
    RoamingArchitecture,
    SessionFactory,
)
from repro.geo import default_city_registry
from repro.net import CarrierGradeNAT, LatencyModel


def build_mini_world():
    """Construct the shared mini world; returns a dict of its parts."""
    cities = default_city_registry()
    operators = OperatorRegistry()
    play = MobileOperator(name="Play", country_iso3="POL", plmn=PLMN("260", "06"), asn=12912,
                          home_city=cities.get("Warsaw", "POL"))
    play.rent_range("Airalo", IMSIRange(prefix="2600677", label="airalo"))
    singtel = MobileOperator(
        name="Singtel", country_iso3="SGP", plmn=PLMN("525", "01"), asn=45143,
        core_hop_depths=(8,), home_city=cities.get("Singapore", "SGP"),
    )
    singtel.rent_range("Airalo", IMSIRange(prefix="5250144", label="airalo"))
    movistar = MobileOperator(
        name="Movistar", country_iso3="ESP", plmn=PLMN("214", "07"), asn=3352
    )
    etisalat = MobileOperator(
        name="Etisalat", country_iso3="ARE", plmn=PLMN("424", "02"), asn=5384
    )
    dtac = MobileOperator(
        name="dtac", country_iso3="THA", plmn=PLMN("520", "05"), asn=9587,
        core_hop_depths=(4, 5, 6, 7, 8, 9, 10),
        home_city=cities.get("Bangkok", "THA"),
    )
    dtac.rent_range("Airalo", IMSIRange(prefix="5200533", label="airalo"))
    for op in (play, singtel, movistar, etisalat, dtac):
        operators.add(op)

    pgw_sites = {
        "packet-host-ams": PGWSite(
            site_id="packet-host-ams",
            provider_org="Packet Host",
            provider_asn=54825,
            city=cities.get("Amsterdam", "NLD"),
            cgnat=CarrierGradeNAT(
                [f"198.18.0.{i}" for i in range(1, 5)], name="ph-ams"
            ),
            private_hop_depths=(6, 7),
        ),
        "singtel-sgp": PGWSite(
            site_id="singtel-sgp",
            provider_org="Singtel",
            provider_asn=45143,
            city=cities.get("Singapore", "SGP"),
            cgnat=CarrierGradeNAT(
                [f"198.18.1.{i}" for i in range(1, 5)], name="singtel"
            ),
            private_hop_depths=(8,),
        ),
        "dtac-tha": PGWSite(
            site_id="dtac-tha",
            provider_org="dtac",
            provider_asn=9587,
            city=cities.get("Bangkok", "THA"),
            cgnat=CarrierGradeNAT(
                [f"198.18.2.{i}" for i in range(1, 16)], name="dtac"
            ),
            private_hop_depths=(4, 5, 6, 7, 8, 9, 10),
        ),
        "movistar-esp": PGWSite(
            site_id="movistar-esp",
            provider_org="Movistar",
            provider_asn=3352,
            city=cities.get("Madrid", "ESP"),
            cgnat=CarrierGradeNAT(
                [f"198.18.3.{i}" for i in range(1, 9)], name="movistar"
            ),
            private_hop_depths=(4, 5),
        ),
        "etisalat-are": PGWSite(
            site_id="etisalat-are",
            provider_org="Etisalat",
            provider_asn=5384,
            city=cities.get("Abu Dhabi", "ARE"),
            cgnat=CarrierGradeNAT(
                [f"198.18.4.{i}" for i in range(1, 9)], name="etisalat"
            ),
            private_hop_depths=(4, 5),
        ),
    }

    agreements = AgreementRegistry(
        [
            RoamingAgreement(
                b_mno_name="Play",
                v_mno_name="Movistar",
                architecture=RoamingArchitecture.IHBO,
                pgw_site_ids=("packet-host-ams",),
                selection=PGWSelection.UNIFORM,
            ),
            RoamingAgreement(
                b_mno_name="Singtel",
                v_mno_name="Etisalat",
                architecture=RoamingArchitecture.HR,
                pgw_site_ids=("singtel-sgp",),
                tunnel_stretch=3.0,
                extra_rtt_ms=40.0,
            ),
        ]
    )

    factory = SessionFactory(
        operators=operators,
        agreements=agreements,
        pgw_sites=pgw_sites,
        latency=LatencyModel(),
        native_site_ids={
            "dtac": "dtac-tha",
            "Movistar": "movistar-esp",
            "Etisalat": "etisalat-are",
            "Singtel": "singtel-sgp",
        },
    )
    return {
        "operators": operators,
        "agreements": agreements,
        "pgw_sites": pgw_sites,
        "factory": factory,
        "cities": cities,
    }


def build_mini_testbed():
    """A full AmiGo testbed over the mini world; returns a dict of parts.

    Mirrors the fixture stack in ``tests/measure/conftest.py`` but as a
    plain function, so hypothesis-driven tests can build testbeds inside
    a property without touching pytest fixtures.
    """
    from repro.cellular import BandwidthPolicy, RSPServer, issue_physical_sim
    from repro.geo import GeoPoint
    from repro.measure.amigo import CountryDeployment, TestbedResources
    from repro.measure.traceroute import TracerouteEngine
    from repro.net import ASTopology, GeoIPDatabase
    from repro.net.addressbook import ASAddressBook
    from repro.net.ipv4 import parse_ip
    from repro.services import (
        AdaptiveBitratePlayer,
        CDNProvider,
        DNSService,
        ServerSite,
        ServiceFabric,
        ServiceProvider,
        SpeedtestFleet,
        SpeedtestServer,
    )

    world = build_mini_world()
    cities = world["cities"]

    def site(name, iso3, ip):
        return ServerSite(city=cities.get(name, iso3), ip=parse_ip(ip))

    geoip = GeoIPDatabase()
    for prefix, (asn, iso3, city) in {
        "198.18.0.0/24": (54825, "NLD", "Amsterdam"),
        "198.18.1.0/24": (45143, "SGP", "Singapore"),
        "198.18.2.0/24": (9587, "THA", "Bangkok"),
        "198.18.3.0/24": (3352, "ESP", "Madrid"),
        "198.18.4.0/24": (5384, "ARE", "Abu Dhabi"),
    }.items():
        geoip.register(prefix, asn, iso3, city, cities.get(city, iso3).location)
    geoip.register("192.0.2.0/24", 15169, "USA", "Mountain View",
                   GeoPoint(37.39, -122.08))

    addressbook = ASAddressBook(geoip)
    addressbook.register(3356, "198.19.0.0/24", "USA", "Denver",
                         GeoPoint(39.74, -104.99))
    addressbook.register(15169, "198.19.1.0/24", "USA", "Mountain View",
                         GeoPoint(37.39, -122.08))

    topology = ASTopology()
    for asn in (54825, 45143, 9587, 3352, 5384, 15169, 3356):
        topology.add_as(asn)
    for customer in (54825, 45143, 9587, 3352, 5384, 15169):
        topology.add_transit(customer=customer, provider=3356)
    topology.add_peering(54825, 15169)
    fabric = ServiceFabric(latency=LatencyModel(), topology=topology)

    for name, (nd, nu, rd, ru) in {
        "Movistar": (60.0, 20.0, 11.0, 6.0),
        "Etisalat": (90.0, 30.0, 8.0, 5.0),
        "dtac": (35.0, 15.0, 20.0, 10.0),
        "Play": (50.0, 20.0, 12.0, 6.0),
        "Singtel": (120.0, 40.0, 10.0, 6.0),
    }.items():
        world["operators"].get(name).bandwidth = BandwidthPolicy(nd, nu, rd, ru)

    google = ServiceProvider(
        name="Google", asn=15169,
        edges=[site("Amsterdam", "NLD", "192.0.2.1"),
               site("Singapore", "SGP", "192.0.2.2"),
               site("Madrid", "ESP", "192.0.2.3"),
               site("Bangkok", "THA", "192.0.2.4")],
    )
    dns_services = {
        "Google DNS": DNSService(
            name="Google DNS", anycast=True, supports_doh=True,
            anycast_miss_rate=0.0,
            sites=[site("Amsterdam", "NLD", "192.0.2.10"),
                   site("Singapore", "SGP", "192.0.2.11")],
        ),
        "Singtel": DNSService(name="Singtel",
                              sites=[site("Singapore", "SGP", "192.0.2.12")]),
        "dtac": DNSService(name="dtac",
                           sites=[site("Bangkok", "THA", "192.0.2.13")]),
        "Movistar": DNSService(name="Movistar",
                               sites=[site("Madrid", "ESP", "192.0.2.14")]),
        "Etisalat": DNSService(name="Etisalat",
                               sites=[site("Abu Dhabi", "ARE", "192.0.2.15")]),
    }
    cdns = {
        "Cloudflare": CDNProvider(
            name="Cloudflare",
            edges=[site("Amsterdam", "NLD", "192.0.2.20"),
                   site("Singapore", "SGP", "192.0.2.21"),
                   site("Bangkok", "THA", "192.0.2.22"),
                   site("Madrid", "ESP", "192.0.2.23")],
            origin=site("San Jose", "USA", "192.0.2.24"),
        ),
    }
    ookla = SpeedtestFleet(
        name="Ookla",
        servers=[SpeedtestServer(site("Amsterdam", "NLD", "192.0.2.30")),
                 SpeedtestServer(site("Singapore", "SGP", "192.0.2.31")),
                 SpeedtestServer(site("Bangkok", "THA", "192.0.2.32")),
                 SpeedtestServer(site("Madrid", "ESP", "192.0.2.33")),
                 SpeedtestServer(site("Abu Dhabi", "ARE", "192.0.2.34"))],
    )
    resources = TestbedResources(
        fabric=fabric,
        geoip=geoip,
        traceroute_engine=TracerouteEngine(fabric=fabric, addressbook=addressbook),
        operators=world["operators"],
        ookla=ookla,
        cdns=cdns,
        dns_services=dns_services,
        sp_targets={"Google": google},
        player=AdaptiveBitratePlayer(),
    )

    rsp = RSPServer("Airalo")
    sim_rng = random.Random("worldkit:testbed-sims")
    deployments = [
        CountryDeployment(
            country_iso3="ESP", city=cities.get("Madrid", "ESP"),
            physical_sim=issue_physical_sim(world["operators"].get("Movistar"), sim_rng),
            esim=rsp.issue(world["operators"].get("Play"), "ESP", sim_rng),
            v_mno_physical="Movistar", v_mno_esim="Movistar", duration_days=4,
        ),
        CountryDeployment(
            country_iso3="ARE", city=cities.get("Abu Dhabi", "ARE"),
            physical_sim=issue_physical_sim(world["operators"].get("Etisalat"), sim_rng),
            esim=rsp.issue(world["operators"].get("Singtel"), "ARE", sim_rng),
            v_mno_physical="Etisalat", v_mno_esim="Etisalat", duration_days=3,
        ),
        CountryDeployment(
            country_iso3="THA", city=cities.get("Bangkok", "THA"),
            physical_sim=issue_physical_sim(world["operators"].get("dtac"), sim_rng),
            esim=rsp.issue(world["operators"].get("dtac"), "THA", sim_rng),
            v_mno_physical="dtac", v_mno_esim="dtac", duration_days=3,
        ),
    ]
    plans = {
        "ESP": {"speedtest": (4, 4), "mtr:Google": (2, 2), "dns": (2, 2),
                "cdn:Cloudflare": (2, 2), "video": (1, 1)},
        "ARE": {"speedtest": (3, 3), "mtr:Google": (2, 2), "dns": (1, 1)},
        "THA": {"speedtest": (3, 3), "dns": (2, 2), "video": (1, 1)},
    }
    return {
        **world,
        "resources": resources,
        "deployments": deployments,
        "plans": plans,
    }


def run_mini_campaign(chaos=None, seed=7):
    """Run the mini testbed's whole campaign; returns the dataset."""
    from repro.measure.amigo import AmigoControlServer

    testbed = build_mini_testbed()
    server = AmigoControlServer(testbed["resources"], testbed["factory"], chaos=chaos)
    for deployment in testbed["deployments"]:
        server.register_endpoint(
            deployment, random.Random(f"{seed}:{deployment.country_iso3}")
        )
    return server.run_campaign(testbed["plans"])
