"""Tests for the columnar subscriber population (repro.worlds.population)."""

import pytest

from repro.cellular.esim import SIMKind
from repro.core import columns as columns_mod
from repro.worlds import paperdata
from repro.worlds.airalo import scaled_count
from repro.worlds.population import (
    BASE_ESIM_SUBSCRIBERS,
    BASE_LOCAL_SUBSCRIBERS,
    Population,
    attach_population,
    build_population,
    build_population_objects,
    estimate_snapshot_bytes,
)

SEED = 2024


@pytest.fixture(scope="module")
def population():
    return build_population(SEED, 0.2)


class TestScaledCount:
    def test_shrink_keeps_historic_semantics(self):
        assert scaled_count(100, 0.15) == 15
        assert scaled_count(3, 0.15) == 1  # floor of one survivor
        assert scaled_count(0, 0.15) == 0  # nothing to sample from

    def test_growth_is_proportional(self):
        assert scaled_count(750, 50) == 37500
        assert scaled_count(500, 100) == 50000
        assert scaled_count(1, 2.5) == 2  # banker's rounding, frozen by golden

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_count(10, 0)
        with pytest.raises(ValueError):
            scaled_count(10, -1.0)


class TestBuild:
    def test_row_count_scales(self, population):
        per_offering = scaled_count(BASE_ESIM_SUBSCRIBERS, 0.2) + scaled_count(
            BASE_LOCAL_SUBSCRIBERS, 0.2
        )
        assert len(population) == per_offering * len(paperdata.ESIM_OFFERINGS)

    def test_identity_metadata(self, population):
        assert population.seed == SEED
        assert population.scale == 0.2

    def test_same_seed_same_bytes(self, population):
        assert build_population(SEED, 0.2).to_bytes() == population.to_bytes()

    def test_different_seed_different_bytes(self, population):
        assert build_population(SEED + 1, 0.2).to_bytes() != population.to_bytes()

    def test_imsis_unique_and_valid(self, population):
        imsis = [v.profile.imsi.value for v in population]
        assert len(set(imsis)) == len(imsis)
        assert all(len(value) == 15 and value.isdigit() for value in imsis)

    def test_esim_imsis_stay_clear_of_campaign_cursors(self, population):
        """Population eSIMs issue from the top of each rented range; the
        RSP provisioning campaigns issue from index 0 upward. At any
        plausible scale the two must never meet."""
        prefixes = {
            spec.airalo_imsi_prefix for spec in paperdata.B_MNO_SPECS
        }
        for view in population:
            if not view.profile.is_esim:
                continue
            value = view.profile.imsi.value
            prefix, suffix = value[:8], value[8:]
            assert prefix in prefixes
            assert int(suffix) > 10 ** 6, "population must use the top of range"

    def test_addresses_unique_within_cgnat_pool(self, population):
        import ipaddress

        addresses = {view.address for view in population}
        assert len(addresses) == len(population)
        network = ipaddress.ip_network("100.64.0.0/10")
        for address in list(addresses)[:100]:
            assert ipaddress.ip_address(address) in network

    def test_iccids_luhn_valid(self, population):
        from repro.cellular.identifiers import luhn_check_digit

        for index in range(0, len(population), 997):
            iccid = population.subscriber(index).profile.iccid
            assert len(iccid) == 19
            assert iccid.startswith("8901")
            assert int(iccid[-1]) == luhn_check_digit(iccid[:-1])

    def test_stats_shape(self, population):
        stats = population.stats()
        assert stats["subscribers"] == len(population)
        assert stats["esims"] + stats["physical_sims"] == stats["subscribers"]
        assert 0 < stats["attached"] < stats["subscribers"]
        assert set(stats["countries"]) == {
            o.country_iso3 for o in paperdata.ESIM_OFFERINGS
        }
        assert stats["total_bytes"] == population.store.nbytes
        assert stats["monthly_traffic_gb"] > 0

    def test_estimate_tracks_actual_payload(self, population):
        estimated = estimate_snapshot_bytes(0.2)
        actual = sum(population.store.column_nbytes().values())
        assert estimated == actual


class TestViews:
    def test_profile_view_speaks_simprofile_api(self, population):
        view = population.subscriber(0).profile
        assert view.kind in (SIMKind.ESIM, SIMKind.PHYSICAL)
        assert view.is_esim == (view.kind is SIMKind.ESIM)
        assert view.plan_country_iso3 == population.subscriber(0).country_iso3
        materialized = view.materialize()
        assert materialized.iccid == view.iccid
        assert materialized.imsi.value == view.imsi.value

    def test_out_of_range_subscriber(self, population):
        with pytest.raises(IndexError):
            population.subscriber(len(population))
        with pytest.raises(IndexError):
            population.subscriber(-1)

    def test_local_subscribers_use_retail_operator(self, population):
        by_country = {}
        for view in population:
            if view.profile.kind is SIMKind.PHYSICAL:
                by_country.setdefault(view.country_iso3, view)
        for iso3, operator in paperdata.PHYSICAL_SIM_OPERATORS.items():
            if iso3 in by_country:
                assert by_country[iso3].profile.issuer_mno_name == operator


class TestSnapshots:
    def test_save_load_equivalence(self, population, tmp_path):
        path = tmp_path / "population.cols"
        population.save(path)
        loaded = Population.load(path)
        assert len(loaded) == len(population)
        assert (
            loaded.subscriber(17).materialize()
            == population.subscriber(17).materialize()
        )
        loaded.close()

    def test_meta_kind_guard(self):
        store = columns_mod.ColumnStore(meta={"kind": "something-else"})
        with pytest.raises(ValueError):
            Population(store)

    def test_attach_lifecycle(self, population):
        published = columns_mod.publish(population.store)
        try:
            attached, _ = attach_population(published.descriptor)
            assert (
                attached.subscriber(3).materialize()
                == population.subscriber(3).materialize()
            )
            attached.close()
            attached.close()  # idempotent
        finally:
            published.close()


def test_scale_guard_capacity_error():
    """A scale that exhausts an IMSI range fails loudly, not silently."""
    with pytest.raises(ValueError):
        build_population(SEED, 10 ** 6)


def test_objects_builder_matches_columnar_counts():
    objects = build_population_objects(SEED, 0.1)
    columnar = build_population(SEED, 0.1)
    assert len(objects) == len(columnar)
    assert objects[0].profile.iccid == columnar.subscriber(0).profile.iccid
