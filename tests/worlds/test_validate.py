"""Tests for world integrity validation."""

import pytest

from repro.cellular import PGWSelection, RoamingAgreement, RoamingArchitecture
from repro.worlds import build_airalo_world
from repro.worlds.validate import validate_world


@pytest.fixture(scope="module")
def world():
    return build_airalo_world(seed=99)


def test_calibrated_world_is_healthy(world):
    assert validate_world(world) == []


def test_detects_missing_agreement():
    world = build_airalo_world(seed=101)
    # Sabotage: drop one roaming agreement.
    removed = world.agreements._by_key.pop(("Play", "Movistar"))  # noqa: SLF001
    try:
        problems = validate_world(world)
        assert any("Play" in p and "Movistar" in p for p in problems)
    finally:
        world.agreements._by_key[removed.key] = removed  # noqa: SLF001


def test_detects_unknown_pgw_site():
    world = build_airalo_world(seed=102)
    original = world.agreements.get("Polkomtel", "SFR")
    broken = RoamingAgreement(
        b_mno_name="Polkomtel",
        v_mno_name="SFR",
        architecture=RoamingArchitecture.IHBO,
        pgw_site_ids=("no-such-site",),
        selection=PGWSelection.STATIC_BMNO,
    )
    world.agreements._by_key[original.key] = broken  # noqa: SLF001
    try:
        problems = validate_world(world)
        assert any("no-such-site" in p for p in problems)
    finally:
        world.agreements._by_key[original.key] = original  # noqa: SLF001


def test_detects_missing_dns_service():
    world = build_airalo_world(seed=103)
    removed = world.resources.dns_services.pop("Google DNS")
    try:
        problems = validate_world(world)
        assert any("Google DNS" in p for p in problems)
    finally:
        world.resources.dns_services["Google DNS"] = removed


def test_detects_missing_policy():
    world = build_airalo_world(seed=104)
    operator = world.operators.get("Jazz")
    saved = operator.bandwidth
    operator.bandwidth = None
    try:
        problems = validate_world(world)
        assert any("Jazz" in p and "policy" in p for p in problems)
    finally:
        operator.bandwidth = saved
