"""Tests for the emnify methodology-validation world (Section 4.3.1)."""

import random

import pytest

from repro.cellular.radio import RadioAccessTechnology, RadioConditions
from repro.cellular.roaming import RoamingArchitecture
from repro.measure.traceroute import postprocess
from repro.worlds import build_emnify_world
from repro.worlds import paperdata as pd


@pytest.fixture(scope="module")
def world():
    return build_emnify_world()


def test_session_is_ihbo_via_amazon_dublin(world):
    rng = random.Random(1)
    _, session = world.provision_session(rng)
    assert session.architecture is RoamingArchitecture.IHBO
    assert session.pgw_site.provider_asn == pd.ASN_AMAZON
    assert session.breakout_country == "IRL"
    assert session.v_mno_name == "O2 UK"


def test_methodology_identifies_amazon_dublin(world):
    """The ground-truth check: traceroutes geolocate the PGW to AS16509/Dublin."""
    rng = random.Random(2)
    esim, session = world.provision_session(rng)
    conditions = RadioConditions(RadioAccessTechnology.NR, 11, -82.0, 14.0)
    identified = set()
    for target in ("Google", "YouTube", "Facebook"):
        for _ in range(20):
            result = world.engine.trace(
                session, world.sp_targets[target], conditions, rng
            )
            record = postprocess(result, session, esim, conditions, world.geoip)
            if not record.pgw_verified:
                continue  # the paper discards runs whose CG-NAT hop timed out
            geo = world.geoip.lookup(record.pgw_ip)
            identified.add((geo.asn, geo.city))
    assert identified == {(pd.ASN_AMAZON, "Dublin")}


def test_emnify_esims_come_from_rented_range(world):
    rng = random.Random(3)
    esim, _ = world.provision_session(rng)
    assert esim.provider == "emnify"
    assert esim.imsi.value.startswith("9014377")
