"""Integration tests for the calibrated Airalo world."""

import random
import statistics

import pytest

from repro.analysis import classify_session_context
from repro.cellular import SIMKind, UserEquipment
from repro.cellular.roaming import RoamingArchitecture
from repro.worlds import build_airalo_world, paperdata as pd


@pytest.fixture(scope="module")
def world():
    return build_airalo_world(seed=7)


@pytest.fixture(scope="module")
def device_dataset(world):
    return world.run_device_campaign(scale=0.12)


def _attach(world, country, rng):
    spec = world.offering(country)
    esim = world.sell_esim(country, rng)
    ue = UserEquipment.provision(
        "Samsung S21+ 5G", world.cities.get(spec.user_city, country), rng
    )
    ue.install_sim(esim)
    session = ue.switch_to(0, spec.v_mno, world.factory, rng)
    return esim, session


def test_world_serves_24_countries(world):
    assert len(world.airalo.served_countries()) == 24
    assert world.airalo.roaming_share() == pytest.approx(21 / 24)


def test_six_b_mnos_provision_roaming_esims(world):
    grouped = world.airalo.offerings_by_b_mno()
    roaming_issuers = {
        b for b, offers in grouped.items()
        if any(o.expected_architecture is not RoamingArchitecture.NATIVE for o in offers)
    }
    assert roaming_issuers == {
        "Singtel", "Play", "Telna Mobile", "Telecom Italia", "Orange", "Polkomtel"
    }


@pytest.mark.parametrize("country,expected", [
    ("PAK", RoamingArchitecture.HR),
    ("ARE", RoamingArchitecture.HR),
    ("ESP", RoamingArchitecture.IHBO),
    ("GEO", RoamingArchitecture.IHBO),
    ("FRA", RoamingArchitecture.IHBO),
    ("MDA", RoamingArchitecture.IHBO),
    ("ITA", RoamingArchitecture.IHBO),
    ("KOR", RoamingArchitecture.NATIVE),
    ("THA", RoamingArchitecture.NATIVE),
    ("MDV", RoamingArchitecture.NATIVE),
])
def test_classifier_recovers_table2_architecture(world, country, expected):
    """The methodology (public IP ASN matching) must recover ground truth."""
    rng = random.Random(f"cls:{country}")
    esim, session = _attach(world, country, rng)
    from repro.cellular.radio import RadioAccessTechnology, RadioConditions
    from repro.measure.records import MeasurementContext

    conditions = RadioConditions(RadioAccessTechnology.NR, 10, -85.0, 12.0)
    context = MeasurementContext.from_session(session, esim, conditions)
    inferred = classify_session_context(context, world.geoip, world.operators)
    assert inferred is expected
    assert session.architecture is expected


def test_no_lbo_anywhere(world):
    for country in world.airalo.served_countries():
        rng = random.Random(f"lbo:{country}")
        _, session = _attach(world, country, rng)
        assert session.architecture is not RoamingArchitecture.LBO


def test_polkomtel_breaks_out_in_virginia(world):
    """France/Uzbekistan eSIMs cross the Atlantic (Figure 4's headline)."""
    for country in ("FRA", "UZB"):
        rng = random.Random(f"pol:{country}")
        _, session = _attach(world, country, rng)
        assert session.pgw_site.site_id == "packet-host-ash"
        assert session.breakout_country == "USA"
        # Farther than the b-MNO's home (Warsaw) — the suboptimality.
        warsaw = world.cities.get("Warsaw", "POL").location
        assert session.tunnel.distance_km > session.sgw.location.distance_km(warsaw)


def test_play_esims_alternate_pgw_providers(world):
    rng = random.Random("alt")
    providers = set()
    for _ in range(30):
        _, session = _attach(world, "ESP", rng)
        providers.add(session.pgw_site.provider_org)
    assert providers == {"Packet Host", "OVH SAS"}


def test_saudi_uses_packet_host_only(world):
    rng = random.Random("sau")
    for _ in range(15):
        _, session = _attach(world, "SAU", rng)
        assert session.pgw_site.provider_org == "Packet Host"


def test_ovh_partitions_by_b_mno(world):
    """Qatar (Telna) pins one OVH PGW IP; Play spreads over the rest."""
    rng = random.Random("ovh")
    telna_ips, play_ips = set(), set()
    for _ in range(60):
        _, session = _attach(world, "QAT", rng)
        if session.pgw_site.site_id == "ovh-lille":
            telna_ips.add(str(session.public_ip))
        _, session = _attach(world, "DEU", rng)
        if session.pgw_site.site_id == "ovh-lille":
            play_ips.add(str(session.public_ip))
    assert len(telna_ips) == 1
    assert len(play_ips) > 1
    assert not telna_ips & play_ips


def test_singtel_hr_uses_named_prefix(world):
    rng = random.Random("sg")
    _, session = _attach(world, "PAK", rng)
    assert str(session.public_ip).startswith("202.166.126.")
    record = world.geoip.lookup(session.public_ip)
    assert record.asn == pd.ASN_SINGTEL
    assert record.country_iso3 == "SGP"


def test_half_of_ihbo_breaks_out_farther_than_b_mno(world):
    """Conclusion: 50% of IHBO eSIMs break out farther than the b-MNO."""
    farther = 0
    total = 0
    for spec in pd.ESIM_OFFERINGS:
        if spec.architecture != "IHBO":
            continue
        rng = random.Random(f"far:{spec.country_iso3}")
        _, session = _attach(world, spec.country_iso3, rng)
        b_home = world.operators.get(spec.b_mno).home_city
        assert b_home is not None
        total += 1
        if session.tunnel.distance_km > session.sgw.location.distance_km(b_home.location):
            farther += 1
    assert total == 16
    # The paper reports 8/16; geometry gives the same order.
    assert 5 <= farther <= 11


def test_device_campaign_covers_10_countries(device_dataset):
    assert device_dataset.countries() == sorted(
        ["GEO", "DEU", "KOR", "PAK", "QAT", "SAU", "ESP", "THA", "ARE", "GBR"]
    )


def test_device_campaign_has_all_record_types(device_dataset):
    assert device_dataset.speedtests
    assert device_dataset.traceroutes
    assert device_dataset.cdn_fetches
    assert device_dataset.dns_probes
    assert device_dataset.video_probes


def test_web_campaign_matches_table3(world):
    dataset = world.run_web_campaign()
    per_country = {}
    for record in dataset.web_measurements:
        per_country.setdefault(record.context.country_iso3, 0)
        per_country[record.context.country_iso3] += 1
    expected = {e.country_iso3: e.measurements for e in pd.WEB_CAMPAIGN}
    assert per_country == expected


def test_campaigns_deterministic(world):
    a = world.run_device_campaign(scale=0.03)
    b = world.run_device_campaign(scale=0.03)
    assert a.total_records() == b.total_records()
    assert [r.latency_ms for r in a.speedtests] == [r.latency_ms for r in b.speedtests]


def test_hr_latency_dominates(device_dataset):
    pak_esim = device_dataset.speedtests_where(country="PAK", sim_kind=SIMKind.ESIM)
    pak_sim = device_dataset.speedtests_where(country="PAK", sim_kind=SIMKind.PHYSICAL)
    assert statistics.median(r.latency_ms for r in pak_esim) > 4 * statistics.median(
        r.latency_ms for r in pak_sim
    )


def test_korea_esim_faster_than_mvno_sim(device_dataset):
    esim = device_dataset.speedtests_where(country="KOR", sim_kind=SIMKind.ESIM, cqi_filtered=True)
    sim = device_dataset.speedtests_where(country="KOR", sim_kind=SIMKind.PHYSICAL, cqi_filtered=True)
    assert statistics.fmean(r.download_mbps for r in esim) > statistics.fmean(
        r.download_mbps for r in sim
    )


def test_ipx_reachability_validated(world):
    # Every IHBO site is reachable from its b-MNO through the mesh.
    assert world.ipx.can_reach("Play", "packet-host-ams")
    assert world.ipx.can_reach("Telna Mobile", "ovh-lille")
    assert world.ipx.can_reach("Polkomtel", "packet-host-ash")


def test_scale_validation(world):
    with pytest.raises(ValueError):
        world.run_device_campaign(scale=0.0)
