"""Seed invariance: structure is fixed, observations vary."""

import pytest

from repro.worlds import build_airalo_world


@pytest.fixture(scope="module")
def worlds():
    return build_airalo_world(seed=1), build_airalo_world(seed=2)


def test_topology_is_seed_independent(worlds):
    a, b = worlds
    assert a.airalo.served_countries() == b.airalo.served_countries()
    assert sorted(a.pgw_sites) == sorted(b.pgw_sites)
    assert len(a.agreements) == len(b.agreements)
    # CG-NAT pools are allocated identically (allocation order is fixed).
    for site_id in a.pgw_sites:
        assert a.pgw_sites[site_id].cgnat.pool == b.pgw_sites[site_id].cgnat.pool


def test_observations_differ_across_seeds(worlds):
    a, b = worlds
    da = a.run_device_campaign(scale=0.03)
    db = b.run_device_campaign(scale=0.03)
    assert da.total_records() == db.total_records()  # same plan
    la = [r.latency_ms for r in da.speedtests]
    lb = [r.latency_ms for r in db.speedtests]
    assert la != lb  # different noise


def test_same_seed_identical(worlds):
    a, _ = worlds
    c = build_airalo_world(seed=1)
    da = a.run_device_campaign(scale=0.03)
    dc = c.run_device_campaign(scale=0.03)
    assert [r.latency_ms for r in da.speedtests] == [r.latency_ms for r in dc.speedtests]
