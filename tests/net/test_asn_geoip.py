"""Tests for the AS registry and GeoIP database."""

import pytest

from repro.geo import GeoPoint
from repro.net import ASKind, ASRegistry, AutonomousSystem, GeoIPDatabase


def _mk_registry():
    return ASRegistry(
        [
            AutonomousSystem(45143, "Singtel", ASKind.MNO, "SGP"),
            AutonomousSystem(54825, "Packet Host", ASKind.HOSTING, "USA"),
            AutonomousSystem(16276, "OVH SAS", ASKind.HOSTING, "FRA"),
            AutonomousSystem(15169, "Google", ASKind.CONTENT, "USA"),
        ]
    )


def test_lookup_by_asn_and_org():
    reg = _mk_registry()
    assert reg.get(45143).org == "Singtel"
    assert reg.by_org("Packet Host").asn == 54825


def test_str_formats_like_whois():
    asys = AutonomousSystem(54825, "Packet Host", ASKind.HOSTING, "USA")
    assert str(asys) == "AS54825 (Packet Host)"


def test_by_kind_sorted():
    reg = _mk_registry()
    hosting = reg.by_kind(ASKind.HOSTING)
    assert [a.asn for a in hosting] == [16276, 54825]


def test_duplicate_asn_rejected():
    reg = _mk_registry()
    with pytest.raises(ValueError):
        reg.add(AutonomousSystem(45143, "Other", ASKind.MNO, "SGP"))


def test_unknown_asn_raises():
    reg = _mk_registry()
    with pytest.raises(KeyError):
        reg.get(99999)


def test_invalid_asn_rejected():
    with pytest.raises(ValueError):
        AutonomousSystem(0, "Zero", ASKind.OTHER, "USA")
    with pytest.raises(ValueError):
        AutonomousSystem(2**32, "TooBig", ASKind.OTHER, "USA")


def test_contains_and_len():
    reg = _mk_registry()
    assert 45143 in reg
    assert 99999 not in reg
    assert len(reg) == 4


def test_geoip_longest_prefix_match():
    db = GeoIPDatabase()
    db.register("203.0.0.0/16", asn=1, country_iso3="usa", city="Chicago", location=GeoPoint(41.88, -87.63))
    db.register("203.0.113.0/24", asn=2, country_iso3="NLD", city="Amsterdam", location=GeoPoint(52.37, 4.90))
    # The /24 wins for addresses inside it.
    assert db.lookup("203.0.113.5").asn == 2
    assert db.lookup("203.0.113.5").country_iso3 == "NLD"
    # Elsewhere in the /16 falls back to the covering record.
    assert db.lookup("203.0.5.1").asn == 1
    assert db.lookup("203.0.5.1").country_iso3 == "USA"


def test_geoip_unknown_address():
    db = GeoIPDatabase()
    with pytest.raises(KeyError):
        db.lookup("8.8.8.8")
    assert db.lookup_opt("8.8.8.8") is None


def test_geoip_duplicate_prefix_rejected():
    db = GeoIPDatabase()
    db.register("198.51.100.0/24", 10, "FRA", "Lille", GeoPoint(50.63, 3.07))
    with pytest.raises(ValueError):
        db.register("198.51.100.0/24", 11, "FRA", "Lille", GeoPoint(50.63, 3.07))


def test_geoip_asn_of():
    db = GeoIPDatabase()
    db.register("202.166.126.0/24", 45143, "SGP", "Singapore", GeoPoint(1.35, 103.82))
    assert db.asn_of("202.166.126.10") == 45143


def test_geoip_prefixes_most_specific_first():
    db = GeoIPDatabase()
    db.register("10.0.0.0/8", 1, "USA", "X", GeoPoint(0, 0))
    db.register("10.1.0.0/16", 2, "USA", "Y", GeoPoint(0, 0))
    lens = [r.network.prefixlen for r in db.prefixes()]
    assert lens == sorted(lens, reverse=True)
