"""Tests for IPv4 allocation utilities."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.net import AddressAllocator, PrefixPool, is_private_ip, parse_ip


def test_parse_ip_roundtrip():
    ip = parse_ip("203.0.113.7")
    assert str(ip) == "203.0.113.7"
    assert parse_ip(ip) is ip


def test_is_private_rfc1918():
    assert is_private_ip("10.1.2.3")
    assert is_private_ip("172.16.0.1")
    assert is_private_ip("192.168.1.1")


def test_is_private_cgn_space():
    # 100.64/10 shared address space is used between PGW and CG-NAT.
    assert is_private_ip("100.64.0.1")
    assert is_private_ip("100.127.255.254")
    assert not is_private_ip("100.128.0.1")


def test_is_private_public_addresses():
    assert not is_private_ip("8.8.8.8")
    assert not is_private_ip("203.0.113.1")


def test_prefix_pool_allocates_disjoint_consecutive():
    pool = PrefixPool("198.18.0.0/16", new_prefix=24)
    a = pool.allocate()
    b = pool.allocate()
    assert a == ipaddress.ip_network("198.18.0.0/24")
    assert b == ipaddress.ip_network("198.18.1.0/24")
    assert not a.overlaps(b)
    assert pool.allocated == [a, b]


def test_prefix_pool_exhaustion():
    pool = PrefixPool("198.18.0.0/23", new_prefix=24)
    pool.allocate()
    pool.allocate()
    with pytest.raises(RuntimeError):
        pool.allocate()


def test_prefix_pool_rejects_oversized_request():
    with pytest.raises(ValueError):
        PrefixPool("198.18.0.0/24", new_prefix=16)


def test_address_allocator_sequential_and_labelled():
    alloc = AddressAllocator("203.0.113.0/29")
    first = alloc.allocate("pgw-1")
    second = alloc.allocate("pgw-2")
    assert str(first) == "203.0.113.1"
    assert str(second) == "203.0.113.2"
    assert alloc.owner_of(first) == "pgw-1"
    assert alloc.owner_of("203.0.113.2") == "pgw-2"


def test_address_allocator_exhaustion():
    alloc = AddressAllocator("203.0.113.0/30")  # 2 usable hosts
    alloc.allocate()
    alloc.allocate()
    with pytest.raises(RuntimeError):
        alloc.allocate()


def test_owner_of_unknown_raises():
    alloc = AddressAllocator("203.0.113.0/29")
    with pytest.raises(KeyError):
        alloc.owner_of("203.0.113.1")


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_private_predicate_matches_explicit_ranges(raw):
    ip = ipaddress.IPv4Address(raw)
    ranges = [
        "10.0.0.0/8",
        "172.16.0.0/12",
        "192.168.0.0/16",
        "100.64.0.0/10",
        "127.0.0.0/8",
        "169.254.0.0/16",
    ]
    expected = any(ip in ipaddress.ip_network(net) for net in ranges)
    assert is_private_ip(ip) == expected


def test_documentation_ranges_count_as_public():
    # TEST-NET and benchmark space double as simulated public space.
    assert not is_private_ip("198.18.0.1")
    assert not is_private_ip("198.51.100.1")
    assert not is_private_ip("192.0.2.1")


@given(st.integers(min_value=1, max_value=32))
def test_allocations_always_within_supernet(count):
    pool = PrefixPool("198.18.0.0/18", new_prefix=24)
    nets = [pool.allocate() for _ in range(count)]
    supernet = ipaddress.ip_network("198.18.0.0/18")
    assert all(net.subnet_of(supernet) for net in nets)
    # pairwise disjoint
    for i, a in enumerate(nets):
        for b in nets[i + 1:]:
            assert not a.overlaps(b)
