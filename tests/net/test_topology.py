"""Tests for valley-free AS routing."""

import pytest

from repro.net import ASTopology, NoRouteError


def _chain_topology():
    """customer 1 -> provider 2 -> provider 3; 3 peers with 4; 4 -> customer 5."""
    topo = ASTopology()
    for asn in (1, 2, 3, 4, 5):
        topo.add_as(asn)
    topo.add_transit(customer=1, provider=2)
    topo.add_transit(customer=2, provider=3)
    topo.add_peering(3, 4)
    topo.add_transit(customer=5, provider=4)
    return topo


def test_same_as_path():
    topo = _chain_topology()
    assert topo.as_path(1, 1) == [1]


def test_up_peer_down_path():
    topo = _chain_topology()
    assert topo.as_path(1, 5) == [1, 2, 3, 4, 5]


def test_pure_uphill_path():
    topo = _chain_topology()
    assert topo.as_path(1, 3) == [1, 2, 3]


def test_pure_downhill_path():
    topo = _chain_topology()
    assert topo.as_path(3, 1) == [3, 2, 1]


def test_no_valley_through_customer():
    # 1 and 3 are both customers of 2; 1 -> 2 -> 3 is valley-free? No:
    # traffic goes up to the shared provider then down — that IS allowed.
    topo = ASTopology()
    for asn in (1, 2, 3):
        topo.add_as(asn)
    topo.add_transit(customer=1, provider=2)
    topo.add_transit(customer=3, provider=2)
    assert topo.as_path(1, 3) == [1, 2, 3]


def test_valley_rejected():
    # 2 is a customer of both 1 and 3: 1 -> 2 -> 3 would be a valley.
    topo = ASTopology()
    for asn in (1, 2, 3):
        topo.add_as(asn)
    topo.add_transit(customer=2, provider=1)
    topo.add_transit(customer=2, provider=3)
    with pytest.raises(NoRouteError):
        topo.as_path(1, 3)


def test_two_peering_edges_rejected():
    # 1 -peer- 2 -peer- 3: crossing two peering links is not exportable.
    topo = ASTopology()
    for asn in (1, 2, 3):
        topo.add_as(asn)
    topo.add_peering(1, 2)
    topo.add_peering(2, 3)
    with pytest.raises(NoRouteError):
        topo.as_path(1, 3)


def test_customer_route_preferred_over_peer():
    # dst 9 reachable via customer 2 (longer) and via peer 3 (shorter):
    # BGP prefers the customer route despite extra length.
    topo = ASTopology()
    for asn in (1, 2, 3, 8, 9):
        topo.add_as(asn)
    topo.add_transit(customer=2, provider=1)   # 2 is 1's customer
    topo.add_transit(customer=8, provider=2)
    topo.add_transit(customer=9, provider=8)   # customer path 1-2-8-9
    topo.add_peering(1, 3)
    topo.add_transit(customer=9, provider=3)   # peer path 1-3-9 (shorter)
    assert topo.as_path(1, 9) == [1, 2, 8, 9]


def test_direct_peering_used_when_available():
    # A PGW provider peering directly with a content AS yields a 2-AS path
    # (the typical traceroute observation in Figure 6).
    topo = ASTopology()
    for asn in (54825, 15169, 3356):
        topo.add_as(asn)
    topo.add_transit(customer=54825, provider=3356)
    topo.add_transit(customer=15169, provider=3356)
    topo.add_peering(54825, 15169)
    assert topo.as_path(54825, 15169) == [54825, 15169]
    assert topo.has_direct_peering(54825, 15169)


def test_peer_preferred_over_provider():
    topo = ASTopology()
    for asn in (1, 2, 9):
        topo.add_as(asn)
    topo.add_transit(customer=1, provider=2)
    topo.add_transit(customer=9, provider=2)   # provider route 1-2-9
    topo.add_peering(1, 9)                     # peer route 1-9
    assert topo.as_path(1, 9) == [1, 9]


def test_unknown_as_raises_keyerror():
    topo = ASTopology()
    topo.add_as(1)
    with pytest.raises(KeyError):
        topo.as_path(1, 42)
    with pytest.raises(KeyError):
        topo.add_transit(customer=1, provider=42)


def test_neighbors_sorted_unique():
    topo = _chain_topology()
    assert topo.neighbors(3) == [2, 4]


def test_deterministic_tiebreak_lowest_asn():
    # Two equal-rank equal-length provider routes: lowest ASN wins.
    topo = ASTopology()
    for asn in (1, 5, 7, 9):
        topo.add_as(asn)
    topo.add_transit(customer=1, provider=5)
    topo.add_transit(customer=1, provider=7)
    topo.add_transit(customer=9, provider=5)
    topo.add_transit(customer=9, provider=7)
    assert topo.as_path(1, 9) == [1, 5, 9]
