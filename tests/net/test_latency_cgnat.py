"""Tests for the latency model and carrier-grade NAT."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.geo import GeoPoint
from repro.net import CarrierGradeNAT, LatencyModel, LatencyParams


def test_propagation_scales_with_distance():
    model = LatencyModel()
    assert model.propagation_rtt_ms(2000) == pytest.approx(
        2 * model.propagation_rtt_ms(1000), rel=0.05
    )


def test_fiber_constant_sanity():
    # 1000 km at stretch 1.0 should cost ~10 ms RTT.
    model = LatencyModel(LatencyParams(default_stretch=1.0))
    assert model.propagation_rtt_ms(1000) == pytest.approx(10.0, rel=0.01)


def test_min_rtt_floor():
    model = LatencyModel()
    assert model.propagation_rtt_ms(0.0) == model.params.min_rtt_ms


def test_hop_cost_added_both_directions():
    params = LatencyParams(per_hop_ms=0.5, default_stretch=1.0)
    model = LatencyModel(params)
    no_hops = model.propagation_rtt_ms(1000, hops=0)
    with_hops = model.propagation_rtt_ms(1000, hops=4)
    assert with_hops - no_hops == pytest.approx(4.0, abs=1e-9)


def test_rtt_between_points():
    model = LatencyModel(LatencyParams(default_stretch=1.0))
    madrid = GeoPoint(40.42, -3.70)
    lille = GeoPoint(50.63, 3.07)
    rtt = model.rtt_between(madrid, lille)
    # ~1200 km -> ~12 ms RTT at stretch 1.
    assert 10.0 < rtt < 14.0


def test_path_rtt_sums_segments():
    model = LatencyModel(LatencyParams(default_stretch=1.0, per_hop_ms=0.0))
    a, b, c = GeoPoint(0, 0), GeoPoint(0, 10), GeoPoint(0, 20)
    direct = model.rtt_between(a, c)
    detour = model.path_rtt_ms([a, b, c])
    assert detour == pytest.approx(direct, rel=0.01)


def test_path_requires_two_waypoints():
    model = LatencyModel()
    with pytest.raises(ValueError):
        model.path_rtt_ms([GeoPoint(0, 0)])


def test_invalid_inputs_rejected():
    model = LatencyModel()
    with pytest.raises(ValueError):
        model.propagation_rtt_ms(-1)
    with pytest.raises(ValueError):
        model.propagation_rtt_ms(10, stretch=0.5)
    with pytest.raises(ValueError):
        model.propagation_rtt_ms(10, hops=-1)
    with pytest.raises(ValueError):
        LatencyParams(default_stretch=0.9)
    with pytest.raises(ValueError):
        LatencyParams(jitter_sigma=-0.1)


def test_sampling_is_seed_deterministic():
    model = LatencyModel()
    a = model.sample_many(50.0, 10, random.Random(7))
    b = model.sample_many(50.0, 10, random.Random(7))
    assert a == b


def test_sampling_zero_sigma_is_exact():
    model = LatencyModel(LatencyParams(jitter_sigma=0.0))
    assert model.sample_rtt_ms(42.0, random.Random(1)) == 42.0


@given(st.floats(min_value=0.5, max_value=500.0), st.integers(min_value=0, max_value=2**31))
def test_samples_positive_and_near_base(base, seed):
    model = LatencyModel()
    sample = model.sample_rtt_ms(base, random.Random(seed))
    assert sample > 0
    # lognormal sigma=0.08: 6 sigma is a generous envelope
    assert 0.5 * base <= sample <= 2.0 * base or sample == model.params.min_rtt_ms


def test_cgnat_binding_is_stable():
    nat = CarrierGradeNAT(["198.51.100.1", "198.51.100.2", "198.51.100.3"])
    rng = random.Random(3)
    first = nat.bind("session-a", rng)
    again = nat.bind("session-a", rng)
    assert first == again
    assert nat.binding_of("session-a") == first


def test_cgnat_partition_restricts_choice():
    nat = CarrierGradeNAT(["198.51.100.1", "198.51.100.2", "198.51.100.3", "198.51.100.4"])
    nat.partition("telna", ["198.51.100.4"])
    rng = random.Random(11)
    for i in range(20):
        ip = nat.bind(f"s{i}", rng, sticky_key="telna")
        assert str(ip) == "198.51.100.4"


def test_cgnat_unpartitioned_key_uses_full_pool():
    pool = [f"198.51.100.{i}" for i in range(1, 5)]
    nat = CarrierGradeNAT(pool)
    rng = random.Random(5)
    seen = {str(nat.bind(f"s{i}", rng, sticky_key="play")) for i in range(200)}
    assert seen == set(pool)


def test_cgnat_release_then_rebind_may_differ():
    nat = CarrierGradeNAT(["198.51.100.1", "198.51.100.2"])
    rng = random.Random(9)
    nat.bind("x", rng)
    assert nat.active_sessions() == 1
    nat.release("x")
    assert nat.active_sessions() == 0
    nat.release("x")  # idempotent


def test_cgnat_rejects_bad_pools():
    with pytest.raises(ValueError):
        CarrierGradeNAT([])
    with pytest.raises(ValueError):
        CarrierGradeNAT(["1.1.1.1", "1.1.1.1"])
    nat = CarrierGradeNAT(["1.1.1.1"])
    with pytest.raises(ValueError):
        nat.partition("k", ["2.2.2.2"])
    with pytest.raises(ValueError):
        nat.partition("k", [])
