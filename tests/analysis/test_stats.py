"""Tests for statistical helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    boxplot_summary,
    cdf_at,
    empirical_cdf,
    levene_test,
    percent_above,
    percent_below,
    welch_ttest,
)


def test_boxplot_summary_known_values():
    summary = boxplot_summary([1, 2, 3, 4, 5, 6, 7, 8, 9])
    assert summary.count == 9
    assert summary.median == 5
    assert summary.q1 == 3
    assert summary.q3 == 7
    assert summary.mean == 5
    assert summary.minimum == 1 and summary.maximum == 9
    assert summary.iqr == 4


def test_boxplot_whiskers_clamped_to_data():
    summary = boxplot_summary([1, 2, 3, 4, 100])
    assert summary.whisker_low >= summary.minimum
    assert summary.whisker_high <= summary.maximum
    # The outlier at 100 sits beyond the Tukey fence.
    assert summary.whisker_high < 100


def test_boxplot_empty_rejected():
    with pytest.raises(ValueError):
        boxplot_summary([])


def test_empirical_cdf_shape():
    xs, ys = empirical_cdf([3.0, 1.0, 2.0])
    assert xs == [1.0, 2.0, 3.0]
    assert ys == pytest.approx([1 / 3, 2 / 3, 1.0])
    with pytest.raises(ValueError):
        empirical_cdf([])


def test_cdf_at_and_percentiles():
    values = [10, 20, 30, 40]
    assert cdf_at(values, 25) == 0.5
    assert percent_above(values, 25) == 0.5
    assert percent_below(values, 25) == 0.5
    assert percent_above(values, 40) == 0.0
    with pytest.raises(ValueError):
        cdf_at([], 1)


def test_welch_detects_difference():
    rng = random.Random(1)
    a = [rng.gauss(50, 5) for _ in range(100)]
    b = [rng.gauss(300, 50) for _ in range(100)]
    stat, p = welch_ttest(a, b)
    assert p < 1e-10
    assert stat < 0  # a's mean is lower


def test_welch_no_difference():
    rng = random.Random(2)
    a = [rng.gauss(50, 5) for _ in range(100)]
    b = [rng.gauss(50, 5) for _ in range(100)]
    _, p = welch_ttest(a, b)
    assert p > 0.01


def test_welch_requires_samples():
    with pytest.raises(ValueError):
        welch_ttest([1.0], [1.0, 2.0])


def test_levene_detects_variance_difference():
    rng = random.Random(3)
    narrow = [rng.gauss(100, 2) for _ in range(100)]
    wide = [rng.gauss(100, 40) for _ in range(100)]
    _, p = levene_test(narrow, wide)
    assert p < 1e-6


def test_levene_homogeneous():
    rng = random.Random(4)
    a = [rng.gauss(0, 10) for _ in range(200)]
    b = [rng.gauss(5, 10) for _ in range(200)]
    _, p = levene_test(a, b)
    assert p > 0.01


def test_levene_validation():
    with pytest.raises(ValueError):
        levene_test([1.0, 2.0])
    with pytest.raises(ValueError):
        levene_test([1.0], [1.0, 2.0])


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_boxplot_invariants(values):
    summary = boxplot_summary(values)
    assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum
    # Tolerate float summation error on the mean.
    span = max(1e-9, abs(summary.maximum - summary.minimum) * 1e-9)
    assert summary.minimum - span <= summary.mean <= summary.maximum + span


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_cdf_monotone_and_bounded(values):
    xs, ys = empirical_cdf(values)
    assert xs == sorted(xs)
    assert ys[-1] == pytest.approx(1.0)
    assert all(0 < y <= 1 for y in ys)
    assert all(a <= b for a, b in zip(ys, ys[1:]))
