"""Tests for the generic thick-MNA auditor (extension X3)."""

import random

import pytest

from repro.analysis import AuditPlan, ThickMnaAuditor, render_findings
from repro.cellular.roaming import RoamingArchitecture
from repro.worlds import build_emnify_world, paperdata as pd


@pytest.fixture(scope="module")
def emnify_world():
    return build_emnify_world()


@pytest.fixture(scope="module")
def auditor(emnify_world):
    return ThickMnaAuditor(
        operators=emnify_world.operators,
        factory=emnify_world.factory,
        geoip=emnify_world.geoip,
        engine=emnify_world.engine,
        sp_targets=list(emnify_world.sp_targets.values()),
    )


def test_auditor_validation(emnify_world):
    with pytest.raises(ValueError):
        ThickMnaAuditor(
            operators=emnify_world.operators,
            factory=emnify_world.factory,
            geoip=emnify_world.geoip,
            engine=emnify_world.engine,
            sp_targets=[],
        )
    with pytest.raises(ValueError):
        ThickMnaAuditor(
            operators=emnify_world.operators,
            factory=emnify_world.factory,
            geoip=emnify_world.geoip,
            engine=emnify_world.engine,
            sp_targets=list(emnify_world.sp_targets.values()),
            traceroutes_per_offering=0,
        )


def test_audit_emnify_recovers_ground_truth(emnify_world, auditor):
    plan = AuditPlan("GBR", emnify_world.cities.get("London", "GBR"), "O2 UK")
    finding = auditor.audit_offering(emnify_world.emnify, plan, random.Random(3))
    assert finding.inferred_architecture is RoamingArchitecture.IHBO
    assert finding.pgw_asn == pd.ASN_AMAZON
    assert finding.pgw_city == "Dublin"
    assert finding.pgw_country == "IRL"
    assert finding.verification_rate > 0.5
    assert finding.traceroutes == 12


def test_render_findings_tabulates(emnify_world, auditor):
    plan = AuditPlan("GBR", emnify_world.cities.get("London", "GBR"), "O2 UK")
    findings = auditor.audit(emnify_world.emnify, [plan], random.Random(5))
    text = render_findings(findings)
    assert "AS16509 Dublin, IRL" in text
    assert "IHBO" in text


def test_audit_sorted_by_bmno_country(emnify_world, auditor):
    plan = AuditPlan("GBR", emnify_world.cities.get("London", "GBR"), "O2 UK")
    findings = auditor.audit(emnify_world.emnify, [plan, plan], random.Random(7))
    assert len(findings) == 2
    assert findings[0].b_mno <= findings[1].b_mno


def test_geo_experience_usa_edge_case():
    """The US eSIM breaks out in Dallas: apparent country == user country,
    so content localizes correctly even though the path is IHBO."""
    import random

    from repro.analysis import assess_geo_experience
    from repro.cellular import UserEquipment
    from repro.experiments import common

    world = common.get_world()
    rng = random.Random("usa-geo")
    esim = world.sell_esim("USA", rng)
    ue = UserEquipment.provision(
        "test", world.cities.get("New York", "USA"), rng
    )
    ue.install_sim(esim)
    session = ue.switch_to(0, "T-Mobile US", world.factory, rng)
    experience = assess_geo_experience(session, world.operators)
    assert experience.localized_correctly
    assert experience.architecture.label == "IHBO"
    assert experience.third_party_operator == "Webbing USA"
