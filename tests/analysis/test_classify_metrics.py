"""Tests for the architecture classifier, path analytics, and metrics."""

import pytest

from repro.analysis import (
    LATENCY_BAD_MS,
    classify_architecture,
    high_latency_share,
    latency_inflation_by_architecture,
    speed_categories,
)
from repro.cellular.roaming import RoamingArchitecture


def test_classifier_hr():
    # Public IP in the b-MNO's AS.
    arch = classify_architecture(public_ip_asn=45143, b_mno_asn=45143, v_mno_asn=5384)
    assert arch is RoamingArchitecture.HR


def test_classifier_lbo():
    arch = classify_architecture(public_ip_asn=5384, b_mno_asn=45143, v_mno_asn=5384)
    assert arch is RoamingArchitecture.LBO


def test_classifier_ihbo():
    arch = classify_architecture(public_ip_asn=54825, b_mno_asn=12912, v_mno_asn=3352)
    assert arch is RoamingArchitecture.IHBO


def test_classifier_native_overrides():
    arch = classify_architecture(
        public_ip_asn=9587, b_mno_asn=9587, v_mno_asn=9587, b_equals_v=True
    )
    assert arch is RoamingArchitecture.NATIVE


def test_inflation_factors():
    latencies = {
        RoamingArchitecture.NATIVE: [50.0, 50.0],
        RoamingArchitecture.HR: [360.0, 361.0],
        RoamingArchitecture.IHBO: [82.0, 82.0],
    }
    inflation = latency_inflation_by_architecture(latencies)
    assert inflation[RoamingArchitecture.HR] == pytest.approx(6.21, abs=0.01)
    assert inflation[RoamingArchitecture.IHBO] == pytest.approx(0.64, abs=0.01)


def test_inflation_requires_native():
    with pytest.raises(ValueError):
        latency_inflation_by_architecture({RoamingArchitecture.HR: [100.0]})
    with pytest.raises(ValueError):
        latency_inflation_by_architecture({RoamingArchitecture.NATIVE: []})


def test_high_latency_share():
    values = [100.0, 160.0, 200.0, 120.0]
    assert high_latency_share(values) == 0.5
    assert high_latency_share(values, threshold=250.0) == 0.0
    assert LATENCY_BAD_MS == 150.0
    with pytest.raises(ValueError):
        high_latency_share([])


def _speedtest_record(download):
    from repro.cellular.esim import SIMKind
    from repro.cellular.roaming import RoamingArchitecture
    from repro.measure.records import MeasurementContext, SpeedtestRecord

    ctx = MeasurementContext(
        country_iso3="ESP", sim_kind=SIMKind.ESIM,
        architecture=RoamingArchitecture.IHBO, b_mno="Play", v_mno="Movistar",
        pgw_provider="Packet Host", pgw_asn=54825, pgw_country="NLD",
        public_ip="198.18.0.1", rat="5G", cqi=10, session_id="s",
    )
    return SpeedtestRecord(
        context=ctx, server_city="Amsterdam", latency_ms=60.0,
        download_mbps=download, upload_mbps=5.0,
    )


def test_speed_categories():
    records = [_speedtest_record(d) for d in (5, 10, 20, 35, 50)]
    cats = speed_categories(records)
    assert cats["slow"] == pytest.approx(0.4)
    assert cats["fast"] == pytest.approx(0.4)
    assert cats["medium"] == pytest.approx(0.2)
    with pytest.raises(ValueError):
        speed_categories([])
