"""Tests for the terminal figure renderers."""

import pytest

from repro.analysis import boxplot_summary
from repro.analysis.asciiplot import ascii_bars, ascii_boxplot, ascii_cdf


def test_boxplot_renders_all_rows_aligned():
    rows = {
        "native": boxplot_summary([30, 35, 40, 45, 50]),
        "HR": boxplot_summary([300, 320, 340, 360, 400]),
    }
    text = ascii_boxplot(rows, width=40)
    lines = text.splitlines()
    assert len(lines) == 3  # two rows + axis
    assert lines[0].startswith("native")
    assert "+" in lines[0] and "+" in lines[1]
    # HR sits to the right of native on the shared axis.
    assert lines[1].index("+") > lines[0].index("+")


def test_boxplot_marks_box_and_whiskers():
    rows = {"x": boxplot_summary([0, 25, 50, 75, 100])}
    text = ascii_boxplot(rows, width=50).splitlines()[0]
    for glyph in ("[", "]", "+", "|"):
        assert glyph in text


def test_boxplot_validation():
    with pytest.raises(ValueError):
        ascii_boxplot({})
    with pytest.raises(ValueError):
        ascii_boxplot({"x": boxplot_summary([1, 2, 3])}, width=5)


def test_cdf_grid_shape_and_legend():
    series = {
        "fast": ([10, 20, 30], [0.33, 0.66, 1.0]),
        "slow": ([100, 200, 300], [0.33, 0.66, 1.0]),
    }
    text = ascii_cdf(series, width=40, height=8)
    lines = text.splitlines()
    assert lines[0].startswith("1.0 |")
    assert any(line.startswith("0.0 |") for line in lines)
    assert "*=fast" in lines[-1]
    assert "o=slow" in lines[-1]
    # The slow curve occupies the right side.
    assert any("o" in line[30:] for line in lines)


def test_cdf_validation():
    with pytest.raises(ValueError):
        ascii_cdf({})
    with pytest.raises(ValueError):
        ascii_cdf({"x": ([], [])})
    with pytest.raises(ValueError):
        ascii_cdf({"x": ([1], [1.0])}, width=4)


def test_bars_scaled_to_peak():
    text = ascii_bars({"a": 10.0, "b": 5.0, "c": 0.0}, width=20)
    lines = text.splitlines()
    assert lines[0].count("#") == 20
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 0


def test_bars_validation():
    with pytest.raises(ValueError):
        ascii_bars({})
    with pytest.raises(ValueError):
        ascii_bars({"x": -1.0})
