"""Direct tests for traceroute path analytics."""

import pytest

from repro.analysis import (
    path_length_series,
    pgw_rtt_values,
    private_share_values,
    unique_asn_medians,
)
from repro.cellular.esim import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.measure.records import MeasurementContext, TracerouteRecord


def _record(
    country="ESP",
    sim_kind=SIMKind.ESIM,
    architecture=RoamingArchitecture.IHBO,
    provider="Packet Host",
    private_hops=6,
    public_hops=5,
    pgw_rtt=60.0,
    final_rtt=70.0,
    asns=(54825, 15169),
    target="Google",
):
    context = MeasurementContext(
        country_iso3=country,
        sim_kind=sim_kind,
        architecture=architecture,
        b_mno="Play",
        v_mno="Movistar",
        pgw_provider=provider,
        pgw_asn=54825,
        pgw_country="NLD",
        public_ip="198.18.0.1",
        rat="5G",
        cqi=10,
        session_id="s-1",
    )
    return TracerouteRecord(
        context=context,
        target=target,
        hop_ips=["10.0.0.1"] * private_hops + ["198.18.0.1"] * public_hops,
        hop_rtts_ms=[10.0] * (private_hops + public_hops),
        private_hops=private_hops,
        public_hops=public_hops,
        pgw_ip="198.18.0.1",
        pgw_rtt_ms=pgw_rtt,
        final_rtt_ms=final_rtt,
        unique_asns=list(asns),
    )


def test_path_length_series_keys_and_values():
    records = [
        _record(private_hops=6),
        _record(private_hops=7),
        _record(country="PAK", sim_kind=SIMKind.PHYSICAL,
                architecture=RoamingArchitecture.NATIVE, private_hops=4),
    ]
    series = path_length_series(records, segment="private")
    assert series[("ESP", "eSIM/IHBO")] == [6, 7]
    assert series[("PAK", "SIM")] == [4]
    public = path_length_series(records, segment="public")
    assert public[("ESP", "eSIM/IHBO")] == [5, 5]
    with pytest.raises(ValueError):
        path_length_series(records, segment="bogus")


def test_unique_asn_medians_grouping():
    records = [
        _record(asns=(54825, 15169)),
        _record(asns=(54825, 15169, 3356)),
        _record(sim_kind=SIMKind.PHYSICAL, asns=(3352,)),
    ]
    medians = unique_asn_medians(records)
    assert medians[("ESP", "eSIM")] == 2.5
    assert medians[("ESP", "SIM")] == 1


def test_pgw_rtt_values_filters():
    records = [
        _record(pgw_rtt=60.0),
        _record(pgw_rtt=None),
        _record(country="PAK", provider="Singtel", pgw_rtt=320.0),
    ]
    assert pgw_rtt_values(records) == [60.0, 320.0]
    assert pgw_rtt_values(records, country="pak") == [320.0]
    assert pgw_rtt_values(records, pgw_provider="Singtel") == [320.0]
    assert pgw_rtt_values(records, sim_kind=SIMKind.PHYSICAL) == []


def test_private_share_values_and_clamping():
    records = [
        _record(pgw_rtt=60.0, final_rtt=80.0),     # 0.75
        _record(pgw_rtt=90.0, final_rtt=80.0),     # clamped to 1.0
        _record(pgw_rtt=None, final_rtt=80.0),     # skipped
        _record(pgw_rtt=60.0, final_rtt=None),     # skipped
    ]
    shares = private_share_values(records)
    assert shares == [0.75, 1.0]
    assert private_share_values(records, country="PAK") == []
    assert private_share_values(records, sim_kind=SIMKind.ESIM) == [0.75, 1.0]


def test_record_verification_flag():
    good = _record()
    assert good.pgw_verified
    bad = TracerouteRecord(
        context=good.context,
        target="Google",
        hop_ips=[],
        hop_rtts_ms=[],
        private_hops=0,
        public_hops=0,
        pgw_ip="198.18.0.99",   # not the session's public IP
        pgw_rtt_ms=5.0,
        final_rtt_ms=10.0,
        unique_asns=[],
    )
    assert not bad.pgw_verified
