"""Unit and property tests for great-circle geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import GeoPoint, haversine_km, initial_bearing_deg, midpoint
from repro.geo.coords import EARTH_RADIUS_KM


def test_zero_distance_between_identical_points():
    p = GeoPoint(48.86, 2.35)
    assert haversine_km(p, p) == 0.0


def test_known_distance_paris_to_new_york():
    paris = GeoPoint(48.8566, 2.3522)
    nyc = GeoPoint(40.7128, -74.0060)
    # Actual great-circle distance is ~5837 km.
    assert haversine_km(paris, nyc) == pytest.approx(5837, rel=0.01)


def test_known_distance_singapore_to_karachi():
    # The HR corridor of the paper's Pakistan eSIM.
    singapore = GeoPoint(1.35, 103.82)
    karachi = GeoPoint(24.86, 67.01)
    assert haversine_km(singapore, karachi) == pytest.approx(4770, rel=0.02)


def test_antipodal_distance_is_half_circumference():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(0.0, 180.0)
    assert haversine_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)


def test_latitude_out_of_range_rejected():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(-90.5, 0.0)


def test_longitude_out_of_range_rejected():
    with pytest.raises(ValueError):
        GeoPoint(0.0, 181.0)
    with pytest.raises(ValueError):
        GeoPoint(0.0, -180.01)


def test_distance_method_matches_function():
    a = GeoPoint(10.0, 20.0)
    b = GeoPoint(-5.0, 100.0)
    assert a.distance_km(b) == haversine_km(a, b)


def test_bearing_due_north():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(10.0, 0.0)
    assert initial_bearing_deg(a, b) == pytest.approx(0.0, abs=1e-9)


def test_bearing_due_east_at_equator():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(0.0, 10.0)
    assert initial_bearing_deg(a, b) == pytest.approx(90.0, abs=1e-9)


def test_midpoint_on_equator():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(0.0, 90.0)
    mid = midpoint(a, b)
    assert mid.lat == pytest.approx(0.0, abs=1e-9)
    assert mid.lon == pytest.approx(45.0, abs=1e-9)


_points = st.builds(
    GeoPoint,
    st.floats(min_value=-90, max_value=90, allow_nan=False),
    st.floats(min_value=-180, max_value=180, allow_nan=False),
)


@given(_points, _points)
def test_distance_is_symmetric(a, b):
    assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), abs=1e-9)


@given(_points, _points)
def test_distance_is_nonnegative_and_bounded(a, b):
    d = haversine_km(a, b)
    assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6


@given(_points, _points, _points)
def test_triangle_inequality(a, b, c):
    assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


@given(_points, _points)
def test_midpoint_is_equidistant(a, b):
    mid = midpoint(a, b)
    da = haversine_km(a, mid)
    db = haversine_km(b, mid)
    assert da == pytest.approx(db, abs=1e-3)
