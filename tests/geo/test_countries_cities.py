"""Tests for the country and city registries."""

import pytest

from repro.geo import (
    City,
    CityRegistry,
    Country,
    CountryRegistry,
    GeoPoint,
    default_city_registry,
    default_country_registry,
)

# The 24 countries measured across the two campaigns (Sections 3.1-3.2).
PAPER_COUNTRIES = [
    "ARE", "JPN", "PAK", "MYS", "CHN",           # Singtel HR group
    "GBR", "DEU", "GEO", "ESP",                  # Play Poland group
    "QAT", "SAU", "TUR", "EGY",                  # Telna Mobile group
    "MDA", "KEN", "FIN", "AZE",                  # Telecom Italia group
    "ITA", "USA",                                # Orange group
    "FRA", "UZB",                                # Polkomtel group
    "KOR", "MDV", "THA",                         # native eSIMs
]


@pytest.fixture(scope="module")
def countries():
    return default_country_registry()


@pytest.fixture(scope="module")
def cities():
    return default_city_registry()


def test_all_paper_countries_present(countries):
    for iso3 in PAPER_COUNTRIES:
        assert iso3 in countries, f"missing paper country {iso3}"


def test_iso2_lookup(countries):
    assert countries.get("DE").iso3 == "DEU"
    assert countries.get("de").iso3 == "DEU"


def test_iso3_lookup_case_insensitive(countries):
    assert countries.get("pak").name == "Pakistan"


def test_unknown_code_raises(countries):
    with pytest.raises(KeyError):
        countries.get("XXX")
    with pytest.raises(KeyError):
        countries.get("XQ")


def test_continent_grouping_contains_expected(countries):
    europe = {c.iso3 for c in countries.by_continent("Europe")}
    assert {"DEU", "ESP", "FRA", "GBR", "ITA", "POL"} <= europe


def test_central_america_subregion_nonempty(countries):
    # Figure 18 highlights Central America as consistently expensive.
    central = countries.by_subregion("Central America")
    assert len(central) >= 5
    assert all(c.continent == "North America" for c in central)


def test_continents_cover_the_big_six(countries):
    expected = {"Africa", "Asia", "Europe", "North America", "Oceania", "South America"}
    assert expected <= set(countries.continents())


def test_duplicate_country_rejected(countries):
    registry = CountryRegistry()
    c = Country("ABC", "AB", "Testland", "Europe", "Testville", GeoPoint(0, 0))
    registry.add(c)
    with pytest.raises(ValueError):
        registry.add(c)


def test_invalid_iso_codes_rejected():
    with pytest.raises(ValueError):
        Country("ab", "AB", "x", "Europe", "y", GeoPoint(0, 0))
    with pytest.raises(ValueError):
        Country("ABC", "abc", "x", "Europe", "y", GeoPoint(0, 0))


def test_pgw_cities_present(cities):
    # All PGW sites named in Table 2 / Section 4.3.2 must exist.
    for name, iso3 in [
        ("Amsterdam", "NLD"),
        ("Ashburn", "USA"),
        ("Lille", "FRA"),
        ("Wattrelos", "FRA"),
        ("London", "GBR"),
        ("Singapore", "SGP"),
        ("Dallas", "USA"),
        ("Seoul", "KOR"),
        ("Dublin", "IRL"),
    ]:
        city = cities.get(name, iso3)
        assert city.country_iso3 == iso3


def test_city_country_codes_resolve(countries, cities):
    for city in cities:
        assert city.country_iso3 in countries, f"{city.key} has unknown country"


def test_in_country_sorted(cities):
    usa = cities.in_country("usa")
    names = [c.name for c in usa]
    assert names == sorted(names)
    assert "Ashburn" in names


def test_duplicate_city_rejected():
    registry = CityRegistry()
    c = City("X", "USA", GeoPoint(1, 1))
    registry.add(c)
    with pytest.raises(ValueError):
        registry.add(c)


def test_unknown_city_raises(cities):
    with pytest.raises(KeyError):
        cities.get("Atlantis", "GRC")
