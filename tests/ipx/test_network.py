"""Tests for the IPX provider mesh."""

import pytest

from repro.ipx import IPXNetwork, IPXProvider, IPXReachabilityError


def _mesh():
    net = IPXNetwork()
    net.add_provider(IPXProvider("HubOne", asn=65001, hub_pgw_site_ids=("ph-ams", "ph-ashburn")))
    net.add_provider(IPXProvider("HubTwo", asn=65002, hub_pgw_site_ids=("ovh-lille",)))
    net.add_provider(IPXProvider("HubThree", asn=65003))
    net.peer("HubOne", "HubTwo")
    net.peer("HubTwo", "HubThree")
    net.contract("Play", "HubOne")
    net.contract("Telna Mobile", "HubThree")
    return net


def test_direct_reachability():
    net = _mesh()
    assert net.transit_path("Play", "ph-ams") == ["HubOne"]
    assert net.can_reach("Play", "ph-ams")


def test_transit_through_mesh():
    net = _mesh()
    # Telna enters at HubThree; OVH site fronted by HubTwo: one peering hop.
    assert net.transit_path("Telna Mobile", "ovh-lille") == ["HubThree", "HubTwo"]
    # Packet Host sites are two peering hops away.
    assert net.transit_path("Telna Mobile", "ph-ams") == ["HubThree", "HubTwo", "HubOne"]


def test_no_contract_raises():
    net = _mesh()
    with pytest.raises(IPXReachabilityError):
        net.transit_path("Vodafone", "ph-ams")
    assert not net.can_reach("Vodafone", "ph-ams")


def test_partitioned_mesh_raises():
    net = IPXNetwork()
    net.add_provider(IPXProvider("A", asn=65001))
    net.add_provider(IPXProvider("B", asn=65002, hub_pgw_site_ids=("site",)))
    net.contract("Op", "A")
    with pytest.raises(IPXReachabilityError):
        net.transit_path("Op", "site")


def test_unknown_site_raises():
    net = _mesh()
    with pytest.raises(KeyError):
        net.provider_of_site("nope")
    assert not net.can_reach("Play", "nope")


def test_duplicate_provider_and_site_rejected():
    net = IPXNetwork()
    net.add_provider(IPXProvider("A", asn=65001, hub_pgw_site_ids=("s1",)))
    with pytest.raises(ValueError):
        net.add_provider(IPXProvider("A", asn=65009))
    with pytest.raises(ValueError):
        net.add_provider(IPXProvider("B", asn=65002, hub_pgw_site_ids=("s1",)))


def test_self_peering_rejected():
    net = IPXNetwork()
    net.add_provider(IPXProvider("A", asn=65001))
    with pytest.raises(ValueError):
        net.peer("A", "A")
    with pytest.raises(KeyError):
        net.peer("A", "Z")


def test_multiple_contracts_pick_shortest_entry():
    net = _mesh()
    net.contract("Play", "HubThree")  # Play now enters at both ends
    assert net.transit_path("Play", "ovh-lille") in (
        ["HubOne", "HubTwo"],
        ["HubThree", "HubTwo"],
    )


def test_providers_listing_sorted():
    net = _mesh()
    assert [p.name for p in net.providers()] == ["HubOne", "HubThree", "HubTwo"]
    assert [p.name for p in net.providers_serving("Play")] == ["HubOne"]
