"""Tests for dynamic PGW placement (extension X2)."""

import pytest

from repro.geo import GeoPoint, default_city_registry
from repro.ipx import (
    DemandPoint,
    assignment,
    greedy_k_median,
    mean_weighted_distance_km,
)


@pytest.fixture(scope="module")
def cities():
    return default_city_registry()


def _demand(cities, name, iso3, weight, label=None):
    city = cities.get(name, iso3)
    return DemandPoint(location=city.location, weight=weight, label=label or name)


def test_demand_validation():
    with pytest.raises(ValueError):
        DemandPoint(location=GeoPoint(0, 0), weight=0.0)


def test_mean_weighted_distance(cities):
    demands = [_demand(cities, "Madrid", "ESP", 1.0)]
    madrid = cities.get("Madrid", "ESP").location
    lille = cities.get("Lille", "FRA").location
    assert mean_weighted_distance_km(demands, [madrid]) == 0.0
    assert mean_weighted_distance_km(demands, [lille]) > 900
    # Nearest of several sites is used.
    assert mean_weighted_distance_km(demands, [lille, madrid]) == 0.0
    with pytest.raises(ValueError):
        mean_weighted_distance_km([], [madrid])
    with pytest.raises(ValueError):
        mean_weighted_distance_km(demands, [])


def test_weights_steer_the_objective(cities):
    heavy_madrid = [
        _demand(cities, "Madrid", "ESP", 100.0),
        _demand(cities, "Singapore", "SGP", 1.0),
    ]
    madrid = cities.get("Madrid", "ESP").location
    singapore = cities.get("Singapore", "SGP").location
    assert mean_weighted_distance_km(heavy_madrid, [madrid]) < mean_weighted_distance_km(
        heavy_madrid, [singapore]
    )


def test_greedy_picks_demand_centres(cities):
    demands = [
        _demand(cities, "Madrid", "ESP", 10.0),
        _demand(cities, "Berlin", "DEU", 10.0),
        _demand(cities, "Singapore", "SGP", 10.0),
    ]
    candidates = [
        cities.get("Madrid", "ESP"),
        cities.get("Frankfurt", "DEU"),
        cities.get("Singapore", "SGP"),
        cities.get("Sao Paulo", "BRA"),
    ]
    chosen = greedy_k_median(demands, candidates, k=3)
    names = {c.name for c in chosen}
    assert "Sao Paulo" not in names
    assert {"Madrid", "Singapore"} <= names


def test_greedy_objective_improves_with_k(cities):
    demands = [
        _demand(cities, "Madrid", "ESP", 5.0),
        _demand(cities, "Tokyo", "JPN", 5.0),
        _demand(cities, "Nairobi", "KEN", 5.0),
        _demand(cities, "New York", "USA", 5.0),
    ]
    candidates = [
        cities.get(name, iso3)
        for name, iso3 in [
            ("Madrid", "ESP"), ("Tokyo", "JPN"), ("Nairobi", "KEN"),
            ("Ashburn", "USA"), ("Frankfurt", "DEU"), ("Singapore", "SGP"),
        ]
    ]
    costs = [
        mean_weighted_distance_km(
            demands, [c.location for c in greedy_k_median(demands, candidates, k)]
        )
        for k in (1, 2, 3, 4)
    ]
    assert costs == sorted(costs, reverse=True)
    assert costs[-1] < costs[0]


def test_greedy_validation(cities):
    demands = [_demand(cities, "Madrid", "ESP", 1.0)]
    candidates = [cities.get("Madrid", "ESP")]
    with pytest.raises(ValueError):
        greedy_k_median(demands, candidates, k=0)
    with pytest.raises(ValueError):
        greedy_k_median(demands, candidates, k=2)
    with pytest.raises(ValueError):
        greedy_k_median(demands, [], k=1)


def test_greedy_deterministic(cities):
    demands = [
        _demand(cities, "Madrid", "ESP", 3.0),
        _demand(cities, "Berlin", "DEU", 2.0),
    ]
    candidates = [cities.get(n, i) for n, i in
                  [("Madrid", "ESP"), ("Frankfurt", "DEU"), ("Paris", "FRA")]]
    a = greedy_k_median(demands, candidates, 2)
    b = greedy_k_median(demands, candidates, 2)
    assert [c.key for c in a] == [c.key for c in b]


def test_assignment(cities):
    demands = [
        _demand(cities, "Madrid", "ESP", 1.0, label="ESP"),
        _demand(cities, "Berlin", "DEU", 1.0, label="DEU"),
    ]
    sites = [cities.get("Madrid", "ESP"), cities.get("Frankfurt", "DEU")]
    mapping = assignment(demands, sites)
    assert mapping["ESP"][0] == "Madrid, ESP"
    assert mapping["DEU"][0] == "Frankfurt, DEU"
    assert mapping["ESP"][1] == pytest.approx(0.0, abs=1e-6)
    with pytest.raises(ValueError):
        assignment(demands, [])
