"""Behavioural tests for the fault-injection substrate (marked ``chaos``)."""

import logging
import random

import pytest

from repro.faults import (
    ATTACH_REJECT_CAUSES,
    ChaosConfig,
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from repro.measure.amigo import AmigoControlServer
from repro.measure.webcampaign import WebCampaignRunner, WebVolunteer
from tests.worldkit import build_mini_testbed, run_mini_campaign

pytestmark = pytest.mark.chaos


# ---------------------------------------------------------------------------
# The substrate itself
# ---------------------------------------------------------------------------

def test_fault_plan_rates_zero_and_one():
    never = FaultPlan(ChaosConfig(seed=1), scope="x")
    assert never.attach_fault(0) is None
    assert never.test_fault("speedtest", 0) is None
    assert never.churn_days(0) == 0
    assert not never.upload_malformed(0)

    always = FaultPlan(
        ChaosConfig(
            seed=1, attach_reject_rate=1.0, service_outage_rate=1.0,
            churn_rate_per_day=1.0, malformed_upload_rate=1.0,
        ),
        scope="x",
    )
    fault = always.attach_fault(0)
    assert fault is not None and fault.kind in (
        FaultKind.ATTACH_REJECT, FaultKind.SIM_FLIP
    )
    assert always.test_fault("speedtest", 0) is not None
    assert always.churn_days(1) >= 1
    assert always.upload_malformed(0)


def test_attach_reject_carries_3gpp_cause():
    plan = FaultPlan(
        ChaosConfig(seed=5, attach_reject_rate=1.0, sim_flip_failure_rate=0.0),
        scope="x",
    )
    fault = plan.attach_fault(0)
    assert fault.kind is FaultKind.ATTACH_REJECT
    assert any(f"cause #{code}" in fault.detail for code in ATTACH_REJECT_CAUSES)


def test_injector_plans_are_per_scope_and_cached():
    injector = FaultInjector(ChaosConfig(seed=3, attach_reject_rate=0.5))
    assert injector.plan_for("a") is injector.plan_for("a")
    assert injector.plan_for("a") is not injector.plan_for("b")


def test_circuit_breaker_trips_and_recovers():
    breaker = CircuitBreaker(threshold=3, quarantine_days=2)
    assert not breaker.record_failure(0)
    assert not breaker.record_failure(0)
    breaker.record_success()  # resets the count
    assert not breaker.record_failure(1)
    assert not breaker.record_failure(1)
    assert breaker.record_failure(1)  # third consecutive: trips
    assert breaker.is_quarantined(2)
    assert breaker.is_quarantined(3)
    assert not breaker.is_quarantined(4)
    assert breaker.trip_days == [1]


# ---------------------------------------------------------------------------
# Resilient orchestration end to end
# ---------------------------------------------------------------------------

def test_retries_recover_the_full_plan():
    chaos = ChaosConfig(
        seed=11, attach_reject_rate=0.2, service_outage_rate=0.15,
        probe_timeout_rate=0.15,
    )
    stressed = run_mini_campaign(chaos=chaos)
    clean = run_mini_campaign(chaos=None)
    health = stressed.health
    assert health.retried_total > 0
    assert health.completion_rate() == 1.0
    assert stressed.total_records() == clean.total_records()


def test_unrecoverable_endpoint_is_quarantined_and_runs_dropped():
    chaos = ChaosConfig(seed=2, attach_reject_rate=1.0)
    dataset = run_mini_campaign(chaos=chaos)
    health = dataset.health
    assert dataset.total_records() == 0
    assert health.quarantines
    assert health.offline_days > 0  # quarantine took days out of rotation
    assert health.dropped_total == health.planned_total
    assert health.completion_rate() == 0.0


def test_churn_rolls_runs_onto_makeup_days():
    chaos = ChaosConfig(seed=6, churn_rate_per_day=0.5)
    dataset = run_mini_campaign(chaos=chaos)
    health = dataset.health
    assert health.offline_days > 0
    assert health.makeup_days > 0
    made_up = sum(cell.made_up for cell in health.tests.values())
    assert made_up > 0
    # The make-up window was wide enough to drain the whole backlog.
    assert health.completion_rate() == 1.0


def test_makeup_window_bounds_recovery():
    chaos = ChaosConfig(seed=6, churn_rate_per_day=0.5, max_makeup_days=0)
    dataset = run_mini_campaign(chaos=chaos)
    health = dataset.health
    assert health.makeup_days == 0
    assert health.dropped_total > 0  # no window: missed days stay missed


def test_skipped_endpoint_is_logged_and_surfaced(caplog):
    testbed = build_mini_testbed()
    server = AmigoControlServer(testbed["resources"], testbed["factory"])
    for deployment in testbed["deployments"]:
        server.register_endpoint(
            deployment, random.Random(deployment.country_iso3)
        )
    plans = {k: v for k, v in testbed["plans"].items() if k != "THA"}
    with caplog.at_level(logging.WARNING, logger="repro.measure.amigo"):
        dataset = server.run_campaign(plans)
    assert len(dataset.health.skipped_endpoints) == 1
    assert dataset.health.skipped_endpoints[0].startswith("THA:")
    assert any("no plan" in record.message for record in caplog.records)


def test_health_render_mentions_every_country():
    chaos = ChaosConfig(seed=11, service_outage_rate=0.2)
    health = run_mini_campaign(chaos=chaos).health
    rendered = health.render()
    for country in ("ESP", "ARE", "THA"):
        assert country in rendered


# ---------------------------------------------------------------------------
# Web campaign under chaos
# ---------------------------------------------------------------------------

def _volunteer(world, rng, reliability=1.0):
    from repro.cellular import RSPServer

    esim = RSPServer("Airalo").issue(world["operators"].get("Play"), "ESP", rng)
    return WebVolunteer(
        name="v1", country_iso3="ESP", city=world["cities"].get("Madrid", "ESP"),
        esim=esim, v_mno_name="Movistar", duration_days=5,
        planned_measurements=8, upload_reliability=reliability,
    )


def _web_runner(testbed, chaos=None):
    resources = testbed["resources"]
    return WebCampaignRunner(
        fabric=resources.fabric,
        fastcom=resources.ookla,
        dns_services=resources.dns_services,
        operators=testbed["operators"],
        factory=testbed["factory"],
        chaos=chaos,
    )


def test_web_campaign_weathers_malformed_uploads():
    testbed = build_mini_testbed()
    chaos = ChaosConfig(seed=4, malformed_upload_rate=0.4)
    runner = _web_runner(testbed, chaos=chaos)
    rng = random.Random(3)
    dataset = runner.run([_volunteer(testbed, rng)], rng)
    assert runner.rejected_uploads > 0
    assert len(dataset.web_measurements) == 8  # retries made up the difference
    assert dataset.health.completion_rate() == 1.0


def test_web_campaign_chaos_off_matches_clean():
    testbed = build_mini_testbed()
    rng = random.Random(3)
    clean = _web_runner(testbed).run([_volunteer(testbed, rng)], rng)
    testbed2 = build_mini_testbed()
    rng2 = random.Random(3)
    off = _web_runner(testbed2, chaos=ChaosConfig.disabled()).run(
        [_volunteer(testbed2, rng2)], rng2
    )
    assert clean.web_measurements == off.web_measurements
