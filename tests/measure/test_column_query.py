"""Tests for ColumnQuery, the columnar sibling of RecordQuery."""

import pytest

from repro.core.columns import ColumnStore
from repro.measure import query as query_mod
from repro.measure.query import ColumnQuery


@pytest.fixture()
def store():
    store = ColumnStore(meta={"kind": "test"})
    country = store.new_column("country", "H", strings="country")
    kind = store.new_column("kind", "B")
    volume = store.new_column("volume", "d")
    codes = store.strings("country")
    rows = [
        ("ESP", 1, 10.0), ("ESP", 0, 20.0), ("JPN", 1, 30.0),
        ("JPN", 1, 40.0), ("PAK", 0, 50.0),
    ]
    for iso3, k, v in rows:
        country.append(codes.code(iso3))
        kind.append(k)
        volume.append(v)
    return store


def test_unfiltered_aggregates(store):
    q = ColumnQuery(store)
    assert q.count() == 5
    assert q.sum("volume") == 150.0
    assert q.mean("volume") == 30.0


def test_where_on_string_column_accepts_labels(store):
    q = ColumnQuery(store).where(country="JPN")
    assert q.count() == 2
    assert q.sum("volume") == 70.0
    assert q.mean("volume") == 35.0


def test_where_chains_and_composes(store):
    base = ColumnQuery(store).where(kind=1)
    assert base.count() == 3
    assert base.where(country="ESP").count() == 1
    # the base query is immutable: refining it did not narrow it
    assert base.count() == 3


def test_where_unknown_label_is_empty_not_error(store):
    q = ColumnQuery(store).where(country="ZZZ")
    assert q.count() == 0
    assert q.sum("volume") == 0.0
    assert q.mean("volume") == 0.0


def test_where_none_values_ignored(store):
    q = ColumnQuery(store).where(country=None)
    assert q.count() == 5


def test_numeric_filter_on_plain_column(store):
    assert ColumnQuery(store).where(kind=0).count() == 2


def test_string_filter_on_numeric_column_rejected(store):
    with pytest.raises(KeyError):
        ColumnQuery(store).where(volume="lots")


def test_count_by_decodes_string_tables(store):
    counts = ColumnQuery(store).count_by("country")
    assert counts == {"ESP": 2, "JPN": 2, "PAK": 1}
    assert ColumnQuery(store).values("country") == ["ESP", "JPN", "PAK"]


def test_count_by_numeric_column(store):
    assert ColumnQuery(store).count_by("kind") == {0: 2, 1: 3}


def test_count_by_respects_filters(store):
    counts = ColumnQuery(store).where(kind=1).count_by("country")
    assert counts == {"ESP": 1, "JPN": 2}


def test_pure_python_fallback_matches_numpy(store, monkeypatch):
    expected = {
        "count": ColumnQuery(store).where(country="JPN").count(),
        "sum": ColumnQuery(store).where(country="JPN").sum("volume"),
        "by": ColumnQuery(store).where(kind=1).count_by("country"),
        "total": ColumnQuery(store).count(),
    }
    monkeypatch.setattr(query_mod, "_np", None)
    q = ColumnQuery(store)
    assert q.where(country="JPN").count() == expected["count"]
    assert q.where(country="JPN").sum("volume") == expected["sum"]
    assert q.where(kind=1).count_by("country") == expected["by"]
    assert q.count() == expected["total"]
