"""Tests for the jitter/loss/VoIP probe (extension X1)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.measure.voip import (
    e_model_r_factor,
    mos_from_r,
    probe_voip,
    rfc3550_jitter,
)
from tests.measure.conftest import make_session


@pytest.fixture()
def hr(world, airalo_esim_are, rng):
    _, session = make_session(world, airalo_esim_are, "Abu Dhabi", "ARE", "Etisalat", rng)
    return airalo_esim_are, session


@pytest.fixture()
def native(world, airalo_esim_tha, rng):
    _, session = make_session(world, airalo_esim_tha, "Bangkok", "THA", "dtac", rng)
    return airalo_esim_tha, session


def test_jitter_estimator_basics():
    assert rfc3550_jitter([]) == 0.0
    assert rfc3550_jitter([50.0]) == 0.0
    assert rfc3550_jitter([50.0, 50.0, 50.0]) == 0.0
    noisy = rfc3550_jitter([50, 80, 45, 90, 40])
    assert noisy > 0


@given(st.lists(st.floats(min_value=1, max_value=1000), min_size=2, max_size=60))
def test_jitter_nonnegative_and_bounded(rtts):
    jitter = rfc3550_jitter(rtts)
    assert 0.0 <= jitter <= max(rtts)


def test_e_model_known_points():
    # Short delay, no loss: near-toll quality.
    assert e_model_r_factor(50, 0.0) == pytest.approx(92.0, abs=0.5)
    # The 177.3 ms knee makes delay sharply more expensive.
    below = e_model_r_factor(170, 0.0)
    above = e_model_r_factor(185, 0.0)
    assert below - e_model_r_factor(160, 0.0) < above - e_model_r_factor(175, 0.0) + 1
    # Loss alone can wreck the call.
    assert e_model_r_factor(50, 0.05) < e_model_r_factor(50, 0.0) - 10


def test_e_model_validation():
    with pytest.raises(ValueError):
        e_model_r_factor(-1, 0.0)
    with pytest.raises(ValueError):
        e_model_r_factor(10, 1.5)


def test_mos_mapping_monotone_and_bounded():
    values = [mos_from_r(r) for r in range(0, 101, 5)]
    assert values == sorted(values)
    assert values[0] == 1.0
    assert values[-1] == 4.5
    assert mos_from_r(-5) == 1.0
    assert mos_from_r(150) == 4.5


def test_probe_hr_worse_than_native(resources, hr, native, conditions):
    rng = random.Random(5)
    sim_h, session_h = hr
    sim_n, session_n = native
    google = resources.sp_targets["Google"]
    hr_record = probe_voip(session_h, sim_h, google, resources.fabric, conditions, rng)
    native_record = probe_voip(session_n, sim_n, google, resources.fabric, conditions, rng)
    assert hr_record.mos < native_record.mos
    assert hr_record.mean_rtt_ms > native_record.mean_rtt_ms
    assert native_record.usable_for_calls


def test_probe_records_context(resources, hr, conditions, rng):
    sim, session = hr
    record = probe_voip(session, sim, resources.sp_targets["Google"],
                        resources.fabric, conditions, rng)
    assert record.context.country_iso3 == "ARE"
    assert record.target == "Google"
    assert 0.0 <= record.loss_rate <= 1.0
    assert record.jitter_ms >= 0


def test_probe_validation(resources, hr, conditions, rng):
    sim, session = hr
    with pytest.raises(ValueError):
        probe_voip(session, sim, resources.sp_targets["Google"],
                   resources.fabric, conditions, rng, packets=1)


def test_loss_rate_grows_with_tunnel(resources, hr, native):
    _, session_h = hr
    _, session_n = native
    assert resources.fabric.loss_rate(session_h) > resources.fabric.loss_rate(session_n)
    assert resources.fabric.loss_rate(session_h) <= 0.03
