"""Measurement-layer fixtures: mini world + GeoIP + traceroute engine."""

import random

import pytest

from repro.geo import GeoPoint
from repro.net import ASTopology, GeoIPDatabase, LatencyModel
from repro.net.addressbook import ASAddressBook
from repro.net.ipv4 import parse_ip
from repro.measure.traceroute import TracerouteEngine
from repro.measure.amigo import TestbedResources
from repro.services import (
    AdaptiveBitratePlayer,
    CDNProvider,
    DNSService,
    ServerSite,
    ServiceFabric,
    ServiceProvider,
    SpeedtestFleet,
    SpeedtestServer,
)
from tests.worldkit import build_mini_world


def _site(cities, name, iso3, ip):
    return ServerSite(city=cities.get(name, iso3), ip=parse_ip(ip))


@pytest.fixture()
def world():
    return build_mini_world()


@pytest.fixture()
def cities(world):
    return world["cities"]


@pytest.fixture()
def geoip(world, cities):
    db = GeoIPDatabase()
    # CG-NAT pools of the mini world's PGW sites.
    pools = {
        "198.18.0.0/24": (54825, "NLD", "Amsterdam"),
        "198.18.1.0/24": (45143, "SGP", "Singapore"),
        "198.18.2.0/24": (9587, "THA", "Bangkok"),
        "198.18.3.0/24": (3352, "ESP", "Madrid"),
        "198.18.4.0/24": (5384, "ARE", "Abu Dhabi"),
    }
    for prefix, (asn, iso3, city) in pools.items():
        location = cities.get(city, iso3).location
        db.register(prefix, asn, iso3, city, location)
    # Server sites used by fixtures below.
    db.register("192.0.2.0/28", 15169, "USA", "Mountain View", GeoPoint(37.39, -122.08))
    return db


@pytest.fixture()
def addressbook(geoip, cities):
    book = ASAddressBook(geoip)
    book.register(3356, "198.19.0.0/24", "USA", "Denver", GeoPoint(39.74, -104.99))
    book.register(15169, "198.19.1.0/24", "USA", "Mountain View", GeoPoint(37.39, -122.08))
    book.register(32934, "198.19.2.0/24", "USA", "Menlo Park", GeoPoint(37.45, -122.18))
    return book


@pytest.fixture()
def topology():
    topo = ASTopology()
    for asn in (54825, 45143, 9587, 3352, 5384, 15169, 32934, 3356):
        topo.add_as(asn)
    for customer in (54825, 45143, 9587, 3352, 5384, 15169, 32934):
        topo.add_transit(customer=customer, provider=3356)
    topo.add_peering(54825, 15169)
    topo.add_peering(54825, 32934)
    topo.add_peering(45143, 15169)
    topo.add_peering(9587, 15169)
    return topo


@pytest.fixture()
def fabric(topology):
    return ServiceFabric(latency=LatencyModel(), topology=topology)


@pytest.fixture()
def engine(fabric, addressbook):
    return TracerouteEngine(fabric=fabric, addressbook=addressbook)


@pytest.fixture()
def google(cities):
    return ServiceProvider(
        name="Google",
        asn=15169,
        edges=[
            _site(cities, "Amsterdam", "NLD", "192.0.2.1"),
            _site(cities, "Singapore", "SGP", "192.0.2.2"),
            _site(cities, "Madrid", "ESP", "192.0.2.3"),
            _site(cities, "Bangkok", "THA", "192.0.2.4"),
        ],
    )


@pytest.fixture()
def facebook(cities):
    return ServiceProvider(
        name="Facebook",
        asn=32934,
        edges=[
            _site(cities, "Amsterdam", "NLD", "192.0.2.5"),
            _site(cities, "Singapore", "SGP", "192.0.2.6"),
        ],
        internal_hop_range=(2, 5),
    )


@pytest.fixture()
def resources(world, fabric, geoip, engine, google, facebook, cities):
    from repro.cellular import BandwidthPolicy

    # Give every operator a bandwidth policy for testbed runs.
    for name, (nd, nu, rd, ru) in {
        "Movistar": (60.0, 20.0, 11.0, 6.0),
        "Etisalat": (90.0, 30.0, 8.0, 5.0),
        "dtac": (35.0, 15.0, 20.0, 10.0),
        "Play": (50.0, 20.0, 12.0, 6.0),
        "Singtel": (120.0, 40.0, 10.0, 6.0),
    }.items():
        world["operators"].get(name).bandwidth = BandwidthPolicy(nd, nu, rd, ru)

    dns_services = {
        "Google DNS": DNSService(
            name="Google DNS", anycast=True, supports_doh=True,
            anycast_miss_rate=0.0,  # deterministic nearest-site for unit tests
            sites=[
                _site(cities, "Amsterdam", "NLD", "192.0.2.10"),
                _site(cities, "Singapore", "SGP", "192.0.2.11"),
            ],
        ),
        "Singtel": DNSService(
            name="Singtel", sites=[_site(cities, "Singapore", "SGP", "192.0.2.12")]
        ),
        "dtac": DNSService(
            name="dtac", sites=[_site(cities, "Bangkok", "THA", "192.0.2.13")]
        ),
        "Movistar": DNSService(
            name="Movistar", sites=[_site(cities, "Madrid", "ESP", "192.0.2.14")]
        ),
        "Etisalat": DNSService(
            name="Etisalat", sites=[_site(cities, "Abu Dhabi", "ARE", "192.0.2.15")]
        ),
    }
    cdns = {
        "Cloudflare": CDNProvider(
            name="Cloudflare",
            edges=[
                _site(cities, "Amsterdam", "NLD", "192.0.2.20"),
                _site(cities, "Singapore", "SGP", "192.0.2.21"),
                _site(cities, "Bangkok", "THA", "192.0.2.22"),
                _site(cities, "Madrid", "ESP", "192.0.2.23"),
            ],
            origin=_site(cities, "San Jose", "USA", "192.0.2.24"),
        ),
    }
    ookla = SpeedtestFleet(
        name="Ookla",
        servers=[
            SpeedtestServer(_site(cities, "Amsterdam", "NLD", "192.0.2.30")),
            SpeedtestServer(_site(cities, "Singapore", "SGP", "192.0.2.31")),
            SpeedtestServer(_site(cities, "Bangkok", "THA", "192.0.2.32")),
            SpeedtestServer(_site(cities, "Madrid", "ESP", "192.0.2.33")),
            SpeedtestServer(_site(cities, "Abu Dhabi", "ARE", "192.0.2.34")),
        ],
    )
    return TestbedResources(
        fabric=fabric,
        geoip=geoip,
        traceroute_engine=engine,
        operators=world["operators"],
        ookla=ookla,
        cdns=cdns,
        dns_services=dns_services,
        sp_targets={"Google": google, "Facebook": facebook},
        player=AdaptiveBitratePlayer(),
    )


@pytest.fixture()
def rng():
    return random.Random(77)


def _esim(world, b_mno, plan, rng):
    from repro.cellular import RSPServer

    return RSPServer("Airalo").issue(world["operators"].get(b_mno), plan, rng)


@pytest.fixture()
def airalo_esim_esp(world, rng):
    return _esim(world, "Play", "ESP", rng)


@pytest.fixture()
def airalo_esim_are(world, rng):
    return _esim(world, "Singtel", "ARE", rng)


@pytest.fixture()
def airalo_esim_tha(world, rng):
    return _esim(world, "dtac", "THA", rng)


def make_session(world, sim, city_name, iso3, v_mno, rng):
    from repro.cellular import UserEquipment

    ue = UserEquipment.provision("Samsung S21+ 5G", world["cities"].get(city_name, iso3), rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, v_mno, world["factory"], rng)
    return ue, session


@pytest.fixture()
def conditions():
    from repro.cellular import RadioAccessTechnology, RadioConditions

    return RadioConditions(RadioAccessTechnology.NR, cqi=11, rsrp_dbm=-85, snr_db=14)
