"""Tests for attach-procedure timing."""

import random

import pytest

from repro.cellular import estimate_attach_time_ms
from repro.net import LatencyModel
from tests.measure.conftest import make_session


@pytest.fixture()
def latency():
    return LatencyModel()


def _sessions(world, rng):
    from repro.cellular import RSPServer

    operators = world["operators"]
    rsp = RSPServer("Airalo")
    out = {}
    for label, b_mno, plan, city, iso3, v_mno in (
        ("hr", "Singtel", "ARE", "Abu Dhabi", "ARE", "Etisalat"),
        ("ihbo", "Play", "ESP", "Madrid", "ESP", "Movistar"),
        ("native", "dtac", "THA", "Bangkok", "THA", "dtac"),
    ):
        sim = rsp.issue(operators.get(b_mno), plan, rng)
        _, session = make_session(world, sim, city, iso3, v_mno, rng)
        out[label] = session
    return out


def test_roaming_attaches_slower_than_native(world, rng, latency):
    sessions = _sessions(world, rng)
    operators = world["operators"]
    timings = {
        label: estimate_attach_time_ms(session, operators, latency)
        for label, session in sessions.items()
    }
    assert timings["hr"].total_ms > timings["ihbo"].total_ms > timings["native"].total_ms
    # The HR gap is driven by authentication to the distant HSS.
    assert timings["hr"].authentication_ms > 3 * timings["native"].authentication_ms


def test_breakdown_positive_and_consistent(world, rng, latency):
    sessions = _sessions(world, rng)
    timing = estimate_attach_time_ms(sessions["ihbo"], world["operators"], latency)
    assert timing.rrc_ms > 0
    assert timing.authentication_ms > 0
    assert timing.session_setup_ms > 0
    assert timing.total_ms == pytest.approx(
        timing.rrc_ms + timing.authentication_ms + timing.session_setup_ms
    )


def test_sampling_deterministic_per_seed(world, rng, latency):
    sessions = _sessions(world, rng)
    operators = world["operators"]
    a = estimate_attach_time_ms(sessions["hr"], operators, latency, random.Random(5))
    b = estimate_attach_time_ms(sessions["hr"], operators, latency, random.Random(5))
    assert a == b
    deterministic = estimate_attach_time_ms(sessions["hr"], operators, latency)
    assert a.total_ms != deterministic.total_ms  # jitter applied
