"""Tests for the traceroute engine and its paper-style post-processing."""

import random

import pytest

from repro.measure.traceroute import TracerouteEngine, postprocess
from repro.net.ipv4 import is_private_ip
from tests.measure.conftest import make_session


@pytest.fixture()
def ihbo(world, airalo_esim_esp, rng):
    ue, session = make_session(world, airalo_esim_esp, "Madrid", "ESP", "Movistar", rng)
    return airalo_esim_esp, session


@pytest.fixture()
def hr(world, airalo_esim_are, rng):
    ue, session = make_session(world, airalo_esim_are, "Abu Dhabi", "ARE", "Etisalat", rng)
    return airalo_esim_are, session


@pytest.fixture()
def native(world, airalo_esim_tha, rng):
    ue, session = make_session(world, airalo_esim_tha, "Bangkok", "THA", "dtac", rng)
    return airalo_esim_tha, session


def test_path_structure_private_then_public(engine, google, ihbo, conditions, rng):
    sim, session = ihbo
    result = engine.trace(session, google, conditions, rng)
    responded = result.responding_hops
    assert responded, "some hops must respond"
    # Once public, never private again.
    seen_public = False
    for hop in responded:
        if not is_private_ip(hop.ip):
            seen_public = True
        else:
            assert not seen_public, "private hop after public breakout"
    # Final hop is the Google edge.
    assert result.hops[-1].ip == result.target_ip


def test_first_public_hop_is_session_public_ip(engine, google, ihbo, conditions):
    sim, session = ihbo
    rng = random.Random(0)
    result = engine.trace(session, google, conditions, rng)
    publics = [h for h in result.responding_hops if not is_private_ip(h.ip)]
    # The demarcation point is the CG-NAT binding (unless it timed out).
    assert publics[0].ip in (str(session.public_ip), result.target_ip) or publics[0].ip


def test_rtts_monotone_along_base_path(engine, google, hr, conditions):
    sim, session = hr
    rng = random.Random(1)
    result = engine.trace(session, google, conditions, rng)
    responded = result.responding_hops
    # Jitter can locally reorder, but last hop must exceed first hop.
    assert responded[-1].rtt_ms > responded[0].rtt_ms * 0.9


def test_postprocess_counts_and_demarcation(engine, google, ihbo, conditions, geoip):
    sim, session = ihbo
    rng = random.Random(2)
    result = engine.trace(session, google, conditions, rng)
    record = postprocess(result, session, sim, conditions, geoip)
    assert record.private_hops >= session.private_hop_count
    assert record.public_hops >= 1
    assert record.path_length == record.private_hops + record.public_hops
    if record.pgw_ip is not None:
        assert not is_private_ip(record.pgw_ip)


def test_postprocess_identifies_pgw_provider_asn(engine, google, ihbo, conditions, geoip):
    sim, session = ihbo
    rng = random.Random(3)
    # Run until the CG-NAT responds (response rate 0.9).
    for _ in range(10):
        result = engine.trace(session, google, conditions, rng)
        record = postprocess(result, session, sim, conditions, geoip)
        if record.pgw_ip == str(session.public_ip):
            assert geoip.asn_of(record.pgw_ip) == 54825
            break
    else:
        pytest.fail("CG-NAT never responded in 10 runs")


def test_unique_asns_direct_peering_is_two(engine, google, ihbo, conditions, geoip):
    sim, session = ihbo
    rng = random.Random(4)
    counts = []
    for _ in range(30):
        result = engine.trace(session, google, conditions, rng)
        record = postprocess(result, session, sim, conditions, geoip)
        counts.append(len(record.unique_asns))
    # Packet Host peers directly with Google: typically 2 unique ASNs.
    assert sorted(counts)[len(counts) // 2] == 2


def test_native_shorter_private_rtt_than_hr(engine, google, native, hr, conditions, geoip):
    rng = random.Random(5)
    sim_n, session_n = native
    sim_h, session_h = hr

    def pgw_rtt(sim, session):
        for _ in range(10):
            record = postprocess(
                engine.trace(session, google, conditions, rng),
                session, sim, conditions, geoip,
            )
            if record.pgw_rtt_ms is not None:
                return record.pgw_rtt_ms
        pytest.fail("no PGW RTT observed")

    assert pgw_rtt(sim_h, session_h) > 3 * pgw_rtt(sim_n, session_n)


def test_private_latency_share_hr_dominates(engine, google, hr, conditions, geoip):
    sim, session = hr
    rng = random.Random(6)
    shares = []
    for _ in range(20):
        record = postprocess(
            engine.trace(session, google, conditions, rng),
            session, sim, conditions, geoip,
        )
        share = record.private_latency_share
        if share is not None:
            shares.append(share)
    assert shares
    # HR: private segment is ~all of the end-to-end latency (Figure 12b).
    assert sorted(shares)[len(shares) // 2] > 0.95


def test_cgnat_timeout_hides_pgw_asn(fabric, addressbook, google, ihbo, conditions, geoip):
    sim, session = ihbo
    engine = TracerouteEngine(fabric, addressbook, cgnat_response_rate=0.0)
    rng = random.Random(7)
    record = postprocess(
        engine.trace(session, google, conditions, rng),
        session, sim, conditions, geoip,
    )
    # With the CG-NAT silent, the PGW provider's ASN disappears from the
    # traceroute (the Germany/Facebook effect in Figure 6).
    assert 54825 not in record.unique_asns
    assert record.pgw_ip != str(session.public_ip)


def test_engine_validation(fabric, addressbook):
    with pytest.raises(ValueError):
        TracerouteEngine(fabric, addressbook, cgnat_response_rate=1.5)


def test_trace_deterministic_per_seed(engine, google, ihbo, conditions):
    sim, session = ihbo
    a = engine.trace(session, google, conditions, random.Random(42))
    b = engine.trace(session, google, conditions, random.Random(42))
    assert a.hops == b.hops


def test_cgnat_override_applies_per_country_target(fabric, addressbook, google, facebook, ihbo, conditions, geoip):
    sim, session = ihbo  # Madrid device: country ESP
    engine = TracerouteEngine(
        fabric, addressbook,
        cgnat_response_overrides={("ESP", "Facebook"): 0.0},
    )
    rng = random.Random(13)
    fb = postprocess(engine.trace(session, facebook, conditions, rng),
                     session, sim, conditions, geoip)
    postprocess(engine.trace(session, google, conditions, rng),
                session, sim, conditions, geoip)
    # Facebook path hides the CG-NAT; Google unaffected (rate 0.9).
    assert fb.pgw_ip != str(session.public_ip)
    assert 54825 not in fb.unique_asns


def test_cgnat_override_validation(fabric, addressbook):
    with pytest.raises(ValueError):
        TracerouteEngine(fabric, addressbook,
                         cgnat_response_overrides={("DEU", "Facebook"): 1.5})
