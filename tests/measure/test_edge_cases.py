"""Edge-case tests: give-up paths, cache behaviour, status dynamics."""

import random


from repro.experiments import common
from repro.measure.webcampaign import WebCampaignRunner, WebVolunteer


def test_web_campaign_gives_up_after_max_attempts(world, resources):
    """A volunteer whose uploads almost always fail stops at 3x budget."""
    from repro.cellular import RSPServer

    rng = random.Random(31)
    esim = RSPServer("Airalo").issue(world["operators"].get("Play"), "ESP", rng)
    volunteer = WebVolunteer(
        name="unlucky", country_iso3="ESP",
        city=world["cities"].get("Madrid", "ESP"),
        esim=esim, v_mno_name="Movistar",
        duration_days=2, planned_measurements=6,
        upload_reliability=0.05,
    )
    runner = WebCampaignRunner(
        fabric=resources.fabric,
        fastcom=resources.ookla,
        dns_services=resources.dns_services,
        operators=world["operators"],
        factory=world["factory"],
    )
    dataset = runner.run([volunteer], rng)
    # Fewer than planned, and attempts were bounded.
    assert len(dataset.web_measurements) < 6
    assert runner.rejected_uploads <= 18


def test_endpoint_battery_eventually_recharges(world, resources, rng):
    from repro.measure.amigo import CountryDeployment, MeasurementEndpoint
    from repro.cellular import RSPServer
    from repro.cellular.esim import issue_physical_sim

    operators = world["operators"]
    deployment = CountryDeployment(
        country_iso3="ESP",
        city=world["cities"].get("Madrid", "ESP"),
        physical_sim=issue_physical_sim(operators.get("Movistar"), rng),
        esim=RSPServer("Airalo").issue(operators.get("Play"), "ESP", rng),
        v_mno_physical="Movistar",
        v_mno_esim="Movistar",
        duration_days=60,
    )
    endpoint = MeasurementEndpoint(deployment, resources, world["factory"], rng)
    levels = [endpoint.report_status(day).battery_pct for day in range(60)]
    assert all(5.0 <= level <= 100.0 for level in levels)
    # The volunteer recharged at least once over two months.
    assert any(b > a for a, b in zip(levels, levels[1:]))


def test_experiment_caches_are_shared_and_clearable():
    world_a = common.get_world(4242)
    world_b = common.get_world(4242)
    assert world_a is world_b
    dataset_a = common.get_device_dataset(0.02, 4242)
    dataset_b = common.get_device_dataset(0.02, 4242)
    assert dataset_a is dataset_b
    common.clear_caches()
    assert common.get_world(4242) is not world_a


def test_mna_offerings_grouping_matches_table2_shape():
    world = common.get_world()
    grouped = world.airalo.offerings_by_b_mno()
    # Six roaming issuers plus three native ones.
    assert len(grouped) == 9
    assert len(grouped["Singtel"]) == 5
    assert len(grouped["Play"]) == 4
    assert len(grouped["Telna Mobile"]) == 4
    assert len(grouped["Telecom Italia"]) == 4
    assert len(grouped["Orange"]) == 2
    assert len(grouped["Polkomtel"]) == 2
