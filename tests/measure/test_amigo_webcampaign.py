"""Tests for the AmiGo testbed and the web campaign runner."""

import random

import pytest

from repro.cellular import SIMKind
from repro.measure.amigo import (
    AmigoControlServer,
    CountryDeployment,
    MeasurementEndpoint,
    _share,
)
from repro.measure.dataset import MeasurementDataset
from repro.measure.webcampaign import (
    ScreenshotUpload,
    ScreenshotValidator,
    UploadRejected,
    WebCampaignRunner,
    WebVolunteer,
)
from repro.cellular.esim import issue_physical_sim


def _deployment(world, rng, country="ESP", days=2):
    cities = world["cities"]
    operators = world["operators"]
    from repro.cellular import RSPServer

    esim = RSPServer("Airalo").issue(operators.get("Play"), country, rng)
    physical = issue_physical_sim(operators.get("Movistar"), rng)
    return CountryDeployment(
        country_iso3=country,
        city=cities.get("Madrid", "ESP"),
        physical_sim=physical,
        esim=esim,
        v_mno_physical="Movistar",
        v_mno_esim="Movistar",
        duration_days=days,
    )


def test_share_splits_evenly():
    assert [_share(10, d, 4) for d in range(4)] == [3, 3, 2, 2]
    assert sum(_share(7, d, 3) for d in range(3)) == 7
    assert [_share(1, d, 5) for d in range(5)] == [1, 0, 0, 0, 0]


def test_deployment_validation(world, rng):
    with pytest.raises(ValueError):
        _deployment(world, rng, days=0)


def test_endpoint_runs_battery_on_both_sims(world, resources, rng):
    endpoint = MeasurementEndpoint(_deployment(world, rng), resources, world["factory"], rng)
    plan = {"speedtest": (2, 3), "mtr:Google": (1, 1), "dns": (1, 1)}
    dataset = endpoint.run_battery(plan, day=0)
    assert len(dataset.speedtests) == 5
    sim_runs = [r for r in dataset.speedtests if r.context.sim_kind is SIMKind.PHYSICAL]
    esim_runs = [r for r in dataset.speedtests if r.context.sim_kind is SIMKind.ESIM]
    assert len(sim_runs) == 2 and len(esim_runs) == 3
    assert len(dataset.traceroutes) == 2
    assert len(dataset.dns_probes) == 2
    # Physical SIM is native; eSIM roams via IHBO.
    assert {r.context.config_label for r in dataset.speedtests} == {"SIM", "eSIM/IHBO"}


def test_endpoint_rejects_unknown_test(world, resources, rng):
    endpoint = MeasurementEndpoint(_deployment(world, rng), resources, world["factory"], rng)
    with pytest.raises(ValueError):
        endpoint.run_battery({"bogus": (1, 0)}, day=0)


def test_endpoint_status_reports(world, resources, rng):
    endpoint = MeasurementEndpoint(_deployment(world, rng), resources, world["factory"], rng)
    status = endpoint.report_status(day=0)
    assert status.imei == endpoint.device.imei
    assert 0 < status.battery_pct <= 100
    assert 1 <= status.conditions.cqi <= 15


def test_control_server_campaign(world, resources, rng):
    server = AmigoControlServer(resources, world["factory"])
    server.register_endpoint(_deployment(world, rng, days=3), random.Random(1))
    plans = {"ESP": {"speedtest": (6, 6), "cdn:Cloudflare": (3, 3), "video": (2, 2)}}
    dataset = server.run_campaign(plans)
    assert len(dataset.speedtests) == 12
    assert len(dataset.cdn_fetches) == 6
    assert len(dataset.video_probes) == 4
    # One status ping per day.
    assert len(server.status_log) == 3


def test_control_server_skips_unplanned_country(world, resources, rng):
    server = AmigoControlServer(resources, world["factory"])
    server.register_endpoint(_deployment(world, rng), random.Random(2))
    dataset = server.run_campaign({"THA": {"speedtest": (1, 1)}})
    assert dataset.total_records() == 0


def test_dataset_merge_and_slices(world, resources, rng):
    endpoint = MeasurementEndpoint(_deployment(world, rng), resources, world["factory"], rng)
    ds = endpoint.run_battery({"speedtest": (2, 2), "mtr:Google": (2, 2)}, day=0)
    assert ds.countries() == ["ESP"]
    assert len(ds.traceroutes_to("Google", country="esp")) == 4
    assert len(ds.traceroutes_to("Google", sim_kind=SIMKind.ESIM)) == 2
    assert len(ds.speedtests_where(country="ESP", sim_kind=SIMKind.PHYSICAL)) == 2
    other = MeasurementDataset()
    other.merge(ds)
    assert other.total_records() == ds.total_records()


def test_validator_rules():
    validator = ScreenshotValidator()
    validator.validate(ScreenshotUpload(True, "Movistar"), "Movistar")
    with pytest.raises(UploadRejected):
        validator.validate(ScreenshotUpload(False, "Movistar"), "Movistar")
    with pytest.raises(UploadRejected):
        validator.validate(ScreenshotUpload(True, "Vodafone"), "Movistar")
    with pytest.raises(UploadRejected):
        validator.validate(ScreenshotUpload(True, "Movistar", readable=False), "Movistar")


def _web_runner(world, resources):
    return WebCampaignRunner(
        fabric=resources.fabric,
        fastcom=resources.ookla,  # stands in for the Netflix fleet here
        dns_services=resources.dns_services,
        operators=world["operators"],
        factory=world["factory"],
    )


def test_web_campaign_produces_planned_measurements(world, resources, rng):
    from repro.cellular import RSPServer

    esim = RSPServer("Airalo").issue(world["operators"].get("Play"), "ESP", rng)
    volunteer = WebVolunteer(
        name="v1", country_iso3="ESP", city=world["cities"].get("Madrid", "ESP"),
        esim=esim, v_mno_name="Movistar", duration_days=5, planned_measurements=8,
        upload_reliability=0.8,
    )
    runner = _web_runner(world, resources)
    dataset = runner.run([volunteer], random.Random(3))
    assert len(dataset.web_measurements) == 8
    record = dataset.web_measurements[0]
    assert record.volunteer == "v1"
    assert record.resolver_service == "Google DNS"
    assert record.download_mbps > 0
    assert record.context.architecture.label == "IHBO"


def test_web_campaign_counts_rejections(world, resources):
    from repro.cellular import RSPServer

    rng = random.Random(9)
    esim = RSPServer("Airalo").issue(world["operators"].get("Play"), "ESP", rng)
    volunteer = WebVolunteer(
        name="clumsy", country_iso3="ESP", city=world["cities"].get("Madrid", "ESP"),
        esim=esim, v_mno_name="Movistar", duration_days=3, planned_measurements=5,
        upload_reliability=0.5,
    )
    runner = _web_runner(world, resources)
    runner.run([volunteer], rng)
    assert runner.rejected_uploads > 0


def test_web_volunteer_validation(world, rng):
    from repro.cellular import RSPServer

    esim = RSPServer("Airalo").issue(world["operators"].get("Play"), "ESP", rng)
    city = world["cities"].get("Madrid", "ESP")
    with pytest.raises(ValueError):
        WebVolunteer("x", "ESP", city, esim, "Movistar", 0, 5)
    with pytest.raises(ValueError):
        WebVolunteer("x", "ESP", city, esim, "Movistar", 3, 5, upload_reliability=0.0)
