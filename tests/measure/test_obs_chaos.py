"""CampaignHealth ledger vs emitted fault telemetry, under chaos.

Every injected fault emits exactly one span event (``fault.<kind>``)
from :class:`repro.faults.FaultPlan`, every backoff one ``retry.backoff``
and every breaker trip one ``breaker.open``. The health ledger counts
the same incidents through a completely different path (the campaign
drivers), so agreement between the two is a strong end-to-end check on
both — and the whole thing must replay identically from the same seeds.
"""

import pytest

from repro import obs
from repro.faults import ChaosConfig
from repro.worlds import build_airalo_world

SCALE = 0.05
SEED = 2024
CHAOS_SEED = 7


@pytest.fixture(scope="module")
def traced_campaign():
    chaos = ChaosConfig.paper_plausible(seed=CHAOS_SEED)
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        world = build_airalo_world(seed=SEED)
        dataset = world.run_device_campaign(scale=SCALE, chaos=chaos)
    return recorder, dataset


def _event_count(recorder, name):
    return len(recorder.span_events(name))


def test_attach_fault_events_match_ledger(traced_campaign):
    recorder, dataset = traced_campaign
    health = dataset.health
    attach_faults = (
        _event_count(recorder, "fault.attach-reject")
        + _event_count(recorder, "fault.sim-flip")
    )
    assert attach_faults > 0
    # Each injected attach fault either burned a retry or became the
    # final give-up on that attach.
    assert attach_faults == health.attach_retries + health.attach_failures


def test_test_fault_events_match_ledger(traced_campaign):
    recorder, dataset = traced_campaign
    health = dataset.health
    test_faults = (
        _event_count(recorder, "fault.service-outage")
        + _event_count(recorder, "fault.probe-timeout")
    )
    assert test_faults > 0
    assert test_faults == health.retried_total


def test_breaker_events_match_quarantine_ledger(traced_campaign):
    recorder, dataset = traced_campaign
    assert _event_count(recorder, "breaker.open") == len(dataset.health.quarantines)


def test_every_fault_burned_exactly_one_backoff(traced_campaign):
    recorder, _dataset = traced_campaign
    faults = sum(
        _event_count(recorder, f"fault.{kind}")
        for kind in (
            "attach-reject", "sim-flip", "service-outage", "probe-timeout",
        )
    )
    assert _event_count(recorder, "retry.backoff") == faults


def test_fault_events_land_on_endpoint_spans(traced_campaign):
    recorder, _dataset = traced_campaign
    endpoint_spans = [s for s in recorder.spans if s.name == "campaign.endpoint"]
    assert endpoint_spans
    on_endpoints = sum(
        1 for span in endpoint_spans for event in span.events
        if event.name.startswith("fault.")
    )
    total = sum(
        1 for event in recorder.span_events() if event.name.startswith("fault.")
    )
    assert on_endpoints == total  # none leaked to outer spans or orphans


def test_web_retry_chatter_is_debug_and_exhaustion_warns(caplog):
    import logging

    # 90% malformed uploads: plenty of per-attempt retry chatter and
    # volunteers guaranteed to exhaust their attempt budget.
    chaos = ChaosConfig(enabled=True, seed=1, malformed_upload_rate=0.9)
    world = build_airalo_world(seed=SEED)
    with caplog.at_level(logging.DEBUG, logger="repro.measure.webcampaign"):
        dataset = world.run_web_campaign(chaos=chaos)
    assert dataset.health.dropped_total > 0
    rejected = [r for r in caplog.records if "upload rejected" in r.message]
    assert rejected
    assert all(r.levelno == logging.DEBUG for r in rejected)
    exhausted = [r for r in caplog.records if "exhausting retries" in r.message]
    assert exhausted
    assert all(r.levelno == logging.WARNING for r in exhausted)


def test_chaos_telemetry_replays_identically():
    def run():
        chaos = ChaosConfig.paper_plausible(seed=CHAOS_SEED)
        recorder = obs.TraceRecorder()
        with obs.use_recorder(recorder):
            world = build_airalo_world(seed=SEED)
            world.run_device_campaign(scale=SCALE, chaos=chaos)
        return [
            (event.name, sorted(event.attrs.items()))
            for event in recorder.span_events()
        ]

    assert run() == run()
