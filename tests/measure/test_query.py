"""Equivalence and maintenance tests for the indexed query layer.

The contract of :mod:`repro.measure.query` is: every indexed query
returns *exactly* what the naive list comprehension it replaced
returned — same records, same order — on clean and chaos-degraded
campaigns alike. These tests pin that contract, plus the index
maintenance rules (staleness rebuild, ``merge`` invalidation, pickle
byte-stability).
"""

import pickle

import pytest

from repro.cellular.esim import SIMKind
from repro.experiments import common
from repro.faults import ChaosConfig
from repro.measure.dataset import MeasurementDataset
from repro.measure.query import KIND_FIELDS, dimensions_for


SEED = 424
SCALE = 0.03


@pytest.fixture(scope="module")
def clean_dataset():
    return common.get_device_dataset(SCALE, SEED)


@pytest.fixture(scope="module")
def chaos_dataset():
    return common.get_device_dataset(
        SCALE, SEED, chaos=ChaosConfig.paper_plausible(SEED)
    )


@pytest.fixture(scope="module", params=["clean", "chaos"])
def dataset(request, clean_dataset, chaos_dataset):
    return clean_dataset if request.param == "clean" else chaos_dataset


def naive(dataset, kind, **dims):
    """The pre-index implementation: one full scan per call."""
    extractors = dimensions_for(kind)
    records = getattr(dataset, KIND_FIELDS[kind])
    out = []
    for record in records:
        if all(extractors[d](record) == v for d, v in dims.items()):
            out.append(record)
    return out


# ---------------------------------------------------------------------------
# Indexed vs naive equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(KIND_FIELDS))
def test_single_dimension_matches_naive(dataset, kind):
    query = dataset.select(kind)
    for country in query.values("country"):
        indexed = query.where(country=country).records()
        assert indexed == naive(dataset, kind, country=country)


def test_multi_dimension_matches_naive(dataset):
    for kind in ("speedtest", "cdn", "dns"):
        query = dataset.select(kind)
        for country in query.values("country"):
            for sim_kind in (SIMKind.PHYSICAL, SIMKind.ESIM):
                assert query.where(
                    country=country, sim_kind=sim_kind
                ).records() == naive(
                    dataset, kind, country=country, sim_kind=sim_kind
                )


def test_count_matches_record_count(dataset):
    for kind in sorted(KIND_FIELDS):
        query = dataset.select(kind)
        assert query.count() == len(getattr(dataset, KIND_FIELDS[kind]))
        for country in query.values("country"):
            narrowed = query.where(country=country)
            assert narrowed.count() == len(narrowed.records())
            assert len(narrowed) == narrowed.count()


def test_group_by_partitions_in_insertion_order(dataset):
    groups = dataset.select("speedtest").group_by("country")
    assert list(groups) == sorted(groups)
    recovered = [r for bucket in groups.values() for r in bucket]
    assert sorted(map(id, recovered)) == sorted(map(id, dataset.speedtests))
    for country, bucket in groups.items():
        assert bucket == naive(dataset, "speedtest", country=country)


def test_group_by_two_dimensions_matches_naive(dataset):
    groups = dataset.select("speedtest").group_by("country", "sim_kind")
    for (country, sim_kind), bucket in groups.items():
        assert bucket == naive(
            dataset, "speedtest", country=country, sim_kind=sim_kind
        )


def test_count_by_matches_group_by(dataset):
    query = dataset.select("cdn").where(provider="Cloudflare")
    counts = query.count_by("country")
    groups = query.group_by("country")
    assert counts == {country: len(bucket) for country, bucket in groups.items()}


def test_filter_composes_with_where(dataset):
    query = dataset.select("speedtest").filter(lambda r: r.passes_cqi_filter)
    for country in dataset.select("speedtest").values("country"):
        expected = [
            r
            for r in naive(dataset, "speedtest", country=country)
            if r.passes_cqi_filter
        ]
        assert query.where(country=country).records() == expected


def test_where_is_immutable_refinement(dataset):
    base = dataset.select("speedtest")
    esim = base.where(sim_kind=SIMKind.ESIM)
    physical = base.where(sim_kind=SIMKind.PHYSICAL)
    assert esim.count() + physical.count() == base.count()
    # Refining one branch never perturbs the other or the base.
    assert base.count() == len(dataset.speedtests)


def test_where_ignores_none_and_uppercases_country(dataset):
    query = dataset.select("speedtest")
    country = query.values("country")[0]
    assert query.where(country=None, sim_kind=None).records() == query.records()
    assert (
        query.where(country=country.lower()).records()
        == query.where(country=country).records()
    )


def test_legacy_helpers_delegate_to_index(dataset):
    country = dataset.select("speedtest").values("country")[0]
    assert dataset.speedtests_where(country=country) == naive(
        dataset, "speedtest", country=country
    )
    assert dataset.speedtests_where(country=country, cqi_filtered=True) == [
        r
        for r in naive(dataset, "speedtest", country=country)
        if r.passes_cqi_filter
    ]


def test_unknown_kind_and_dimension_raise(dataset):
    with pytest.raises(KeyError, match="unknown record kind"):
        dataset.select("telemetry")
    with pytest.raises(KeyError, match="unknown dimension"):
        dataset.select("speedtest").where(provider="Cloudflare").records()


# ---------------------------------------------------------------------------
# Index maintenance
# ---------------------------------------------------------------------------

def _small_copy(dataset, n=12):
    """A mutable dataset sharing no record *lists* with the module fixture."""
    return MeasurementDataset(
        speedtests=list(dataset.speedtests[:n]),
        cdn_fetches=list(dataset.cdn_fetches[:n]),
    )


def test_append_after_index_build_is_seen(clean_dataset):
    small = _small_copy(clean_dataset)
    before = small.select("speedtest").count_by("country")
    extra = clean_dataset.speedtests[-1]
    small.speedtests.append(extra)
    after = small.select("speedtest").count_by("country")
    assert sum(after.values()) == sum(before.values()) + 1
    key = extra.context.country_iso3
    assert after[key] == before.get(key, 0) + 1


def test_merge_invalidates_and_rebuilds(clean_dataset):
    left = _small_copy(clean_dataset, n=8)
    right = MeasurementDataset(
        speedtests=list(clean_dataset.speedtests[8:16]),
        cdn_fetches=list(clean_dataset.cdn_fetches[8:16]),
    )
    # Build indexes on both sides first, then merge.
    assert left.select("speedtest").count() == len(left.speedtests)
    assert right.select("cdn").count() == len(right.cdn_fetches)
    left.merge(right)
    assert left.select("speedtest").records() == left.speedtests
    assert left.select("cdn").records() == left.cdn_fetches
    for country in left.select("speedtest").values("country"):
        assert left.select("speedtest").where(
            country=country
        ).records() == naive(left, "speedtest", country=country)


def test_index_cache_is_reused_until_invalidated(clean_dataset):
    small = _small_copy(clean_dataset)
    first = small.index.kind("speedtest")
    assert small.index.kind("speedtest") is first
    small.invalidate_indexes()
    assert small.index.kind("speedtest") is not first


def test_pickle_drops_index_cache(clean_dataset):
    plain = _small_copy(clean_dataset)
    queried = _small_copy(clean_dataset)
    queried.select("speedtest").group_by("country")  # force index build
    assert "_index_cache" in queried.__dict__
    assert pickle.dumps(queried) == pickle.dumps(plain)
    revived = pickle.loads(pickle.dumps(queried))
    assert "_index_cache" not in revived.__dict__
    assert revived.select("speedtest").count() == queried.select("speedtest").count()
