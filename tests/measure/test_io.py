"""Tests for campaign dataset persistence and result export."""

import json

import pytest

from repro.experiments.export import jsonable, save_result
from repro.measure.io import load_dataset, save_dataset
from repro.measure.dataset import MeasurementDataset


@pytest.fixture()
def small_dataset(world, resources, rng):
    from repro.measure.amigo import CountryDeployment, MeasurementEndpoint
    from repro.cellular import RSPServer
    from repro.cellular.esim import issue_physical_sim

    operators = world["operators"]
    esim = RSPServer("Airalo").issue(operators.get("Play"), "ESP", rng)
    physical = issue_physical_sim(operators.get("Movistar"), rng)
    deployment = CountryDeployment(
        country_iso3="ESP",
        city=world["cities"].get("Madrid", "ESP"),
        physical_sim=physical,
        esim=esim,
        v_mno_physical="Movistar",
        v_mno_esim="Movistar",
    )
    endpoint = MeasurementEndpoint(deployment, resources, world["factory"], rng)
    return endpoint.run_battery(
        {"speedtest": (2, 2), "mtr:Google": (1, 1), "dns": (1, 1),
         "cdn:Cloudflare": (1, 1), "video": (1, 1)},
        day=0,
    )


def test_roundtrip_preserves_everything(small_dataset, tmp_path):
    path = tmp_path / "campaign.jsonl"
    count = save_dataset(small_dataset, path)
    assert count == small_dataset.total_records()
    loaded = load_dataset(path)
    assert loaded.total_records() == small_dataset.total_records()
    assert loaded.speedtests == small_dataset.speedtests
    assert loaded.traceroutes == small_dataset.traceroutes
    assert loaded.cdn_fetches == small_dataset.cdn_fetches
    assert loaded.dns_probes == small_dataset.dns_probes
    assert loaded.video_probes == small_dataset.video_probes


def test_loaded_dataset_supports_slicing(small_dataset, tmp_path):
    from repro.cellular import SIMKind

    path = tmp_path / "campaign.jsonl"
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    assert loaded.countries() == ["ESP"]
    assert len(loaded.speedtests_where(sim_kind=SIMKind.ESIM)) == 2


def test_empty_dataset_roundtrip(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert save_dataset(MeasurementDataset(), path) == 0
    assert load_dataset(path).total_records() == 0


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "speedtest", "record": {"nope": 1}}\n')
    with pytest.raises(ValueError, match="malformed"):
        load_dataset(path)


def test_blank_lines_ignored(small_dataset, tmp_path):
    path = tmp_path / "campaign.jsonl"
    save_dataset(small_dataset, path)
    content = path.read_text()
    path.write_text("\n" + content + "\n\n")
    assert load_dataset(path).total_records() == small_dataset.total_records()


def test_jsonable_flattens_tuples_and_dataclasses():
    from repro.analysis import boxplot_summary

    nested = {
        ("ESP", "eSIM/IHBO"): boxplot_summary([1.0, 2.0, 3.0]),
        "plain": [1, (2, 3), {"x": float("nan")}],
    }
    flat = jsonable(nested)
    assert "ESP|eSIM/IHBO" in flat
    assert flat["ESP|eSIM/IHBO"]["median"] == 2.0
    assert flat["plain"][1] == [2, 3]
    assert flat["plain"][2]["x"] == "nan"


def test_save_result_writes_valid_json(tmp_path):
    path = tmp_path / "out.json"
    save_result({("A", 1): {"v": 1.5}}, path)
    data = json.loads(path.read_text())
    assert data == {"A|1": {"v": 1.5}}


def test_roundtrip_preserves_web_records(tmp_path):
    from repro.experiments import common

    dataset = common.get_web_dataset()
    path = tmp_path / "web.jsonl"
    count = save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert count == dataset.total_records()
    assert loaded.web_measurements == dataset.web_measurements


def test_save_is_atomic_no_temp_leftovers(small_dataset, tmp_path):
    path = tmp_path / "campaign.jsonl"
    save_dataset(small_dataset, path)
    assert [p.name for p in tmp_path.iterdir()] == ["campaign.jsonl"]


def test_failed_save_leaves_no_file(tmp_path):
    class Exploding:
        """Stand-in record that breaks JSON encoding mid-stream."""

    dataset = MeasurementDataset()
    dataset.speedtests.append(Exploding())
    path = tmp_path / "campaign.jsonl"
    with pytest.raises(TypeError):
        save_dataset(dataset, path)
    assert list(tmp_path.iterdir()) == []


def test_truncated_file_raises_with_location(small_dataset, tmp_path):
    path = tmp_path / "campaign.jsonl"
    save_dataset(small_dataset, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
    with pytest.raises(ValueError, match="malformed"):
        load_dataset(path)


def test_save_result_roundtrips_real_experiment(tmp_path):
    from repro.core import ThickMnaStudy

    result = ThickMnaStudy(seed=2024).run("F7")
    path = tmp_path / "f7.json"
    save_result(result, path)
    data = json.loads(path.read_text())
    assert data == jsonable_strings(jsonable(result))


def jsonable_strings(value):
    """json round-trip normalisation (tuples->lists already done)."""
    return json.loads(json.dumps(value))
