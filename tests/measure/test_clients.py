"""Tests for the client wrappers (speedtest, DNS, CDN, video, ping)."""

import random

import pytest

from repro.cellular import SIMKind
from repro.measure import fetch_from_cdn, ping_provider, probe_dns, probe_video, run_speedtest
from tests.measure.conftest import make_session


@pytest.fixture()
def ihbo(world, airalo_esim_esp, rng):
    _, session = make_session(world, airalo_esim_esp, "Madrid", "ESP", "Movistar", rng)
    return airalo_esim_esp, session


@pytest.fixture()
def hr(world, airalo_esim_are, rng):
    _, session = make_session(world, airalo_esim_are, "Abu Dhabi", "ARE", "Etisalat", rng)
    return airalo_esim_are, session


def test_ping_returns_count_samples(resources, ihbo, conditions, rng):
    sim, session = ihbo
    samples = ping_provider(
        session, resources.sp_targets["Google"], resources.fabric, conditions, rng, count=6
    )
    assert len(samples) == 6
    assert all(s > 0 for s in samples)
    with pytest.raises(ValueError):
        ping_provider(
            session, resources.sp_targets["Google"], resources.fabric, conditions, rng, count=0
        )


def test_speedtest_record_context(resources, ihbo, conditions, rng):
    sim, session = ihbo
    record = run_speedtest(
        session, sim, resources.ookla, resources.fabric,
        resources.policy_for(session), conditions, rng, day=3,
    )
    ctx = record.context
    assert ctx.country_iso3 == "ESP"
    assert ctx.sim_kind is SIMKind.ESIM
    assert ctx.architecture.label == "IHBO"
    assert ctx.b_mno == "Play"
    assert ctx.pgw_provider == "Packet Host"
    assert ctx.pgw_country == "NLD"
    assert ctx.day == 3
    assert ctx.is_esim
    assert ctx.config_label == "eSIM/IHBO"
    assert record.server_city == "Amsterdam"
    assert record.passes_cqi_filter  # CQI 11 fixture


def test_dns_probe_identifies_google_resolver(resources, ihbo, conditions, rng):
    sim, session = ihbo
    record = probe_dns(
        session, sim, resources.dns_for(session), resources.fabric, conditions, rng
    )
    assert record.resolver_service == "Google DNS"
    assert record.resolver_country == "NLD"
    assert record.used_doh
    assert record.lookup_ms > 0


def test_dns_probe_hr_uses_b_mno(resources, hr, conditions, rng):
    sim, session = hr
    record = probe_dns(
        session, sim, resources.dns_for(session), resources.fabric, conditions, rng
    )
    assert record.resolver_service == "Singtel"
    assert record.resolver_country == "SGP"
    assert not record.used_doh


def test_cdn_fetch_steered_near_breakout(resources, ihbo, conditions, rng):
    sim, session = ihbo
    record = fetch_from_cdn(
        session, sim, resources.cdns["Cloudflare"], resources.dns_for(session),
        resources.fabric, resources.policy_for(session), conditions, rng,
    )
    assert record.provider == "Cloudflare"
    assert record.edge_city == "Amsterdam"  # resolver near the PGW
    assert record.total_ms > record.dns_ms


def test_video_probe_reports_resolutions(resources, ihbo, conditions, rng):
    sim, session = ihbo
    record = probe_video(
        session, sim, resources.player, resources.fabric,
        resources.policy_for(session), conditions, rng,
    )
    assert sum(record.resolution_counts.values()) == 30
    assert record.dominant_resolution.endswith("p")


def test_video_probe_honours_youtube_cap(resources, ihbo, conditions):
    sim, session = ihbo
    uncapped = probe_video(
        session, sim, resources.player, resources.fabric,
        resources.policy_for(session), conditions, random.Random(5),
    )
    capped = probe_video(
        session, sim, resources.player, resources.fabric,
        resources.policy_for(session), conditions, random.Random(5),
        youtube_cap_mbps=1.5,
    )

    def max_res(record):
        return max(int(label.rstrip("p")) for label in record.resolution_counts)

    assert max_res(capped) < max_res(uncapped)


def test_policy_for_falls_back_to_parent(resources, world):
    from repro.cellular import MobileOperator, OperatorKind, PLMN

    mvno = MobileOperator(
        name="Movistar MVNO", country_iso3="ESP", plmn=PLMN("214", "08"),
        asn=3352, kind=OperatorKind.MVNO, parent_name="Movistar",
    )
    world["operators"].add(mvno)

    class FakeSession:
        v_mno_name = "Movistar MVNO"

    policy = resources.policy_for(FakeSession())
    assert policy is world["operators"].get("Movistar").bandwidth


def test_dns_for_unknown_operator_raises_configuration_error(resources):
    from repro.measure import ConfigurationError

    class FakeSession:
        dns_operator = "Nobody"
        session_id = "sess-42"
        v_mno_name = "Movistar"

    with pytest.raises(ConfigurationError) as excinfo:
        resources.dns_for(FakeSession())
    message = str(excinfo.value)
    assert "'Nobody'" in message
    assert "sess-42" in message
    assert "Movistar" in message


def test_policy_for_unconfigured_operator_raises_configuration_error(resources, world):
    from repro.cellular import MobileOperator, OperatorKind, PLMN
    from repro.measure import ConfigurationError

    bare = MobileOperator(
        name="Barebones", country_iso3="ESP", plmn=PLMN("214", "42"),
        asn=64500, kind=OperatorKind.MNO,
    )
    world["operators"].add(bare)

    class FakeSession:
        v_mno_name = "Barebones"
        session_id = "sess-7"

    with pytest.raises(ConfigurationError) as excinfo:
        resources.policy_for(FakeSession())
    message = str(excinfo.value)
    assert "Barebones" in message
    assert "sess-7" in message
