"""Critical-path extraction and per-phase attribution over traces."""

from repro.obs.critical import critical_path, phase_attribution, render_critical
from repro.obs.sink import TraceData


def span(name, span_id, parent_id=None, start=0.0, duration=1.0, **attrs):
    return {
        "name": name, "span_id": span_id, "parent_id": parent_id,
        "start_unix": start, "duration_s": duration, "status": "ok",
        "attrs": attrs, "events": [],
    }


def make_trace():
    """run_all(10s) -> warm(2s) + two artefacts; T2 finishes last and
    owns a 3 s cache load."""
    return TraceData(trace_id="t", spans=[
        span("run_all", "root", start=0.0, duration=10.0),
        span("warm_inputs", "warm", "root", start=0.0, duration=2.0),
        span("artefact", "a-f7", "root", start=2.0, duration=3.0, id="F7"),
        span("artefact", "a-t2", "root", start=5.0, duration=4.5, id="T2"),
        span("input.world", "load", "a-t2", start=5.2, duration=3.0),
    ])


def test_critical_path_follows_last_finishing_children():
    path = critical_path(make_trace())
    assert [step.name for step in path] == [
        "run_all", "artefact", "input.world",
    ]
    assert path[1].attrs == {"id": "T2"}
    assert [step.depth for step in path] == [0, 1, 2]


def test_critical_path_self_time_subtracts_children():
    path = critical_path(make_trace())
    by_name = {step.name: step for step in path}
    # run_all: 10 s total, children cover 2 + 3 + 4.5.
    assert by_name["run_all"].self_s == 0.5
    # The T2 artefact: 4.5 s total, 3 s in the cache load.
    assert by_name["artefact"].self_s == 1.5
    assert by_name["input.world"].self_s == 3.0


def test_critical_path_empty_trace():
    assert critical_path(TraceData()) == []
    assert render_critical(TraceData()) == "(no spans)"


def test_critical_path_survives_duplicate_span_ids():
    # A malformed trace whose descent revisits a span id must terminate.
    trace = TraceData(spans=[
        span("a", "1", None, start=0.0, duration=2.0),
        span("b", "2", "1", start=0.0, duration=1.0),
        span("a-again", "1", "2", start=0.0, duration=0.5),
    ])
    path = critical_path(trace)
    assert [step.name for step in path] == ["a", "b"]  # no infinite loop


def test_phase_attribution_groups_roots_children():
    phases = phase_attribution(make_trace())
    by_name = {phase.name: phase for phase in phases}
    assert by_name["artefact"].count == 2
    assert by_name["artefact"].total_s == 7.5
    assert by_name["artefact"].share == 0.75
    assert by_name["warm_inputs"].total_s == 2.0
    assert abs(by_name["(unattributed)"].total_s - 0.5) < 1e-9
    # Sorted by descending total, remainder last.
    assert [phase.name for phase in phases] == [
        "artefact", "warm_inputs", "(unattributed)",
    ]


def test_render_critical_mentions_phases_and_path():
    text = render_critical(make_trace())
    assert "critical path (3 spans):" in text
    assert "artefact [id=T2]" in text
    assert "warm_inputs" in text
    assert "share" in text
