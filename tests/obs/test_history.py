"""The cross-run history store: round-trips, corruption tolerance,
concurrent appends, and the RunReport -> RunRecord compaction."""

import json
import multiprocessing
import os

import pytest

from repro.obs.history import (
    SCHEMA_VERSION,
    ArtefactStats,
    HistoryStore,
    RunRecord,
    default_history_root,
    new_run_id,
)


def make_record(run_id="run-1", seed=2024, scale=0.05, jobs=1, **artefacts):
    stats = {
        artefact_id: ArtefactStats(wall_s=wall, cache_hits=3, cache_misses=1,
                                   fingerprint=f"result-{artefact_id}")
        for artefact_id, wall in (artefacts or {"T2": 0.03}).items()
    }
    return RunRecord(
        run_id=run_id, created_unix=1700000000.0, seed=seed, scale=scale,
        jobs=jobs, host="testhost", total_wall_s=sum(
            s.wall_s for s in stats.values()
        ), artefacts=stats, metrics={"cache.hit": 3.0},
    )


def test_append_load_roundtrip(tmp_path):
    store = HistoryStore(tmp_path / "hist")
    store.append(make_record("run-1"))
    store.append(make_record("run-2", T2=0.04, F7=0.002))
    records = store.load()
    assert [r.run_id for r in records] == ["run-1", "run-2"]
    assert records[0].group_key() == "seed2024-scale0.05-jobs1"
    assert records[1].artefacts["F7"].fingerprint == "result-F7"
    assert records[1].artefacts["T2"].cache_hit_rate() == pytest.approx(0.75)
    assert records[0].metrics == {"cache.hit": 3.0}


def test_load_missing_store_is_empty(tmp_path):
    assert HistoryStore(tmp_path / "nowhere").load() == []


def test_get_by_id_and_unique_prefix(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(make_record("20260101T000000-aaaa1111"))
    store.append(make_record("20260102T000000-bbbb2222"))
    assert store.get("20260101T000000-aaaa1111").run_id.endswith("aaaa1111")
    assert store.get("20260102").run_id.endswith("bbbb2222")
    assert store.get("2026") is None  # ambiguous prefix
    assert store.get("nope") is None


def test_last_and_runs_for_group_key(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(make_record("a", scale=0.05))
    store.append(make_record("b", scale=0.15))
    store.append(make_record("c", scale=0.05))
    assert store.last().run_id == "c"
    assert store.last("seed2024-scale0.15-jobs1").run_id == "b"
    assert [r.run_id for r in store.runs_for("seed2024-scale0.05-jobs1")] == [
        "a", "c",
    ]


# -- corruption tolerance ----------------------------------------------------


def test_truncated_final_line_keeps_prior_records(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(make_record("run-1"))
    store.append(make_record("run-2"))
    # A writer killed mid-append leaves a partial line with no newline.
    with store.path.open("a") as handle:
        handle.write('{"run_id": "run-3", "seed": 20')
    records = store.load()
    assert [r.run_id for r in records] == ["run-1", "run-2"]
    # The store stays appendable after the corruption.
    store.append(make_record("run-4"))
    assert store.load()[-1].run_id == "run-4"


def test_unknown_schema_version_is_skipped(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(make_record("run-1"))
    newer = make_record("run-future").to_jsonable()
    newer["schema"] = SCHEMA_VERSION + 1
    newer["from_the_future"] = {"unknown": "shape"}
    with store.path.open("a") as handle:
        handle.write(json.dumps(newer) + "\n")
    store.append(make_record("run-2"))
    assert [r.run_id for r in store.load()] == ["run-1", "run-2"]


def test_garbage_and_non_record_lines_are_skipped(tmp_path):
    store = HistoryStore(tmp_path)
    with store.path.open("w") as handle:  # root exists: tmp_path
        handle.write("not json at all\n")
        handle.write('"a json string, not a record"\n')
        handle.write('{"some": "dict without a run_id"}\n')
        handle.write("\n")
    store.append(make_record("run-1"))
    assert [r.run_id for r in store.load()] == ["run-1"]


def _append_many(root, prefix, count):
    store = HistoryStore(root)
    for index in range(count):
        store.append(make_record(f"{prefix}-{index}"))


def test_concurrent_append_from_two_processes(tmp_path):
    """Two writers race; every record of both survives, uninterleaved."""
    count = 50
    workers = [
        multiprocessing.Process(
            target=_append_many, args=(tmp_path, prefix, count)
        )
        for prefix in ("alpha", "beta")
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0
    records = HistoryStore(tmp_path).load()
    assert len(records) == 2 * count
    ids = {record.run_id for record in records}
    assert ids == {
        f"{prefix}-{index}"
        for prefix in ("alpha", "beta") for index in range(count)
    }


# -- id generation and defaults ----------------------------------------------


def test_new_run_ids_are_unique_and_sortable():
    ids = {new_run_id(1700000000.0) for _ in range(100)}
    assert len(ids) == 100
    assert all(run_id.startswith("20231114T") for run_id in ids)


def test_default_history_root_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "h"))
    assert default_history_root() == tmp_path / "h"
    monkeypatch.delenv("REPRO_HISTORY_DIR")
    assert default_history_root().name == "history"


# -- RunReport compaction ----------------------------------------------------


def test_record_from_report_compacts_the_ledger():
    from repro.core.runner import ArtefactRun, RunReport
    from repro.obs.history import record_from_report

    report = RunReport(seed=7, scale=0.1, jobs=2, total_wall_s=1.5,
                       warm_wall_s=0.5)
    report.runs.append(ArtefactRun(
        artefact_id="T2", status="ok", wall_s=0.2, worker="pid-1",
        cache_hits=4, cache_misses=1, cache_hit_s=0.01,
    ))
    report.runs.append(ArtefactRun(
        artefact_id="F7", status="error", wall_s=0.1, worker="pid-2",
        error="boom",
    ))
    report.results["T2"] = {"rows": [1, 2, 3]}
    record = record_from_report(report, metrics={"cache.hit": 4.0},
                                host="h", now=1700000000.0)
    assert record.seed == 7 and record.scale == 0.1 and record.jobs == 2
    assert record.host == "h"
    assert record.ok is False  # F7 errored
    assert record.artefacts["T2"].fingerprint.startswith("result-")
    assert record.artefacts["F7"].fingerprint == ""  # no result to hash
    assert record.artefacts["F7"].status == "error"
    assert record.metrics["cache.hit"] == 4.0
    assert record.metrics["cache.ledger.hits"] == 4
    # Same results, same fingerprint: the digest is content-addressed.
    again = record_from_report(report, host="h", now=1700000000.0)
    assert again.artefacts["T2"].fingerprint == record.artefacts["T2"].fingerprint
    report.results["T2"] = {"rows": [1, 2, 999]}
    changed = record_from_report(report, host="h", now=1700000000.0)
    assert changed.artefacts["T2"].fingerprint != record.artefacts["T2"].fingerprint


def test_roundtrip_through_disk_preserves_every_field(tmp_path):
    store = HistoryStore(tmp_path)
    record = make_record("full", T2=0.03, F7=0.001)
    record.trace_path = "/tmp/somewhere/trace.jsonl"
    record.ok = False
    store.append(record)
    (loaded,) = store.load()
    assert loaded == record


def test_append_is_a_single_write(tmp_path, monkeypatch):
    """One os.write per record — the atomicity contract of O_APPEND."""
    calls = []
    real_write = os.write

    def counting_write(fd, data):
        calls.append(data)
        return real_write(fd, data)

    monkeypatch.setattr(os, "write", counting_write)
    HistoryStore(tmp_path).append(make_record("solo"))
    payloads = [data for data in calls if b"solo" in data]
    assert len(payloads) == 1
    assert payloads[0].endswith(b"\n")


def test_kind_and_slo_round_trip(tmp_path):
    store = HistoryStore(tmp_path)
    record = make_record("lg-1")
    record.kind = "loadgen"
    record.artefacts["T2"].slo_s = 1.5
    store.append(record)
    (loaded,) = store.load()
    assert loaded.kind == "loadgen"
    assert loaded.artefacts["T2"].slo_s == 1.5
    assert loaded.group_key() == "loadgen-seed2024-scale0.05-jobs1"


def test_run_all_group_key_shape_is_unchanged():
    """Pre-existing stores must keep their baselines: the run_all key
    has no kind prefix."""
    assert make_record().group_key() == "seed2024-scale0.05-jobs1"


def test_records_without_kind_default_to_run_all(tmp_path):
    store = HistoryStore(tmp_path)
    data = make_record("legacy").to_jsonable()
    del data["kind"]
    del data["artefacts"]["T2"]["slo_s"]
    store.root.mkdir(parents=True, exist_ok=True)
    store.path.write_text(json.dumps(data) + "\n")
    (loaded,) = store.load()
    assert loaded.kind == "run_all"
    assert loaded.artefacts["T2"].slo_s == 0.0
