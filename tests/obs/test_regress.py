"""The regression engine: baselines, verdict kinds, and the detect API."""

import pytest

from repro.obs.history import ArtefactStats, HistoryStore, RunRecord
from repro.obs.regress import (
    KIND_FINGERPRINT,
    KIND_HIT_RATE,
    KIND_LATENCY,
    KIND_NEW_FAILURE,
    KIND_SLO,
    RegressionConfig,
    compare,
    detect,
    median_mad,
)


def run_record(run_id, wall=0.2, hits=8, misses=2, fingerprint="result-abc",
               status="ok", seed=2024, scale=0.05, jobs=1, when=0.0,
               artefact="T2"):
    return RunRecord(
        run_id=run_id, created_unix=when, seed=seed, scale=scale, jobs=jobs,
        host="h", ok=status == "ok", total_wall_s=wall,
        artefacts={artefact: ArtefactStats(
            status=status, wall_s=wall, cache_hits=hits, cache_misses=misses,
            fingerprint=fingerprint if status == "ok" else "",
        )},
    )


def test_median_mad():
    med, mad = median_mad([1.0, 2.0, 3.0, 4.0, 100.0])
    assert med == 3.0
    assert mad == 1.0


def test_identical_runs_produce_zero_verdicts():
    baseline = [run_record(f"r{i}", when=float(i)) for i in range(3)]
    candidate = run_record("cand", when=3.0)
    report = compare(candidate, baseline)
    assert report.ok()
    assert report.baseline_ids == ["r0", "r1", "r2"]
    assert "no regressions" in report.render()


def test_normal_jitter_is_not_flagged():
    baseline = [run_record(f"r{i}", wall=0.2 + 0.01 * i) for i in range(5)]
    # 25% slower but only 50 ms absolute: inside both guards.
    report = compare(run_record("cand", wall=0.26), baseline)
    assert report.ok()


def test_latency_regression_is_flagged():
    baseline = [run_record(f"r{i}", wall=0.2) for i in range(3)]
    report = compare(run_record("cand", wall=0.9), baseline)
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_LATENCY
    assert verdict.artefact_id == "T2"
    assert "x the median" in verdict.detail
    assert not report.ok()
    assert "latency-regression" in report.render()


def test_latency_needs_both_relative_and_absolute_excess():
    # Tiny artefact: 10 ms -> 40 ms is 4x but only 30 ms absolute.
    baseline = [run_record(f"r{i}", wall=0.01) for i in range(3)]
    assert compare(run_record("cand", wall=0.04), baseline).ok()
    # Heavy artefact: +150 ms on 2 s is absolute enough but only 1.08x.
    baseline = [run_record(f"r{i}", wall=2.0) for i in range(3)]
    assert compare(run_record("cand", wall=2.15), baseline).ok()


def test_mad_band_suppresses_noisy_baselines():
    # The baseline itself swings between 0.1 and 1.0 (median 0.55,
    # MAD 0.45): a 1.1 s candidate clears the relative and absolute
    # guards but sits inside the noise band, so it is not flagged.
    walls = [0.1, 1.0, 0.1, 1.0, 0.1, 1.0]
    baseline = [
        run_record(f"r{i}", wall=wall) for i, wall in enumerate(walls)
    ]
    assert compare(run_record("cand", wall=1.1), baseline).ok()
    # A quiet baseline with the same median flags the same candidate.
    steady = [run_record(f"s{i}", wall=0.55) for i in range(6)]
    assert not compare(run_record("cand", wall=1.1), steady).ok()


def test_fingerprint_change_is_flagged_as_correctness():
    baseline = [run_record(f"r{i}") for i in range(2)]
    report = compare(run_record("cand", fingerprint="result-DIFFERENT"), baseline)
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_FINGERPRINT
    assert "changed" in verdict.detail


def test_cache_hit_rate_drop_is_flagged():
    baseline = [run_record(f"r{i}", hits=9, misses=1) for i in range(3)]
    report = compare(run_record("cand", hits=2, misses=8), baseline)
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_HIT_RATE
    assert verdict.baseline == "90%" and verdict.observed == "20%"


def test_new_failure_is_flagged():
    baseline = [run_record(f"r{i}") for i in range(2)]
    report = compare(run_record("cand", status="error"), baseline)
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_NEW_FAILURE


def test_correctness_verdicts_sort_before_performance():
    baseline = [
        RunRecord(
            run_id=f"r{i}", created_unix=float(i), seed=2024, scale=0.05,
            jobs=1, host="h", artefacts={
                "A1": ArtefactStats(wall_s=0.2, fingerprint="fp-a"),
                "Z9": ArtefactStats(wall_s=0.2, fingerprint="fp-z"),
            },
        )
        for i in range(2)
    ]
    candidate = RunRecord(
        run_id="cand", created_unix=2.0, seed=2024, scale=0.05, jobs=1,
        host="h", artefacts={
            "A1": ArtefactStats(wall_s=0.9, fingerprint="fp-a"),
            "Z9": ArtefactStats(wall_s=0.2, fingerprint="fp-CHANGED"),
        },
    )
    report = compare(candidate, baseline)
    assert [v.kind for v in report.verdicts] == [KIND_FINGERPRINT, KIND_LATENCY]


def test_new_artefact_without_baseline_is_ignored():
    baseline = [run_record("r0", artefact="T2")]
    report = compare(run_record("cand", artefact="F99", wall=99.0), baseline)
    assert report.ok()


def test_rolling_window_drops_ancient_runs():
    old = [run_record(f"old{i}", wall=5.0, when=float(i)) for i in range(3)]
    recent = [
        run_record(f"new{i}", wall=0.2, when=10.0 + i) for i in range(10)
    ]
    config = RegressionConfig(baseline_window=10)
    # The 5 s era has scrolled out of the window: 0.9 s is a regression
    # against the recent 0.2 s baseline, not the stale 5 s one.
    report = compare(run_record("cand", wall=0.9), old + recent, config)
    assert [v.kind for v in report.verdicts] == [KIND_LATENCY]


def test_config_validation():
    with pytest.raises(ValueError):
        RegressionConfig(baseline_window=0)
    with pytest.raises(ValueError):
        RegressionConfig(latency_threshold=0.0)
    with pytest.raises(ValueError):
        RegressionConfig(hit_rate_drop=1.5)


# -- detect over a real store ------------------------------------------------


def test_detect_uses_latest_run_and_same_key_baselines(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(run_record("r0", when=0.0))
    store.append(run_record("other-key", when=1.0, scale=0.15, wall=9.0))
    store.append(run_record("r1", when=2.0))
    store.append(run_record("cand", when=3.0, wall=0.9))
    report = detect(store)
    assert report.run_id == "cand"
    assert report.baseline_ids == ["r0", "r1"]  # the 0.15-scale run excluded
    assert [v.kind for v in report.verdicts] == [KIND_LATENCY]


def test_detect_against_pins_the_baseline(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(run_record("fast", when=0.0, wall=0.2))
    store.append(run_record("slow", when=1.0, wall=0.9))
    store.append(run_record("cand", when=2.0, wall=0.8))
    # Rolling baseline median is 0.55 -> no flag; pinned against "fast"
    # the candidate is a regression.
    assert detect(store).ok()
    pinned = detect(store, against="fast")
    assert pinned.baseline_ids == ["fast"]
    assert [v.kind for v in pinned.verdicts] == [KIND_LATENCY]


def test_detect_errors(tmp_path):
    store = HistoryStore(tmp_path)
    with pytest.raises(ValueError, match="no runs recorded"):
        detect(store)
    store.append(run_record("solo"))
    with pytest.raises(ValueError, match="no earlier baseline"):
        detect(store)
    with pytest.raises(KeyError, match="unknown run id"):
        detect(store, run_id="nope")
    with pytest.raises(KeyError, match="unknown baseline"):
        detect(store, against="nope")
    store.append(run_record("other", scale=0.15))
    with pytest.raises(ValueError, match="not comparable"):
        detect(store, run_id="solo", against="other")


# -- interrupted runs (partial by definition) --------------------------------


def test_interrupted_candidate_artefact_is_not_a_new_failure():
    """An artefact the run never reached didn't *fail* — no verdict."""
    baseline = [run_record(f"r{i}", when=float(i)) for i in range(3)]
    report = compare(run_record("cand", status="interrupted", when=3.0), baseline)
    assert report.ok(), [v.kind for v in report.verdicts]


def test_detect_skips_interrupted_runs_when_building_baselines(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(run_record("r0", when=0.0))
    partial = run_record("partial", when=1.0, wall=9.0)
    partial.status = "interrupted"
    partial.ok = False
    store.append(partial)
    store.append(run_record("r1", when=2.0))
    store.append(run_record("cand", when=3.0))
    report = detect(store)
    assert report.baseline_ids == ["r0", "r1"]
    assert report.ok()


def test_interrupted_status_round_trips_through_the_store(tmp_path):
    store = HistoryStore(tmp_path)
    partial = run_record("partial", when=1.0)
    partial.status = "interrupted"
    partial.ok = False
    store.append(partial)
    (loaded,) = store.load()
    assert loaded.status == "interrupted"
    assert not loaded.ok


def test_legacy_records_without_status_default_from_ok(tmp_path):
    """Pre-status history lines still load: ok=>\"ok\", not ok=>\"failed\"."""
    import json

    store = HistoryStore(tmp_path)
    old = run_record("legacy", when=0.0)
    data = old.to_jsonable()
    del data["status"]
    data["ok"] = False
    store.root.mkdir(parents=True, exist_ok=True)
    store.path.write_text(json.dumps(data) + "\n")
    (loaded,) = store.load()
    assert loaded.status == "failed"


def test_slo_violation_fires_without_baselines():
    candidate = run_record("cand", wall=2.0)
    candidate.artefacts["T2"].slo_s = 1.0
    report = compare(candidate, [])
    (verdict,) = report.verdicts
    assert verdict.kind == KIND_SLO
    assert "SLO budget" in verdict.detail


def test_slo_within_budget_is_quiet():
    candidate = run_record("cand", wall=0.5)
    candidate.artefacts["T2"].slo_s = 1.0
    assert compare(candidate, []).ok()


def test_slo_skips_failed_artefacts():
    candidate = run_record("cand", wall=9.0, status="error")
    candidate.artefacts["T2"].slo_s = 1.0
    report = compare(candidate, [])
    assert KIND_SLO not in {verdict.kind for verdict in report.verdicts}


def test_slo_and_latency_verdicts_compose():
    baseline = [run_record(f"r{i}", wall=0.2) for i in range(3)]
    candidate = run_record("cand", wall=2.0)
    candidate.artefacts["T2"].slo_s = 1.0
    report = compare(candidate, baseline)
    kinds = [verdict.kind for verdict in report.verdicts]
    assert kinds == [KIND_SLO, KIND_LATENCY]  # severity order


def test_detect_accepts_zero_baselines_for_slo_runs(tmp_path):
    store = HistoryStore(tmp_path)
    only = run_record("only", wall=3.0)
    only.artefacts["T2"].slo_s = 1.0
    store.append(only)
    report = detect(store)
    assert report.baseline_ids == []
    assert report.verdicts[0].kind == KIND_SLO


def test_detect_still_errors_with_zero_baselines_and_no_slo(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(run_record("only"))
    with pytest.raises(ValueError):
        detect(store)
