"""Unit tests for the telemetry core: spans, metrics, recorders."""

import pytest

from repro import obs
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.spans import NULL_SPAN


# -- the disabled (sidecar-off) path -----------------------------------------


def test_null_recorder_is_the_default():
    assert not obs.enabled()
    assert isinstance(obs.get_recorder(), obs.NullRecorder)


def test_disabled_instrumentation_returns_shared_singletons():
    assert obs.span("anything", key="value") is NULL_SPAN
    assert obs.counter("anything") is NULL_COUNTER
    assert obs.gauge("anything") is NULL_GAUGE
    assert obs.histogram("anything") is NULL_HISTOGRAM
    obs.event("anything", key="value")  # no-op, no error


def test_null_span_supports_the_full_span_surface():
    with obs.span("outer") as span:
        assert span.set(records=3) is span
        span.add_event("retry")


# -- recorder installation ----------------------------------------------------


def test_use_recorder_restores_previous():
    recorder = obs.TraceRecorder()
    before = obs.get_recorder()
    with obs.use_recorder(recorder) as active:
        assert active is recorder
        assert obs.enabled()
    assert obs.get_recorder() is before


def test_set_recorder_none_installs_null():
    previous = obs.set_recorder(obs.TraceRecorder())
    try:
        assert obs.enabled()
        obs.set_recorder(None)
        assert not obs.enabled()
    finally:
        obs.set_recorder(previous)


# -- span mechanics -----------------------------------------------------------


def test_spans_nest_and_record_parentage():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        with obs.span("outer", layer="runner") as outer:
            with obs.span("inner") as inner:
                assert recorder.current_span() is inner
            assert recorder.current_span() is outer
    assert [span.name for span in recorder.spans] == ["inner", "outer"]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.attrs == {"layer": "runner"}
    assert inner.duration_s >= 0.0
    assert outer.duration_s >= inner.duration_s


def test_span_ids_are_unique_across_recorders_in_one_process():
    # Every artefact gets its own recorder; adopted spans from two
    # same-PID recorders must never collide.
    first, second = obs.TraceRecorder(), obs.TraceRecorder()
    with obs.use_recorder(first):
        with obs.span("a") as span_a:
            pass
    with obs.use_recorder(second):
        with obs.span("b") as span_b:
            pass
    assert span_a.span_id != span_b.span_id


def test_exception_marks_span_status_and_propagates():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
    (span,) = recorder.spans
    assert span.status == "error"
    assert span.attrs["error"] == "ValueError"


def test_events_attach_to_innermost_open_span():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        with obs.span("outer"):
            with obs.span("inner"):
                obs.event("fault.attach-reject", day=3)
        obs.event("loose")  # no span open any more? outer closed after inner
    inner = next(s for s in recorder.spans if s.name == "inner")
    assert [e.name for e in inner.events] == ["fault.attach-reject"]
    assert inner.events[0].attrs == {"day": 3}
    assert [e.name for e in recorder.orphan_events] == ["loose"]


def test_span_events_collects_and_filters_across_spans():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        with obs.span("one"):
            obs.event("fault.sim-flip")
            obs.event("retry.backoff")
        with obs.span("two"):
            obs.event("retry.backoff")
    assert len(recorder.span_events()) == 3
    assert len(recorder.span_events("retry.backoff")) == 2
    assert len(recorder.span_events("fault.sim-flip")) == 1


# -- metrics ------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        obs.counter("hits").inc()
        obs.counter("hits").inc(4)
        obs.gauge("depth").set(7.5)
        histogram = obs.histogram("lat")
        histogram.observe(0.0002)
        histogram.observe(2.0)
    assert recorder.metrics.counters() == {"hits": 5}
    assert recorder.metrics.gauge("depth").value == 7.5
    assert histogram.count == 2
    assert histogram.mean() == pytest.approx(1.0001)
    # 0.0002 lands in the 0.0005 bucket, 2.0 in the 5.0 bucket.
    assert histogram.counts[1] == 1
    assert histogram.quantile(1.0) == 5.0


def test_histogram_overflow_and_validation():
    histogram = obs.Histogram("h", buckets=(1.0, 2.0))
    histogram.observe(99.0)
    assert histogram.counts == [0, 0, 1]
    assert histogram.quantile(0.5) == float("inf")
    with pytest.raises(ValueError):
        obs.Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        obs.Histogram("empty", buckets=())


def test_registry_merge_adds_counters_and_histogram_cells():
    worker = obs.TraceRecorder()
    worker.counter("cache.hit").inc(3)
    worker.gauge("depth").set(2.0)
    worker.histogram("lat").observe(0.01)

    parent = obs.TraceRecorder()
    parent.counter("cache.hit").inc(1)
    parent.gauge("depth").set(9.0)
    parent.histogram("lat").observe(0.2)

    parent.metrics.merge_jsonable(worker.metrics.to_jsonable())
    assert parent.metrics.counters() == {"cache.hit": 4}
    assert parent.metrics.gauge("depth").value == 2.0  # last write wins
    merged = parent.metrics.histogram("lat")
    assert merged.count == 2
    assert merged.sum == pytest.approx(0.21)


def test_registry_merge_rejects_bucket_mismatch():
    left = obs.MetricsRegistry()
    left.histogram("lat", buckets=(1.0, 2.0))
    right = obs.MetricsRegistry()
    right.histogram("lat", buckets=(5.0, 6.0)).observe(1.0)
    with pytest.raises(ValueError, match="bucket mismatch"):
        left.merge_jsonable(right.to_jsonable())


def test_operation_count_sizes_the_benchmark_cost_model():
    registry = obs.MetricsRegistry()
    registry.counter("a").inc(10)
    registry.gauge("g").set(1.0)
    registry.histogram("h").observe(0.5)
    registry.histogram("h").observe(0.5)
    assert registry.operation_count() == 13


# -- cross-process export / adoption ------------------------------------------


def test_adopt_reparents_worker_roots_and_keeps_inner_ancestry():
    worker = obs.TraceRecorder()
    with obs.use_recorder(worker):
        with obs.span("artefact", id="T2") as worker_root:
            with obs.span("input.world") as worker_child:
                pass
        worker.counter("cache.hit").inc(2)

    parent = obs.TraceRecorder()
    with obs.use_recorder(parent):
        with obs.span("run_all") as root:
            parent.adopt(worker.export(), parent_id=root.span_id)

    by_name = {span.name: span for span in parent.spans}
    assert by_name["artefact"].parent_id == root.span_id
    assert by_name["input.world"].parent_id == worker_root.span_id
    assert worker_child.span_id in {s.span_id for s in parent.spans}
    assert parent.metrics.counters() == {"cache.hit": 2}


def test_export_is_plain_jsonable_data():
    import json

    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        with obs.span("stage", shard=1):
            obs.event("tick", n=1)
        obs.counter("ops").inc()
    json.dumps(recorder.export())  # must not raise
