"""The zero-dependency HTML dashboard over the history store."""

import json

from repro.obs.history import ArtefactStats, HistoryStore, RunRecord
from repro.obs.report import render_html, write_html


def record(run_id, wall=0.2, fingerprint="fp-a", scale=0.05, when=0.0,
           status="ok", trace_path=None):
    return RunRecord(
        run_id=run_id, created_unix=when, seed=2024, scale=scale, jobs=1,
        host="ci-host", ok=status == "ok", total_wall_s=wall,
        artefacts={"T2": ArtefactStats(
            status=status, wall_s=wall, cache_hits=4, cache_misses=1,
            fingerprint=fingerprint if status == "ok" else "",
        )},
        trace_path=trace_path,
    )


def test_empty_store_renders_a_hint(tmp_path):
    html = render_html(HistoryStore(tmp_path))
    assert "No runs recorded yet" in html
    assert "run-all --history" in html


def test_dashboard_has_trend_table_and_group_sections(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(record("r0", when=0.0))
    store.append(record("r1", when=1.0))
    store.append(record("other", when=2.0, scale=0.15))
    html = render_html(store)
    assert "seed2024-scale0.05-jobs1" in html
    assert "seed2024-scale0.15-jobs1" in html
    assert "no regressions against the" in html
    assert html.count("<table>") == 2
    assert "ci-host" in html


def test_dashboard_highlights_regressions(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(record("r0", when=0.0))
    store.append(record("r1", when=1.0))
    store.append(record("cand", when=2.0, wall=0.9))
    html = render_html(store)
    assert "class=bad" in html
    assert "latency-regression" in html


def test_dashboard_marks_failed_artefacts(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(record("r0", when=0.0))
    store.append(record("bad", when=1.0, status="error"))
    html = render_html(store)
    assert "class=err" in html
    assert "ERR" in html
    assert "fail-badge" in html


def test_dashboard_embeds_critical_path_from_trace(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    lines = [
        {"type": "meta", "trace_id": "t", "created_unix": 0.0, "attrs": {}},
        {"type": "span", "name": "run_all", "span_id": "1", "parent_id": None,
         "start_unix": 0.0, "duration_s": 2.0, "status": "ok", "attrs": {},
         "events": []},
        {"type": "span", "name": "artefact", "span_id": "2", "parent_id": "1",
         "start_unix": 0.1, "duration_s": 1.5, "status": "ok",
         "attrs": {"id": "T2"}, "events": []},
    ]
    trace_path.write_text(
        "\n".join(json.dumps(line) for line in lines) + "\n"
    )
    store = HistoryStore(tmp_path / "hist")
    store.append(record("r0", when=0.0))
    store.append(record("r1", when=1.0, trace_path=str(trace_path)))
    html = render_html(store)
    assert "latest critical path" in html
    assert "artefact [id=T2]" in html


def test_dashboard_tolerates_missing_trace_file(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(record("r0", trace_path="/nonexistent/trace.jsonl"))
    html = render_html(store)
    assert "latest critical path" not in html


def test_write_html_creates_parent_dirs(tmp_path):
    store = HistoryStore(tmp_path / "hist")
    store.append(record("r0"))
    target = write_html(store, tmp_path / "deep" / "nested" / "report.html")
    assert target.is_file()
    assert "<!doctype html>" in target.read_text()


def test_limit_caps_trend_columns(tmp_path):
    store = HistoryStore(tmp_path)
    for index in range(8):
        store.append(record(f"run-{index:02d}", when=float(index)))
    html = render_html(store, limit=3)
    assert "run-07" in html and "run-05" in html
    assert "run-04" not in html.split("<table>")[1].split("</table>")[0]
