"""The sampling profiler: known call tree, collapsed-stack output."""

import threading
import time

from repro.obs.profile import (
    SamplingProfiler,
    _is_idle_stack,
    profile_call,
)


def _spin_inner(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(64))
    return total


def _spin_outer(deadline: float) -> int:
    return _spin_inner(deadline)


def test_profiler_sees_the_known_call_tree():
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        _spin_outer(time.perf_counter() + 0.25)
    assert profiler.samples > 10
    hot = [
        (stack, count)
        for stack, count in profiler.stacks().items()
        if any("_spin_inner" in frame for frame in stack)
    ]
    assert hot, "the spinning leaf was never sampled"
    stack = max(hot, key=lambda item: item[1])[0]
    # Root-first: thread name, then outer above inner.
    assert stack[0] == "MainThread"
    outer_at = next(
        i for i, frame in enumerate(stack) if "_spin_outer" in frame
    )
    inner_at = next(
        i for i, frame in enumerate(stack) if "_spin_inner" in frame
    )
    assert outer_at < inner_at


def test_collapsed_format_and_determinism(tmp_path):
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        _spin_outer(time.perf_counter() + 0.1)
    text = profiler.collapsed()
    assert text.endswith("\n")
    for line in text.splitlines():
        frames, _, count = line.rpartition(" ")
        assert frames, line
        assert count.isdigit(), line
        assert ";" in frames  # at least thread;frame
    # Hottest stack first; output is a pure function of the counts.
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
    assert counts == sorted(counts, reverse=True)
    assert profiler.collapsed() == text
    target = tmp_path / "prof.collapsed"
    assert profiler.write(target) == str(target)
    assert target.read_text() == text


def test_profiler_samples_other_threads():
    release = threading.Event()

    def worker():
        _spin_inner(time.perf_counter() + 0.3)
        release.wait(5.0)

    thread = threading.Thread(target=worker, name="prof-worker")
    profiler = SamplingProfiler(interval_s=0.002)
    thread.start()
    try:
        with profiler:
            time.sleep(0.15)
    finally:
        release.set()
        thread.join(5.0)
    roots = {stack[0] for stack in profiler.stacks()}
    assert "prof-worker" in roots
    # The profiler never samples its own ticker thread.
    assert "repro-profiler" not in roots


def test_idle_stacks_can_be_filtered():
    assert _is_idle_stack(("t", "a:b", "threading:Event.wait"))
    assert _is_idle_stack(("t", "threading:wait"))
    assert not _is_idle_stack(("t", "repro.cli:main"))
    profiler = SamplingProfiler(interval_s=0.002, include_idle=False)
    parked = threading.Event()
    thread = threading.Thread(
        target=parked.wait, args=(5.0,), name="parked"
    )
    thread.start()
    time.sleep(0.05)  # let the thread reach its wait before sampling
    try:
        with profiler:
            _spin_outer(time.perf_counter() + 0.1)
    finally:
        parked.set()
        thread.join(5.0)
    for stack in profiler.stacks():
        assert stack[0] != "parked", "idle thread leaked into the profile"


def test_run_for_aborts_early():
    abort = threading.Event()
    abort.set()
    profiler = SamplingProfiler(interval_s=0.002)
    started = time.perf_counter()
    profiler.run_for(30.0, abort=abort)
    assert time.perf_counter() - started < 5.0


def test_profile_call_returns_result_and_profile():
    result, profiler = profile_call(
        _spin_outer, time.perf_counter() + 0.05, interval_s=0.002
    )
    assert result > 0
    assert profiler.samples > 0
    assert "profile:" in profiler.summary()


def test_summary_lists_hottest_stacks():
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        _spin_outer(time.perf_counter() + 0.1)
    summary = profiler.summary(top=3)
    assert "distinct stacks" in summary
    assert "%" in summary
