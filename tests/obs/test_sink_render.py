"""Trace file round-trips and the terminal render views."""

import json

import pytest

from repro import obs


def _sample_recorder():
    recorder = obs.TraceRecorder(trace_id="test-trace")
    with obs.use_recorder(recorder):
        with obs.span("run_all", jobs=1):
            with obs.span("warm_inputs"):
                pass
            with obs.span("artefact", id="T2"):
                obs.event("fault.sim-flip", day=2)
            with pytest.raises(RuntimeError):
                with obs.span("artefact", id="F9"):
                    raise RuntimeError("broken artefact")
        obs.event("stray")
        obs.counter("cache.hit").inc(3)
        obs.histogram("cache.load_s").observe(0.002)
    return recorder


def test_write_and_load_roundtrip(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(recorder, path, attrs={"seed": 2024})

    trace = obs.load_trace(path)
    assert trace.trace_id == "test-trace"
    assert trace.attrs == {"seed": 2024}
    assert trace.created_unix > 0
    assert [s["name"] for s in trace.roots()] == ["run_all"]
    root_id = trace.roots()[0]["span_id"]
    children = trace.children_of(root_id)
    assert sorted(s["name"] for s in children) == [
        "artefact", "artefact", "warm_inputs",
    ]
    assert [e["name"] for e in trace.events] == ["stray"]
    kinds = {m["type"] for m in trace.metrics}
    assert kinds == {"counter", "histogram"}
    failed = next(s for s in trace.spans if s["attrs"].get("id") == "F9")
    assert failed["status"] == "error"


def test_timestamps_live_only_in_the_trace_file(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(recorder, path)
    stamped = [
        line for line in path.read_text().splitlines()
        if "start_unix" in line or "created_unix" in line or "time_unix" in line
    ]
    assert stamped  # the trace itself carries the wall clocks


def test_load_trace_reports_bad_json_with_line_number(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "meta", "trace_id": "x"}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        obs.load_trace(path)


def test_load_trace_ignores_unknown_record_types(tmp_path):
    path = tmp_path / "forward.jsonl"
    path.write_text(
        json.dumps({"type": "meta", "trace_id": "x"}) + "\n"
        + json.dumps({"type": "hologram", "payload": 1}) + "\n"
    )
    trace = obs.load_trace(path)
    assert trace.trace_id == "x"
    assert trace.spans == []


def _synthetic_trace(child_durations, root_duration=10.0):
    trace = obs.TraceData(trace_id="synthetic")
    trace.spans.append({
        "name": "run_all", "span_id": "r", "parent_id": None,
        "start_unix": 0.0, "duration_s": root_duration, "status": "ok",
        "attrs": {}, "events": [],
    })
    for index, duration in enumerate(child_durations):
        trace.spans.append({
            "name": f"child{index}", "span_id": f"c{index}", "parent_id": "r",
            "start_unix": float(index), "duration_s": duration, "status": "ok",
            "attrs": {}, "events": [],
        })
    return trace


def test_coverage_is_attributed_child_share():
    assert obs.coverage(_synthetic_trace([4.0, 5.0])) == pytest.approx(0.9)
    # Concurrent children can sum past the root; coverage saturates at 1.
    assert obs.coverage(_synthetic_trace([8.0, 8.0])) == 1.0
    assert obs.coverage(obs.TraceData()) is None


def test_summary_lists_spans_metrics_and_attribution(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(recorder, path)
    text = obs.summary(obs.load_trace(path))
    assert "run_all" in text
    assert "artefact" in text
    assert "attributed to named child spans:" in text
    assert "cache.hit" in text
    assert "cache.load_s" in text


def test_tree_indents_children_and_flags_errors(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(recorder, path)
    lines = obs.tree(obs.load_trace(path)).splitlines()
    assert "run_all" in lines[0]
    indented = [line for line in lines[1:] if "warm_inputs" in line]
    assert indented and indented[0].index("warm_inputs") > lines[0].index("run_all")
    assert any("!ERROR" in line for line in lines)
    assert any("(1 events)" in line for line in lines)


def test_tree_respects_max_depth(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(recorder, path)
    shallow = obs.tree(obs.load_trace(path), max_depth=0)
    assert "run_all" in shallow
    assert "warm_inputs" not in shallow


def test_slowest_ranks_and_shows_ancestry():
    trace = _synthetic_trace([4.0, 5.0])
    text = obs.slowest(trace, top=2)
    lines = text.splitlines()
    assert "run_all" in lines[1]          # longest first
    assert "child1 < run_all" in lines[2]  # ancestry path
    assert "child0" not in text            # truncated by top
