"""Prometheus text exposition: golden scrape, parser, monotonicity."""

import math

from repro.obs.exposition import (
    CONTENT_TYPE,
    counter_values,
    format_value,
    metric_name,
    parse_exposition,
    parse_sample_line,
    process_samples,
    render,
    render_process,
    render_snapshot,
)
from repro.obs.metrics import MetricsRegistry

import pytest


def _seeded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("server.requests").inc(7)
    registry.gauge("queue.depth").set(2.5)
    histogram = registry.histogram("latency_s", buckets=(0.5, 1.0))
    # 0.25, 0.5 and 2.25 are exact binary fractions, so the rendered
    # _sum is byte-stable across platforms.
    for value in (0.25, 0.5, 2.25):
        histogram.observe(value)
    return registry


#: The byte-exact scrape for ``_seeded_registry`` — counters carry
#: ``_total``, histogram buckets are cumulative and end at ``+Inf``.
GOLDEN = """\
# HELP repro_server_requests_total repro counter server.requests
# TYPE repro_server_requests_total counter
repro_server_requests_total 7
# HELP repro_queue_depth repro gauge queue.depth
# TYPE repro_queue_depth gauge
repro_queue_depth 2.5
# HELP repro_latency_s repro histogram latency_s
# TYPE repro_latency_s histogram
repro_latency_s_bucket{le="0.5"} 2
repro_latency_s_bucket{le="1"} 2
repro_latency_s_bucket{le="+Inf"} 3
repro_latency_s_sum 3
repro_latency_s_count 3
"""


def test_golden_scrape_is_byte_stable():
    registry = _seeded_registry()
    assert render_snapshot(registry.snapshot()) == GOLDEN
    # Idempotent: rendering the same snapshot twice gives same bytes.
    assert render_snapshot(registry.snapshot()) == GOLDEN


def test_golden_scrape_parses_cleanly():
    parsed = parse_exposition(GOLDEN)
    assert parsed["types"] == {
        "repro_server_requests_total": "counter",
        "repro_queue_depth": "gauge",
        "repro_latency_s": "histogram",
    }
    by_name = {
        (sample["name"], tuple(sorted(sample["labels"].items()))):
        sample["value"]
        for sample in parsed["samples"]
    }
    assert by_name[("repro_server_requests_total", ())] == 7
    assert by_name[("repro_latency_s_bucket", (("le", "+Inf"),))] == 3
    assert by_name[("repro_latency_s_count", ())] == 3


def test_counter_values_cover_histogram_series():
    values = counter_values(GOLDEN)
    assert values["repro_server_requests_total"] == 7
    assert values['repro_latency_s_bucket{le="0.5"}'] == 2
    assert values['repro_latency_s_bucket{le="+Inf"}'] == 3
    assert values["repro_latency_s_count"] == 3
    # _sum is not monotone-guaranteed (negative observations exist in
    # principle) and gauges move both ways: neither is included.
    assert "repro_latency_s_sum" not in values
    assert "repro_queue_depth" not in values


def test_metric_name_sanitizes():
    assert metric_name("server.latency_s.query") == \
        "repro_server_latency_s_query"
    assert metric_name("a-b/c d") == "repro_a_b_c_d"
    assert metric_name("9lives") == "repro__9lives"
    assert metric_name("cache.hit", "_total") == "repro_cache_hit_total"


def test_format_value_covers_the_numeric_tower():
    assert format_value(7) == "7"
    assert format_value(True) == "1"
    assert format_value(2.5) == "2.5"
    assert format_value(3.0) == "3"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"
    assert format_value(float("nan")) == "NaN"


def test_parse_sample_line_rejects_malformed():
    assert parse_sample_line("") is None
    assert parse_sample_line("# HELP x y") is None
    with pytest.raises(ValueError):
        parse_sample_line("bad_name_no_value")
    with pytest.raises(ValueError):
        parse_sample_line('name{le=0.5} 3')  # unquoted label value
    with pytest.raises(ValueError):
        parse_sample_line("9starts_with_digit 1")


def test_parse_exposition_reports_line_numbers():
    with pytest.raises(ValueError, match="line 2"):
        parse_exposition("ok_metric 1\nbroken{")
    with pytest.raises(ValueError, match="unknown type"):
        parse_exposition("# TYPE x banana\n")


def test_process_samples_expose_linux_gauges():
    samples = {s["name"]: s for s in process_samples(now=1000.0)}
    assert samples["process_threads"]["value"] >= 1
    assert samples["process_start_time_seconds"]["value"] > 0
    # /proc exists on the CI platform; RSS must be a positive byte count.
    assert samples["process_resident_memory_bytes"]["value"] > 0
    assert samples["process_open_fds"]["value"] > 0
    gc_labels = [
        s["labels"]["generation"]
        for s in process_samples()
        if s["name"] == "python_gc_collections_total"
    ]
    assert gc_labels == ["0", "1", "2"]


def test_render_process_emits_one_type_per_family():
    text = render_process(now=1000.0)
    parsed = parse_exposition(text)
    assert parsed["types"]["process_threads"] == "gauge"
    assert parsed["types"]["python_gc_collections_total"] == "counter"
    # One TYPE line even though the gc family has three labelled samples.
    assert text.count("# TYPE python_gc_collections_total counter") == 1


def test_render_combines_registry_and_process():
    text = render(registry=_seeded_registry())
    assert text.startswith(GOLDEN)
    assert "process_threads" in text
    parsed = parse_exposition(text)  # the whole body stays valid
    assert all(
        not math.isnan(sample["value"]) for sample in parsed["samples"]
    )
    no_process = render(registry=_seeded_registry(), include_process=False)
    assert no_process == GOLDEN


def test_content_type_names_the_text_format():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
