"""The live sampler: ring retention, delta/rate math, bounded soak."""

import threading

from repro.obs.live import LiveSampler, RingBuffer, _window_quantile
from repro.obs.metrics import MetricsRegistry

import pytest


class TestRingBuffer:
    def test_capacity_is_pinned(self):
        ring = RingBuffer(4)
        for i in range(100):
            ring.append(float(i), i * 10)
        assert len(ring) == 4
        assert ring.capacity == 4
        # Internal storage never grew past the preallocated slots.
        assert len(ring._times) == 4
        assert len(ring._values) == 4

    def test_keeps_newest_in_order(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.append(float(i), i)
        assert ring.items() == [(2.0, 2), (3.0, 3), (4.0, 4)]
        assert ring.last() == (4.0, 4)

    def test_since_filters_by_time(self):
        ring = RingBuffer(10)
        for i in range(6):
            ring.append(float(i), i)
        assert ring.since(3.0) == [(3.0, 3), (4.0, 4), (5.0, 5)]
        assert ring.since(99.0) == []

    def test_partial_fill(self):
        ring = RingBuffer(8)
        assert ring.last() is None
        ring.append(1.0, "a")
        assert ring.items() == [(1.0, "a")]

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(1)


def test_window_quantile_clamps_overflow_to_finite():
    # All observations in the overflow bucket: quantile must stay a
    # JSON-encodable finite number (the last bound), not +Inf.
    assert _window_quantile((0.1, 1.0), [0, 0, 5], 0.99) == 1.0
    assert _window_quantile((0.1, 1.0), [3, 1, 0], 0.5) == 0.1
    assert _window_quantile((0.1, 1.0), [0, 0, 0], 0.5) is None


def _sampler(interval_s=1.0, capacity=600):
    registry = MetricsRegistry()
    sampler = LiveSampler(
        registry, interval_s=interval_s, capacity=capacity,
        include_process=False,
    )
    return registry, sampler


def test_tick_derives_counter_delta_and_rate():
    registry, sampler = _sampler()
    registry.counter("reqs").inc(5)
    first = sampler.tick(now=1000.0)
    assert first["counters"]["reqs"] == {"value": 5, "delta": 5}
    registry.counter("reqs").inc(10)
    second = sampler.tick(now=1002.0)
    entry = second["counters"]["reqs"]
    assert entry["value"] == 15
    assert entry["delta"] == 10
    assert entry["rate_per_s"] == pytest.approx(5.0)


def test_tick_derives_histogram_window_stats():
    registry, sampler = _sampler()
    histogram = registry.histogram("lat", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    sampler.tick(now=1000.0)
    for value in (0.05, 0.05, 0.5):
        histogram.observe(value)
    event = sampler.tick(now=1001.0)
    entry = event["histograms"]["lat"]
    assert entry["count"] == 4
    assert entry["delta"] == 3  # only the window's observations
    assert entry["rate_per_s"] == pytest.approx(3.0)
    assert entry["mean_s"] == pytest.approx(0.2)
    assert entry["p50_s"] == 0.1
    assert entry["p99_s"] == 1.0


def test_stats_windows_the_retained_series():
    registry, sampler = _sampler()
    counter = registry.counter("reqs")
    for tick in range(10):
        counter.inc(2)
        sampler.tick(now=1000.0 + tick)
    # Full window: 9 intervals x 2/s... value went 2 -> 20.
    wide = sampler.stats(window_s=100.0, now=1009.0)
    assert wide["counters"]["reqs"]["value"] == 20
    assert wide["counters"]["reqs"]["delta"] == 18
    assert wide["counters"]["reqs"]["rate_per_s"] == pytest.approx(2.0)
    assert wide["counters"]["reqs"]["samples"] == 10
    # Narrow window: only the last ~4 samples participate.
    narrow = sampler.stats(window_s=3.0, now=1009.0)
    assert narrow["counters"]["reqs"]["samples"] == 4
    assert narrow["counters"]["reqs"]["delta"] == 6


def test_stats_series_points_for_sparklines():
    registry, sampler = _sampler()
    registry.gauge("depth").set(1.0)
    sampler.tick(now=1000.0)
    registry.gauge("depth").set(3.0)
    sampler.tick(now=1001.0)
    stats = sampler.stats(
        window_s=60.0, series=("depth", "missing"), now=1001.0
    )
    assert stats["series"]["depth"] == [[1000.0, 1.0], [1001.0, 3.0]]
    assert "missing" not in stats["series"]
    assert stats["gauges"]["depth"] == {
        "value": 3.0, "min": 1.0, "max": 3.0, "samples": 2,
    }


def test_soak_simulated_minutes_memory_is_bounded():
    """A 60s-equivalent soak (and beyond): no series buffer grows."""
    registry, sampler = _sampler(interval_s=1.0, capacity=60)
    counter = registry.counter("reqs")
    histogram = registry.histogram("lat", buckets=(0.1, 1.0))
    sizes = set()
    for tick in range(300):  # 5 simulated minutes at 1 Hz
        counter.inc(3)
        histogram.observe(0.05)
        sampler.tick(now=2000.0 + tick)
        if tick >= 60:
            sizes.add((
                len(sampler._series["reqs"]),
                len(sampler._hist["lat"]),
                len(sampler._series["reqs"]._times),
            ))
    # Once warm, every buffer is pinned at exactly `capacity`.
    assert sizes == {(60, 60, 60)}
    assert sampler.ticks == 300
    # The retained window still answers correctly after wrap.
    stats = sampler.stats(window_s=10.0, now=2299.0)
    assert stats["counters"]["reqs"]["rate_per_s"] == pytest.approx(3.0)


def test_info_reports_liveness_shape():
    registry, sampler = _sampler(interval_s=0.5, capacity=32)
    registry.counter("reqs").inc()
    sampler.tick()
    info = sampler.info()
    assert info["ticks"] == 1
    assert info["alive"] is False  # no background thread in this test
    assert info["interval_s"] == 0.5
    assert info["capacity"] == 32
    assert info["series"] == 1
    assert info["last_tick_age_s"] is not None
    assert info["tick_wall_s"] > 0


def test_wait_for_event_wakes_on_new_tick():
    registry, sampler = _sampler()
    registry.counter("reqs").inc()
    # No tick newer than 0 yet: times out quickly with None.
    assert sampler.wait_for_event(0, timeout_s=0.05) is None

    got = {}

    def waiter():
        got["event"] = sampler.wait_for_event(0, timeout_s=5.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    event = sampler.tick(now=1000.0)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert got["event"] == event
    # Caller has seen this tick: asking again times out, not busy-loops.
    assert sampler.wait_for_event(event["tick"], timeout_s=0.05) is None


def test_background_thread_ticks_and_stops():
    registry = MetricsRegistry()
    sampler = LiveSampler(
        registry, interval_s=0.05, capacity=16, include_process=False,
    )
    registry.counter("reqs").inc()
    sampler.start()
    try:
        event = sampler.wait_for_event(0, timeout_s=5.0)
        assert event is not None
        assert sampler.alive()
    finally:
        sampler.stop()
    assert not sampler.alive()
    # Stopped sampler: waiting returns immediately instead of blocking.
    assert sampler.wait_for_event(10**9, timeout_s=30.0) is None
