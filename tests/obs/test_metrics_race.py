"""Race safety: writers hammering instruments while snapshots run.

The ISSUE's acceptance bar: a snapshot taken mid-``observe`` must
never tear — every histogram copy satisfies ``count == sum(counts)``
and (with exact-binary observations) ``sum == value * count``.
"""

import threading
import time

from repro.obs.metrics import MetricsRegistry

WRITERS = 8
#: 0.25 is an exact binary fraction: ``sum`` accumulates with zero
#: rounding error, so the invariant check is exact equality.
OBSERVED = 0.25
HAMMER_SECONDS = 0.5


def test_snapshot_never_tears_under_concurrent_writes():
    registry = MetricsRegistry()
    counter = registry.counter("hammer.requests")
    histogram = registry.histogram("hammer.latency_s", buckets=(0.5, 1.0))
    stop = threading.Event()
    per_thread_counts = [0] * WRITERS

    def writer(slot: int) -> None:
        wrote = 0
        while not stop.is_set():
            counter.inc()
            histogram.observe(OBSERVED)
            wrote += 1
        per_thread_counts[slot] = wrote

    threads = [
        threading.Thread(target=writer, args=(slot,), name=f"w{slot}")
        for slot in range(WRITERS)
    ]
    for thread in threads:
        thread.start()

    torn = []
    snapshots = 0
    deadline = time.perf_counter() + HAMMER_SECONDS
    while time.perf_counter() < deadline:
        for item in registry.snapshot():
            if item["type"] != "histogram":
                continue
            snapshots += 1
            if item["count"] != sum(item["counts"]):
                torn.append(("count", item))
            if item["sum"] != OBSERVED * item["count"]:
                torn.append(("sum", item))

    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not any(thread.is_alive() for thread in threads)
    assert snapshots > 100, "the scrape loop barely ran; test is vacuous"
    assert torn == []

    # After quiescence the totals are exact: no lost increments.
    total = sum(per_thread_counts)
    assert total > 0
    assert counter.value == total
    final = {
        item["name"]: item
        for item in registry.snapshot()
        if item["type"] == "histogram"
    }["hammer.latency_s"]
    assert final["count"] == total
    assert final["counts"] == [total, 0, 0]
    assert final["sum"] == OBSERVED * total


def test_instrument_creation_race_yields_one_instrument():
    registry = MetricsRegistry()
    barrier = threading.Barrier(WRITERS)
    seen = []
    lock = threading.Lock()

    def create() -> None:
        barrier.wait()
        counter = registry.counter("raced")
        counter.inc()
        histogram = registry.histogram("raced.h", buckets=(1.0,))
        histogram.observe(0.5)
        with lock:
            seen.append((id(counter), id(histogram)))

    threads = [threading.Thread(target=create) for _ in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)

    # All racers resolved to the same instrument objects...
    assert len(set(seen)) == 1
    # ...so no increment was split off onto a shadow instrument.
    assert registry.counter("raced").value == WRITERS
    assert registry.histogram("raced.h").count == WRITERS


def test_counter_inc_is_atomic_across_threads():
    registry = MetricsRegistry()
    counter = registry.counter("atomic")
    rounds = 2000

    def bump() -> None:
        for _ in range(rounds):
            counter.inc()

    threads = [threading.Thread(target=bump) for _ in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert counter.value == WRITERS * rounds
