"""Tests for the MNA model."""

import random

import pytest

from repro.cellular import IMSIRange, MobileOperator, OperatorRegistry, PLMN
from repro.cellular.roaming import RoamingArchitecture
from repro.mna import CountryOffering, MNAKind, MobileNetworkAggregator, OfferingError


def _mna_with_offerings():
    mna = MobileNetworkAggregator("Airalo", MNAKind.THICK)
    mna.add_offering(
        CountryOffering("ESP", "Play", "Movistar", RoamingArchitecture.IHBO)
    )
    mna.add_offering(
        CountryOffering("ARE", "Singtel", "Etisalat", RoamingArchitecture.HR)
    )
    mna.add_offering(
        CountryOffering("THA", "dtac", "dtac", RoamingArchitecture.NATIVE)
    )
    return mna


def test_offering_lookup_case_insensitive():
    mna = _mna_with_offerings()
    assert mna.offering_for("esp").b_mno_name == "Play"


def test_unknown_country_raises():
    mna = _mna_with_offerings()
    with pytest.raises(OfferingError):
        mna.offering_for("JPN")


def test_duplicate_offering_rejected():
    mna = _mna_with_offerings()
    with pytest.raises(ValueError):
        mna.add_offering(
            CountryOffering("ESP", "Play", "Movistar", RoamingArchitecture.IHBO)
        )


def test_offering_consistency_validation():
    with pytest.raises(ValueError):
        CountryOffering("THA", "dtac", "dtac", RoamingArchitecture.HR)
    with pytest.raises(ValueError):
        CountryOffering("ESP", "Play", "Movistar", RoamingArchitecture.NATIVE)


def test_roaming_share():
    mna = _mna_with_offerings()
    assert mna.roaming_share() == pytest.approx(2 / 3)
    empty = MobileNetworkAggregator("Empty", MNAKind.LIGHT)
    assert empty.roaming_share() == 0.0


def test_grouping_by_b_mno():
    mna = _mna_with_offerings()
    grouped = mna.offerings_by_b_mno()
    assert set(grouped) == {"Play", "Singtel", "dtac"}
    assert [o.country_iso3 for o in grouped["Play"]] == ["ESP"]


def test_served_countries_sorted():
    mna = _mna_with_offerings()
    assert mna.served_countries() == ["ARE", "ESP", "THA"]


def test_sell_esim_uses_rented_range():
    operators = OperatorRegistry()
    play = MobileOperator("Play", "POL", PLMN("260", "06"), asn=12912)
    play.rent_range("Airalo", IMSIRange(prefix="2600677"))
    operators.add(play)

    mna = _mna_with_offerings()
    profile = mna.sell_esim("ESP", operators, random.Random(5))
    assert profile.provider == "Airalo"
    assert profile.issuer_mno_name == "Play"
    assert profile.plan_country_iso3 == "ESP"
    assert profile.imsi.value.startswith("2600677")
