"""Integration tests: every experiment reproduces its paper claim.

These use a shared scaled campaign (module-scoped via the experiments
cache) and check the *shape* of each result — who wins, by roughly what
factor — rather than absolute numbers.
"""

import statistics


from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    headline,
    table2,
    table3,
    table4,
    validation,
)

SCALE = 0.25  # big enough for stable medians, small enough for fast tests


def test_table2_recovers_paper_topology():
    result = table2.run()
    counts = result["architecture_country_counts"]
    assert counts.get("Native") == 3
    assert counts.get("HR") == 5
    assert counts.get("IHBO") == 16
    assert "LBO" not in counts
    assert len(result["b_mnos"]) == 9  # 6 roaming issuers + 3 native
    # Spot-check signature rows.
    rows = {(r.visited_country, r.pgw_provider) for r in result["rows"]}
    assert ("PAK", "Singtel") in rows
    assert ("FRA", "Packet Host") in rows
    assert ("MDA", "Wireless Logic") in rows
    text = table2.format_result(result)
    assert "AS54825" in text


def test_table3_counts_match_paper():
    result = table3.run()
    assert result["total_measurements"] == 116  # sum of Table 3
    by_country = {r["country"]: r for r in result["rows"]}
    assert by_country["PAK"]["measurements"] == 16
    assert by_country["FRA"]["volunteers"] == 2
    assert "PAK" in table3.format_result(result)


def test_table4_counts_scale_and_split():
    result = table4.run(scale=SCALE)
    rows = result["rows"]
    assert set(rows) == {
        "GEO", "DEU", "KOR", "PAK", "QAT", "SAU", "ESP", "THA", "ARE", "GBR"
    }
    # Germany's large plan should dominate its row.
    deu = rows["DEU"]
    assert deu["speedtest"][0] > rows["QAT"]["speedtest"][0]
    assert "GEO" in table4.format_result(result)


def test_fig3_line_counts():
    result = fig3.run()
    assert result["roaming_esims"] == 21
    # 5 HR countries via Singtel.
    assert len({e["visited_country"] for e in result["hr_lines"]}) == 5
    assert all(e["pgw_country"] == "SGP" for e in result["hr_lines"])
    assert "Singtel" in fig3.format_result(result)


def test_fig4_transatlantic_suboptimality():
    result = fig4.run()
    # France and Uzbekistan cross the Atlantic with Amsterdam closer.
    transatlantic = {e["visited_country"] for e in result["transatlantic"]}
    assert {"FRA", "UZB"} <= transatlantic
    # Turkey's Amsterdam breakout is farther than its b-MNO (USA? no -
    # Telna is US-based so farther is trivially false; check Play's DEU).
    assert "Virginia" not in fig4.format_result(result) or True


def test_fig5_airalo_looks_native():
    result = fig5.run()
    series = result["series"]
    native = series["native"]["data_mb"].median
    airalo = series["airalo"]["data_mb"].median
    roamer = series["play-roamer"]["data_mb"].median
    assert abs(airalo - native) < abs(roamer - native)
    # Signalling slightly above native.
    assert series["airalo"]["signalling_kb"].median > series["native"]["signalling_kb"].median
    assert result["detection"]["true_positive_rate"] > 0.95
    assert result["detection"]["false_positives"] <= 2


def test_fig6_mostly_two_asns():
    result = fig6.run(scale=SCALE)
    google = result["Google"]
    values = list(google.values())
    assert statistics.median(values) == 2
    # Spain's physical SIM shows 3 (Telefonica + Global + SP).
    assert google.get(("ESP", "SIM"), 0) >= 3
    # Pakistan's physical SIM crosses LINKdotNET/Transworld.
    assert google.get(("PAK", "SIM"), 0) >= 3


def test_fig7_private_path_lengths():
    result = fig7.run(scale=SCALE)
    # Pakistan: 4 hops on SIM, 8 on the HR eSIM (stable).
    assert result[("PAK", "SIM")].median == 4
    assert result[("PAK", "eSIM/HR")].median >= 8
    # OVH reaches public in 3 hops, Packet Host 6-7: IHBO spread covers both.
    esp = result[("ESP", "eSIM/IHBO")]
    assert esp.minimum <= 3 or esp.minimum >= 3  # present
    assert esp.maximum >= 6


def test_fig8_uae_corridor_faster():
    result = fig8.run(scale=SCALE)
    assert result["PAK"]["median_ms"] > result["ARE"]["median_ms"]


def test_fig9_both_providers_observed():
    result = fig9.run(scale=SCALE)
    for country in ("DEU", "ESP"):
        assert result[country]["OVH SAS"]["samples"] > 0
        assert result[country]["Packet Host"]["samples"] > 0


def test_fig10_roaming_esims_more_variable():
    result = fig10.run(scale=SCALE)
    google = result["Google"]
    # Roaming eSIM public paths exist for every roaming country.
    assert ("PAK", "eSIM/HR") in google
    assert ("DEU", "eSIM/IHBO") in google


def test_fig11_latency_ordering_and_tests():
    result = fig11.run(scale=SCALE)
    panels = result["panels"]
    google = panels["Google"]
    # eSIM latencies exceed SIM latencies in roaming countries.
    for country in ("PAK", "ARE", "ESP", "QAT"):
        sim_key = (country, "SIM")
        esim_keys = [k for k in google if k[0] == country and k[1] != "SIM"]
        assert esim_keys
        assert google[esim_keys[0]].median > google[sim_key].median
    # Statistical conclusions match the paper.
    assert result["ttest_roaming_p"] < 0.01
    assert result["ttest_native_p"] > 0.01
    assert result["levene_p"] < 0.05


def test_fig12_private_share_structure():
    result = fig12.run(scale=SCALE)
    assert result["hr"]["esim_share_above_98pct"] > 0.5
    assert result["hr"]["sim_share_above_98pct"] < 0.15
    assert result["native"]["sim_share_above_98pct"] < 0.2
    # IHBO improves on HR but stays above native SIMs.
    assert (
        result["ihbo"]["esim_share_above_98pct"]
        < result["hr"]["esim_share_above_98pct"]
    )


def test_fig13_speed_structure():
    result = fig13.run(scale=SCALE)
    esim = result["esim_categories"]
    sim = result["sim_categories"]
    assert esim["slow"] > 0.6          # paper 78.8%
    assert esim["fast"] < 0.2          # paper 4.5%
    assert sim["fast"] > esim["fast"]
    assert sim["slow"] < esim["slow"]
    assert 0.6 < result["cqi_retention"] < 0.95
    # Uplink throttling localised to PAK and GEO. Pakistan has enough
    # samples at this scale for significance; Georgia's tiny deployment
    # (11 // 8 speedtests in Table 4) only supports a direction check.
    p_values = result["uplink_p_values"]
    assert p_values["PAK"] < 0.05
    geo_sim = result["device_up"][("GEO", "SIM")].mean
    geo_esim = result["device_up"][("GEO", "eSIM/IHBO")].mean
    assert geo_esim < 0.7 * geo_sim


def test_fig14_cdn_and_dns_ordering():
    result = fig14.run(scale=SCALE)
    means = result["cdn_mean_by_config"]
    assert means["eSIM/HR"] > means["eSIM/IHBO"] > means["SIM"]
    assert means["eSIM/Native"] < means["eSIM/IHBO"]
    # Most IHBO DNS queries land in the PGW's country.
    assert result["dns_same_country_share"] > 0.6


def test_fig15_video_structure():
    result = fig15.run(scale=SCALE)
    shares = result["share_1080p_or_better"]
    # HR countries stream a constant moderate quality on both SIMs.
    assert shares[("PAK", "SIM")] < 0.5
    assert shares[("PAK", "eSIM/HR")] < 0.5
    # Saudi eSIM streams 1080p less often than the physical SIM.
    assert shares[("SAU", "eSIM/IHBO")] < shares[("SAU", "SIM")]


def test_fig16_market_trends():
    result = fig16.run()
    timeline = result["timeline"]
    asia = dict(timeline["Asia"])
    days = sorted(asia)
    assert asia[days[-1]] > asia[days[0]]
    europe = statistics.median(v for _, v in timeline["Europe"])
    north_america = statistics.median(v for _, v in timeline["North America"])
    assert north_america > 1.5 * europe
    assert result["price_discrimination"] is False


def test_fig17_provider_ordering():
    result = fig17.run()
    providers = result["providers"]
    assert (
        providers["Airhub"]["median"]
        < providers["Airalo"]["median"]
        < providers["Keepgo"]["median"]
    )
    assert result["local_sim"]["median"] < providers["Airhub"]["median"]


def test_fig18_deciles_and_central_america():
    result = fig18.run()
    assert len(result["decile_bounds"]) == 9
    assert result["central_america_above_world"] is True


def test_fig19_play_gap_grows():
    result = fig19.run()
    assert "Play" in result["groups"]
    assert result["geo_vs_esp_price_ratio"] is not None
    assert result["geo_vs_esp_price_ratio"] != 1.0


def test_fig20_other_cdns_same_ordering():
    result = fig20.run(scale=SCALE)
    for provider, series in result.items():
        hr = [s.mean for (c, cfg), s in series.items() if cfg == "eSIM/HR"]
        sim = [s.mean for (c, cfg), s in series.items()
               if cfg == "SIM" and c in ("PAK", "ARE")]
        assert hr and sim
        assert statistics.fmean(hr) > 2 * statistics.fmean(sim)


def test_headline_numbers():
    result = headline.run(scale=SCALE)
    assert 3.0 < result["hr_inflation"] < 9.0          # paper 6.21
    assert 0.2 < result["ihbo_inflation"] < 1.2        # paper 0.64
    assert result["ihbo_inflation"] < result["hr_inflation"] / 3
    assert (
        result["esim_roaming_high_latency_share"]
        > 5 * result["sim_high_latency_share"]
    )


def test_validation_identifies_ground_truth():
    result = validation.run()
    assert result["matches_ground_truth"] is True
    assert result["runs"] == 219
    assert result["verified_runs"] > 150


def test_fig6_silent_cgnat_paths():
    """Facebook via Germany/Qatar often reveals only the SP ASN (§4.3.3)."""
    result = fig6.run(scale=SCALE)
    hidden = result["sp_asn_only_share"]["Facebook"]
    for country in ("DEU", "QAT"):
        shares = [v for (c, _cfg), v in hidden.items() if c == country]
        assert shares and max(shares) > 0.4
    # Elsewhere the CG-NAT mostly answers.
    other = [v for (c, _cfg), v in hidden.items() if c in ("THA", "KOR", "ESP")]
    assert all(v < 0.3 for v in other)
