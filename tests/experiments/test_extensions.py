"""Tests for the future-work extension experiments (X1-X3)."""

import pytest

from repro.experiments import ext_audit, ext_placement, ext_steering, ext_voip


def test_voip_hr_degraded():
    result = ext_voip.run()
    by_config = result["mos_by_config"]
    assert by_config["eSIM/HR"] < by_config["SIM"] - 0.2
    assert by_config["eSIM/IHBO"] > by_config["eSIM/HR"]
    assert by_config["eSIM/Native"] == pytest.approx(by_config["SIM"], abs=0.15)
    # Pakistan's HR corridor is the worst call path.
    pak = result["rows"][("PAK", "eSIM/HR")]
    assert pak["mos_median"] < 4.0
    assert pak["loss_mean"] > 0.005
    text = ext_voip.format_result(result)
    assert "MOS" in text


def test_voip_jitter_higher_on_hr():
    result = ext_voip.run()
    rows = result["rows"]
    assert rows[("PAK", "eSIM/HR")]["jitter_median_ms"] > rows[("PAK", "SIM")]["jitter_median_ms"]


def test_placement_ordering():
    result = ext_placement.run()
    assert (
        result["optimised_mean_km"]
        < result["nearest_mean_km"]
        < result["static_mean_km"]
    )
    assert result["saving_optimised"] > 0.4
    assert result["fleet_size"] >= 4
    assert len(result["optimised_sites"]) == result["fleet_size"]
    # Every IHBO eSIM gets an assignment.
    assert len(result["assignment"]) == 16
    text = ext_placement.format_result(result)
    assert "optimised fleet" in text


def test_audit_matches_ground_truth():
    result = ext_audit.run()
    assert result["mismatches"] == []
    assert result["audited_countries"] == len(ext_audit.REPRESENTATIVE_COUNTRIES)
    emnify = result["emnify"][0]
    assert emnify.pgw_city == "Dublin"
    text = ext_audit.format_result(result)
    assert "emnify audit" in text
    assert "none" in text


def test_audit_full_covers_24():
    result = ext_audit.run(full=True)
    assert result["audited_countries"] == 24
    assert result["mismatches"] == []


def test_steering_visibility_gap():
    result = ext_steering.run()
    assert result["steered"]["EE"] > 0.7
    assert result["partner_visibility_ratio"] < 0.25
    assert result["airalo_pinned"]["O2 UK"] == 1.0
    assert "visibility gap" in ext_steering.format_result(result)


def test_economics_margins_and_decomposition():
    from repro.experiments import ext_economics

    result = ext_economics.run()
    assert len(result["rows"]) == 24
    summary = result["summary"]
    assert 0.2 < summary["median_margin_share"] < 0.7
    decomposition = result["geo_vs_esp"]
    assert decomposition is not None
    assert decomposition["retail_gap"] > 0  # Georgia dearer than Spain
    assert 0 < decomposition["wholesale_share_of_gap"]
    assert "roaming agreements" in ext_economics.format_result(result)


def test_jurisdiction_implications():
    from repro.experiments import ext_jurisdiction

    result = ext_jurisdiction.run()
    assert result["total"] == 24
    # Native eSIMs (KOR/MDV/THA) localize correctly, and so does the US
    # eSIM by accident (its Webbing breakout sits in Dallas); the other
    # 20 roaming eSIMs receive wrong-country content.
    assert result["mislocalized"] == 20
    assert result["third_party_handled"] >= 16  # all IHBO at minimum
    assert set(result["intermediary_countries"]) <= {"SGP", "NLD", "FRA", "GBR", "USA"}
    correct = [e for e in result["experiences"] if e.localized_correctly]
    assert {e.user_country for e in correct} == {"KOR", "MDV", "THA", "USA"}
    text = ext_jurisdiction.format_result(result)
    assert "mislocalized" in text
