"""Tests for the ablation experiments."""


from repro.experiments import ablations


def test_nearest_selection_saves_latency_for_transatlantic_esims():
    result = ablations.run_pgw_selection(samples=8)
    # France: Ashburn today, a European hub under nearest selection.
    fra = result["FRA"]
    assert fra["nearest_median_ms"] < fra["static_median_ms"]
    assert fra["saving"] > 0.3
    assert all("ash" not in site for site in fra["nearest_sites"])


def test_lbo_beats_ihbo_everywhere():
    result = ablations.run_lbo(samples=8)
    for country, data in result.items():
        assert data["lbo_median_ms"] < data["ihbo_median_ms"], country
        assert data["saving"] > 0


def test_doh_overhead_positive():
    result = ablations.run_doh(samples=150)
    assert result["doh_median_ms"] > result["plain_median_ms"]
    assert result["overhead"] > 0.1


def test_cqi_filter_reduces_variance():
    result = ablations.run_cqi_filter()
    assert 0.6 < result["retention"] < 0.95
    assert result["mean_filtered"] > result["mean_all"]
    assert result["stdev_filtered"] <= result["stdev_all"] * 1.05


def test_run_all_and_format():
    result = ablations.run()
    text = ablations.format_result(result)
    assert "nearest PGW selection" in text
    assert "LBO" in text
    assert "DoH" in text
    assert "CQI" in text
