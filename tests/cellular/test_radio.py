"""Tests for the radio access model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.cellular import (
    RadioAccessTechnology,
    RadioConditions,
    RadioModel,
    modulation_for_cqi,
)


def test_modulation_mapping_follows_3gpp_bands():
    assert modulation_for_cqi(1) == "QPSK"
    assert modulation_for_cqi(6) == "QPSK"
    assert modulation_for_cqi(7) == "16QAM"
    assert modulation_for_cqi(9) == "16QAM"
    assert modulation_for_cqi(10) == "64QAM"
    assert modulation_for_cqi(15) == "64QAM"


def test_modulation_rejects_out_of_range():
    with pytest.raises(ValueError):
        modulation_for_cqi(0)
    with pytest.raises(ValueError):
        modulation_for_cqi(16)


def test_speedtest_filter_threshold():
    # The paper excludes CQI < 7 from bandwidth analysis.
    good = RadioConditions(RadioAccessTechnology.NR, cqi=7, rsrp_dbm=-90, snr_db=10)
    bad = RadioConditions(RadioAccessTechnology.NR, cqi=6, rsrp_dbm=-110, snr_db=2)
    assert good.usable_for_speedtest
    assert not bad.usable_for_speedtest


def test_conditions_validation():
    with pytest.raises(ValueError):
        RadioConditions(RadioAccessTechnology.LTE, cqi=0, rsrp_dbm=-90, snr_db=5)
    with pytest.raises(ValueError):
        RadioConditions(RadioAccessTechnology.LTE, cqi=8, rsrp_dbm=-30, snr_db=5)


def test_efficiency_monotone_in_cqi():
    effs = [
        RadioConditions(RadioAccessTechnology.LTE, cqi=c, rsrp_dbm=-100, snr_db=5).efficiency
        for c in range(1, 16)
    ]
    assert effs == sorted(effs)
    assert effs[0] == pytest.approx(0.15)
    assert effs[-1] == pytest.approx(1.0)


def test_rat_constants_ordered():
    assert (
        RadioAccessTechnology.NR.base_latency_ms
        < RadioAccessTechnology.LTE.base_latency_ms
    )
    assert (
        RadioAccessTechnology.NR.peak_downlink_mbps
        > RadioAccessTechnology.LTE.peak_downlink_mbps
    )


def test_sample_conditions_deterministic_and_bounded():
    model = RadioModel()
    a = model.sample_conditions(RadioAccessTechnology.NR, random.Random(5))
    b = model.sample_conditions(RadioAccessTechnology.NR, random.Random(5))
    assert a == b
    assert 1 <= a.cqi <= 15
    assert -140 <= a.rsrp_dbm <= -60


def test_most_samples_pass_cqi_filter():
    # Default model targets ~80%+ retention, matching the paper's filter.
    model = RadioModel()
    rng = random.Random(11)
    samples = [model.sample_conditions(RadioAccessTechnology.LTE, rng) for _ in range(1000)]
    usable = sum(1 for s in samples if s.usable_for_speedtest)
    assert 0.7 <= usable / len(samples) <= 0.95


def test_access_rtt_worsens_with_bad_channel():
    model = RadioModel()
    good = RadioConditions(RadioAccessTechnology.LTE, cqi=15, rsrp_dbm=-70, snr_db=20)
    bad = RadioConditions(RadioAccessTechnology.LTE, cqi=2, rsrp_dbm=-120, snr_db=-2)
    assert model.access_rtt_ms(bad) > model.access_rtt_ms(good)


def test_access_rtt_jitter_only_with_rng():
    model = RadioModel()
    cond = RadioConditions(RadioAccessTechnology.NR, cqi=10, rsrp_dbm=-85, snr_db=12)
    deterministic = model.access_rtt_ms(cond)
    assert model.access_rtt_ms(cond) == deterministic
    jittered = model.access_rtt_ms(cond, random.Random(3))
    assert jittered >= deterministic


def test_throughput_capped_by_policy_and_rat():
    model = RadioModel()
    excellent_nr = RadioConditions(RadioAccessTechnology.NR, cqi=15, rsrp_dbm=-70, snr_db=20)
    assert model.throughput_mbps(20.0, excellent_nr) == pytest.approx(20.0)
    # Policy above RAT peak: the RAT peak binds.
    assert model.throughput_mbps(10_000.0, excellent_nr) == pytest.approx(600.0)


def test_lte_derate_applied():
    from repro.cellular.radio import LTE_THROUGHPUT_DERATE

    model = RadioModel()
    lte = RadioConditions(RadioAccessTechnology.LTE, cqi=15, rsrp_dbm=-70, snr_db=20)
    nr = RadioConditions(RadioAccessTechnology.NR, cqi=15, rsrp_dbm=-70, snr_db=20)
    assert model.throughput_mbps(20.0, lte) == pytest.approx(
        model.throughput_mbps(20.0, nr) * LTE_THROUGHPUT_DERATE
    )


def test_throughput_degrades_with_cqi():
    model = RadioModel()
    hi = RadioConditions(RadioAccessTechnology.NR, cqi=14, rsrp_dbm=-75, snr_db=18)
    lo = RadioConditions(RadioAccessTechnology.NR, cqi=7, rsrp_dbm=-105, snr_db=6)
    assert model.throughput_mbps(50.0, hi) > model.throughput_mbps(50.0, lo)


def test_throughput_rejects_negative_policy():
    model = RadioModel()
    cond = RadioConditions(RadioAccessTechnology.NR, cqi=10, rsrp_dbm=-85, snr_db=12)
    with pytest.raises(ValueError):
        model.throughput_mbps(-1.0, cond)


def test_model_parameter_validation():
    with pytest.raises(ValueError):
        RadioModel(mean_cqi=0.5)
    with pytest.raises(ValueError):
        RadioModel(cqi_sigma=0.0)


@given(st.integers(min_value=1, max_value=15))
def test_efficiency_within_unit_interval(cqi):
    cond = RadioConditions(RadioAccessTechnology.LTE, cqi=cqi, rsrp_dbm=-100, snr_db=0)
    assert 0.0 < cond.efficiency <= 1.0
