"""Shared mini-world fixtures for cellular-layer tests."""

import random

import pytest

from repro.geo import default_city_registry
from tests.worldkit import build_mini_world


@pytest.fixture()
def cities():
    return default_city_registry()


@pytest.fixture()
def mini_world():
    return build_mini_world()


@pytest.fixture()
def rng():
    return random.Random(1234)
