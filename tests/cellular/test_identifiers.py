"""Tests for subscriber/equipment identifiers and IMSI prefix mining."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.cellular import (
    IMSI,
    IMSIRange,
    PLMN,
    generate_iccid,
    generate_imei,
    infer_imsi_prefixes,
    luhn_check_digit,
    luhn_is_valid,
)


def test_luhn_known_value():
    # Classic example: 7992739871 -> check digit 3.
    assert luhn_check_digit("7992739871") == 3
    assert luhn_is_valid("79927398713")
    assert not luhn_is_valid("79927398710")


def test_luhn_rejects_non_digits():
    with pytest.raises(ValueError):
        luhn_check_digit("12a4")
    assert not luhn_is_valid("abc")
    assert not luhn_is_valid("7")


@given(st.text(alphabet="0123456789", min_size=1, max_size=30))
def test_luhn_appended_digit_always_validates(payload):
    digit = luhn_check_digit(payload)
    assert luhn_is_valid(payload + str(digit))


def test_plmn_formatting():
    plmn = PLMN("260", "06")  # Play Poland
    assert str(plmn) == "260-06"
    assert plmn.code == "26006"


def test_plmn_validation():
    with pytest.raises(ValueError):
        PLMN("26", "06")
    with pytest.raises(ValueError):
        PLMN("260", "6")
    with pytest.raises(ValueError):
        PLMN("260", "0606")
    with pytest.raises(ValueError):
        PLMN("2a0", "06")


def test_imsi_structure():
    imsi = IMSI("260061234567890")
    assert imsi.plmn_of() == PLMN("260", "06")
    assert imsi.msin == "1234567890"
    assert str(imsi) == "260061234567890"


def test_imsi_validation():
    with pytest.raises(ValueError):
        IMSI("12345")
    with pytest.raises(ValueError):
        IMSI("26006123456789x")
    with pytest.raises(ValueError):
        IMSI("260061234567890").plmn_of(mnc_length=4)


def test_imsi_range_issue_and_contains():
    rng = IMSIRange(prefix="2600677", label="airalo block")
    assert rng.capacity == 10**8
    first = rng.issue(0)
    assert first.value == "260067700000000"
    assert rng.contains(first)
    assert not rng.contains(IMSI("260069900000000"))


def test_imsi_range_bounds():
    rng = IMSIRange(prefix="26006771234567")  # 14-digit prefix -> 10 IMSIs
    assert rng.capacity == 10
    rng.issue(9)
    with pytest.raises(ValueError):
        rng.issue(10)
    with pytest.raises(ValueError):
        rng.issue(-1)


def test_imsi_range_prefix_validation():
    with pytest.raises(ValueError):
        IMSIRange(prefix="1234")            # too short
    with pytest.raises(ValueError):
        IMSIRange(prefix="123456789012345")  # too long
    with pytest.raises(ValueError):
        IMSIRange(prefix="26006x")


def test_imsi_range_sampling_deterministic():
    block = IMSIRange(prefix="2600677")
    a = block.sample(random.Random(42))
    b = block.sample(random.Random(42))
    assert a == b
    assert block.contains(a)


def test_generate_imei_valid():
    imei = generate_imei(random.Random(1))
    assert len(imei) == 15
    assert luhn_is_valid(imei)
    with pytest.raises(ValueError):
        generate_imei(random.Random(1), tac="123")


def test_generate_iccid_valid():
    iccid = generate_iccid(random.Random(2))
    assert len(iccid) == 19
    assert iccid.startswith("8901")
    assert luhn_is_valid(iccid)
    with pytest.raises(ValueError):
        generate_iccid(random.Random(2), issuer="x")


def test_imeis_unique_across_seeds():
    imeis = {generate_imei(random.Random(seed)) for seed in range(50)}
    assert len(imeis) == 50


def test_infer_prefixes_finds_rented_block():
    plmn = PLMN("260", "06")
    block = IMSIRange(prefix="26006771", label="airalo")
    rng = random.Random(3)
    airalo = [block.sample(rng) for _ in range(10)]
    prefixes = infer_imsi_prefixes(airalo, plmn, min_support=3)
    assert prefixes, "should mine at least one prefix"
    top_prefix, support = prefixes[0]
    assert top_prefix.startswith("26006771")
    assert support >= 3


def test_infer_prefixes_ignores_other_plmn():
    plmn = PLMN("260", "06")
    foreign = [IMSI("310150123456789")] * 5
    assert infer_imsi_prefixes(foreign, plmn) == []


def test_infer_prefixes_min_support_enforced():
    plmn = PLMN("260", "06")
    # Two far-apart IMSIs: with min_support=3 nothing survives past the PLMN.
    imsis = [IMSI("260060000000001"), IMSI("260069999999999")]
    result = infer_imsi_prefixes(imsis, plmn, min_support=3)
    assert result == []
    with pytest.raises(ValueError):
        infer_imsi_prefixes(imsis, plmn, min_support=0)


def test_infer_prefixes_splits_two_blocks():
    plmn = PLMN("260", "06")
    block_a = IMSIRange(prefix="260067711")
    block_b = IMSIRange(prefix="260067755")
    rng = random.Random(9)
    imsis = [block_a.sample(rng) for _ in range(6)] + [block_b.sample(rng) for _ in range(6)]
    prefixes = [p for p, _ in infer_imsi_prefixes(imsis, plmn, min_support=4)]
    assert any(p.startswith("260067711") for p in prefixes)
    assert any(p.startswith("260067755") for p in prefixes)
