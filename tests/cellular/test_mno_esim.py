"""Tests for operators, bandwidth policies, and SIM provisioning."""

import random

import pytest

from repro.cellular import (
    BandwidthPolicy,
    IMSIRange,
    MobileOperator,
    OperatorKind,
    OperatorRegistry,
    PLMN,
    ProvisioningError,
    RSPServer,
    SIMKind,
    issue_physical_sim,
)


def _play() -> MobileOperator:
    return MobileOperator(
        name="Play",
        country_iso3="POL",
        plmn=PLMN("260", "06"),
        asn=12912,
    )


def test_operator_default_dns_is_own_resolver():
    play = _play()
    assert play.dns is not None
    assert play.dns.operator_name == "Play"
    assert not play.dns.supports_doh


def test_mvno_requires_parent():
    with pytest.raises(ValueError):
        MobileOperator(
            name="U+ UMobile",
            country_iso3="KOR",
            plmn=PLMN("450", "06"),
            asn=9999,
            kind=OperatorKind.MVNO,
        )


def test_parent_resolution():
    registry = OperatorRegistry()
    lg = MobileOperator(name="LG U+", country_iso3="KOR", plmn=PLMN("450", "06"), asn=17858)
    umobile = MobileOperator(
        name="U+ UMobile",
        country_iso3="KOR",
        plmn=PLMN("450", "06"),
        asn=17858,
        kind=OperatorKind.MVNO,
        parent_name="LG U+",
    )
    registry.add(lg)
    registry.add(umobile)
    assert registry.parent_of(umobile) is lg
    assert registry.parent_of(lg) is lg
    assert umobile.is_mvno and not lg.is_mvno


def test_registry_lookup_and_country_filter():
    registry = OperatorRegistry([_play()])
    assert registry.get("Play").asn == 12912
    assert "Play" in registry
    assert registry.in_country("pol")[0].name == "Play"
    with pytest.raises(KeyError):
        registry.get("Nonexistent")
    with pytest.raises(ValueError):
        registry.add(_play())


def test_rented_range_must_match_plmn():
    play = _play()
    good = IMSIRange(prefix="2600677", label="airalo")
    play.rent_range("Airalo", good)
    assert play.ranges_for("Airalo") == [good]
    assert play.ranges_for("OtherMNA") == []
    with pytest.raises(ValueError):
        play.rent_range("Airalo", IMSIRange(prefix="3101504"))


def test_bandwidth_policy_selection():
    policy = BandwidthPolicy(
        native_downlink_mbps=100.0,
        native_uplink_mbps=30.0,
        roaming_downlink_mbps=15.0,
        roaming_uplink_mbps=8.0,
    )
    assert policy.downlink_for(roaming=False) == 100.0
    assert policy.downlink_for(roaming=True) == 15.0
    assert policy.uplink_for(roaming=True) == 8.0


def test_bandwidth_policy_validation():
    with pytest.raises(ValueError):
        BandwidthPolicy(0.0, 1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        BandwidthPolicy(1.0, 1.0, 1.0, 1.0, youtube_cap_mbps=0.0)


def test_hop_depths_validation():
    with pytest.raises(ValueError):
        MobileOperator(
            name="X", country_iso3="POL", plmn=PLMN("260", "98"), asn=1, core_hop_depths=()
        )
    with pytest.raises(ValueError):
        MobileOperator(
            name="Y", country_iso3="POL", plmn=PLMN("260", "97"), asn=1, core_hop_depths=(0,)
        )


def test_rsp_issues_from_rented_range():
    play = _play()
    play.rent_range("Airalo", IMSIRange(prefix="26006771234567"))  # 10 IMSIs
    rsp = RSPServer("Airalo")
    rng = random.Random(1)
    profile = rsp.issue(play, "esp", rng)
    assert profile.kind is SIMKind.ESIM
    assert profile.issuer_mno_name == "Play"
    assert profile.provider == "Airalo"
    assert profile.plan_country_iso3 == "ESP"
    assert profile.imsi.value.startswith("26006771234567")
    assert profile.is_esim


def test_rsp_issues_unique_imsis_until_exhaustion():
    play = _play()
    play.rent_range("Airalo", IMSIRange(prefix="26006771234567"))  # capacity 10
    rsp = RSPServer("Airalo")
    rng = random.Random(2)
    imsis = {rsp.issue(play, "ESP", rng).imsi.value for _ in range(10)}
    assert len(imsis) == 10
    with pytest.raises(ProvisioningError):
        rsp.issue(play, "ESP", rng)


def test_rsp_spills_into_second_range():
    play = _play()
    play.rent_range("Airalo", IMSIRange(prefix="26006771234567"))
    play.rent_range("Airalo", IMSIRange(prefix="26006779876543"))
    rsp = RSPServer("Airalo")
    rng = random.Random(3)
    profiles = [rsp.issue(play, "ESP", rng) for _ in range(15)]
    prefixes = {p.imsi.value[:14] for p in profiles}
    assert prefixes == {"26006771234567", "26006779876543"}
    assert len(rsp.issued_profiles()) == 15


def test_rsp_requires_rented_range():
    rsp = RSPServer("Airalo")
    with pytest.raises(ProvisioningError):
        rsp.register_operator(_play())


def test_physical_sim_from_operator():
    play = _play()
    sim = issue_physical_sim(play, random.Random(4))
    assert sim.kind is SIMKind.PHYSICAL
    assert sim.provider == "Play"
    assert sim.plan_country_iso3 == "POL"
    assert sim.imsi.value.startswith("26006")
    assert not sim.is_esim


def test_physical_sim_deterministic_index():
    play = _play()
    sim = issue_physical_sim(play, random.Random(5), subscriber_index=7)
    assert sim.imsi.value == "26006" + "7".zfill(10)
