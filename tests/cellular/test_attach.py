"""Tests for session establishment across roaming architectures."""


import pytest

from repro.cellular import (
    RSPServer,
    RoamingArchitecture,
    UserEquipment,
    AttachError,
    issue_physical_sim,
)
from repro.cellular.attach import GOOGLE_DNS_NAME
from repro.net.ipv4 import is_private_ip


def _airalo_esim(world, b_mno_name, plan_country, rng):
    rsp = RSPServer("Airalo")
    return rsp.issue(world["operators"].get(b_mno_name), plan_country, rng)


def _device(world, city_name, iso3, rng):
    city = world["cities"].get(city_name, iso3)
    return UserEquipment.provision("Samsung S21+ 5G", city, rng)


def test_ihbo_attach_breaks_out_at_third_party(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert session.architecture is RoamingArchitecture.IHBO
    assert session.pgw_site.provider_org == "Packet Host"
    assert session.breakout_country == "NLD"
    assert session.is_roaming
    # IHBO sessions use the public anycast resolver with Android DoH.
    assert session.dns_operator == GOOGLE_DNS_NAME
    assert session.dns_uses_doh
    assert session.dns_anycast


def test_hr_attach_breaks_out_at_home(mini_world, rng):
    sim = _airalo_esim(mini_world, "Singtel", "ARE", rng)
    ue = _device(mini_world, "Abu Dhabi", "ARE", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "Etisalat", mini_world["factory"], rng)
    assert session.architecture is RoamingArchitecture.HR
    assert session.pgw_site.provider_org == "Singtel"
    assert session.breakout_country == "SGP"
    # HR resolves at the b-MNO, not a public resolver.
    assert session.dns_operator == "Singtel"
    assert not session.dns_uses_doh


def test_native_attach(mini_world, rng):
    sim = _airalo_esim(mini_world, "dtac", "THA", rng)
    ue = _device(mini_world, "Bangkok", "THA", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "dtac", mini_world["factory"], rng)
    assert session.architecture is RoamingArchitecture.NATIVE
    assert not session.is_roaming
    assert session.breakout_country == "THA"
    assert session.dns_operator == "dtac"


def test_physical_sim_is_native(mini_world, rng):
    movistar = mini_world["operators"].get("Movistar")
    sim = issue_physical_sim(movistar, rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert session.architecture is RoamingArchitecture.NATIVE
    assert session.pgw_site.provider_org == "Movistar"


def test_roaming_requires_data_roaming_enabled(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.data_roaming_enabled = False
    ue.install_sim(sim)
    with pytest.raises(AttachError):
        ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert not ue.attached


def test_no_agreement_raises(mini_world, rng):
    # Play has no agreement with Etisalat in the mini world.
    sim = _airalo_esim(mini_world, "Play", "ARE", rng)
    ue = _device(mini_world, "Abu Dhabi", "ARE", rng)
    ue.install_sim(sim)
    with pytest.raises(AttachError):
        ue.switch_to(0, "Etisalat", mini_world["factory"], rng)


def test_private_path_structure(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    # All private hops are private IPs; hop count matches site depths.
    assert all(is_private_ip(hop) for hop in session.private_path)
    assert session.private_hop_count in (6, 7)
    # The public IP is not private and comes from the site's CG-NAT pool.
    assert not is_private_ip(session.public_ip)
    assert session.public_ip in session.pgw_site.cgnat.pool


def test_tunnel_costs_reflect_geography(mini_world, rng):
    # HR from Abu Dhabi to Singapore must beat IHBO Madrid->Amsterdam in cost.
    hr_sim = _airalo_esim(mini_world, "Singtel", "ARE", rng)
    hr_ue = _device(mini_world, "Abu Dhabi", "ARE", rng)
    hr_ue.install_sim(hr_sim)
    hr = hr_ue.switch_to(0, "Etisalat", mini_world["factory"], rng)

    ihbo_sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ihbo_ue = _device(mini_world, "Madrid", "ESP", rng)
    ihbo_ue.install_sim(ihbo_sim)
    ihbo = ihbo_ue.switch_to(0, "Movistar", mini_world["factory"], rng)

    assert hr.tunnel.distance_km > ihbo.tunnel.distance_km
    assert hr.base_private_rtt_ms > ihbo.base_private_rtt_ms
    # HR Abu Dhabi -> Singapore: thousands of km, > 100 ms with IPX stretch.
    assert hr.tunnel.distance_km == pytest.approx(5870, rel=0.05)
    assert hr.base_private_rtt_ms > 150.0
    # IHBO Madrid -> Amsterdam: modest tunnel.
    assert 10.0 < ihbo.base_private_rtt_ms < 60.0


def test_detach_releases_cgnat_binding(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(sim)
    session = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    nat = session.pgw_site.cgnat
    assert nat.active_sessions() == 1
    ue.detach()
    assert nat.active_sessions() == 0
    assert not ue.attached


def test_switching_sims_reattaches(mini_world, rng):
    movistar = mini_world["operators"].get("Movistar")
    physical = issue_physical_sim(movistar, rng)
    esim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(physical)
    ue.install_sim(esim)
    native = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert native.architecture is RoamingArchitecture.NATIVE
    roaming = ue.switch_to(1, "Movistar", mini_world["factory"], rng)
    assert roaming.architecture is RoamingArchitecture.IHBO
    assert ue.active_slot == 1
    assert ue.active_sim is esim


def test_second_physical_sim_rejected(mini_world, rng):
    movistar = mini_world["operators"].get("Movistar")
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(issue_physical_sim(movistar, rng))
    with pytest.raises(ValueError):
        ue.install_sim(issue_physical_sim(movistar, rng))
    # eSIMs are fine alongside.
    ue.install_sim(_airalo_esim(mini_world, "Play", "ESP", rng))


def test_sessions_get_distinct_ids(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.install_sim(sim)
    first = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    second = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert first.session_id != second.session_id


def test_doh_disabled_device(mini_world, rng):
    sim = _airalo_esim(mini_world, "Play", "ESP", rng)
    ue = _device(mini_world, "Madrid", "ESP", rng)
    ue.doh_enabled = False  # the setting the paper forgot to change
    ue.install_sim(sim)
    session = ue.switch_to(0, "Movistar", mini_world["factory"], rng)
    assert session.dns_operator == GOOGLE_DNS_NAME
    assert not session.dns_uses_doh
