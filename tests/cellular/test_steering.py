"""Tests for steering of roaming and network selection."""

import random

import pytest

from repro.cellular import NetworkSelector, SteeringPolicy, VisitedNetworkOption


def _selector():
    selector = NetworkSelector()
    selector.register_country(
        "GBR",
        [
            VisitedNetworkOption("O2 UK", 0.35),
            VisitedNetworkOption("EE", 0.40),
            VisitedNetworkOption("Vodafone UK", 0.25),
        ],
    )
    return selector


def test_option_and_policy_validation():
    with pytest.raises(ValueError):
        VisitedNetworkOption("X", 0.0)
    with pytest.raises(ValueError):
        VisitedNetworkOption("X", 1.5)
    with pytest.raises(ValueError):
        SteeringPolicy("Play", preferred=())
    with pytest.raises(ValueError):
        SteeringPolicy("Play", preferred=("EE",), compliance=1.2)


def test_register_validation():
    selector = NetworkSelector()
    with pytest.raises(ValueError):
        selector.register_country("GBR", [])
    with pytest.raises(ValueError):
        selector.register_country(
            "GBR", [VisitedNetworkOption("A", 0.5), VisitedNetworkOption("B", 0.2)]
        )
    with pytest.raises(ValueError):
        selector.register_country(
            "GBR", [VisitedNetworkOption("A", 0.5), VisitedNetworkOption("A", 0.5)]
        )
    with pytest.raises(KeyError):
        selector.set_policy("GBR", SteeringPolicy("Play", preferred=("EE",)))


def test_policy_must_name_a_present_operator():
    selector = _selector()
    with pytest.raises(ValueError):
        selector.set_policy("GBR", SteeringPolicy("Play", preferred=("T-Mobile",)))


def test_unsteered_follows_coverage_shares():
    selector = _selector()
    shares = selector.attach_distribution("Play", "GBR", random.Random(3), 20_000)
    assert shares["EE"] == pytest.approx(0.40, abs=0.02)
    assert shares["O2 UK"] == pytest.approx(0.35, abs=0.02)
    assert shares["Vodafone UK"] == pytest.approx(0.25, abs=0.02)


def test_steering_concentrates_on_preference():
    selector = _selector()
    selector.set_policy("GBR", SteeringPolicy("Play", preferred=("EE",), compliance=0.8))
    shares = selector.attach_distribution("Play", "GBR", random.Random(5), 20_000)
    # 80% steered + 40% of the unsteered 20%.
    assert shares["EE"] == pytest.approx(0.8 + 0.2 * 0.4, abs=0.02)


def test_steering_only_applies_to_the_policy_owner():
    selector = _selector()
    selector.set_policy("GBR", SteeringPolicy("Play", preferred=("EE",), compliance=1.0))
    other = selector.attach_distribution("Singtel", "GBR", random.Random(7), 10_000)
    assert other["EE"] == pytest.approx(0.40, abs=0.02)


def test_pinned_operator_always_wins():
    selector = _selector()
    selector.set_policy("GBR", SteeringPolicy("Play", preferred=("EE",), compliance=1.0))
    rng = random.Random(9)
    for _ in range(50):
        assert selector.select("Play", "GBR", rng, pinned_operator="O2 UK") == "O2 UK"
    with pytest.raises(ValueError):
        selector.select("Play", "GBR", rng, pinned_operator="T-Mobile")


def test_fallback_preference_when_top_absent():
    selector = _selector()
    selector.set_policy(
        "GBR",
        SteeringPolicy("Play", preferred=("Three", "EE"), compliance=1.0),
    )
    shares = selector.attach_distribution("Play", "GBR", random.Random(11), 5_000)
    assert shares["EE"] == pytest.approx(1.0)


def test_unknown_country_raises():
    selector = _selector()
    with pytest.raises(KeyError):
        selector.options_in("FRA")
    with pytest.raises(ValueError):
        selector.attach_distribution("Play", "GBR", random.Random(1), samples=0)
