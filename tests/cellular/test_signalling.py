"""Tests for the control-plane signalling model."""

import random
import statistics

import pytest

from repro.cellular.signalling import (
    AIRALO_PROFILE,
    EVENT_SIZE_KB,
    NATIVE_PROFILE,
    ROAMER_PROFILE,
    SignallingEvent,
    SignallingProfile,
    _poisson,
)
from repro.cellular import CoreTelemetryGenerator, IMSIRange, SubscriberPopulation


def test_every_event_has_a_size():
    assert set(EVENT_SIZE_KB) == set(SignallingEvent)
    assert all(size > 0 for size in EVENT_SIZE_KB.values())


def test_profile_validation():
    with pytest.raises(ValueError):
        SignallingProfile("empty", {})
    with pytest.raises(ValueError):
        SignallingProfile("neg", {SignallingEvent.ATTACH: -1.0})


def test_expected_daily_kb_matches_rates():
    profile = SignallingProfile(
        "tiny", {SignallingEvent.ATTACH: 2.0, SignallingEvent.PAGING: 10.0}
    )
    expected = 2.0 * EVENT_SIZE_KB[SignallingEvent.ATTACH] + 10.0 * EVENT_SIZE_KB[
        SignallingEvent.PAGING
    ]
    assert profile.expected_daily_kb() == pytest.approx(expected)


def test_sampling_converges_to_expectation():
    rng = random.Random(3)
    samples = [NATIVE_PROFILE.sample_daily_kb(rng) for _ in range(3000)]
    assert statistics.fmean(samples) == pytest.approx(
        NATIVE_PROFILE.expected_daily_kb(), rel=0.05
    )


def test_airalo_signals_more_than_native_more_than_roamer():
    # The Figure 5b ordering, now mechanistic.
    assert (
        AIRALO_PROFILE.expected_daily_kb()
        > NATIVE_PROFILE.expected_daily_kb()
        > ROAMER_PROFILE.expected_daily_kb()
    )
    # The gap is mostly mobility + IPX authentication.
    tau = SignallingEvent.TRACKING_AREA_UPDATE
    auth = SignallingEvent.AUTHENTICATION
    assert AIRALO_PROFILE.daily_rates[tau] > NATIVE_PROFILE.daily_rates[tau]
    assert AIRALO_PROFILE.daily_rates[auth] > NATIVE_PROFILE.daily_rates[auth]


def test_event_counts_sampling():
    rng = random.Random(9)
    counts = AIRALO_PROFILE.sample_event_counts(rng)
    assert set(counts) == set(AIRALO_PROFILE.daily_rates)
    assert all(count >= 0 for count in counts.values())


def test_poisson_sampler_properties():
    rng = random.Random(11)
    assert _poisson(0.0, rng) == 0
    samples = [_poisson(4.0, rng) for _ in range(5000)]
    assert statistics.fmean(samples) == pytest.approx(4.0, rel=0.05)
    assert statistics.pvariance(samples) == pytest.approx(4.0, rel=0.15)


def test_telemetry_generator_uses_profile():
    gen = CoreTelemetryGenerator(random.Random(5))
    gen.add_population(
        SubscriberPopulation(
            "ev", 40, data_mu=5.0, data_sigma=0.5,
            signalling_mu=0.0, signalling_sigma=0.0,
            signalling_profile=NATIVE_PROFILE,
        ),
        [IMSIRange(prefix="23410999")],
    )
    records = gen.generate(days=20)
    mean_kb = statistics.fmean(r.signalling_kb for r in records)
    # Near the profile expectation (user bias widens it slightly).
    assert mean_kb == pytest.approx(NATIVE_PROFILE.expected_daily_kb(), rel=0.25)
