"""Tests for v-MNO core telemetry and the Airalo-IMSI detector."""

import random
import statistics

import pytest

from repro.cellular import (
    CoreTelemetryGenerator,
    IMSI,
    IMSIRange,
    PLMN,
    SubscriberPopulation,
    UsageRecord,
    detect_airalo_imsis,
)


PLAY = PLMN("260", "06")
AIRALO_BLOCK = IMSIRange(prefix="260067712", label="airalo rented")
PLAY_RETAIL = IMSIRange(prefix="26006", label="play retail")
UK_NATIVE = IMSIRange(prefix="23430", label="uk native")


def _generator(seed=7):
    gen = CoreTelemetryGenerator(random.Random(seed))
    gen.add_population(
        SubscriberPopulation("native", 60, data_mu=5.6, data_sigma=0.7,
                             signalling_mu=3.0, signalling_sigma=0.4),
        [UK_NATIVE],
    )
    gen.add_population(
        SubscriberPopulation("airalo", 30, data_mu=5.5, data_sigma=0.7,
                             signalling_mu=3.25, signalling_sigma=0.4),
        [AIRALO_BLOCK],
    )
    gen.add_population(
        SubscriberPopulation("play-roamer", 40, data_mu=4.4, data_sigma=0.9,
                             signalling_mu=2.6, signalling_sigma=0.5),
        [PLAY_RETAIL],
    )
    return gen


def test_generation_covers_all_populations_and_days():
    records = _generator().generate(days=5)
    assert {r.population for r in records} == {"native", "airalo", "play-roamer"}
    assert {r.day for r in records} == set(range(5))
    # 60+30+40 subscribers x 5 days
    assert len(records) == 130 * 5


def test_generation_is_seed_deterministic():
    a = _generator(3).generate(days=2)
    b = _generator(3).generate(days=2)
    assert a == b


def test_volumes_positive():
    records = _generator().generate(days=3)
    assert all(r.data_mb > 0 and r.signalling_kb > 0 for r in records)


def test_population_validation():
    with pytest.raises(ValueError):
        SubscriberPopulation("x", 0, 1, 1, 1, 1)
    with pytest.raises(ValueError):
        SubscriberPopulation("x", 5, 1, -0.1, 1, 1)
    gen = CoreTelemetryGenerator(random.Random(1))
    with pytest.raises(ValueError):
        gen.add_population(SubscriberPopulation("x", 5, 1, 1, 1, 1), [])
    assert gen.generate(days=3) == []  # no populations -> no records
    with pytest.raises(ValueError):
        _generator().generate(days=0)


def test_airalo_resembles_native_more_than_roamers():
    """The Figure 5 signal: Airalo data usage looks native-like."""
    records = _generator().generate(days=10)

    def mean_data(pop):
        return statistics.fmean(r.data_mb for r in records if r.population == pop)

    native, airalo, roamer = (
        mean_data("native"), mean_data("airalo"), mean_data("play-roamer")
    )
    assert abs(airalo - native) < abs(roamer - native)


def test_airalo_signalling_slightly_above_native():
    records = _generator().generate(days=10)

    def mean_sig(pop):
        return statistics.fmean(r.signalling_kb for r in records if r.population == pop)

    assert mean_sig("airalo") > mean_sig("native")


def test_detector_finds_rented_range_users():
    rng = random.Random(11)
    deployed = [AIRALO_BLOCK.sample(rng) for _ in range(10)]
    airalo_users = [AIRALO_BLOCK.sample(rng) for _ in range(25)]
    ordinary_roamers = [PLAY_RETAIL.issue(i) for i in range(25)]  # low MSINs, far away
    observed = airalo_users + ordinary_roamers

    flagged = detect_airalo_imsis(observed, deployed, PLAY)
    assert set(airalo_users) <= flagged
    assert not flagged & set(ordinary_roamers)


def test_detector_prefix_floor_blocks_plmn_wide_match():
    rng = random.Random(13)
    # Deployed devices scattered over the whole PLMN: no narrow prefix.
    deployed = [PLAY_RETAIL.sample(rng) for _ in range(10)]
    observed = [PLAY_RETAIL.sample(rng) for _ in range(50)]
    flagged = detect_airalo_imsis(observed, deployed, PLAY, prefix_floor=8)
    # With no mined prefix of length >= 8 surviving, nothing is flagged
    # (or at worst a rare accidental cluster, which determinism pins down).
    assert flagged == set()


def test_detector_ignores_other_plmns():
    rng = random.Random(17)
    deployed = [AIRALO_BLOCK.sample(rng) for _ in range(10)]
    foreign = [IMSI("310150123456789")]
    flagged = detect_airalo_imsis(foreign, deployed, PLAY)
    assert flagged == set()


def test_usage_record_fields():
    record = UsageRecord(
        imsi=IMSI("260067712000001"), population="airalo", day=0,
        data_mb=12.5, signalling_kb=40.0,
    )
    assert record.imsi.value.startswith("260067712")
