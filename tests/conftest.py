"""Suite-wide fixtures.

The persistent artifact cache is pointed at a per-session temp directory
so tests never read or write ``~/.cache/repro-airalo``: the suite stays
hermetic and immune to stale entries from other checkouts, while still
exercising the disk-cache code paths.
"""

import pytest

from repro.core import cache as cache_mod


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    cache_mod.configure(root=tmp_path_factory.mktemp("artifact-cache"))
    yield
