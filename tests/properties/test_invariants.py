"""Cross-cutting property-based tests on core invariants.

These go beyond the per-module unit tests: they generate random
topologies, ladders, markets and hop lists, and assert the structural
properties the analysis layer relies on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cellular.identifiers import IMSIRange, PLMN, infer_imsi_prefixes
from repro.net.topology import ASTopology, NoRouteError
from repro.services.video import AdaptiveBitratePlayer
from repro.market.providers import EsimProvider
from repro.geo import default_country_registry

COUNTRIES = list(default_country_registry())


# ---------------------------------------------------------------------------
# Valley-free routing on random topologies
# ---------------------------------------------------------------------------

@st.composite
def random_topology(draw):
    """A random AS graph with a transit tree plus random peering edges."""
    n = draw(st.integers(min_value=2, max_value=12))
    asns = list(range(1, n + 1))
    topo = ASTopology()
    for asn in asns:
        topo.add_as(asn)
    # Transit tree: every AS (except AS1, the root) buys from a lower ASN,
    # guaranteeing global reachability with no customer-provider cycles.
    for asn in asns[1:]:
        provider = draw(st.integers(min_value=1, max_value=asn - 1))
        topo.add_transit(customer=asn, provider=provider)
    # Random extra peering edges.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=1, max_value=n))
        b = draw(st.integers(min_value=1, max_value=n))
        if a != b:
            topo.add_peering(a, b)
    return topo, asns


def _edge_kind(topo: ASTopology, a: int, b: int) -> str:
    """How traffic moves from a to b: 'up', 'down', or 'peer'."""
    for edge in topo._out[a]:  # noqa: SLF001 - test introspection
        if edge.neighbor != b:
            continue
        if edge.peer:
            return "peer"
        return "up" if edge.up else "down"
    raise AssertionError(f"no edge {a}->{b}")


@given(random_topology(), st.data())
@settings(max_examples=60, deadline=None)
def test_paths_are_valley_free_and_loopless(topology_and_asns, data):
    topo, asns = topology_and_asns
    src = data.draw(st.sampled_from(asns))
    dst = data.draw(st.sampled_from(asns))
    try:
        path = topo.as_path(src, dst)
    except NoRouteError:
        return  # absence of a route is a legal outcome
    assert path[0] == src and path[-1] == dst
    assert len(set(path)) == len(path), "AS loop"
    # Valley-free shape: up* peer? down*
    kinds = [_edge_kind(topo, a, b) for a, b in zip(path, path[1:])]
    state = "up"
    peers_crossed = 0
    for kind in kinds:
        if kind == "up":
            assert state == "up", f"climb after descent in {kinds}"
        elif kind == "peer":
            peers_crossed += 1
            assert state == "up", f"peer after descent in {kinds}"
            state = "down"
        else:
            state = "down"
    assert peers_crossed <= 1


@given(random_topology(), st.data())
@settings(max_examples=40, deadline=None)
def test_transit_tree_guarantees_reachability(topology_and_asns, data):
    # With the transit tree, any pair reachable through the root.
    topo, asns = topology_and_asns
    src = data.draw(st.sampled_from(asns))
    dst = data.draw(st.sampled_from(asns))
    path = topo.as_path(src, dst)  # must not raise
    assert path


# ---------------------------------------------------------------------------
# ABR player
# ---------------------------------------------------------------------------

@given(
    st.floats(min_value=0.2, max_value=100.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_player_report_is_consistent(throughput, seed):
    player = AdaptiveBitratePlayer()
    report = player.play(throughput, random.Random(seed), duration_s=80)
    assert len(report.segment_resolutions) == 20
    assert report.rebuffer_events >= 0
    assert 0.0 <= report.mean_buffer_s <= player.buffer_capacity_s
    assert report.startup_delay_s > 0
    shares = [report.share_at_or_above(p) for p in (240, 480, 720, 1080, 1440)]
    # Monotone non-increasing in resolution.
    assert all(a >= b for a, b in zip(shares, shares[1:]))


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_player_generous_link_never_rebuffers(seed):
    player = AdaptiveBitratePlayer(p_high_rung=0.0)
    # 10x the top default rung with low variance: downloads always keep up.
    report = player.play(80.0, random.Random(seed), duration_s=120,
                         throughput_cv=0.05)
    assert report.rebuffer_events == 0
    assert report.share_at_or_above(1080) == 1.0


# ---------------------------------------------------------------------------
# Market pricing
# ---------------------------------------------------------------------------

@given(
    st.floats(min_value=0.1, max_value=3.0),
    st.floats(min_value=1.0, max_value=1.3),
    st.sampled_from(COUNTRIES),
    st.integers(min_value=0, max_value=119),
)
@settings(max_examples=60, deadline=None)
def test_plan_prices_monotone_in_size(factor, exponent, country, day):
    provider = EsimProvider(
        name="prop", price_factor=factor,
        plan_sizes_gb=(1, 2, 5, 10, 20), coverage_count=50,
        size_exponent=exponent,
    )
    offers = provider.offers_for(country, day)
    ordered = sorted(offers, key=lambda o: o.data_gb)
    prices = [o.price_usd for o in ordered]
    assert prices == sorted(prices)
    per_gb = [o.usd_per_gb for o in ordered]
    if exponent > 1.0:
        # Superlinearity: $/GB never decreases with size (rounding aside).
        assert all(b >= a - 0.02 for a, b in zip(per_gb, per_gb[1:]))


@given(
    st.sampled_from(COUNTRIES),
    st.integers(min_value=0, max_value=119),
    st.integers(min_value=0, max_value=119),
)
@settings(max_examples=60, deadline=None)
def test_prices_never_decrease_over_the_ramp(country, day_a, day_b):
    from repro.market.providers import AIRALO

    early, late = sorted((day_a, day_b))
    assert AIRALO.unit_price(country, late) >= AIRALO.unit_price(country, early) - 1e-9


# ---------------------------------------------------------------------------
# IMSI prefix mining
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=10**6 - 1),
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_mined_prefixes_cover_only_given_plmn(block_offset, count, seed):
    plmn = PLMN("262", "23")
    block = IMSIRange(prefix="26223" + str(block_offset).zfill(6)[:4])
    rng = random.Random(seed)
    imsis = [block.sample(rng) for _ in range(count)]
    mined = infer_imsi_prefixes(imsis, plmn, min_support=2)
    for prefix, support in mined:
        assert prefix.startswith(plmn.code)
        assert 2 <= support <= count
        # Every mined prefix is actually inhabited by the sample.
        assert any(i.value.startswith(prefix) for i in imsis)


# ---------------------------------------------------------------------------
# Dataset persistence
# ---------------------------------------------------------------------------

@st.composite
def measurement_contexts(draw):
    from repro.cellular.esim import SIMKind
    from repro.cellular.roaming import RoamingArchitecture
    from repro.measure.records import MeasurementContext

    return MeasurementContext(
        country_iso3=draw(st.sampled_from(["ESP", "PAK", "THA", "GEO"])),
        sim_kind=draw(st.sampled_from(list(SIMKind))),
        architecture=draw(st.sampled_from(list(RoamingArchitecture))),
        b_mno=draw(st.sampled_from(["Play", "Singtel", "dtac"])),
        v_mno="Movistar",
        pgw_provider="Packet Host",
        pgw_asn=draw(st.integers(min_value=1, max_value=2**31)),
        pgw_country="NLD",
        public_ip="198.18.0.1",
        rat=draw(st.sampled_from(["4G", "5G"])),
        cqi=draw(st.integers(min_value=1, max_value=15)),
        session_id=draw(st.text(alphabet="abc123-", min_size=1, max_size=12)),
        day=draw(st.integers(min_value=0, max_value=60)),
    )


@given(measurement_contexts(), st.floats(1, 1e4), st.floats(0.1, 500), st.floats(0.1, 100))
@settings(max_examples=40, deadline=None)
def test_dataset_roundtrip_arbitrary_records(context, latency, down, up):
    import pathlib
    import tempfile

    from repro.measure.dataset import MeasurementDataset
    from repro.measure.io import load_dataset, save_dataset
    from repro.measure.records import SpeedtestRecord

    dataset = MeasurementDataset()
    dataset.speedtests.append(
        SpeedtestRecord(
            context=context, server_city="Amsterdam",
            latency_ms=latency, download_mbps=down, upload_mbps=up,
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "ds.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
    assert loaded.speedtests == dataset.speedtests


# ---------------------------------------------------------------------------
# CDN slow start
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=10**8))
@settings(max_examples=60, deadline=None)
def test_slow_start_rounds_monotone_and_sufficient(size):
    from repro.services.cdn import slow_start_rounds, _INITCWND_BYTES

    rounds = slow_start_rounds(size)
    # Delivered bytes after `rounds` doubling rounds must cover the size.
    delivered = _INITCWND_BYTES * (2**rounds - 1)
    assert delivered >= size
    if rounds > 1:
        prev = _INITCWND_BYTES * (2 ** (rounds - 1) - 1)
        assert prev < size  # rounds is minimal
