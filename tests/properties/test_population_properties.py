"""Property tests: columnar views vs the legacy object graph.

The tentpole invariant of the columnar substrate is representational
transparency: a :class:`~repro.worlds.population.SubscriberView` over
typed columns must be attribute-for-attribute identical to the plain
:class:`~repro.worlds.population.Subscriber` object graph built from
the same ``(seed, scale)`` — including the lazily-materialized ICCID
check digits and zero-padded IMSIs. Verified exhaustively at
``scale=1.0`` (the full paper-sized population) and under
hypothesis-driven index/seed sampling, both for a freshly built store
and for one round-tripped through snapshot bytes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.worlds.population import (
    Population,
    build_population,
    build_population_objects,
)

SEED = 2024

_ATTRIBUTES = (
    "index", "country_iso3", "v_mno_name", "architecture", "pgw_site_id",
    "address", "attached", "monthly_mb", "sessions", "uplink_share",
)
_PROFILE_ATTRIBUTES = (
    "kind", "iccid", "imsi", "issuer_mno_name", "provider",
    "plan_country_iso3", "is_esim",
)

_population = None
_objects = None


def _full_scale():
    """Build the scale=1.0 pair once for the whole module (it's ~30k rows)."""
    global _population, _objects
    if _population is None:
        _population = build_population(SEED, 1.0)
        _objects = build_population_objects(SEED, 1.0)
    return _population, _objects


def _assert_identical(view, subscriber):
    for name in _ATTRIBUTES:
        assert getattr(view, name) == getattr(subscriber, name), name
    view_profile, profile = view.profile, subscriber.profile
    for name in _PROFILE_ATTRIBUTES:
        assert getattr(view_profile, name) == getattr(profile, name), name
    assert view.materialize() == subscriber


def test_every_view_attribute_matches_objects_at_full_scale():
    population, objects = _full_scale()
    assert len(population) == len(objects)
    for view, subscriber in zip(population, objects):
        _assert_identical(view, subscriber)


def test_snapshot_roundtrip_preserves_every_attribute():
    population, objects = _full_scale()
    clone = Population.from_buffer(population.to_bytes())
    for index in range(0, len(objects), 211):
        _assert_identical(clone.subscriber(index), objects[index])


@given(index_seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_random_indices_identical(index_seed):
    population, objects = _full_scale()
    index = index_seed % len(objects)
    _assert_identical(population.subscriber(index), objects[index])


@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    scale=st.sampled_from([0.05, 0.1, 0.35, 1.0, 2.0]),
)
@settings(max_examples=8, deadline=None)
def test_builders_agree_for_arbitrary_seed_and_scale(seed, scale):
    population = build_population(seed, scale)
    objects = build_population_objects(seed, scale)
    assert len(population) == len(objects)
    step = max(1, len(objects) // 64)
    for index in range(0, len(objects), step):
        _assert_identical(population.subscriber(index), objects[index])


@given(seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=10, deadline=None)
def test_snapshot_bytes_deterministic_per_seed(seed):
    first = build_population(seed, 0.05).to_bytes()
    second = build_population(seed, 0.05).to_bytes()
    assert first == second
