"""Property-based tests for the fault-injection substrate.

Three invariants the chaos layer must never break:

1. Chaos off (``None``, ``ChaosConfig.disabled()``, or enabled with every
   rate at zero) yields datasets byte-identical to the fault-free seed.
2. The same seed and the same fault plan replay the same campaign —
   records AND the health ledger (retry counts, quarantines) match.
3. Backoff schedules are monotone non-decreasing and bounded by the cap;
   jittered delays stay within ``cap * (1 + jitter)``.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.faults import BackoffPolicy, ChaosConfig
from repro.measure.dataset import MeasurementDataset
from tests.worldkit import run_mini_campaign


def _records(dataset: MeasurementDataset):
    return (
        dataset.traceroutes,
        dataset.speedtests,
        dataset.cdn_fetches,
        dataset.dns_probes,
        dataset.video_probes,
        dataset.web_measurements,
    )


def _health_state(dataset: MeasurementDataset):
    health = dataset.health
    return (
        health.tests,
        health.quarantines,
        health.offline_days,
        health.makeup_days,
        health.attach_attempts,
        health.attach_retries,
        health.attach_failures,
    )


# ---------------------------------------------------------------------------
# 1. Chaos off is invisible
# ---------------------------------------------------------------------------

def test_chaos_off_is_byte_identical():
    baseline = run_mini_campaign(chaos=None)
    for off in (
        None,
        ChaosConfig.disabled(),
        ChaosConfig(),  # enabled but every rate at zero
    ):
        replay = run_mini_campaign(chaos=off)
        assert _records(replay) == _records(baseline)


# ---------------------------------------------------------------------------
# 2. Same seed + same fault plan => same campaign
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(
    chaos_seed=st.integers(min_value=0, max_value=2**16),
    attach_reject=st.floats(min_value=0.0, max_value=0.3),
    outage=st.floats(min_value=0.0, max_value=0.25),
    timeout=st.floats(min_value=0.0, max_value=0.25),
    churn=st.floats(min_value=0.0, max_value=0.2),
)
def test_same_seed_and_plan_replay_identically(
    chaos_seed, attach_reject, outage, timeout, churn
):
    config = ChaosConfig(
        seed=chaos_seed,
        attach_reject_rate=attach_reject,
        service_outage_rate=outage,
        probe_timeout_rate=timeout,
        churn_rate_per_day=churn,
    )
    first = run_mini_campaign(chaos=config)
    second = run_mini_campaign(chaos=config)
    assert _records(first) == _records(second)
    assert _health_state(first) == _health_state(second)


# ---------------------------------------------------------------------------
# 3. Backoff is monotone and bounded
# ---------------------------------------------------------------------------

@given(
    base=st.floats(min_value=0.01, max_value=10.0),
    factor=st.floats(min_value=1.0, max_value=5.0),
    cap_mult=st.floats(min_value=1.0, max_value=100.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    attempts=st.integers(min_value=1, max_value=30),
    jitter_seed=st.integers(min_value=0, max_value=2**16),
)
def test_backoff_monotone_and_bounded(
    base, factor, cap_mult, jitter, attempts, jitter_seed
):
    policy = BackoffPolicy(
        base_s=base, factor=factor, cap_s=base * cap_mult, jitter=jitter
    )
    schedule = policy.schedule(attempts)
    assert len(schedule) == attempts
    assert all(
        later >= earlier for earlier, later in zip(schedule, schedule[1:])
    )
    assert all(policy.base_s <= delay <= policy.cap_s for delay in schedule)

    rng = random.Random(jitter_seed)
    ceiling = policy.cap_s * (1.0 + policy.jitter)
    for attempt, planned in enumerate(schedule):
        jittered = policy.delay_s(attempt, rng)
        assert planned <= jittered <= ceiling
