"""Tests for the eSIM market substrate and pricing analysis."""

import statistics

import pytest

from repro.geo import default_country_registry
from repro.market import (
    AIRALO,
    ESIMOffer,
    EsimDB,
    EsimProvider,
    LocalSIMOffer,
    LocalSIMSurvey,
    MarketCrawler,
    DEFAULT_LOCAL_OFFERS,
    build_provider_universe,
    decile_bounds,
    median_usd_per_gb_by_continent,
    median_usd_per_gb_by_country,
    price_timeline,
    provider_country_medians,
    size_price_curve,
)
from repro.market.providers import ContinentPricing


@pytest.fixture(scope="module")
def countries():
    return default_country_registry()


@pytest.fixture(scope="module")
def esimdb(countries):
    return EsimDB(build_provider_universe(), countries)


@pytest.fixture(scope="module")
def may_snapshot(esimdb):
    return esimdb.snapshot(90)  # ~2024-05-01


def test_universe_has_54_providers():
    assert len(build_provider_universe()) == 54


def test_offer_validation():
    with pytest.raises(ValueError):
        ESIMOffer("X", "ESP", 0.0, 5.0, 0)
    with pytest.raises(ValueError):
        ESIMOffer("X", "ESP", 1.0, 0.0, 0)
    offer = ESIMOffer("X", "ESP", 2.0, 9.0, 0)
    assert offer.usd_per_gb == 4.5


def test_provider_validation():
    with pytest.raises(ValueError):
        EsimProvider("bad", price_factor=0.0, plan_sizes_gb=(1,), coverage_count=10)
    with pytest.raises(ValueError):
        EsimProvider("bad", price_factor=1.0, plan_sizes_gb=(), coverage_count=10)
    with pytest.raises(ValueError):
        EsimProvider("bad", 1.0, (1,), 10, size_exponent=0.9)


def test_continent_ramp():
    ramp = ContinentPricing(5.0, ramp_start_day=10, ramp_end_day=20, ramp_delta=2.0)
    assert ramp.rate_on(0) == 5.0
    assert ramp.rate_on(10) == 5.0
    assert ramp.rate_on(15) == pytest.approx(6.0)
    assert ramp.rate_on(30) == pytest.approx(7.0)
    flat = ContinentPricing(5.0)
    assert flat.rate_on(100) == 5.0


def test_prices_deterministic(esimdb):
    a = esimdb.snapshot(10).offers
    b = esimdb.snapshot(10).offers
    assert a == b


def test_superlinear_size_curve(countries):
    madrid = countries.get("ESP")
    offers = AIRALO.offers_for(madrid, day=0)
    by_size = {o.data_gb: o.usd_per_gb for o in offers}
    # $/GB increases with plan size (the unjustified non-linearity).
    assert by_size[20] > by_size[5] > by_size[1]


def test_provider_medians_ordering(may_snapshot):
    medians = provider_country_medians(may_snapshot.offers)
    med = {p: statistics.median(v) for p, v in medians.items() if p in
           ("Airalo", "MobiMatter", "Airhub", "Keepgo")}
    # Figure 17's ordering: Airhub < MobiMatter < Airalo < Keepgo.
    assert med["Airhub"] < med["MobiMatter"] < med["Airalo"] < med["Keepgo"]
    # MobiMatter undercuts Airalo by roughly 60%.
    assert 0.3 < med["MobiMatter"] / med["Airalo"] < 0.55


def test_europe_half_of_north_america(may_snapshot, countries):
    grouped = median_usd_per_gb_by_continent(may_snapshot.offers, countries, provider="Airalo")
    europe = statistics.median(grouped["Europe"])
    north_america = statistics.median(grouped["North America"])
    assert 1.6 < north_america / europe < 2.6


def test_central_america_is_expensive(may_snapshot, countries):
    per_country = median_usd_per_gb_by_country(may_snapshot.offers, provider="Airalo")
    central = [v for iso3, v in per_country.items()
               if countries.get(iso3).subregion == "Central America"]
    rest = [v for iso3, v in per_country.items()
            if countries.get(iso3).subregion != "Central America"]
    assert statistics.median(central) > 1.3 * statistics.median(rest)


def test_asia_price_drift(esimdb, countries):
    crawler = MarketCrawler(esimdb)
    dataset = crawler.crawl_daily(0, 120, step=10)
    snapshots = {s.day: s.offers for s in dataset.daily_snapshots}
    timeline = price_timeline(snapshots, countries)
    asia = dict(timeline["Asia"])
    assert asia[110] > asia[0] * 1.1  # upward drift
    europe = dict(timeline["Europe"])
    assert abs(europe[110] - europe[0]) / europe[0] < 0.1  # flat


def test_no_price_discrimination(esimdb):
    crawler = MarketCrawler(esimdb)
    snapshots = crawler.crawl_vantages(day=80)
    assert len(snapshots) == 3
    assert not MarketCrawler.price_discrimination_detected(snapshots)
    with pytest.raises(ValueError):
        MarketCrawler.price_discrimination_detected(snapshots[:1])


def test_crawler_validation(esimdb):
    crawler = MarketCrawler(esimdb)
    with pytest.raises(ValueError):
        crawler.crawl_daily(10, 10)
    with pytest.raises(ValueError):
        crawler.crawl_daily(0, 10, step=0)


def test_crawl_dataset_accessors(esimdb):
    crawler = MarketCrawler(esimdb)
    dataset = crawler.crawl_daily(0, 3)
    assert dataset.days() == [0, 1, 2]
    assert dataset.offers_on(1)
    with pytest.raises(KeyError):
        dataset.offers_on(99)
    assert len(dataset.all_offers()) == 3 * esimdb.total_offers_per_day()


def test_decile_bounds():
    values = list(range(1, 101))
    bounds = decile_bounds(values)
    assert len(bounds) == 9
    assert bounds[0] == 10
    assert bounds[-1] == 90
    with pytest.raises(ValueError):
        decile_bounds([])


def test_size_price_curve(may_snapshot):
    curve = size_price_curve(may_snapshot.offers, "GEO", max_gb=5.0)
    assert curve
    sizes = [s for s, _ in curve]
    prices = [p for _, p in curve]
    assert sizes == sorted(sizes)
    assert prices == sorted(prices)
    assert max(sizes) <= 5.0


def test_play_countries_price_gap(may_snapshot):
    """Figure 19: Georgia's Play eSIM costs more than Spain's, and the
    gap grows with plan size."""
    geo = dict(size_price_curve(may_snapshot.offers, "GEO", max_gb=20.0))
    esp = dict(size_price_curve(may_snapshot.offers, "ESP", max_gb=20.0))
    shared = sorted(set(geo) & set(esp))
    assert shared
    gaps = [geo[s] - esp[s] for s in shared]
    if geo[shared[0]] > esp[shared[0]]:
        assert gaps[-1] > gaps[0]
    else:
        assert gaps[-1] < gaps[0]


def test_local_sim_survey_cheapest_per_gb(may_snapshot):
    survey = LocalSIMSurvey(DEFAULT_LOCAL_OFFERS)
    airalo_medians = statistics.median(
        provider_country_medians(may_snapshot.offers)["Airalo"]
    )
    assert survey.median_usd_per_gb() < airalo_medians


def test_local_sim_total_cost_often_higher(may_snapshot):
    survey = LocalSIMSurvey(DEFAULT_LOCAL_OFFERS)
    comparison = survey.total_cost_comparison(may_snapshot.offers, needed_gb=3.0)
    assert "ESP" in comparison
    spain = comparison["ESP"]
    # 40 GB for $22.59: best $/GB, but more up-front than a 3 GB plan.
    assert spain["local_usd_per_gb"] < 1.0
    assert spain["local_total_usd"] > spain["airalo_total_usd"] * 0.8
    with pytest.raises(ValueError):
        survey.total_cost_comparison(may_snapshot.offers, needed_gb=0)


def test_local_offer_validation():
    with pytest.raises(ValueError):
        LocalSIMOffer("ESP", "X", price_usd=0, data_gb=1)
    offer = LocalSIMOffer("ARE", "Etisalat", price_usd=27.0, data_gb=6.0, sim_fee_usd=15.72)
    assert offer.total_cost_usd == pytest.approx(42.72)
    survey = LocalSIMSurvey(DEFAULT_LOCAL_OFFERS)
    assert survey.for_country("are").sim_fee_usd == pytest.approx(15.72)
    with pytest.raises(KeyError):
        survey.for_country("JPN")
    with pytest.raises(ValueError):
        LocalSIMSurvey([])


def test_footprints(esimdb):
    assert len(esimdb.footprint("Airalo")) == len(default_country_registry())
    with pytest.raises(KeyError):
        esimdb.footprint("Nope")
    # Airalo's 3% / MobiMatter's 5% share of listed offers (roughly).
    snap = esimdb.snapshot(0)
    total = len(snap.offers)
    airalo_share = len(snap.for_provider("Airalo")) / total
    mobimatter_share = len(snap.for_provider("MobiMatter")) / total
    assert 0.02 < airalo_share < 0.09
    assert airalo_share < mobimatter_share < 0.12


def test_country_factor_overrides_enforce_fig19_example(countries):
    # Georgia's Play eSIM costs more than Spain's (Section 6 / Figure 19).
    geo = AIRALO.unit_price(countries.get("GEO"), day=90)
    esp = AIRALO.unit_price(countries.get("ESP"), day=90)
    assert geo > esp
