"""Tests for regional plans and the itinerary planner."""

import pytest

from repro.geo import default_country_registry
from repro.market import (
    EsimDB,
    ItineraryPlanner,
    RegionalCatalog,
    RegionalPlan,
    TripLeg,
    build_provider_universe,
    render_recommendation,
)


@pytest.fixture(scope="module")
def countries():
    return default_country_registry()


@pytest.fixture(scope="module")
def esimdb(countries):
    return EsimDB(build_provider_universe(), countries)


@pytest.fixture(scope="module")
def catalog(esimdb, countries):
    return RegionalCatalog(esimdb, countries)


@pytest.fixture(scope="module")
def planner(esimdb, countries):
    return ItineraryPlanner(esimdb, countries)


def test_regional_plan_validation():
    with pytest.raises(ValueError):
        RegionalPlan("Airalo", "X", (), 1.0, 5.0, 0)
    with pytest.raises(ValueError):
        RegionalPlan("Airalo", "X", ("ESP",), 0.0, 5.0, 0)


def test_catalog_builds_all_regions(catalog):
    plans = catalog.plans_on(day=90)
    regions = {plan.region for plan in plans}
    assert "Eurolink" in regions
    assert "Discover Global" in regions
    # Six sizes per region.
    eurolink = [p for p in plans if p.region == "Eurolink"]
    assert len(eurolink) == 6


def test_eurolink_covers_europe_only(catalog, countries):
    plan = catalog.plans_covering(["ESP", "FRA", "DEU"], day=90)[0]
    assert plan.covers("ITA")
    assert not plan.covers("THA")
    assert all(countries.get(c).continent == "Europe" for c in plan.covered_iso3)


def test_global_plan_covers_everything(catalog):
    plans = catalog.plans_covering(["ESP", "THA", "KEN", "USA"], day=90)
    assert plans
    assert all(plan.region == "Discover Global" for plan in plans)


def test_regional_premium_over_country_median(catalog, esimdb):
    from repro.market import median_usd_per_gb_by_country
    import statistics

    snapshot = esimdb.snapshot(90)
    per_country = median_usd_per_gb_by_country(snapshot.offers, provider="Airalo")
    eurolink_1gb = next(
        p for p in catalog.plans_on(90) if p.region == "Eurolink" and p.data_gb == 1.0
    )
    europe_median = statistics.median(
        v for iso3, v in per_country.items() if iso3 in eurolink_1gb.covered_iso3
    )
    assert eurolink_1gb.usd_per_gb > europe_median


def test_planner_single_continent_trip(planner):
    legs = [TripLeg("ESP", 2.0), TripLeg("FRA", 1.5), TripLeg("DEU", 1.0)]
    plans = planner.recommend(legs)
    assert {"per-country", "regional", "global", "best"} <= set(plans)
    assert plans["per-country"].purchases == 3
    assert plans["regional"].purchases == 1
    assert plans["global"].purchases == 1
    best = plans["best"]
    assert best.total_usd == min(
        plans[name].total_usd for name in ("per-country", "regional", "global")
    )


def test_planner_multi_continent_trip(planner):
    legs = [TripLeg("ESP", 1.0), TripLeg("THA", 2.0), TripLeg("KEN", 1.0)]
    plans = planner.recommend(legs)
    # One regional per continent.
    assert plans["regional"].purchases == 3
    assert plans["global"].purchases == 1
    # Coverage invariant: every leg is covered in every strategy.
    for name in ("per-country", "regional", "global"):
        covered = {c for choice in plans[name].choices for c in choice.covers}
        assert {"ESP", "THA", "KEN"} <= covered


def test_planner_validation(planner):
    with pytest.raises(ValueError):
        planner.recommend([])
    with pytest.raises(ValueError):
        TripLeg("ESP", 0.0)


def test_planner_large_need_prefers_fewer_purchases(planner):
    # A data-hungry single country: local plan wins outright.
    plans = planner.recommend([TripLeg("ESP", 10.0)])
    assert plans["best"].strategy == "per-country"


def test_render_recommendation(planner):
    legs = [TripLeg("ESP", 1.0), TripLeg("FRA", 1.0)]
    text = render_recommendation(planner.recommend(legs))
    assert "recommended" in text
    assert "per-country" in text
    assert "$" in text


def test_catalog_validation(esimdb, countries):
    with pytest.raises(ValueError):
        RegionalCatalog(esimdb, countries, size_exponent=0.9)


def test_wholesale_market_and_economics():
    from repro.market import WholesaleMarket, margin_summary

    market = WholesaleMarket()
    share = market.cost_share("Play", "Magti")
    assert 0.45 <= share <= 0.70
    assert share == market.cost_share("Play", "Magti")  # stable
    assert share != market.cost_share("Play", "Movistar")
    rate = market.rate_for("Play", "Magti", retail_usd_per_gb=6.0)
    assert rate.usd_per_gb == pytest.approx(6.0 * share)
    rows = market.economics_for(
        [("GEO", "Play", "Magti"), ("ESP", "Play", "Movistar")],
        {"GEO": 6.0, "ESP": 4.0},
    )
    assert len(rows) == 2
    assert all(0 < r.margin_share < 1 for r in rows)
    summary = margin_summary(rows)
    assert summary["count"] == 2
    import pytest as _pytest
    with _pytest.raises(ValueError):
        margin_summary([])
    with _pytest.raises(ValueError):
        market.rate_for("a", "b", 0.0)
    with _pytest.raises(ValueError):
        WholesaleMarket(min_cost_share=0.8, max_cost_share=0.5)
