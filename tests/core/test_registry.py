"""Self-consistency tests for the declarative experiment registry.

The registry's whole point is that nothing about dispatch is
hand-maintained: every experiment module registers itself, and the
driver-facing flags (``supports_scale``, ``uses_chaos``) are derived
from the ``run`` signature. These tests pin that invariant so a module
can neither be forgotten nor drift from its own signature.
"""

import inspect
import pkgutil

import pytest

import repro.experiments as experiments_pkg
from repro.experiments import registry
from repro.experiments.registry import INPUT_KINDS, SUPPORT_MODULES, experiment


def _experiment_module_names():
    return sorted(
        info.name
        for info in pkgutil.iter_modules(experiments_pkg.__path__)
        if not info.name.startswith("_") and info.name not in SUPPORT_MODULES
    )


def test_every_experiment_module_is_registered():
    registered = sorted(
        spec.module.rsplit(".", 1)[-1] for spec in registry.all_specs().values()
    )
    assert registered == _experiment_module_names()


@pytest.mark.parametrize("artefact", registry.artefact_ids())
def test_spec_matches_run_signature(artefact):
    spec = registry.get_spec(artefact)
    parameters = inspect.signature(spec.run).parameters
    assert spec.supports_scale == ("scale" in parameters)
    assert spec.uses_chaos == ("chaos" in parameters)
    # uses_seed may be pinned False (HX2 runs its own seed), but a spec
    # must never claim a parameter the function doesn't accept.
    if spec.uses_seed:
        assert "seed" in parameters


@pytest.mark.parametrize("artefact", registry.artefact_ids())
def test_spec_shape(artefact):
    spec = registry.get_spec(artefact)
    assert spec.artefact_id == artefact == artefact.upper()
    assert spec.title
    assert spec.inputs <= set(INPUT_KINDS)
    assert spec.kind in {"table", "figure", "headline", "resilience", "extension"}
    assert spec.module.startswith("repro.experiments.")
    assert callable(spec.run)
    # Every experiment module also formats its own result.
    assert spec.render.__self__ is spec


def test_describe_inputs_is_ordered_and_compact():
    t4 = registry.get_spec("T4")
    assert t4.describe_inputs() == "device_dataset"
    f13 = registry.get_spec("F13")
    assert f13.describe_inputs() == "device_dataset+web_dataset"
    hx2 = registry.get_spec("HX2")
    assert hx2.describe_inputs() == "-"


def test_hx2_pins_its_own_seed():
    spec = registry.get_spec("HX2")
    assert not spec.uses_seed
    assert "seed" in inspect.signature(spec.run).parameters


def test_get_spec_is_case_insensitive_and_loud_on_unknown():
    assert registry.get_spec("t4") is registry.get_spec("T4")
    with pytest.raises(KeyError, match="unknown experiment 'F99'"):
        registry.get_spec("F99")


def test_legacy_registry_shape():
    legacy = registry.legacy_registry()
    assert sorted(legacy) == registry.artefact_ids()
    assert legacy["T4"] == "table4"
    assert legacy["RX1"] == "rx1"


def test_decorator_rejects_unknown_inputs():
    with pytest.raises(ValueError, match="unknown inputs"):
        @experiment("ZZ9", title="bogus", inputs=("campaign",))
        def run():  # pragma: no cover - never registered
            return {}


def test_decorator_rejects_duplicate_id_from_other_module():
    with pytest.raises(ValueError, match="duplicate experiment id"):
        @experiment("T4", title="impostor")
        def run():  # pragma: no cover - never registered
            return {}


def test_decorator_attaches_spec_to_function():
    from repro.experiments import table4

    spec = table4.run.__experiment_spec__
    assert spec is registry.get_spec("T4")
    assert spec.run_name == "run"
