"""Smoke test: every registered artefact runs and renders.

Catches format/run drift across the whole experiment registry in one
place (the per-artefact shape assertions live in tests/experiments/).
"""

import pytest

from repro.core import ThickMnaStudy
from repro.experiments import registry


@pytest.fixture(scope="module")
def study():
    return ThickMnaStudy(seed=2024)


@pytest.mark.parametrize("artefact", registry.artefact_ids())
def test_artefact_runs_and_renders(study, artefact):
    spec = registry.get_spec(artefact)
    scale = 0.08 if spec.supports_scale else None
    text = study.render(artefact, scale=scale)
    assert isinstance(text, str)
    assert len(text.splitlines()) >= 2, f"{artefact} rendered almost nothing"
    # Rendered output never leaks Python reprs of dataclasses.
    assert "object at 0x" not in text
