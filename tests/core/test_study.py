"""Tests for the ThickMnaStudy facade."""

import pytest

from repro.core import EXPERIMENT_REGISTRY, ThickMnaStudy


@pytest.fixture(scope="module")
def study():
    return ThickMnaStudy(seed=2024)


def test_registry_covers_all_paper_artefacts():
    tables = {"T2", "T3", "T4"}
    figures = {f"F{i}" for i in range(3, 21)}
    headline = {"HX1", "HX2"}
    resilience = {"RX1"}
    extensions = {"X1", "X2", "X3", "X4", "X5", "X6", "XA"}
    assert set(EXPERIMENT_REGISTRY) == (
        tables | figures | headline | resilience | extensions
    )


def test_available_experiments_sorted(study):
    experiments = study.available_experiments()
    assert experiments == sorted(EXPERIMENT_REGISTRY)


def test_unknown_experiment_raises(study):
    with pytest.raises(KeyError):
        study.run("F99")


def test_world_cached(study):
    assert study.world is study.world


def test_run_and_render_table2(study):
    result = study.run("T2")
    assert "rows" in result
    rendered = study.render("T2")
    assert "Packet Host" in rendered
    assert "IHBO" in rendered


def test_run_scaled_experiment(study):
    result = study.run("F7", scale=0.05)
    assert result  # per-(country, config) summaries present


def test_case_insensitive_ids(study):
    result = study.run("t3")
    assert result["total_measurements"] > 0


def test_datasets_accessible(study):
    device = study.device_dataset(scale=0.05)
    assert device.total_records() > 0
    web = study.web_dataset()
    assert len(web.web_measurements) > 0


def test_scale_for_non_scale_aware_artefact_raises(study):
    from repro.measure.amigo import ConfigurationError

    with pytest.raises(ConfigurationError) as excinfo:
        study.run("T2", scale=0.05)
    message = str(excinfo.value)
    assert "T2 does not take a campaign scale" in message
    assert "world" in message  # says what T2 actually reads
    assert "T4" in message  # ... and which artefacts are scale-aware
    # The same guard protects render().
    with pytest.raises(ConfigurationError):
        study.render("HX2", scale=0.1)


def test_spec_accessor_exposes_declarative_metadata(study):
    spec = study.spec("F13")
    assert spec.artefact_id == "F13"
    assert spec.supports_scale
    assert spec.inputs == {"device_dataset", "web_dataset"}


def test_top_level_import():
    import repro

    assert repro.ThickMnaStudy is ThickMnaStudy
    assert repro.__version__
