"""Tests for the parallel study runner (repro.core.runner)."""

import json

import pytest

from repro.core import StudyRunner, ThickMnaStudy
from repro.core import cache as cache_mod

#: Small, fast, representative mix: a topology table (world only), a
#: device-campaign figure, the headline numbers and a market figure.
SUBSET = ["T2", "F7", "HX1", "F18"]
SCALE = 0.05


@pytest.fixture()
def isolated_cache(tmp_path):
    previous = cache_mod.get_default_cache()
    store = cache_mod.configure(root=tmp_path / "cache")
    from repro.experiments import common

    common.clear_caches()
    yield store
    common.clear_caches()
    cache_mod.set_default_cache(previous)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        StudyRunner(jobs=0)


def test_unknown_artefact_fails_fast():
    with pytest.raises(KeyError):
        StudyRunner(jobs=1).run_all(scale=SCALE, artefacts=["F99"])


def test_serial_report_ledger(isolated_cache):
    report = StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=SUBSET)
    assert [run.artefact_id for run in report.runs] == SUBSET
    assert all(run.status == "ok" for run in report.runs)
    assert set(report.results) == set(SUBSET)
    assert report.total_wall_s > 0
    assert len({run.worker for run in report.runs}) == 1
    table = report.summary_table()
    assert "4/4 artefacts ok" in table
    assert "jobs=1" in table


def test_parallel_matches_serial_byte_for_byte(isolated_cache):
    study = ThickMnaStudy(seed=2024)
    serial = StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=SUBSET)
    parallel = StudyRunner(seed=2024, jobs=2).run_all(scale=SCALE, artefacts=SUBSET)
    assert not parallel.failed()
    for artefact_id in SUBSET:
        assert study.format_result(
            artefact_id, serial.results[artefact_id]
        ) == study.format_result(artefact_id, parallel.results[artefact_id])


def test_parallel_runs_span_workers(isolated_cache):
    report = StudyRunner(seed=2024, jobs=2).run_all(scale=SCALE, artefacts=SUBSET)
    assert all(run.worker.startswith("pid-") for run in report.runs)


def test_failure_is_isolated_per_artefact(isolated_cache, monkeypatch):
    import repro.experiments.table2 as table2

    def boom(**kwargs):
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr(table2, "run", boom)
    report = StudyRunner(seed=2024, jobs=1).run_all(
        scale=SCALE, artefacts=["T2", "F7"]
    )
    by_id = {run.artefact_id: run for run in report.runs}
    assert by_id["T2"].status == "error"
    assert "synthetic failure" in by_id["T2"].error
    assert by_id["F7"].status == "ok"
    assert "F7" in report.results and "T2" not in report.results
    assert "FAILED T2" in report.summary_table()


def test_run_all_facade_raises_on_failure(isolated_cache, monkeypatch):
    import repro.experiments.headline as headline

    monkeypatch.setattr(
        headline, "run", lambda **kwargs: (_ for _ in ()).throw(ValueError("x"))
    )
    monkeypatch.setattr(
        ThickMnaStudy, "available_experiments", lambda self: ["HX1", "T2"]
    )
    with pytest.raises(RuntimeError, match="HX1"):
        ThickMnaStudy(seed=2024).run_all(scale=SCALE)


def test_report_json_export(isolated_cache, tmp_path):
    report = StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=["T2"])
    target = tmp_path / "report.json"
    report.save(target)
    data = json.loads(target.read_text())
    assert data["jobs"] == 1
    assert data["runs"][0]["artefact_id"] == "T2"
    assert data["runs"][0]["status"] == "ok"
    assert "T2" in data["results"]


def test_second_run_hits_the_disk_cache(isolated_cache):
    from repro.experiments import common

    StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=["F7"])
    common.clear_caches()  # fresh-process simulation: memory gone, disk warm
    before = isolated_cache.stats.snapshot()
    report = StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=["F7"])
    delta = isolated_cache.stats.delta(before)
    assert delta.hits >= 2  # world + device dataset come from disk
    assert not report.failed()


def test_study_run_all_jobs_parameter(isolated_cache):
    study = ThickMnaStudy(seed=2024)
    results = study.run_all(scale=SCALE, jobs=2)
    assert set(results) == set(study.available_experiments())
