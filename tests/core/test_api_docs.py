"""Tests for the API-reference generator."""

import importlib.util
import pathlib

import pytest

TOOL = pathlib.Path(__file__).parents[2] / "tools" / "gen_api_docs.py"


@pytest.fixture(scope="module")
def gen_module():
    spec = importlib.util.spec_from_file_location("gen_api_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_package_renders(gen_module):
    for package in gen_module.PACKAGES:
        text = gen_module.render_module(package)
        assert text.startswith(f"## `{package}`")
        assert len(text.splitlines()) >= 3, f"{package} rendered empty"


def test_key_api_items_present(gen_module):
    text = gen_module.render_module("repro.cellular")
    for name in ("SessionFactory", "UserEquipment", "RoamingArchitecture"):
        assert name in text
    text = gen_module.render_module("repro.analysis")
    assert "classify_architecture" in text
    assert "ThickMnaAuditor" in text


def test_generated_file_up_to_date(gen_module, tmp_path, monkeypatch):
    target = tmp_path / "API.md"
    monkeypatch.setattr(gen_module, "OUTPUT", target)
    assert gen_module.main([]) == 0
    fresh = target.read_text()
    committed = (TOOL.parent.parent / "docs" / "API.md").read_text()
    assert fresh == committed, (
        "docs/API.md is stale — run `python tools/gen_api_docs.py`"
    )


def test_check_mode_passes_on_fresh_file(gen_module, tmp_path, monkeypatch):
    target = tmp_path / "API.md"
    monkeypatch.setattr(gen_module, "OUTPUT", target)
    assert gen_module.main([]) == 0
    assert gen_module.main(["--check"]) == 0


def test_check_mode_fails_on_stale_file(gen_module, tmp_path, monkeypatch,
                                        capsys):
    target = tmp_path / "API.md"
    monkeypatch.setattr(gen_module, "OUTPUT", target)
    assert gen_module.main(["--check"]) == 1  # missing counts as stale
    target.write_text("# API reference\n\nstale contents\n")
    assert gen_module.main(["--check"]) == 1
    assert "stale" in capsys.readouterr().err
    # --check never rewrites the file.
    assert target.read_text() == "# API reference\n\nstale contents\n"


def test_server_package_is_documented(gen_module):
    assert "repro.server" in gen_module.PACKAGES
    text = gen_module.render_module("repro.server")
    for name in ("MeasurementServer", "LoadGenerator", "run_loadgen"):
        assert name in text
