"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_shows_all_artefacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artefact in ("T2", "F11", "HX1", "X2"):
        assert artefact in out


def test_run_renders_table2(capsys):
    assert main(["run", "T2"]) == 0
    out = capsys.readouterr().out
    assert "Packet Host" in out
    assert "IHBO" in out


def test_run_unknown_artefact_errors(capsys):
    assert main(["run", "F99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_campaign_device_summary(capsys):
    assert main(["campaign", "device", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "device campaign:" in out
    assert "traceroutes" in out


def test_campaign_web_summary(capsys):
    assert main(["campaign", "web"]) == 0
    out = capsys.readouterr().out
    assert "web campaign:" in out
    assert "web records : 116" in out


def test_probe_known_country(capsys):
    assert main(["probe", "esp"]) == 0
    out = capsys.readouterr().out
    assert "architecture    : IHBO" in out
    assert "VoIP" in out


def test_probe_unknown_country(capsys):
    assert main(["probe", "ZZZ"]) == 2
    assert "does not serve" in capsys.readouterr().err


def test_market_overview(capsys):
    assert main(["market"]) == 0
    out = capsys.readouterr().out
    assert "Airalo" in out
    assert "Keepgo" in out


def test_market_country_query(capsys):
    assert main(["market", "--country", "esp", "--gb", "3"]) == 0
    out = capsys.readouterr().out
    assert "cheapest plans" in out


def test_market_impossible_query(capsys):
    assert main(["market", "--country", "ESP", "--gb", "500"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_campaign_save_roundtrip(tmp_path, capsys):
    target = tmp_path / "campaign.jsonl"
    assert main(["campaign", "device", "--scale", "0.03", "--save", str(target)]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    from repro.measure.io import load_dataset

    assert load_dataset(target).total_records() > 0


def test_run_json_export(tmp_path, capsys):
    import json

    target = tmp_path / "f7.json"
    assert main(["run", "F7", "--json", str(target)]) == 0
    data = json.loads(target.read_text())
    assert any("|" in key for key in data)


def test_trip_command(capsys):
    assert main(["trip", "ESP:2", "FRA:1.5"]) == 0
    out = capsys.readouterr().out
    assert "recommended" in out


def test_trip_bad_leg(capsys):
    assert main(["trip", "ESP:notanumber"]) == 2


def test_tools_catalogue(capsys):
    assert main(["tools"]) == 0
    out = capsys.readouterr().out
    for tool in ("Speedtest", "Traceroute", "CDN", "DNS", "YouTube", "VoIP"):
        assert tool in out
