"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_shows_all_artefacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artefact in ("T2", "F11", "HX1", "X2"):
        assert artefact in out


def test_run_renders_table2(capsys):
    assert main(["run", "T2"]) == 0
    out = capsys.readouterr().out
    assert "Packet Host" in out
    assert "IHBO" in out


def test_run_unknown_artefact_errors(capsys):
    assert main(["run", "F99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_campaign_device_summary(capsys):
    assert main(["campaign", "device", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "device campaign:" in out
    assert "traceroutes" in out


def test_campaign_web_summary(capsys):
    assert main(["campaign", "web"]) == 0
    out = capsys.readouterr().out
    assert "web campaign:" in out
    assert "web records : 116" in out


def test_probe_known_country(capsys):
    assert main(["probe", "esp"]) == 0
    out = capsys.readouterr().out
    assert "architecture    : IHBO" in out
    assert "VoIP" in out


def test_probe_unknown_country(capsys):
    assert main(["probe", "ZZZ"]) == 2
    assert "does not serve" in capsys.readouterr().err


def test_market_overview(capsys):
    assert main(["market"]) == 0
    out = capsys.readouterr().out
    assert "Airalo" in out
    assert "Keepgo" in out


def test_market_country_query(capsys):
    assert main(["market", "--country", "esp", "--gb", "3"]) == 0
    out = capsys.readouterr().out
    assert "cheapest plans" in out


def test_market_impossible_query(capsys):
    assert main(["market", "--country", "ESP", "--gb", "500"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_campaign_save_roundtrip(tmp_path, capsys):
    target = tmp_path / "campaign.jsonl"
    assert main(["campaign", "device", "--scale", "0.03", "--save", str(target)]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    from repro.measure.io import load_dataset

    assert load_dataset(target).total_records() > 0


def test_run_json_export(tmp_path, capsys):
    import json

    target = tmp_path / "f7.json"
    assert main(["run", "F7", "--json", str(target)]) == 0
    data = json.loads(target.read_text())
    assert any("|" in key for key in data)


def test_trip_command(capsys):
    assert main(["trip", "ESP:2", "FRA:1.5"]) == 0
    out = capsys.readouterr().out
    assert "recommended" in out


def test_trip_bad_leg(capsys):
    assert main(["trip", "ESP:notanumber"]) == 2


def test_tools_catalogue(capsys):
    assert main(["tools"]) == 0
    out = capsys.readouterr().out
    for tool in ("Speedtest", "Traceroute", "CDN", "DNS", "YouTube", "VoIP"):
        assert tool in out


# -- run-all / cache / verbose ------------------------------------------------


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    """Undo ``main()``'s logging configuration after every CLI test.

    The CLI intentionally stops ``repro.*`` records propagating to the
    root logger; leaving that in place would starve ``caplog`` in tests
    that run later in the session.
    """
    import logging

    logger = logging.getLogger("repro")
    state = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:], logger.level, logger.propagate = state[0], state[1], state[2]
    logger.setLevel(state[1])


@pytest.fixture()
def cli_cache(tmp_path):
    """Point the process-default cache at a throwaway dir for CLI tests."""
    from repro.core import cache as cache_mod
    from repro.experiments import common

    previous = cache_mod.get_default_cache()
    yield tmp_path / "cache"
    common.clear_caches()
    cache_mod.set_default_cache(previous)


def test_run_all_subset(cli_cache, capsys):
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache),
    ]) == 0
    out = capsys.readouterr().out
    assert "2/2 artefacts ok" in out
    assert "T2" in out and "F7" in out


def test_run_all_exports_report_and_renders(cli_cache, tmp_path, capsys):
    import json

    report_path = tmp_path / "report.json"
    render_dir = tmp_path / "rendered"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache),
        "--json", str(report_path), "--render-dir", str(render_dir),
    ]) == 0
    data = json.loads(report_path.read_text())
    assert data["runs"][0]["artefact_id"] == "T2"
    assert "Packet Host" in (render_dir / "T2.txt").read_text()


def test_run_all_unknown_artefact(cli_cache, capsys):
    assert main([
        "run-all", "--artefacts", "F99", "--cache-dir", str(cli_cache),
    ]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_all_parallel_matches_serial(cli_cache, tmp_path, capsys):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    artefacts = ["T2", "F7", "HX1"]
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", *artefacts,
        "--cache-dir", str(cli_cache), "--render-dir", str(serial_dir),
    ]) == 0
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", *artefacts, "--jobs", "2",
        "--cache-dir", str(cli_cache), "--render-dir", str(parallel_dir),
    ]) == 0
    for artefact in artefacts:
        assert (serial_dir / f"{artefact}.txt").read_bytes() == (
            parallel_dir / f"{artefact}.txt"
        ).read_bytes()


def test_run_all_trace_and_trace_views(cli_cache, tmp_path, capsys):
    import json

    trace_dir = tmp_path / "traces"
    report_path = tmp_path / "report.json"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache), "--trace", str(trace_dir),
        "--json", str(report_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "(trace written to " in out
    data = json.loads(report_path.read_text())
    trace_path = data["trace_path"]
    assert trace_path and trace_path.endswith(".jsonl")

    assert main(["trace", "summary", trace_path]) == 0
    out = capsys.readouterr().out
    assert "run_all" in out
    assert "attributed to named child spans" in out

    assert main(["trace", "tree", trace_path, "--depth", "1"]) == 0
    assert "artefact" in capsys.readouterr().out

    assert main(["trace", "slowest", trace_path, "--top", "3"]) == 0
    assert "run_all" in capsys.readouterr().out


def test_trace_missing_file_errors(capsys):
    assert main(["trace", "summary", "/nonexistent/trace.jsonl"]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_unparseable_file_errors(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["trace", "summary", str(bad)]) == 2
    assert "bad.jsonl:1" in capsys.readouterr().err


def test_cache_info_and_clear(cli_cache, capsys):
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache),
    ]) == 0
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", str(cli_cache)]) == 0
    out = capsys.readouterr().out
    assert "cache root" in out and "world-" in out
    assert main(["cache", "clear", "--cache-dir", str(cli_cache)]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", str(cli_cache)]) == 0
    assert "entries    : 0" in capsys.readouterr().out


# -- history / regress / report ----------------------------------------------


def _run_all_history(cli_cache, history_dir, *extra):
    return main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache), "--history", str(history_dir), *extra,
    ])


def test_run_all_history_appends_and_reports_run_id(cli_cache, tmp_path, capsys):
    import json

    history_dir = tmp_path / "hist"
    report_path = tmp_path / "report.json"
    assert _run_all_history(cli_cache, history_dir, "--json", str(report_path)) == 0
    out = capsys.readouterr().out
    assert "(history run " in out

    data = json.loads(report_path.read_text())
    assert data["ok"] is True
    assert data["history_run_id"]

    from repro.obs.history import HistoryStore

    (record,) = HistoryStore(history_dir).load()
    assert record.run_id == data["history_run_id"]
    assert set(record.artefacts) == {"T2", "F7"}
    assert all(s.fingerprint for s in record.artefacts.values())


def test_identical_runs_pass_the_regression_gate(cli_cache, tmp_path, capsys):
    history_dir = tmp_path / "hist"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()
    assert main([
        "regress", "--history", str(history_dir), "--fail-on-regression",
    ]) == 0
    assert "no regressions detected" in capsys.readouterr().out


def test_injected_slowdown_fails_the_regression_gate(
    cli_cache, tmp_path, capsys, monkeypatch
):
    import time as time_mod

    import repro.experiments.table2 as table2

    history_dir = tmp_path / "hist"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0

    original = table2.run

    def slow_run(**kwargs):
        time_mod.sleep(0.4)
        return original(**kwargs)

    monkeypatch.setattr(table2, "run", slow_run)
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()
    assert main([
        "regress", "--history", str(history_dir), "--fail-on-regression",
    ]) == 1
    out = capsys.readouterr().out
    assert "latency-regression" in out
    assert "T2" in out
    # Without the gate flag the verdicts still print but exit 0.
    assert main(["regress", "--history", str(history_dir)]) == 0


def test_forced_fingerprint_change_fails_the_regression_gate(
    cli_cache, tmp_path, capsys, monkeypatch
):
    import repro.experiments.table2 as table2

    history_dir = tmp_path / "hist"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0

    monkeypatch.setattr(table2, "run", lambda **kwargs: {"tampered": True})
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()
    assert main([
        "regress", "--history", str(history_dir), "--fail-on-regression",
    ]) == 1
    out = capsys.readouterr().out
    assert "fingerprint-change" in out
    assert "T2" in out


def test_regress_against_pinned_run(cli_cache, tmp_path, capsys):
    history_dir = tmp_path / "hist"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()

    from repro.obs.history import HistoryStore

    first = HistoryStore(history_dir).load()[0]
    assert main([
        "regress", "--history", str(history_dir), "--against", first.run_id,
    ]) == 0
    assert first.run_id in capsys.readouterr().out


def test_regress_needs_a_baseline(cli_cache, tmp_path, capsys):
    history_dir = tmp_path / "hist"
    assert main(["regress", "--history", str(history_dir)]) == 2
    assert "no runs recorded" in capsys.readouterr().err
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()
    assert main(["regress", "--history", str(history_dir)]) == 2
    assert "no earlier baseline" in capsys.readouterr().err


def test_history_list_show_compare(cli_cache, tmp_path, capsys):
    history_dir = tmp_path / "hist"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()

    assert main(["history", "list", "--history", str(history_dir)]) == 0
    out = capsys.readouterr().out
    assert "seed2024-scale0.05-jobs1" in out
    assert out.count("2/ 2") == 2

    assert main(["history", "show", "--history", str(history_dir)]) == 0
    out = capsys.readouterr().out
    assert "T2" in out and "F7" in out and "fingerprint" in out

    from repro.obs.history import HistoryStore

    run_ids = [record.run_id for record in HistoryStore(history_dir).load()]
    assert main([
        "history", "compare", *run_ids, "--history", str(history_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "identical" in out and "DIFFERENT" not in out


def test_history_empty_store_errors(tmp_path, capsys):
    assert main(["history", "list", "--history", str(tmp_path / "none")]) == 2
    assert "no runs recorded" in capsys.readouterr().err


def test_report_html_dashboard(cli_cache, tmp_path, capsys):
    history_dir = tmp_path / "hist"
    target = tmp_path / "report.html"
    assert _run_all_history(cli_cache, history_dir) == 0
    assert _run_all_history(cli_cache, history_dir) == 0
    capsys.readouterr()
    assert main([
        "report", "--html", str(target), "--history", str(history_dir),
    ]) == 0
    assert "wrote" in capsys.readouterr().out
    html = target.read_text()
    assert "seed2024-scale0.05-jobs1" in html
    assert "<table>" in html


def test_run_all_exits_nonzero_on_artefact_failure(
    cli_cache, tmp_path, capsys, monkeypatch
):
    import json

    import repro.experiments.table2 as table2

    def boom(**kwargs):
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr(table2, "run", boom)
    report_path = tmp_path / "report.json"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache), "--json", str(report_path),
        "--history", str(tmp_path / "hist"),
    ]) == 1
    out = capsys.readouterr().out
    assert "FAILED T2" in out
    data = json.loads(report_path.read_text())
    assert data["ok"] is False

    from repro.obs.history import HistoryStore

    (record,) = HistoryStore(tmp_path / "hist").load()
    assert record.ok is False
    assert record.artefacts["T2"].status == "error"


def test_trace_multiple_files_and_metrics_view(cli_cache, tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache), "--trace", str(trace_dir),
    ]) == 0
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "--jobs", "2",
        "--cache-dir", str(cli_cache), "--trace", str(trace_dir),
    ]) == 0
    capsys.readouterr()
    traces = sorted(str(path) for path in trace_dir.glob("*.jsonl"))
    assert len(traces) == 2

    assert main(["trace", "summary", *traces]) == 0
    out = capsys.readouterr().out
    for path in traces:
        assert f"== {path} ==" in out
    assert out.count("run_all") >= 2

    # Unshelled glob patterns expand too.
    assert main(["trace", "metrics", str(trace_dir / "*.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "counter" in out and "cache." in out

    assert main(["trace", "critical", traces[0]]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out

    assert main(["trace", "summary", str(trace_dir / "nope-*.jsonl")]) == 2
    assert "no trace files match" in capsys.readouterr().err


def test_chaos_weather_silent_by_default(capsys):
    assert main(["chaos", "--churn", "0.3", "--scale", "0.03"]) == 0
    captured = capsys.readouterr()
    assert "went dark" not in captured.err
    assert "went dark" not in captured.out


def test_verbose_surfaces_campaign_weather(capsys):
    from repro.experiments import common

    # Force the campaign (and its logs) to actually re-run: drop the
    # in-memory layer AND the disk entry the previous chaos test wrote.
    common.clear_caches(disk=True)
    assert main(["--verbose", "chaos", "--churn", "0.3", "--scale", "0.03"]) == 0
    captured = capsys.readouterr()
    assert "went dark" in captured.err
    assert "went dark" not in captured.out


# -- resilient run-all: journal, resume, chaos, cache verify -----------------


def test_run_all_resume_requires_journal(cli_cache, capsys):
    assert main([
        "run-all", "--resume", "--cache-dir", str(cli_cache),
    ]) == 2
    assert "--resume requires --journal" in capsys.readouterr().err


def test_run_all_journal_then_resume(cli_cache, tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache), "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache), "--journal", str(journal), "--resume",
    ]) == 0
    out = capsys.readouterr().out
    assert "journal" in out  # both rows served from the checkpoint
    assert "2/2 artefacts ok" in out


def test_run_all_resume_mismatched_workload_is_usage_error(
    cli_cache, tmp_path, capsys
):
    journal = tmp_path / "run.jsonl"
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache), "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main([
        "run-all", "--scale", "0.03", "--artefacts", "T2",
        "--cache-dir", str(cli_cache), "--journal", str(journal), "--resume",
    ]) == 2
    assert "workload" in capsys.readouterr().err


def test_run_all_with_exec_chaos_flags(cli_cache, capsys):
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2", "F7",
        "--cache-dir", str(cli_cache), "--jobs", "2",
        "--exec-crash-rate", "0.5", "--exec-chaos-seed", "5",
        "--max-attempts", "3",
    ]) == 0
    assert "2/2 artefacts ok" in capsys.readouterr().out


def test_cache_verify_cli(cli_cache, capsys):
    import pathlib

    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--cache-dir", str(cli_cache),
    ]) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", str(cli_cache)]) == 0
    assert "corrupt    : 0" in capsys.readouterr().out
    victim = sorted(pathlib.Path(cli_cache).glob("*.pkl"))[0]
    victim.write_bytes(b"scribbled")
    assert main(["cache", "verify", "--cache-dir", str(cli_cache)]) == 1
    assert victim.stem in capsys.readouterr().out
    assert main([
        "cache", "verify", "--cache-dir", str(cli_cache), "--prune",
    ]) == 0
    assert "pruned     : 1" in capsys.readouterr().out
    assert not victim.exists()


def test_world_stats_text(capsys):
    assert main(["world", "stats", "--no-cache", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "world substrate @ seed=2024 scale=0.1" in out
    assert "subscribers" in out
    assert "eSIM roamers" in out
    assert "B/subscriber" in out
    assert "imsi" in out  # per-column size table


def test_world_stats_json_export(tmp_path, capsys):
    import json

    target = tmp_path / "world-stats.json"
    assert main([
        "world", "stats", "--no-cache", "--scale", "0.1",
        "--json", str(target),
    ]) == 0
    stats = json.loads(target.read_text())
    assert stats["scale"] == 0.1
    assert stats["subscribers"] == stats["esims"] + stats["physical_sims"]
    assert set(stats["column_bytes"]) >= {"imsi", "country", "monthly_mb"}


def test_world_stats_estimate_only(capsys):
    assert main(["world", "stats", "--scale", "50", "--estimate-only"]) == 0
    out = capsys.readouterr().out
    assert "estimate at scale=50" in out
    assert "MiB" in out


def test_world_stats_uses_snapshot_cache(tmp_path, capsys):
    cache_dir = tmp_path / "world-cache"
    assert main([
        "world", "stats", "--scale", "0.05", "--cache-dir", str(cache_dir),
    ]) == 0
    capsys.readouterr()
    snapshots = list((cache_dir / "populations").glob("population-*.cols"))
    assert len(snapshots) == 1


def test_run_all_share_population_flag(cli_cache, capsys):
    assert main([
        "run-all", "--scale", "0.05", "--artefacts", "T2",
        "--share-population", "--jobs", "2", "--cache-dir", str(cli_cache),
    ]) == 0
    out = capsys.readouterr().out
    assert "artefacts ok" in out
