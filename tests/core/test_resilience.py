"""Resilient execution: supervision, chaos, journal and resume.

The ISSUE-6 acceptance bar, pinned as tests: with seeded exec-chaos
injecting worker crashes and a hang, a ``jobs=4`` run completes every
artefact (retried or quarantined, never stalled); a run killed with
``SIGKILL`` mid-flight and resumed with ``--resume`` produces
byte-identical exports to an uninterrupted run; SIGINT flushes a
partial report with ``status="interrupted"`` and a distinct exit code.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.core import cache as cache_mod
from repro.core.journal import JournalEntry, JournalMismatch, RunJournal
from repro.core.runner import StudyRunner
from repro.faults import BackoffPolicy, ExecChaos, InjectedWorkerCrash
from repro.faults import execchaos as execchaos_mod

SCALE = 0.05
SUBSET = ["T2", "F7", "HX1", "F18"]
GOLDEN = pathlib.Path(__file__).parent / "golden" / "run_all_seed2024_scale0.05.json"

#: Backoff tuned for tests: retries are effectively immediate.
FAST_RETRY = BackoffPolicy(base_s=0.001, factor=1.0, cap_s=0.01, jitter=0.0)


@pytest.fixture()
def isolated_cache(tmp_path):
    previous = cache_mod.get_default_cache()
    store = cache_mod.configure(root=tmp_path / "cache")
    from repro.experiments import common

    common.clear_caches()
    yield store
    common.clear_caches()
    cache_mod.set_default_cache(previous)


# -- ExecChaos unit behaviour -------------------------------------------------


def test_exec_chaos_decisions_are_deterministic():
    chaos = ExecChaos(seed=3, worker_crash_rate=0.5, cache_corrupt_rate=0.5)
    for artefact in ("T2", "F7", "X1"):
        for attempt in (0, 1):
            assert chaos.should_crash(artefact, attempt) == chaos.should_crash(
                artefact, attempt
            )
            assert chaos.should_corrupt_cache(
                artefact, attempt
            ) == chaos.should_corrupt_cache(artefact, attempt)


def test_exec_chaos_stops_after_faulty_attempt_budget():
    chaos = ExecChaos(
        seed=3, worker_crash_rate=1.0, hang_artefacts=("T2",),
        cache_corrupt_rate=1.0, max_faulty_attempts=2,
    )
    assert chaos.should_crash("T2", 0) and chaos.should_crash("T2", 1)
    assert not chaos.should_crash("T2", 2)
    assert chaos.should_hang("T2", 1) and not chaos.should_hang("T2", 2)
    assert not chaos.should_corrupt_cache("T2", 2)


def test_exec_chaos_disabled_never_fires():
    chaos = ExecChaos.disabled()
    assert not chaos.should_crash("T2", 0)
    assert not chaos.should_hang("T2", 0)
    assert not chaos.should_corrupt_cache("T2", 0)
    # And a None config is a no-op hook.
    execchaos_mod.inject(None, "T2", 0, cache_root="/nonexistent", in_subprocess=False)


def test_exec_chaos_validates_rates():
    with pytest.raises(ValueError):
        ExecChaos(worker_crash_rate=1.5)
    with pytest.raises(ValueError):
        ExecChaos(hang_s=0)
    with pytest.raises(ValueError):
        ExecChaos(max_faulty_attempts=0)


def test_inject_crash_raises_inline_and_corrupts_cache(tmp_path):
    store = cache_mod.ArtifactCache(root=tmp_path)
    store.store("victim-aaaa", {"some": "payload"})
    chaos = ExecChaos(seed=0, worker_crash_rate=1.0, cache_corrupt_rate=1.0)
    with pytest.raises(InjectedWorkerCrash):
        execchaos_mod.inject(chaos, "T2", 0, cache_root=tmp_path, in_subprocess=False)
    # The cache entry was scribbled over; a load treats it as a miss.
    assert store.load("victim-aaaa") is None


# -- journal unit behaviour ---------------------------------------------------


def test_journal_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.begin("workload-1")
    journal.append(JournalEntry("T2", "fp-t2", wall_s=0.5, worker="pid-1"))
    journal.append(JournalEntry("F7", "fp-f7", attempts=2))
    workload, entries = journal.load()
    assert workload == "workload-1"
    assert set(entries) == {"T2", "F7"}
    assert entries["T2"].fingerprint == "fp-t2"
    assert entries["F7"].attempts == 2
    assert journal.resume("workload-1") == entries


def test_journal_resume_refuses_other_workload(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.begin("workload-1")
    with pytest.raises(JournalMismatch):
        journal.resume("workload-2")


def test_journal_resume_starts_fresh_when_missing(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    assert journal.resume("workload-1") == {}
    workload, _entries = journal.load()
    assert workload == "workload-1"  # begin() was called for us


def test_journal_tolerates_corruption(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.begin("workload-1")
    journal.append(JournalEntry("T2", "fp-t2"))
    with path.open("a") as handle:
        handle.write("garbage not json\n")
        handle.write('{"kind": "artefact"}\n')  # unusable: no artefact_id
        handle.write(json.dumps({
            "kind": "artefact", "artefact_id": "XX", "fingerprint": "fp-xx",
            "status": "ok", "schema": 99,  # newer writer: must be skipped
        }) + "\n")
    journal.append(JournalEntry("F7", "fp-f7"))
    with path.open("a") as handle:
        handle.write('{"kind": "artefact", "artefact_id": "T')  # torn write
    workload, entries = journal.load()
    assert workload == "workload-1"
    assert set(entries) == {"T2", "F7"}
    # Appending after a torn write seals the partial line first.
    journal.append(JournalEntry("X1", "fp-x1"))
    _workload, entries = journal.load()
    assert set(entries) == {"T2", "F7", "X1"}


def test_journal_resume_skips_non_ok_entries(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.begin("workload-1")
    journal.append(JournalEntry("T2", "fp-t2"))
    journal.append(JournalEntry("F7", "", status="quarantined"))
    journal.append(JournalEntry("X1", "fp-x1", status="timeout"))
    assert set(journal.resume("workload-1")) == {"T2"}


# -- supervised execution -----------------------------------------------------


def test_serial_injected_crash_is_retried(isolated_cache):
    chaos = ExecChaos(seed=0, worker_crash_rate=1.0)  # attempt 0 always dies
    report = StudyRunner(
        seed=2024, jobs=1, exec_chaos=chaos, retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE, artefacts=["T2", "F7"])
    assert not report.failed(), report.summary_table()
    assert all(run.attempts == 2 for run in report.runs)


def test_serial_repeated_crash_quarantines(isolated_cache):
    chaos = ExecChaos(seed=0, worker_crash_rate=1.0, max_faulty_attempts=99)
    report = StudyRunner(
        seed=2024, jobs=1, exec_chaos=chaos, max_attempts=2,
        retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE, artefacts=["T2", "F7"])
    assert [run.status for run in report.runs] == ["quarantined", "quarantined"]
    assert all(run.attempts == 2 for run in report.runs)
    assert "FAILED T2" in report.summary_table()


def test_deterministic_artefact_error_is_not_retried(isolated_cache, monkeypatch):
    from repro.core.study import ThickMnaStudy

    calls = []
    original_run = ThickMnaStudy.run

    def exploding(self, artefact_id, scale=None):
        calls.append(artefact_id)
        if artefact_id == "T2":
            raise RuntimeError("boom inside the artefact")
        return original_run(self, artefact_id, scale=scale)

    monkeypatch.setattr(ThickMnaStudy, "run", exploding)
    report = StudyRunner(
        seed=2024, jobs=1, retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE, artefacts=["T2", "F7"])
    by_id = {run.artefact_id: run for run in report.runs}
    assert by_id["T2"].status == "error"
    assert by_id["T2"].attempts == 1
    assert "boom inside the artefact" in by_id["T2"].error
    assert calls.count("T2") == 1  # deterministic failure: no retry burned
    assert by_id["F7"].status == "ok"


def test_parallel_chaos_completes_every_artefact(isolated_cache):
    """The acceptance criterion: 10% crashes + one hang, jobs=4, no stall."""
    chaos = ExecChaos(
        seed=11, worker_crash_rate=0.10, hang_artefacts=("F7",), hang_s=60.0,
    )
    report = StudyRunner(
        seed=2024, jobs=4, exec_chaos=chaos, artefact_timeout_s=6.0,
        retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE)
    assert len(report.runs) == 31
    assert {run.status for run in report.runs} <= {"ok", "timeout", "quarantined"}
    assert not report.failed(), report.summary_table()
    # The injected hang artefact survived (watchdog or pool-break rescue).
    hang_row = next(run for run in report.runs if run.artefact_id == "F7")
    assert hang_row.status == "ok"


def test_parallel_chaos_matches_clean_run_bytes(isolated_cache):
    """Chaos perturbs scheduling, never artefact bytes."""
    from repro.experiments.export import jsonable

    clean = StudyRunner(seed=2024, jobs=2).run_all(scale=SCALE, artefacts=SUBSET)
    chaos = ExecChaos(seed=5, worker_crash_rate=0.5)
    chaotic = StudyRunner(
        seed=2024, jobs=2, exec_chaos=chaos, retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE, artefacts=SUBSET)
    assert not chaotic.failed(), chaotic.summary_table()
    for artefact_id in SUBSET:
        assert json.dumps(jsonable(clean.results[artefact_id]), sort_keys=True) == \
            json.dumps(jsonable(chaotic.results[artefact_id]), sort_keys=True)


def test_watchdog_times_out_hung_artefact(isolated_cache):
    chaos = ExecChaos(
        seed=0, hang_artefacts=("T2",), hang_s=120.0, max_faulty_attempts=99,
    )
    report = StudyRunner(
        seed=2024, jobs=2, exec_chaos=chaos, artefact_timeout_s=1.0,
        max_attempts=2, retry_backoff=FAST_RETRY,
    ).run_all(scale=SCALE, artefacts=["T2", "F7"])
    by_id = {run.artefact_id: run for run in report.runs}
    assert by_id["T2"].status == "timeout"
    assert by_id["T2"].attempts == 2
    assert "deadline" in by_id["T2"].error
    assert by_id["F7"].status == "ok"  # innocent neighbour survived the kills


# -- resume -------------------------------------------------------------------


def test_resume_requires_journal(isolated_cache):
    with pytest.raises(ValueError):
        StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, resume=True)


def test_resume_skips_completed_work_and_matches_bytes(isolated_cache, tmp_path):
    from repro.experiments.export import jsonable

    journal_path = tmp_path / "run.jsonl"
    first = StudyRunner(
        seed=2024, jobs=1, journal_path=journal_path,
    ).run_all(scale=SCALE, artefacts=SUBSET)
    assert not first.failed()
    resumed = StudyRunner(
        seed=2024, jobs=1, journal_path=journal_path,
    ).run_all(scale=SCALE, artefacts=SUBSET, resume=True)
    assert [run.worker for run in resumed.runs] == ["journal"] * len(SUBSET)
    assert [run.attempts for run in resumed.runs] == [0] * len(SUBSET)
    for artefact_id in SUBSET:
        assert json.dumps(jsonable(first.results[artefact_id]), sort_keys=True) == \
            json.dumps(jsonable(resumed.results[artefact_id]), sort_keys=True)


def test_resume_refuses_mismatched_workload(isolated_cache, tmp_path):
    journal_path = tmp_path / "run.jsonl"
    StudyRunner(seed=2024, jobs=1, journal_path=journal_path).run_all(
        scale=SCALE, artefacts=["T2"]
    )
    with pytest.raises(JournalMismatch):
        # Different seed => different workload fingerprint.
        StudyRunner(seed=7, jobs=1, journal_path=journal_path).run_all(
            scale=SCALE, artefacts=["T2"], resume=True
        )


def test_resume_reruns_artefact_with_missing_payload(isolated_cache, tmp_path):
    journal_path = tmp_path / "run.jsonl"
    runner = StudyRunner(seed=2024, jobs=1, journal_path=journal_path)
    first = runner.run_all(scale=SCALE, artefacts=["T2", "F7"])
    assert not first.failed()
    # Evict one checkpointed payload: resume must recompute just that one.
    key = runner._result_key("T2", SCALE)
    (isolated_cache.root / f"{key}.pkl").unlink()
    resumed = StudyRunner(
        seed=2024, jobs=1, journal_path=journal_path,
    ).run_all(scale=SCALE, artefacts=["T2", "F7"], resume=True)
    by_id = {run.artefact_id: run for run in resumed.runs}
    assert by_id["T2"].worker != "journal"  # recomputed
    assert by_id["F7"].worker == "journal"  # served from the checkpoint
    assert not resumed.failed()


# -- interruption -------------------------------------------------------------


def test_request_stop_flushes_partial_report(isolated_cache):
    runner = StudyRunner(seed=2024, jobs=1)
    original_warm = runner.warm_inputs

    def warm_then_stop(scale, artefacts):
        elapsed = original_warm(scale, artefacts)
        runner.request_stop()
        return elapsed

    runner.warm_inputs = warm_then_stop
    report = runner.run_all(scale=SCALE, artefacts=SUBSET)
    assert report.interrupted
    assert len(report.runs) == len(SUBSET)
    assert {run.status for run in report.runs} == {"interrupted"}
    assert "interrupted" in report.summary_table()


def test_interrupted_history_record(isolated_cache, tmp_path):
    from repro.obs.history import HistoryStore

    runner = StudyRunner(seed=2024, jobs=1, history_dir=tmp_path / "hist")
    original_warm = runner.warm_inputs

    def warm_then_stop(scale, artefacts):
        elapsed = original_warm(scale, artefacts)
        runner.request_stop()
        return elapsed

    runner.warm_inputs = warm_then_stop
    report = runner.run_all(scale=SCALE, artefacts=SUBSET)
    assert report.interrupted
    (record,) = HistoryStore(tmp_path / "hist").load()
    assert record.status == "interrupted"
    assert not record.ok


# -- subprocess-level kill / SIGINT ------------------------------------------


def _cli_env(cache_dir: pathlib.Path) -> dict:
    env = dict(os.environ)
    repo_src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    return env


def _journal_completions(path: pathlib.Path) -> int:
    if not path.is_file():
        return 0
    return sum(
        1 for line in path.read_text().splitlines() if '"kind": "artefact"' in line
        or '"kind":"artefact"' in line
    )


@pytest.mark.chaos
def test_sigkill_then_resume_matches_golden(tmp_path):
    """Kill -9 a run mid-flight; --resume completes it byte-identically."""
    golden = json.loads(GOLDEN.read_text())
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "run.jsonl"
    out_json = tmp_path / "report.json"
    base_cmd = [
        sys.executable, "-m", "repro", "--seed", str(golden["seed"]),
        "run-all", "--jobs", "2", "--scale", str(golden["scale"]),
        "--journal", str(journal),
    ]
    env = _cli_env(cache_dir)
    proc = subprocess.Popen(
        base_cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 300
    try:
        # Let it checkpoint a few artefacts, then kill it ungracefully.
        while _journal_completions(journal) < 3:
            if proc.poll() is not None:
                pytest.fail(
                    f"run finished (rc={proc.returncode}) before the kill "
                    f"window; got {_journal_completions(journal)} completions"
                )
            if time.time() > deadline:
                pytest.fail("run never checkpointed 3 artefacts")
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        assert proc.wait(timeout=60) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
    killed_at = _journal_completions(journal)
    assert killed_at >= 3

    resumed = subprocess.run(
        base_cmd + ["--resume", "--json", str(out_json)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    report = json.loads(out_json.read_text())
    assert report["ok"] and not report["interrupted"]
    served = [r for r in report["runs"] if r["worker"] == "journal"]
    assert len(served) >= 3  # the pre-kill checkpoints were actually reused
    assert sorted(report["results"]) == sorted(golden["results"])
    for artefact_id, result in report["results"].items():
        fresh = json.dumps(result, indent=2, sort_keys=True)
        gold = json.dumps(golden["results"][artefact_id], indent=2, sort_keys=True)
        assert fresh == gold, f"{artefact_id} drifted after kill/resume"


@pytest.mark.chaos
def test_sigint_writes_partial_report_and_distinct_exit_code(tmp_path):
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "run.jsonl"
    out_json = tmp_path / "report.json"
    history = tmp_path / "hist"
    cmd = [
        sys.executable, "-m", "repro", "run-all", "--jobs", "2",
        "--scale", "0.05", "--journal", str(journal),
        "--json", str(out_json), "--history", str(history),
        # One artefact hangs (far longer than the test), guaranteeing the
        # run is still alive when the signal lands.
        "--exec-hang", "F7", "--exec-hang-s", "600",
    ]
    proc = subprocess.Popen(
        cmd, env=_cli_env(cache_dir),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 300
    try:
        # Wait for proof the supervised loop is live (a completion is
        # journalled strictly after the signal handlers are installed).
        while _journal_completions(journal) < 1:
            if proc.poll() is not None:
                pytest.fail(f"run exited early: rc={proc.returncode}")
            if time.time() > deadline:
                pytest.fail("run never journalled a completion")
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        rc = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert rc == 130, proc.stdout.read() if proc.stdout else rc
    report = json.loads(out_json.read_text())
    assert report["interrupted"] and not report["ok"]
    statuses = {r["status"] for r in report["runs"]}
    assert "interrupted" in statuses  # the hung artefact never finished
    assert "ok" in statuses  # but completed work was kept

    from repro.obs.history import HistoryStore

    (record,) = HistoryStore(history).load()
    assert record.status == "interrupted"
