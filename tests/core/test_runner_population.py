"""Runner integration for the shared columnar population substrate.

Covers the lifecycle the tentpole refactor added to ``StudyRunner``:
``warm_inputs`` builds (or mmap-loads) the population when an artefact
declares the ``population`` input or ``share_population=True``; a
parallel run publishes exactly one shared-memory snapshot whose
descriptor rides the pool initargs; workers adopt it zero-copy; and the
segment is unlinked when the run ends — success, failure or interrupt.
"""

import glob
import json

import pytest

from repro.core import cache as cache_mod
from repro.core.runner import StudyRunner
from repro.experiments import common, registry
from repro.experiments.export import jsonable

SCALE = 0.05


@pytest.fixture()
def isolated_cache(tmp_path):
    previous = cache_mod.get_default_cache()
    store = cache_mod.configure(root=tmp_path / "cache")
    common.clear_caches()
    yield store
    common.clear_caches()
    cache_mod.set_default_cache(previous)


def _shm_segments():
    return glob.glob("/dev/shm/repro-cols-*")


# -- a temporary experiment that declares the population input ----------------

def run(seed: int, scale: float = SCALE) -> dict:
    population = common.get_population(seed, scale)
    q = population.query()
    return {
        "subscribers": len(population),
        "esims": q.where(kind=1).count(),
        "adopted": common._adopted_population is not None,
    }


def format_result(result: dict) -> str:
    return f"subscribers={result['subscribers']} esims={result['esims']}"


@pytest.fixture()
def population_experiment():
    registry.load_all()
    decorated = registry.experiment(
        "X97", title="population smoke", inputs=("population",)
    )(run)
    assert decorated is run
    yield "X97"
    registry._SPECS.pop("X97", None)


class TestWarmInputs:
    def test_population_not_warmed_unless_asked(self, isolated_cache):
        runner = StudyRunner(seed=2024, jobs=1)
        runner.warm_inputs(SCALE, ["T2"])
        assert not common._populations
        assert runner._population_snapshot is None

    def test_share_flag_warms_population(self, isolated_cache):
        runner = StudyRunner(seed=2024, jobs=1, share_population=True)
        runner.warm_inputs(SCALE, ["T2"])
        assert (2024, SCALE) in common._populations
        # serial runs never publish: there is no worker to share with
        assert runner._population_snapshot is None

    def test_declared_input_warms_population(
        self, isolated_cache, population_experiment
    ):
        runner = StudyRunner(seed=2024, jobs=1)
        runner.warm_inputs(SCALE, [population_experiment])
        assert (2024, SCALE) in common._populations

    def test_parallel_share_publishes_one_snapshot(self, isolated_cache):
        runner = StudyRunner(seed=2024, jobs=2, share_population=True)
        try:
            runner.warm_inputs(SCALE, ["T2"])
            snapshot = runner._population_snapshot
            assert snapshot is not None
            assert snapshot.descriptor.nbytes > 0
            # idempotent: warming again must not republish
            runner.warm_inputs(SCALE, ["T2"])
            assert runner._population_snapshot is snapshot
        finally:
            runner._release_population()
        assert runner._population_snapshot is None

    def test_snapshot_written_to_cache_for_cold_processes(self, isolated_cache):
        runner = StudyRunner(seed=2024, jobs=1, share_population=True)
        runner.warm_inputs(SCALE, ["T2"])
        path = common.population_snapshot_path(2024, SCALE)
        assert path.is_file()
        # a fresh process-alike (cleared memo) mmap-loads the same bytes
        common.clear_caches()
        reloaded = common.get_population(2024, SCALE)
        assert reloaded.to_bytes() == path.read_bytes()


class TestRunAll:
    def test_population_experiment_serial_vs_parallel(
        self, isolated_cache, population_experiment
    ):
        serial = StudyRunner(seed=2024, jobs=1).run_all(
            scale=SCALE, artefacts=[population_experiment]
        )
        assert not serial.failed(), serial.summary_table()
        common.clear_caches()
        parallel = StudyRunner(seed=2024, jobs=2).run_all(
            scale=SCALE, artefacts=[population_experiment]
        )
        assert not parallel.failed(), parallel.summary_table()
        for report in (serial, parallel):
            result = report.results[population_experiment]
            assert result["subscribers"] == len(
                common.get_population(2024, SCALE)
            )
        assert (
            serial.results[population_experiment]["subscribers"]
            == parallel.results[population_experiment]["subscribers"]
        )
        # the parallel worker served the query from the adopted snapshot
        assert parallel.results[population_experiment]["adopted"] is True
        assert serial.results[population_experiment]["adopted"] is False

    def test_segments_cleaned_up_after_run(
        self, isolated_cache, population_experiment
    ):
        before = set(_shm_segments())
        report = StudyRunner(seed=2024, jobs=2).run_all(
            scale=SCALE, artefacts=[population_experiment, "T2"]
        )
        assert not report.failed(), report.summary_table()
        leaked = set(_shm_segments()) - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_share_population_does_not_perturb_results(self, isolated_cache):
        subset = ["T2", "F7"]
        plain = StudyRunner(seed=2024, jobs=1).run_all(
            scale=SCALE, artefacts=subset
        )
        common.clear_caches()
        shared = StudyRunner(seed=2024, jobs=2, share_population=True).run_all(
            scale=SCALE, artefacts=subset
        )
        assert not plain.failed() and not shared.failed()
        for artefact_id in subset:
            assert json.dumps(
                jsonable(plain.results[artefact_id]), indent=2, sort_keys=True
            ) == json.dumps(
                jsonable(shared.results[artefact_id]), indent=2, sort_keys=True
            ), f"{artefact_id} drifted under share_population"


class TestRegistry:
    def test_population_is_a_known_input_kind(self):
        assert "population" in registry.INPUT_KINDS

    def test_describe_inputs_includes_population(self, population_experiment):
        spec = registry.get_spec(population_experiment)
        assert spec.describe_inputs() == "population"
