"""Telemetry through the study runner: traces, re-parenting, byte-identity.

The telemetry layer's contract with the runner:

* ``trace_dir=`` writes exactly one JSONL trace per ``run_all`` with a
  single ``run_all`` root span that owns every artefact span — including
  spans recorded inside pool workers and shipped back over pickle;
* artefact bytes are identical whether tracing is on or off (the golden
  test pins the absolute bytes; here we pin traced == untraced);
* the summary view attributes >= 95% of root wall time to named child
  spans (the acceptance bar for instrumentation coverage).
"""

import json

import pytest

from repro import obs
from repro.core.runner import StudyRunner
from repro.experiments import common
from repro.experiments.export import jsonable

SCALE = 0.05
SUBSET = ["T2", "F11"]


@pytest.fixture(autouse=True)
def _clean_recorder():
    # Runner tests must never leak a recorder into the process default.
    before = obs.get_recorder()
    yield
    assert obs.get_recorder() is before


def test_untraced_run_has_no_trace_path():
    report = StudyRunner(seed=2024, jobs=1).run_all(scale=SCALE, artefacts=SUBSET)
    assert report.trace_path is None
    assert json.loads(json.dumps(report.to_jsonable()))["trace_path"] is None


def test_traced_serial_run_writes_one_rooted_trace(tmp_path):
    runner = StudyRunner(seed=2024, jobs=1, trace_dir=tmp_path)
    report = runner.run_all(scale=SCALE, artefacts=SUBSET)
    assert not report.failed()
    assert report.trace_path is not None
    assert report.trace_path.endswith(f"run_all-seed2024-scale{SCALE:g}-jobs1.jsonl")
    assert report.to_jsonable()["trace_path"] == report.trace_path

    trace = obs.load_trace(report.trace_path)
    assert trace.attrs == {"seed": 2024, "scale": SCALE, "jobs": 1}
    roots = trace.roots()
    assert [span["name"] for span in roots] == ["run_all"]
    artefact_spans = trace.children_of(roots[0]["span_id"])
    ids = sorted(
        span["attrs"]["id"] for span in artefact_spans
        if span["name"] == "artefact"
    )
    assert ids == sorted(SUBSET)


def test_traced_parallel_run_reparents_worker_spans(tmp_path):
    runner = StudyRunner(seed=2024, jobs=2, trace_dir=tmp_path)
    report = runner.run_all(scale=SCALE, artefacts=SUBSET)
    assert not report.failed()
    trace = obs.load_trace(report.trace_path)
    roots = trace.roots()
    assert [span["name"] for span in roots] == ["run_all"]
    artefact_spans = [
        span for span in trace.children_of(roots[0]["span_id"])
        if span["name"] == "artefact"
    ]
    assert sorted(s["attrs"]["id"] for s in artefact_spans) == sorted(SUBSET)
    # Worker span ids embed the producing PID: no collisions after adoption.
    all_ids = [span["span_id"] for span in trace.spans]
    assert len(all_ids) == len(set(all_ids))


def test_traced_results_are_byte_identical_to_untraced(tmp_path):
    def exported(**kwargs):
        report = StudyRunner(seed=2024, jobs=1, **kwargs).run_all(
            scale=SCALE, artefacts=SUBSET
        )
        assert not report.failed()
        return {
            artefact: json.dumps(jsonable(result), sort_keys=True)
            for artefact, result in report.results.items()
        }

    assert exported() == exported(trace_dir=tmp_path)


def test_external_recorder_collects_without_a_trace_file():
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        report = StudyRunner(seed=2024, jobs=1).run_all(
            scale=SCALE, artefacts=SUBSET
        )
    assert report.trace_path is None
    names = {span.name for span in recorder.spans}
    assert {"run_all", "artefact"} <= names


def test_trace_summary_attributes_95_percent_of_wall_time(tmp_path):
    report = StudyRunner(seed=2024, jobs=1, trace_dir=tmp_path).run_all(scale=SCALE)
    assert not report.failed()
    trace = obs.load_trace(report.trace_path)
    share = obs.coverage(trace)
    assert share is not None and share >= 0.95
    assert "attributed to named child spans:" in obs.summary(trace)


def test_ledger_reports_cache_hit_latency(tmp_path):
    runner = StudyRunner(seed=2024, jobs=1, warm=False)
    # Guarantee the inputs are on disk, then drop the in-memory layer so
    # the artefact itself performs the (hitting) disk loads.
    runner.warm_inputs(SCALE, ["T2"])
    common.clear_caches()
    report = runner.run_all(scale=SCALE, artefacts=["T2"])
    (run,) = report.runs
    assert run.status == "ok"
    assert run.cache_hits > 0
    assert run.cache_hit_s > 0.0
    row = report.to_jsonable()["runs"][0]
    assert row["cache_hit_s"] == run.cache_hit_s
    assert row["worker"].startswith("pid-")


def test_traced_run_records_cache_metrics(tmp_path):
    runner = StudyRunner(seed=2024, jobs=1, warm=False, trace_dir=tmp_path)
    runner.warm_inputs(SCALE, ["T2"])
    common.clear_caches()
    report = runner.run_all(scale=SCALE, artefacts=["T2"])
    trace = obs.load_trace(report.trace_path)
    counters = {
        m["name"]: m["value"] for m in trace.metrics if m["type"] == "counter"
    }
    assert counters.get("cache.hit", 0) > 0
    histograms = {m["name"] for m in trace.metrics if m["type"] == "histogram"}
    assert "cache.load_s" in histograms
