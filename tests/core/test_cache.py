"""Tests for the persistent artifact cache (repro.core.cache)."""

import os

import pytest

from repro.core import cache as cache_mod
from repro.core.cache import ArtifactCache, fingerprint
from repro.faults import ChaosConfig


@pytest.fixture()
def store(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


# -- fingerprints -----------------------------------------------------------

def test_fingerprint_stable_under_kwarg_order():
    assert fingerprint("world", seed=1, scale=0.5) == fingerprint(
        "world", scale=0.5, seed=1
    )


def test_fingerprint_separates_kinds_and_values():
    base = fingerprint("world", seed=1)
    assert fingerprint("dataset", seed=1) != base
    assert fingerprint("world", seed=2) != base


def test_fingerprint_flattens_chaos_config():
    a = ChaosConfig(seed=7, attach_reject_rate=0.1)
    b = ChaosConfig(seed=7, attach_reject_rate=0.1)
    c = ChaosConfig(seed=7, attach_reject_rate=0.2)
    assert fingerprint("d", chaos=a) == fingerprint("d", chaos=b)
    assert fingerprint("d", chaos=a) != fingerprint("d", chaos=c)
    assert fingerprint("d", chaos=None) != fingerprint("d", chaos=a)


def test_fingerprint_is_filename_safe():
    key = fingerprint("device-dataset", seed=2024, scale=0.15)
    assert "/" not in key and key.startswith("device-dataset-")


# -- store / load -----------------------------------------------------------

def test_roundtrip(store):
    key = fingerprint("blob", n=1)
    assert store.load(key) is None
    store.store(key, {"value": [1, 2, 3]})
    assert store.load(key) == {"value": [1, 2, 3]}
    assert store.stats.hits == 1
    assert store.stats.misses == 1
    assert store.stats.stores == 1


def test_store_is_atomic_no_temp_leftovers(store):
    store.store(fingerprint("blob", n=1), list(range(1000)))
    names = [path.name for path in store.root.iterdir()]
    assert len(names) == 1
    assert not names[0].startswith(".")


def test_truncated_entry_is_a_silent_miss(store):
    key = fingerprint("blob", n=1)
    path = store.store(key, list(range(1000)))
    path.write_bytes(path.read_bytes()[:17])  # truncate mid-pickle
    assert store.load(key) is None
    assert store.stats.evictions == 1
    assert not path.exists()  # corrupt entry dropped


def test_garbage_entry_is_a_silent_miss(store):
    key = fingerprint("blob", n=1)
    path = store.store(key, "fine")
    path.write_bytes(b"not a pickle at all")
    assert store.load(key) is None


def test_unresolvable_entry_class_is_a_silent_miss(store):
    # Simulates a stale entry whose class no longer exists after an
    # upgrade: well-formed pickle bytes, unresolvable import.
    key = fingerprint("blob", n=1)
    store.root.mkdir(parents=True)
    (store.root / f"{key}.pkl").write_bytes(b"cno_such_module_xyz\nNoClass\n.")
    assert store.load(key) is None
    assert store.stats.evictions == 1


def test_disabled_cache_never_touches_disk(tmp_path):
    store = ArtifactCache(root=tmp_path / "cache", enabled=False)
    assert store.store("k", 1) is None
    assert store.load("k") is None
    assert not (tmp_path / "cache").exists()


def test_env_disable(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DISABLE, "1")
    store = ArtifactCache(root=tmp_path / "cache")
    assert not store.enabled


def test_env_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
    assert cache_mod.default_cache_root() == tmp_path / "elsewhere"


# -- maintenance ------------------------------------------------------------

def test_info_and_clear(store):
    store.store(fingerprint("a", n=1), "x")
    store.store(fingerprint("b", n=2), "y" * 1000)
    info = store.info()
    assert info["entry_count"] == 2
    assert info["total_bytes"] > 1000
    assert store.clear() == 2
    assert store.entries() == []


def test_clear_on_missing_root(tmp_path):
    assert ArtifactCache(root=tmp_path / "never-created").clear() == 0


# -- integration with the experiment layer ----------------------------------

def test_corrupt_disk_entry_triggers_rebuild(tmp_path):
    """A truncated cached dataset must silently rebuild, byte-identical."""
    from repro.experiments import common

    previous = cache_mod.get_default_cache()
    store = cache_mod.configure(root=tmp_path / "cache")
    try:
        common.clear_caches()
        built = common.get_device_dataset(scale=0.03, seed=99)
        entries = {p for p in store.root.glob("device-dataset-*.pkl")}
        assert entries, "dataset was not persisted"
        for path in entries:
            path.write_bytes(path.read_bytes()[: os.path.getsize(path) // 2])
        common.clear_caches()  # drop memory layer; disk is now corrupt
        rebuilt = common.get_device_dataset(scale=0.03, seed=99)
        assert rebuilt == built
    finally:
        common.clear_caches()
        cache_mod.set_default_cache(previous)


def test_warm_load_equals_fresh_build(tmp_path):
    from repro.experiments import common

    previous = cache_mod.get_default_cache()
    cache_mod.configure(root=tmp_path / "cache")
    try:
        common.clear_caches()
        built = common.get_web_dataset(seed=77)
        common.clear_caches()
        loaded = common.get_web_dataset(seed=77)  # from disk this time
        assert loaded == built
        assert cache_mod.get_default_cache().stats.hits >= 1
    finally:
        common.clear_caches()
        cache_mod.set_default_cache(previous)


# -- verify / prune ----------------------------------------------------------

def test_verify_clean_cache(store):
    store.store("good-entry", {"v": 1})
    result = store.verify()
    assert result.ok == ["good-entry"]
    assert result.clean
    assert not result.pruned


def test_verify_reports_corrupt_entries_without_evicting(store):
    store.store("good-entry", {"v": 1})
    path = store.store("bad-entry", {"v": 2})
    path.write_bytes(b"not a pickle")
    result = store.verify()
    assert result.ok == ["good-entry"]
    assert result.corrupt == ["bad-entry"]
    assert not result.clean
    # verify() is read-only by default: the entry is still on disk and
    # the stats counters were not touched.
    assert path.is_file()
    assert store.stats.misses == 0 and store.stats.evictions == 0


def test_verify_reports_stray_temp_files(store):
    store.store("good-entry", {"v": 1})
    stray = store.root / ".good-entry.abc123"
    stray.write_bytes(b"half-written")
    result = store.verify()
    assert result.stray == [".good-entry.abc123"]
    assert not result.clean


def test_verify_prune_removes_corrupt_and_stray(store):
    store.store("good-entry", {"v": 1})
    bad = store.store("bad-entry", {"v": 2})
    bad.write_bytes(b"truncated")
    stray = store.root / ".bad-entry.xyz"
    stray.write_bytes(b"leftover")
    result = store.verify(prune=True)
    assert sorted(result.pruned) == [".bad-entry.xyz", "bad-entry"]
    assert not bad.exists() and not stray.exists()
    assert store.verify().clean
    assert store.load("good-entry") == {"v": 1}


def test_verify_missing_root(tmp_path):
    result = ArtifactCache(root=tmp_path / "never-created").verify()
    assert result.clean and not result.ok


def test_clear_removes_stray_temp_files(store):
    store.store("entry-a", {"v": 1})
    (store.root / ".entry-a.tmp123").write_bytes(b"leftover")
    assert store.clear() == 2
    assert not list(store.root.iterdir())
