"""Tests for the typed columnar store (repro.core.columns)."""

import pathlib

import pytest

from repro.core import columns as columns_mod
from repro.core.columns import (
    ColumnError,
    ColumnStore,
    SnapshotDescriptor,
    StringTable,
    attach,
    publish,
)


def _sample_store(rows: int = 100) -> ColumnStore:
    store = ColumnStore(meta={"kind": "test", "rows": rows})
    country = store.new_column("country", "H", strings="country")
    value = store.new_column("value", "d")
    flags = store.new_column("flags", "B")
    codes = store.strings("country")
    for i in range(rows):
        country.append(codes.code(("ESP", "JPN", "PAK")[i % 3]))
        value.append(i * 1.5)
        flags.append(i % 2)
    return store


class TestStringTable:
    def test_first_seen_order_and_roundtrip(self):
        table = StringTable()
        assert table.code("b") == 0
        assert table.code("a") == 1
        assert table.code("b") == 0  # interned, not re-added
        assert table.values() == ("b", "a")
        assert table.value(1) == "a"
        assert len(table) == 2

    def test_lookup_does_not_intern(self):
        table = StringTable(["x"])
        assert table.lookup("x") == 0
        assert table.lookup("missing") == -1
        assert len(table) == 1


class TestColumnStore:
    def test_rejects_platform_dependent_typecodes(self):
        store = ColumnStore()
        for typecode in ("l", "L", "i", "I", "u"):
            with pytest.raises(ColumnError):
                store.new_column("c", typecode)

    def test_duplicate_column_rejected(self):
        store = ColumnStore()
        store.new_column("c", "q")
        with pytest.raises(ColumnError):
            store.new_column("c", "q")

    def test_column_views_and_sizes(self):
        store = _sample_store(10)
        assert store.column_names() == ("country", "value", "flags")
        assert store.rows("value") == 10
        assert list(store.column("flags")) == [i % 2 for i in range(10)]
        assert store.column_nbytes() == {
            "country": 20, "value": 80, "flags": 10,
        }
        assert store.nbytes == 110
        assert store.typecode("value") == "d"
        assert store.strings_for("country") is not None
        assert store.strings_for("value") is None

    def test_to_bytes_is_deterministic(self):
        assert _sample_store().to_bytes() == _sample_store().to_bytes()

    def test_roundtrip_through_bytes_is_zero_copy_equal(self):
        store = _sample_store()
        clone = ColumnStore.from_buffer(store.to_bytes())
        assert clone.meta == store.meta
        assert clone.column_names() == store.column_names()
        for name in store.column_names():
            assert list(clone.column(name)) == list(store.column(name))
            assert clone.typecode(name) == store.typecode(name)
        table = clone.strings("country")
        assert table.values() == store.strings("country").values()

    def test_from_buffer_rejects_garbage(self):
        with pytest.raises(ColumnError):
            ColumnStore.from_buffer(b"not a snapshot at all")
        blob = bytearray(_sample_store().to_bytes())
        blob[:4] = b"XXXX"
        with pytest.raises(ColumnError):
            ColumnStore.from_buffer(bytes(blob))

    def test_from_buffer_rejects_truncation(self):
        blob = _sample_store().to_bytes()
        with pytest.raises(ColumnError):
            ColumnStore.from_buffer(blob[: len(blob) - 16])

    def test_save_load_mmap(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snap" / "sample.cols"
        store.save(path)
        assert path.read_bytes() == store.to_bytes()
        loaded = ColumnStore.load(path)
        assert list(loaded.column("value")) == list(store.column("value"))
        # no stray temp files from the atomic write
        assert [p.name for p in path.parent.iterdir()] == ["sample.cols"]


class TestPublishAttach:
    def test_shm_publish_attach_roundtrip(self):
        store = _sample_store()
        published = publish(store)
        try:
            assert published.descriptor.nbytes == len(store.to_bytes())
            attached = attach(published.descriptor)
            try:
                assert list(attached.store.column("value")) == list(
                    store.column("value")
                )
                assert attached.store.meta == store.meta
            finally:
                attached.close()
                attached.close()  # idempotent
        finally:
            published.close()
            published.close()  # idempotent
        if published.descriptor.scheme == "shm":
            segment = pathlib.Path("/dev/shm") / published.descriptor.ref.lstrip("/")
            assert not segment.exists(), "close() must unlink the segment"

    def test_file_fallback_roundtrip(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "fallback.snap"
        path.write_bytes(store.to_bytes())
        descriptor = SnapshotDescriptor(
            scheme="file", ref=str(path), nbytes=path.stat().st_size
        )
        attached = attach(descriptor)
        try:
            assert list(attached.store.column("flags")) == list(
                store.column("flags")
            )
        finally:
            attached.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ColumnError):
            attach(SnapshotDescriptor(scheme="carrier-pigeon", ref="x", nbytes=1))

    def test_descriptor_is_tiny_and_picklable(self):
        import pickle

        published = publish(_sample_store())
        try:
            blob = pickle.dumps(published.descriptor)
            assert len(blob) < 300
            assert pickle.loads(blob) == published.descriptor
        finally:
            published.close()


def test_aligned_offsets():
    assert columns_mod._aligned(0) == 0
    assert columns_mod._aligned(1) == 8
    assert columns_mod._aligned(8) == 8
    assert columns_mod._aligned(9) == 16
