"""Golden regression: ``run_all`` output is byte-stable across refactors.

``tests/core/golden/run_all_seed2024_scale0.05.json`` was captured from
a full ``StudyRunner(seed=2024).run_all(scale=0.05)`` before the query
layer and the declarative registry replaced the hand-written dispatch.
Every artefact's exported JSON must still match it exactly — for the
serial path and for ``jobs=2`` — so any future change to indexing,
dispatch order or float-accumulation order that perturbs a single byte
of a result fails here, loudly, with the artefact named.
"""

import json
import pathlib

import pytest

from repro.core.runner import StudyRunner
from repro.experiments.export import jsonable

GOLDEN = pathlib.Path(__file__).parent / "golden" / "run_all_seed2024_scale0.05.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def _assert_matches_golden(report, golden):
    assert not report.failed(), report.summary_table()
    assert sorted(report.results) == sorted(golden["results"])
    for artefact_id, result in report.results.items():
        fresh = json.dumps(jsonable(result), indent=2, sort_keys=True)
        gold = json.dumps(golden["results"][artefact_id], indent=2, sort_keys=True)
        assert fresh == gold, f"{artefact_id} drifted from the golden export"


def test_run_all_serial_matches_golden(golden):
    report = StudyRunner(seed=golden["seed"], jobs=1).run_all(scale=golden["scale"])
    _assert_matches_golden(report, golden)


def test_run_all_parallel_matches_golden(golden):
    report = StudyRunner(seed=golden["seed"], jobs=2).run_all(scale=golden["scale"])
    _assert_matches_golden(report, golden)


# Telemetry is a sidecar: with tracing on, timestamps go to the trace
# file and the artefact bytes must not move — serial or sharded.


def test_run_all_serial_traced_matches_golden(golden, tmp_path):
    report = StudyRunner(
        seed=golden["seed"], jobs=1, trace_dir=tmp_path
    ).run_all(scale=golden["scale"])
    _assert_matches_golden(report, golden)
    assert pathlib.Path(report.trace_path).is_file()


def test_run_all_parallel_traced_matches_golden(golden, tmp_path):
    report = StudyRunner(
        seed=golden["seed"], jobs=2, trace_dir=tmp_path
    ).run_all(scale=golden["scale"])
    _assert_matches_golden(report, golden)
    assert pathlib.Path(report.trace_path).is_file()


def test_run_all_traced_with_history_matches_golden(golden, tmp_path):
    """The history store is observability too: recording a run (with
    tracing on, so the metrics snapshot is populated) must not move a
    byte of any artefact."""
    from repro.obs.history import HistoryStore

    history_dir = tmp_path / "hist"
    report = StudyRunner(
        seed=golden["seed"], jobs=1, trace_dir=tmp_path,
        history_dir=history_dir,
    ).run_all(scale=golden["scale"])
    _assert_matches_golden(report, golden)
    (record,) = HistoryStore(history_dir).load()
    assert record.run_id == report.history_run_id
    assert record.trace_path == report.trace_path
    assert record.metrics  # the traced run's counters were snapshotted
    assert set(record.artefacts) == set(report.results)
