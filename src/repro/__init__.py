"""repro — reproduction of "Roam Without a Home: Unraveling the Airalo
Ecosystem" (IMC 2025).

A simulated thick-MNA / IPX / public-internet ecosystem plus the paper's
complete measurement and analysis pipeline. Start from
:class:`repro.core.ThickMnaStudy` or build the world directly with
:func:`repro.worlds.build_airalo_world`.
"""

from repro.core import ThickMnaStudy

__version__ = "1.0.0"

__all__ = ["ThickMnaStudy", "__version__"]
