"""Shared server state: datasets, indexes and caches loaded once.

A CLI invocation pays the input-acquisition cost (world build or disk
load, campaign datasets, index construction) on *every* run. The
measurement service pays it exactly once, at startup, inside
:meth:`ServerState.warm`, and then answers every request from warm
memory:

* the device and web :class:`~repro.measure.dataset.MeasurementDataset`
  objects, with every per-dimension query index pre-built so steady-state
  requests never mutate the index cache (index builds are the only
  writes the query layer performs — pre-building makes concurrent
  handler threads pure readers);
* the :class:`~repro.core.study.ThickMnaStudy` driver plus an
  artefact-result memo backed by the persistent artifact cache, keyed by
  the same ``fingerprint("artefact-result", ...)`` the run journal uses,
  so a ``run-all --journal`` checkpoint and a served ``/artefact``
  response share bytes;
* the cross-run :class:`~repro.obs.history.HistoryStore` for
  ``/history`` and ``/regress``.

Until ``warm()`` finishes, :attr:`ready` stays unset and the HTTP layer
answers everything but ``/healthz`` with 503 — the health probe reports
which warm phase is in progress (that is what ``/healthz`` "checks").
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro
from repro import obs
from repro.core import cache as cache_mod
from repro.experiments import common, registry
from repro.experiments.export import jsonable
from repro.measure import query as query_mod
from repro.measure.amigo import ConfigurationError

#: Dataset names the server can load, in warm order.
DATASET_NAMES: Tuple[str, ...] = ("device", "web")

#: Record kinds served by each dataset (``/query?kind=`` routing).
KIND_DATASET: Dict[str, str] = {
    kind: ("web" if kind == "web" else "device")
    for kind in query_mod.KIND_FIELDS
}

#: Hard cap on ``records=`` expansion per response (keeps one greedy
#: client from serializing a full campaign on every request).
MAX_RECORDS = 1000

#: Artefacts warmed at startup (and the pool loadgen draws from).
#: Computing them during warmup instead of on first request matters
#: beyond first-hit latency: artefact computation is GIL-bound, so a
#: cold compute under load stalls *every* in-flight request's tail.
WARM_ARTEFACTS: Tuple[str, ...] = ("T2", "T4", "F7")


class RequestError(Exception):
    """A client error the HTTP layer maps to a 4xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServerState:
    """Everything the daemon loads once and every handler thread reads."""

    def __init__(
        self,
        seed: int = common.DEFAULT_SEED,
        scale: float = common.DEFAULT_SCALE,
        datasets: Sequence[str] = DATASET_NAMES,
        history_dir: Optional[str] = None,
        debug_delay: bool = False,
        warm_artefacts: Sequence[str] = WARM_ARTEFACTS,
    ) -> None:
        for name in datasets:
            if name not in DATASET_NAMES:
                raise ValueError(
                    f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
                )
        self.seed = seed
        self.scale = scale
        self.datasets_wanted = tuple(datasets)
        self.warm_artefacts = tuple(warm_artefacts)
        self.history_dir = history_dir
        #: Test/debug hook: when True, ``/query?delay_s=`` sleeps inside
        #: the handler (used by the shutdown-drain tests and nothing else).
        self.debug_delay = debug_delay
        self.started_unix = time.time()
        self.ready = threading.Event()
        self.warm_phase = "pending"
        self.warm_error = ""
        self.warm_wall_s = 0.0
        self._datasets: Dict[str, Any] = {}
        self._population: Optional[Any] = None
        self._artefact_lock = threading.Lock()
        self._artefact_memo: Dict[str, Any] = {}
        #: Set by the HTTP layer: a zero-argument callable returning
        #: request totals + live-sampler liveness for ``/healthz``.
        self._telemetry_info: Optional[Any] = None

    def attach_telemetry(self, provider: Any) -> None:
        """Let ``/healthz`` report the server's telemetry plane.

        ``provider`` is a zero-argument callable (owned by
        :class:`~repro.server.app.MeasurementServer`) returning request
        totals and sampler liveness; the state stays transport-agnostic.
        """
        self._telemetry_info = provider

    # -- warmup ---------------------------------------------------------------

    def warm(self) -> None:
        """Load datasets and pre-build every query index (once, at startup)."""
        from repro.core.study import ThickMnaStudy

        started = time.perf_counter()
        study = ThickMnaStudy(seed=self.seed)
        try:
            if "device" in self.datasets_wanted:
                self.warm_phase = "device_dataset"
                self._datasets["device"] = study.device_dataset(scale=self.scale)
            if "web" in self.datasets_wanted:
                self.warm_phase = "web_dataset"
                self._datasets["web"] = study.web_dataset()
            self.warm_phase = "indexes"
            self._prebuild_indexes()
            self.warm_phase = "population"
            # The columnar subscriber substrate: mmap-attached from the
            # shared snapshot a previous run-all left on disk (or built
            # once and persisted), never a private pickled rebuild.
            self._population = common.get_population(self.seed, self.scale)
            self.warm_phase = "artefacts"
            for artefact_id in self.warm_artefacts:
                self.artefact(artefact_id)
        except Exception:
            self.warm_phase = "failed"
            self.warm_error = traceback.format_exc()
            raise
        finally:
            self.warm_wall_s = time.perf_counter() - started
        self.warm_phase = "ready"
        self.ready.set()

    def _prebuild_indexes(self) -> None:
        """Build every per-dimension index so handlers are pure readers."""
        for kind, dataset_name in KIND_DATASET.items():
            dataset = self._datasets.get(dataset_name)
            if dataset is None:
                continue
            index = dataset.index.kind(kind)
            for dimension in query_mod.dimensions_for(kind):
                index.groups(dimension)

    # -- introspection --------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """What ``/healthz`` actually checks: warm state, data, cache."""
        payload: Dict[str, Any] = {
            "status": "ok" if self.ready.is_set() else (
                "failed" if self.warm_phase == "failed" else "warming"
            ),
            "phase": self.warm_phase,
            "seed": self.seed,
            "scale": self.scale,
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "warm_wall_s": round(self.warm_wall_s, 3),
            "datasets": {
                name: dataset.total_records()
                for name, dataset in sorted(self._datasets.items())
            },
        }
        if self._population is not None:
            payload["subscribers"] = len(self._population)
        if self._telemetry_info is not None:
            # Request totals + sampler liveness: smoke jobs assert the
            # telemetry plane is actually ticking, not just warm.
            payload["telemetry"] = self._telemetry_info()
        if self.warm_error:
            payload["error"] = self.warm_error.strip().splitlines()[-1]
        if self.ready.is_set():
            payload["cache_entries"] = cache_mod.get_default_cache().info()[
                "entry_count"
            ]
            payload["artefacts"] = len(registry.artefact_ids())
        return payload

    # -- /query ---------------------------------------------------------------

    def dataset_for(self, kind: str) -> Any:
        if kind not in query_mod.KIND_FIELDS:
            raise RequestError(
                400,
                f"unknown record kind {kind!r}; "
                f"known: {', '.join(sorted(query_mod.KIND_FIELDS))}",
            )
        dataset = self._datasets.get(KIND_DATASET[kind])
        if dataset is None:
            raise RequestError(
                400,
                f"dataset {KIND_DATASET[kind]!r} is not loaded on this server "
                f"(started with --datasets {' '.join(self.datasets_wanted)})",
            )
        return dataset

    def _coerce(self, kind: str, dataset: Any, dimension: str, raw: str) -> Any:
        """Map a query-string value onto the dimension's real value type.

        String dimensions pass through; ``day`` becomes an int; enum
        dimensions (sim_kind, architecture, rat) are matched against the
        index's distinct values by ``str()``, ``.name``, ``.value`` or
        ``.label``, case-insensitively — so ``sim_kind=esim`` works from
        a URL without the client importing the enum. A value that
        matches nothing is a legitimate empty slice, not an error.
        """
        if dimension == "day":
            try:
                return int(raw)
            except ValueError:
                raise RequestError(400, f"day must be an integer, got {raw!r}")
        index = dataset.index.kind(kind)
        wanted = raw.lower()
        for value in index.values(dimension):
            if isinstance(value, str):
                if value.lower() == wanted:
                    return value
                continue
            names = (
                str(value),
                str(getattr(value, "name", "")),
                str(getattr(value, "value", "")),
                str(getattr(value, "label", "")),
            )
            if any(name.lower() == wanted for name in names if name):
                return value
        return raw

    def query(
        self,
        kind: str,
        where: Dict[str, str],
        group_by: Sequence[str] = (),
        count_by: Sequence[str] = (),
        records: int = 0,
    ) -> Dict[str, Any]:
        """Execute one ``/query`` request against the warm indexes."""
        dataset = self.dataset_for(kind)
        dims = query_mod.dimensions_for(kind)
        for dimension in list(where) + list(group_by) + list(count_by):
            if dimension not in dims:
                raise RequestError(
                    400,
                    f"unknown dimension {dimension!r} for kind {kind!r}; "
                    f"known: {', '.join(sorted(dims))}",
                )
        if group_by and count_by:
            raise RequestError(400, "pass group_by or count_by, not both")
        if records < 0:
            raise RequestError(400, "records must be >= 0")
        records = min(records, MAX_RECORDS)

        q = dataset.select(kind)
        coerced = {
            dimension: self._coerce(kind, dataset, dimension, raw)
            for dimension, raw in where.items()
        }
        q = q.where(**coerced)
        payload: Dict[str, Any] = {
            "kind": kind,
            "where": {k: str(v) for k, v in sorted(coerced.items())},
            "count": q.count(),
        }
        if count_by:
            payload["count_by"] = list(count_by)
            payload["counts"] = jsonable(q.count_by(*count_by))
        elif group_by:
            payload["group_by"] = list(group_by)
            groups = q.group_by(*group_by)
            payload["groups"] = jsonable(
                {key: len(bucket) for key, bucket in groups.items()}
            )
            if records:
                payload["records"] = jsonable(
                    {key: bucket[:records] for key, bucket in groups.items()}
                )
        elif records:
            payload["records"] = jsonable(q.records()[:records])
        return payload

    # -- /artefact ------------------------------------------------------------

    def _result_key(self, artefact_id: str, scale: Optional[float]) -> str:
        """The journal-compatible cache key for one artefact result.

        Identical construction to ``StudyRunner._result_key`` (chaos is
        always None for the served study), so ``run-all --journal``
        checkpoints and served results share cache entries.
        """
        spec = registry.get_spec(artefact_id)
        return cache_mod.fingerprint(
            "artefact-result", artefact=artefact_id, seed=self.seed,
            scale=scale if spec.supports_scale else None,
            chaos=None, version=repro.__version__,
        )

    def artefact(
        self,
        artefact_id: str,
        scale: Optional[float] = None,
        render: bool = False,
    ) -> Dict[str, Any]:
        """Serve one artefact's result, computing (and caching) on miss."""
        from repro.core.study import ThickMnaStudy

        artefact_id = artefact_id.upper()
        try:
            spec = registry.get_spec(artefact_id)
        except KeyError:
            raise RequestError(
                404,
                f"unknown artefact {artefact_id!r}; "
                f"known: {', '.join(registry.artefact_ids())}",
            )
        effective_scale = scale
        if effective_scale is None and spec.supports_scale:
            effective_scale = self.scale
        key = self._result_key(artefact_id, effective_scale)
        source = "memo"
        result = self._artefact_memo.get(key)
        if result is None:
            # One artefact computes at a time: results are memoized and
            # experiments share the process-local input caches, so the
            # lock trades a burst of duplicate work for correctness.
            with self._artefact_lock:
                result = self._artefact_memo.get(key)
                if result is None:
                    result = cache_mod.get_default_cache().load(key)
                    source = "cache"
                if result is None:
                    source = "computed"
                    study = ThickMnaStudy(seed=self.seed)
                    try:
                        result = study.run(artefact_id, scale=effective_scale)
                    except ConfigurationError as error:
                        raise RequestError(400, str(error.args[0]))
                    cache_mod.get_default_cache().store(key, result)
                self._artefact_memo[key] = result
                obs.gauge("server.artefact_memo").set(
                    float(len(self._artefact_memo))
                )
        payload: Dict[str, Any] = {
            "artefact": artefact_id,
            "title": spec.title,
            "scale": effective_scale,
            "source": source,
            "result": jsonable(result),
        }
        if render:
            payload["rendered"] = spec.render(result)
        return payload

    # -- /population ----------------------------------------------------------

    #: ``/population?by=`` pivots (query-string name -> column name).
    POPULATION_DIMENSIONS: Dict[str, str] = {
        "country": "country",
        "issuer": "issuer",
        "provider": "provider",
        "v_mno": "v_mno",
        "architecture": "architecture",
        "kind": "kind",
        "pgw_site": "pgw_site",
    }

    def population(
        self,
        by: Optional[str] = None,
        where: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Serve ``/population``: substrate stats, optionally pivoted.

        Reads the warm columnar store directly through
        :class:`~repro.measure.query.ColumnQuery` — no records are
        materialized, so the response cost is a few column scans no
        matter how many million subscribers the population holds.
        """
        population = self._population
        if population is None:
            raise RequestError(503, "population substrate is not warm yet")
        if by is not None and by not in self.POPULATION_DIMENSIONS:
            raise RequestError(
                400,
                f"unknown population dimension {by!r}; "
                f"known: {', '.join(sorted(self.POPULATION_DIMENSIONS))}",
            )
        q = population.query()
        filters: Dict[str, Any] = {}
        for dimension, raw in sorted((where or {}).items()):
            if dimension not in self.POPULATION_DIMENSIONS:
                raise RequestError(
                    400,
                    f"unknown population dimension {dimension!r}; "
                    f"known: {', '.join(sorted(self.POPULATION_DIMENSIONS))}",
                )
            column = self.POPULATION_DIMENSIONS[dimension]
            value: Any = raw
            if column == "kind":
                value = {"esim": 1, "physical": 0}.get(raw.lower(), raw)
            if column == "country" and isinstance(value, str):
                value = value.upper()
            if isinstance(value, str) and value.isdigit():
                value = int(value)
            filters[column] = value
        if filters:
            q = q.where(**filters)
        payload: Dict[str, Any] = {
            "seed": population.seed,
            "scale": population.scale,
            "subscribers": q.count(),
            "monthly_traffic_gb": round(q.sum("monthly_mb") / 1024.0, 3),
            "store_bytes": population.store.nbytes,
            "where": {k: str(v) for k, v in filters.items()},
        }
        if by is not None:
            counts = q.count_by(self.POPULATION_DIMENSIONS[by])
            if by == "kind":
                counts = {
                    ("esim" if code else "physical"): count
                    for code, count in counts.items()
                }
            payload["by"] = by
            payload["counts"] = counts
        else:
            payload["stats"] = jsonable(population.stats())
        return payload

    # -- /history and /regress ------------------------------------------------

    def _history_store(self):
        from repro.obs.history import HistoryStore

        return HistoryStore(self.history_dir)

    def history(self, limit: int = 50) -> Dict[str, Any]:
        store = self._history_store()
        records = store.load()
        listed = records[-limit:] if limit > 0 else records
        return {
            "history_root": str(store.root),
            "total": len(records),
            "runs": [
                {
                    "run_id": record.run_id,
                    "created_unix": record.created_unix,
                    "kind": getattr(record, "kind", "run_all"),
                    "key": record.group_key(),
                    "status": record.status,
                    "ok": record.ok,
                    "artefacts": len(record.artefacts),
                    "total_wall_s": record.total_wall_s,
                }
                for record in listed
            ],
        }

    def regress(
        self,
        run_id: Optional[str] = None,
        against: Optional[str] = None,
        window: int = 10,
    ) -> Dict[str, Any]:
        from repro.obs.regress import RegressionConfig, detect

        try:
            config = RegressionConfig(baseline_window=window)
            report = detect(
                self._history_store(), run_id=run_id, against=against,
                config=config,
            )
        except KeyError as error:
            raise RequestError(404, str(error.args[0]))
        except ValueError as error:
            raise RequestError(409, str(error.args[0] if error.args else error))
        return {
            "run_id": report.run_id,
            "key": report.key,
            "baseline_ids": report.baseline_ids,
            "ok": report.ok(),
            "verdicts": [jsonable(verdict) for verdict in report.verdicts],
            "rendered": report.render(),
        }

    # -- endpoint index -------------------------------------------------------

    def endpoints(self) -> List[Dict[str, str]]:
        return [
            {"path": "/healthz", "doc": "liveness + warm state (200 ready, 503 warming)"},
            {"path": "/query", "doc": "indexed dataset queries: kind, where dims, group_by/count_by, records=N"},
            {"path": "/artefact/<id>", "doc": "one experiment's result (render=1 for the paper-style text)"},
            {"path": "/population", "doc": "columnar subscriber substrate stats (by=country|issuer|..., filter dims)"},
            {"path": "/history", "doc": "recorded runs in the cross-run history store"},
            {"path": "/regress", "doc": "regression verdicts for a recorded run (run=, against=, window=)"},
            {"path": "/metrics", "doc": "Prometheus text-format scrape: request counters, latency histograms, process gauges"},
            {"path": "/stats", "doc": "live sampler window as JSON (window=N seconds, series=name,... for raw points)"},
            {"path": "/events", "doc": "Server-Sent Events stream of per-tick registry deltas (max_events=N to bound)"},
            {"path": "/dashboard", "doc": "auto-updating live dashboard (QPS/p99 sparklines over /events)"},
            {"path": "/profile", "doc": "on-demand sampling profiler, collapsed stacks (seconds=N, interval_ms=M)"},
        ]
