"""The measurement service: a zero-dependency threaded HTTP daemon.

``MeasurementServer`` wraps :class:`http.server.ThreadingHTTPServer`
around one shared :class:`~repro.server.state.ServerState`. Handler
threads only *read* warm state (datasets, pre-built indexes, the
artefact memo), so the ThreadingHTTPServer's thread-per-connection
model needs no request-path locking beyond the artefact-compute lock
the state owns.

Operational contract:

* **Warmup.** ``start()``/``serve_forever()`` answer immediately;
  every data route returns 503 with the current warm phase until
  :meth:`ServerState.warm` finishes. ``/healthz`` is the only route
  that is meaningful before readiness.
* **Graceful shutdown.** ``daemon_threads`` is off and
  ``block_on_close`` on, so ``server_close()`` joins every in-flight
  handler thread: SIGTERM/SIGINT stop accepting, drain, then exit
  (130 for SIGINT, 0 for SIGTERM — matching the runner's convention).
* **Observability.** Every request runs under an ``obs.span``
  (``server.request`` with route/path/status attrs) and feeds the
  ``server.requests`` counters plus per-route ``server.latency_s.*``
  histograms; with the Null recorder (default) all of it is free.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.server.state import RequestError, ServerState

#: Routes the server understands (used for metric names and the index).
ROUTES = (
    "index", "healthz", "query", "artefact", "population", "history", "regress",
)


def _route_of(path: str) -> str:
    """Collapse a URL path onto its route label (for metrics/spans)."""
    if path in ("", "/"):
        return "index"
    head = path.strip("/").split("/", 1)[0]
    return head if head in ROUTES else "unknown"


class _Handler(BaseHTTPRequestHandler):
    """One request. All state lives on ``self.server.state``."""

    protocol_version = "HTTP/1.1"  # keep-alive: loadgen reuses connections
    server_version = "repro-serve"

    # -- plumbing -------------------------------------------------------------

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.quiet:  # type: ignore[attr-defined]
            return
        super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> int:
        self._send_json(status, {"error": message, "status": status})
        return status

    # -- dispatch -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urllib.parse.urlsplit(self.path)
        route = _route_of(parsed.path)
        started = time.perf_counter()
        with obs.span("server.request", route=route, path=parsed.path) as span:
            try:
                status = self._dispatch(route, parsed)
            except RequestError as error:
                status = self._error(error.status, error.message)
            except BrokenPipeError:
                status = 499  # client went away mid-response
            except Exception as error:  # noqa: BLE001 — the daemon must survive
                status = self._error(
                    500, f"{type(error).__name__}: {error}"
                )
            span.set(status=status)
        elapsed = time.perf_counter() - started
        obs.counter("server.requests").inc()
        obs.counter(f"server.requests.{route}").inc()
        obs.counter(f"server.status.{status // 100}xx").inc()
        obs.histogram(f"server.latency_s.{route}").observe(elapsed)

    def do_POST(self) -> None:  # noqa: N802
        self._error(405, "only GET is supported")

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _dispatch(self, route: str, parsed: urllib.parse.SplitResult) -> int:
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        if route == "healthz":
            payload = self.state.healthz()
            status = 200 if payload["status"] == "ok" else 503
            self._send_json(status, payload)
            return status
        if route == "index":
            self._send_json(200, {"service": "repro-serve",
                                  "endpoints": self.state.endpoints()})
            return 200
        if route == "unknown":
            return self._error(
                404,
                f"unknown path {parsed.path!r}; GET / lists the endpoints",
            )
        if not self.state.ready.is_set():
            payload = self.state.healthz()
            self._send_json(503, payload)
            return 503
        if route == "query":
            return self._do_query(params)
        if route == "artefact":
            return self._do_artefact(parsed.path, params)
        if route == "population":
            by = params.pop("by", "") or None
            self._send_json(200, self.state.population(by=by, where=params))
            return 200
        if route == "history":
            self._send_json(200, self.state.history(
                limit=_int_param(params, "limit", 50)))
            return 200
        if route == "regress":
            self._send_json(200, self.state.regress(
                run_id=params.get("run") or None,
                against=params.get("against") or None,
                window=_int_param(params, "window", 10),
            ))
            return 200
        return self._error(404, f"unroutable path {parsed.path!r}")

    # -- routes ---------------------------------------------------------------

    def _do_query(self, params: Dict[str, str]) -> int:
        kind = params.pop("kind", "")
        if not kind:
            raise RequestError(400, "query requires a kind= parameter")
        group_by = _list_param(params.pop("group_by", ""))
        count_by = _list_param(params.pop("count_by", ""))
        records = _int_param(params, "records", 0)
        params.pop("records", None)
        delay_s = params.pop("delay_s", "")
        if delay_s and self.state.debug_delay:
            # Debug-only: lets the shutdown tests hold a request in
            # flight. Ignored unless the server opted in.
            time.sleep(min(float(delay_s), 10.0))
        payload = self.state.query(
            kind, where=params, group_by=group_by, count_by=count_by,
            records=records,
        )
        self._send_json(200, payload)
        return 200

    def _do_artefact(self, path: str, params: Dict[str, str]) -> int:
        parts = [part for part in path.strip("/").split("/") if part]
        if len(parts) != 2:
            raise RequestError(
                400, "artefact path must be /artefact/<id>, e.g. /artefact/T2"
            )
        scale: Optional[float] = None
        if "scale" in params:
            try:
                scale = float(params["scale"])
            except ValueError:
                raise RequestError(400, f"bad scale {params['scale']!r}")
        render = params.get("render", "") in ("1", "true", "yes")
        payload = self.state.artefact(parts[1], scale=scale, render=render)
        self._send_json(200, payload)
        return 200


def _int_param(params: Dict[str, str], name: str, default: int) -> int:
    raw = params.get(name, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be an integer, got {raw!r}")


def _list_param(raw: str) -> Tuple[str, ...]:
    return tuple(part for part in raw.split(",") if part)


class MeasurementServer(ThreadingHTTPServer):
    """The daemon: ThreadingHTTPServer + shared warm state + lifecycle."""

    #: Join in-flight handler threads on close — this is the graceful
    #: drain: stop accepting, finish what's running, then return.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    #: socketserver's default listen backlog is 5; hundreds of clients
    #: connecting at once overflow it and their SYNs retransmit after
    #: ~1s — a phantom latency spike that isn't the service at all.
    request_queue_size = 512

    def __init__(
        self,
        state: ServerState,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.state = state
        self.quiet = quiet
        self._warm_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # -- addresses ------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        if host in ("0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    def warm_in_background(self) -> threading.Thread:
        """Kick off dataset warmup without blocking the accept loop."""
        if self._warm_thread is None:
            self._warm_thread = threading.Thread(
                target=self._warm_guarded, name="repro-serve-warm", daemon=True
            )
            self._warm_thread.start()
        return self._warm_thread

    def _warm_guarded(self) -> None:
        try:
            self.state.warm()
        except Exception:
            # warm() already captured the traceback onto the state; the
            # server stays up so /healthz can report the failure.
            pass

    def start(self) -> "MeasurementServer":
        """In-process mode (tests, benches): accept loop in a thread."""
        self.warm_in_background()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, release the socket."""
        if self._stopping.is_set():
            self._stopped.wait(timeout=30.0)
            return
        self._stopping.set()
        self.shutdown()
        self.server_close()  # block_on_close joins handler threads
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=30.0)
        self._stopped.set()

    def run_foreground(self, warm_first: bool = False) -> int:
        """CLI mode: install signal handlers and serve until stopped.

        Returns the process exit code: 0 after SIGTERM (orderly
        platform stop), 130 after SIGINT (operator ^C) — the same
        convention the batch runner uses.
        """
        exit_code = {"value": 0}

        def _stop_from_signal(signum: int, _frame: Any) -> None:
            exit_code["value"] = 130 if signum == signal.SIGINT else 0
            # shutdown() must not run on the serve_forever thread (it
            # joins the accept loop) — and a signal handler runs on the
            # main thread, which *is* that thread here. Hand off.
            threading.Thread(target=self.stop, daemon=True).start()

        previous = {
            sig: signal.signal(sig, _stop_from_signal)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            if warm_first:
                self.state.warm()
            else:
                self.warm_in_background()
            self.serve_forever()
            # Either a signal handed stop() to a helper thread (wait for
            # the drain to finish) or something broke the accept loop
            # (close up ourselves).
            self.stop()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return exit_code["value"]


def create_server(
    seed: int = 2024,
    scale: float = 0.15,
    datasets: Tuple[str, ...] = ("device", "web"),
    history_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    debug_delay: bool = False,
    warm_artefacts: Optional[Tuple[str, ...]] = None,
) -> MeasurementServer:
    """One-call constructor used by the CLI, tests and benches."""
    from repro.server.state import WARM_ARTEFACTS

    state = ServerState(
        seed=seed, scale=scale, datasets=datasets, history_dir=history_dir,
        debug_delay=debug_delay,
        warm_artefacts=(
            WARM_ARTEFACTS if warm_artefacts is None else warm_artefacts
        ),
    )
    return MeasurementServer(state, host=host, port=port, quiet=quiet)
