"""The measurement service: a zero-dependency threaded HTTP daemon.

``MeasurementServer`` wraps :class:`http.server.ThreadingHTTPServer`
around one shared :class:`~repro.server.state.ServerState`. Handler
threads only *read* warm state (datasets, pre-built indexes, the
artefact memo), so the ThreadingHTTPServer's thread-per-connection
model needs no request-path locking beyond the artefact-compute lock
the state owns.

Operational contract:

* **Warmup.** ``start()``/``serve_forever()`` answer immediately;
  every data route returns 503 with the current warm phase until
  :meth:`ServerState.warm` finishes. ``/healthz`` and the telemetry
  plane (``/metrics``, ``/stats``, ``/events``, ``/dashboard``,
  ``/profile``) work before readiness — you can watch a warmup.
* **Graceful shutdown.** ``daemon_threads`` is off and
  ``block_on_close`` on, so ``server_close()`` joins every in-flight
  handler thread: SIGTERM/SIGINT stop accepting, drain, then exit
  (130 for SIGINT, 0 for SIGTERM — matching the runner's convention).
  :meth:`stop` stops the live sampler *first* so blocked ``/events``
  handlers wake and drain instead of deadlocking the join.
* **Observability.** Every request runs under an ``obs.span``
  (``server.request`` with route/path/status attrs) and feeds the
  ``server.requests`` counters plus per-route ``server.latency_s.*``
  histograms. The server installs a metrics-only
  :class:`~repro.obs.recorder.MetricsRecorder` when the process has no
  collecting recorder — bounded memory for an always-on daemon — and a
  :class:`~repro.obs.live.LiveSampler` snapshots that registry every
  second for ``/stats``, ``/events`` and the dashboard.
* **Distributed traces.** A client sending a W3C-style ``traceparent``
  header gets an ``X-Repro-Span`` response header: the server-side
  ``server.request`` span exported as JSON, parented under the
  client's span id. The loadgen ``adopt()``\\ s these into its trace,
  so one tree shows both sides of every request.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.obs import exposition
from repro.server.state import RequestError, ServerState

#: Routes the server understands (used for metric names and the index).
ROUTES = (
    "index", "healthz", "query", "artefact", "population", "history", "regress",
    "metrics", "stats", "events", "dashboard", "profile",
)

#: Telemetry-plane routes served during warmup (before ``ready``).
OPS_ROUTES = ("metrics", "stats", "events", "dashboard", "profile")

#: Server-side span ids: PID + a process-wide sequence, so exports from
#: one daemon never collide inside an adopting client trace.
_span_seq = itertools.count(1)


def _route_of(path: str) -> str:
    """Collapse a URL path onto its route label (for metrics/spans)."""
    if path in ("", "/"):
        return "index"
    head = path.strip("/").split("/", 1)[0]
    return head if head in ROUTES else "unknown"


def _parse_traceparent(value: str) -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` from a traceparent-style header, else None.

    Accepts the W3C shape ``00-<trace_id>-<span_id>-<flags>`` but is
    deliberately lenient about field widths: the loadgen sends repro
    span ids, not 16-hex-digit ones.
    """
    fields = value.strip().split("-")
    if len(fields) < 4:
        return None
    trace_id, span_id = fields[1], fields[2]
    if not trace_id or not span_id:
        return None
    return trace_id, span_id


class _Handler(BaseHTTPRequestHandler):
    """One request. All state lives on ``self.server.state``."""

    protocol_version = "HTTP/1.1"  # keep-alive: loadgen reuses connections
    server_version = "repro-serve"

    # Per-request trace context (set by do_GET; defaults cover do_POST).
    _trace: Optional[Tuple[str, str]] = None
    _route = "unknown"
    _req_path = ""
    _started_unix = 0.0
    _t0 = 0.0

    # -- plumbing -------------------------------------------------------------

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.quiet:  # type: ignore[attr-defined]
            return
        super().log_message(format, *args)

    def _span_header(self, status: int) -> Optional[str]:
        """The ``X-Repro-Span`` export for a traced request (else None).

        Computed at header-send time, so ``duration_s`` is the server
        wall time *up to the response headers* — the compute, not the
        body flush. The export is one JSON object in the shape
        :meth:`repro.obs.spans.Span.to_jsonable` produces, parented
        under the client's span id so ``TraceRecorder.adopt`` slots it
        straight into the caller's tree.
        """
        if self._trace is None:
            return None
        trace_id, parent_id = self._trace
        export = {
            "name": "server.request",
            "span_id": f"{os.getpid():x}.srv.{next(_span_seq)}",
            "parent_id": parent_id,
            "start_unix": self._started_unix,
            "duration_s": round(time.perf_counter() - self._t0, 9),
            "status": "error" if status >= 500 else "ok",
            "attrs": {
                "route": self._route, "path": self._req_path,
                "status": status, "trace_id": trace_id,
                "server_pid": os.getpid(),
            },
            "events": [],
        }
        return json.dumps(export, separators=(",", ":"))

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _send_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        span_export = self._span_header(status)
        if span_export is not None:
            self.send_header("X-Repro-Span", span_export)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> int:
        self._send_json(status, {"error": message, "status": status})
        return status

    # -- dispatch -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urllib.parse.urlsplit(self.path)
        route = _route_of(parsed.path)
        self._route = route
        self._req_path = parsed.path
        self._trace = _parse_traceparent(self.headers.get("traceparent", ""))
        self._started_unix = time.time()
        started = self._t0 = time.perf_counter()
        # started vs finished is the dashboard's in-flight derivation.
        obs.counter("server.requests_started").inc()
        with obs.span("server.request", route=route, path=parsed.path) as span:
            try:
                status = self._dispatch(route, parsed)
            except RequestError as error:
                status = self._error(error.status, error.message)
            except BrokenPipeError:
                status = 499  # client went away mid-response
            except Exception as error:  # noqa: BLE001 — the daemon must survive
                status = self._error(
                    500, f"{type(error).__name__}: {error}"
                )
            span.set(status=status)
        elapsed = time.perf_counter() - started
        obs.counter("server.requests").inc()
        obs.counter(f"server.requests.{route}").inc()
        obs.counter(f"server.status.{status // 100}xx").inc()
        obs.histogram(f"server.latency_s.{route}").observe(elapsed)

    def do_POST(self) -> None:  # noqa: N802
        self._error(405, "only GET is supported")

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _dispatch(self, route: str, parsed: urllib.parse.SplitResult) -> int:
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        if route == "healthz":
            payload = self.state.healthz()
            status = 200 if payload["status"] == "ok" else 503
            self._send_json(status, payload)
            return status
        if route == "index":
            self._send_json(200, {"service": "repro-serve",
                                  "endpoints": self.state.endpoints()})
            return 200
        if route == "unknown":
            return self._error(
                404,
                f"unknown path {parsed.path!r}; GET / lists the endpoints",
            )
        if route in OPS_ROUTES:
            # The telemetry plane works during warmup: watching a warm
            # phase is exactly when you want /metrics and /dashboard.
            if route == "metrics":
                return self._do_metrics(params)
            if route == "stats":
                return self._do_stats(params)
            if route == "events":
                return self._do_events(params)
            if route == "dashboard":
                return self._do_dashboard(params)
            return self._do_profile(params)
        if not self.state.ready.is_set():
            payload = self.state.healthz()
            self._send_json(503, payload)
            return 503
        if route == "query":
            return self._do_query(params)
        if route == "artefact":
            return self._do_artefact(parsed.path, params)
        if route == "population":
            by = params.pop("by", "") or None
            self._send_json(200, self.state.population(by=by, where=params))
            return 200
        if route == "history":
            self._send_json(200, self.state.history(
                limit=_int_param(params, "limit", 50)))
            return 200
        if route == "regress":
            self._send_json(200, self.state.regress(
                run_id=params.get("run") or None,
                against=params.get("against") or None,
                window=_int_param(params, "window", 10),
            ))
            return 200
        return self._error(404, f"unroutable path {parsed.path!r}")

    # -- data routes -----------------------------------------------------------

    def _do_query(self, params: Dict[str, str]) -> int:
        kind = params.pop("kind", "")
        if not kind:
            raise RequestError(400, "query requires a kind= parameter")
        group_by = _list_param(params.pop("group_by", ""))
        count_by = _list_param(params.pop("count_by", ""))
        records = _int_param(params, "records", 0)
        params.pop("records", None)
        delay_s = params.pop("delay_s", "")
        if delay_s and self.state.debug_delay:
            # Debug-only: lets the shutdown tests hold a request in
            # flight. Ignored unless the server opted in.
            time.sleep(min(float(delay_s), 10.0))
        payload = self.state.query(
            kind, where=params, group_by=group_by, count_by=count_by,
            records=records,
        )
        self._send_json(200, payload)
        return 200

    def _do_artefact(self, path: str, params: Dict[str, str]) -> int:
        parts = [part for part in path.strip("/").split("/") if part]
        if len(parts) != 2:
            raise RequestError(
                400, "artefact path must be /artefact/<id>, e.g. /artefact/T2"
            )
        scale: Optional[float] = None
        if "scale" in params:
            try:
                scale = float(params["scale"])
            except ValueError:
                raise RequestError(400, f"bad scale {params['scale']!r}")
        render = params.get("render", "") in ("1", "true", "yes")
        payload = self.state.artefact(parts[1], scale=scale, render=render)
        self._send_json(200, payload)
        return 200

    # -- telemetry routes ------------------------------------------------------

    def _do_metrics(self, params: Dict[str, str]) -> int:
        body = exposition.render(registry=self.server.registry)
        self._send_text(200, body, exposition.CONTENT_TYPE)
        return 200

    def _do_stats(self, params: Dict[str, str]) -> int:
        window = _float_param(params, "window", 60.0)
        if window <= 0:
            raise RequestError(400, "window must be positive seconds")
        series = _list_param(params.get("series", ""))
        payload = self.server.sampler.stats(window_s=window, series=series)
        self._send_json(200, payload)
        return 200

    def _sse_write(self, event: str, data: Any) -> None:
        payload = json.dumps(data, sort_keys=True)
        self.wfile.write(f"event: {event}\ndata: {payload}\n\n".encode())
        self.wfile.flush()

    def _do_events(self, params: Dict[str, str]) -> int:
        """Stream sampler ticks as Server-Sent Events.

        HTTP/1.1 with no Content-Length means the only way to end the
        stream is to close the connection, so ``close_connection`` is
        forced on. The loop wakes on every sampler tick (Condition
        broadcast, no polling), emits ``: keepalive`` comments on
        quiet timeouts, and exits on client disconnect, server
        shutdown, or after ``max_events=N`` ticks (how tests and curl
        get a bounded stream).
        """
        sampler = self.server.sampler
        max_events = _int_param(params, "max_events", 0)
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        stopping = self.server._stopping
        try:
            self.wfile.write(b"retry: 2000\n\n")
            self._sse_write("hello", {"sampler": sampler.info()})
            seen = sampler.ticks
            sent = 0
            while not stopping.is_set():
                event = sampler.wait_for_event(
                    seen, timeout_s=max(1.0, sampler.interval_s * 2)
                )
                if stopping.is_set():
                    break
                if event is None:
                    if not sampler.alive():
                        break
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                seen = event["tick"]
                self._sse_write("tick", event)
                sent += 1
                if max_events and sent >= max_events:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            return 499
        return 200

    def _do_dashboard(self, params: Dict[str, str]) -> int:
        from repro.server.dashboard import render_dashboard

        self._send_text(
            200, render_dashboard(), "text/html; charset=utf-8"
        )
        return 200

    def _do_profile(self, params: Dict[str, str]) -> int:
        """On-demand sampling profile: block, sample, return collapsed.

        One profile at a time (a second concurrent request gets 409 —
        two tickers would halve each other's effective rate), capped
        at ``profile_max_s``, and aborted early by server shutdown so
        a profile never delays a drain.
        """
        seconds = _float_param(params, "seconds", 5.0)
        max_s = self.server.profile_max_s
        if seconds <= 0 or seconds > max_s:
            raise RequestError(
                400, f"seconds must be in (0, {max_s:g}], got {seconds:g}"
            )
        interval_ms = _float_param(params, "interval_ms", 10.0)
        if interval_ms < 1.0:
            raise RequestError(400, "interval_ms must be >= 1")
        lock = self.server.profile_lock
        if not lock.acquire(blocking=False):
            return self._error(
                409, "a profile is already running; retry when it finishes"
            )
        try:
            profiler = obs.SamplingProfiler(interval_s=interval_ms / 1000.0)
            profiler.run_for(seconds, abort=self.server._stopping)
        finally:
            lock.release()
        body = profiler.collapsed()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body.encode("utf-8"))))
        self.send_header("X-Repro-Profile-Ticks", str(profiler.samples))
        self.end_headers()
        self.wfile.write(body.encode("utf-8"))
        return 200


def _int_param(params: Dict[str, str], name: str, default: int) -> int:
    raw = params.get(name, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be an integer, got {raw!r}")


def _float_param(
    params: Dict[str, str], name: str, default: float
) -> float:
    raw = params.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be a number, got {raw!r}")


def _list_param(raw: str) -> Tuple[str, ...]:
    return tuple(part for part in raw.split(",") if part)


class MeasurementServer(ThreadingHTTPServer):
    """The daemon: ThreadingHTTPServer + shared warm state + lifecycle."""

    #: Join in-flight handler threads on close — this is the graceful
    #: drain: stop accepting, finish what's running, then return.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    #: socketserver's default listen backlog is 5; hundreds of clients
    #: connecting at once overflow it and their SYNs retransmit after
    #: ~1s — a phantom latency spike that isn't the service at all.
    request_queue_size = 512

    def __init__(
        self,
        state: ServerState,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        sample_interval_s: float = 1.0,
        sample_capacity: int = 600,
        profile_max_s: float = 30.0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.state = state
        self.quiet = quiet
        self._warm_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        # Telemetry plane. A TraceRecorder keeps a span object per
        # request — unbounded on a daemon — so when nothing is
        # collecting yet, install the metrics-only recorder (bounded by
        # distinct instrument names) and restore the old one on stop().
        # A process that already collects (run-all --trace hosting a
        # server in-process) keeps its own registry.
        self._installed_recorder: Optional[obs.MetricsRecorder] = None
        self._previous_recorder: Any = None
        registry = getattr(obs.get_recorder(), "metrics", None)
        if registry is None:
            self._installed_recorder = obs.MetricsRecorder()
            self._previous_recorder = obs.set_recorder(
                self._installed_recorder
            )
            registry = self._installed_recorder.metrics
        self.registry = registry
        self.sampler = obs.LiveSampler(
            registry,
            interval_s=sample_interval_s,
            capacity=sample_capacity,
        )
        self.profile_lock = threading.Lock()
        self.profile_max_s = profile_max_s
        state.attach_telemetry(self._telemetry_info)

    def _telemetry_info(self) -> Dict[str, Any]:
        """The ``/healthz`` telemetry block: totals + sampler liveness."""
        return {
            "requests_total": self.registry.counter("server.requests").value,
            "requests_started": self.registry.counter(
                "server.requests_started"
            ).value,
            "errors_5xx": self.registry.counter("server.status.5xx").value,
            "sampler": self.sampler.info(),
        }

    # -- addresses ------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        if host in ("0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    def warm_in_background(self) -> threading.Thread:
        """Kick off dataset warmup without blocking the accept loop."""
        if self._warm_thread is None:
            self._warm_thread = threading.Thread(
                target=self._warm_guarded, name="repro-serve-warm", daemon=True
            )
            self._warm_thread.start()
        return self._warm_thread

    def _warm_guarded(self) -> None:
        try:
            self.state.warm()
        except Exception:
            # warm() already captured the traceback onto the state; the
            # server stays up so /healthz can report the failure.
            pass

    def start(self) -> "MeasurementServer":
        """In-process mode (tests, benches): accept loop in a thread."""
        self.sampler.start()
        self.warm_in_background()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, release the socket.

        Order matters: the sampler stops *before* ``server_close()``
        joins handler threads, so an ``/events`` handler blocked in
        ``wait_for_event`` wakes (Condition broadcast), sees
        ``_stopping`` and finishes — otherwise the join would wait a
        full SSE timeout per streaming client.
        """
        if self._stopping.is_set():
            self._stopped.wait(timeout=30.0)
            return
        self._stopping.set()
        self.sampler.stop()
        self.shutdown()
        self.server_close()  # block_on_close joins handler threads
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=30.0)
        if (
            self._installed_recorder is not None
            and obs.get_recorder() is self._installed_recorder
        ):
            obs.set_recorder(self._previous_recorder)
        self._stopped.set()

    def run_foreground(self, warm_first: bool = False) -> int:
        """CLI mode: install signal handlers and serve until stopped.

        Returns the process exit code: 0 after SIGTERM (orderly
        platform stop), 130 after SIGINT (operator ^C) — the same
        convention the batch runner uses.
        """
        exit_code = {"value": 0}

        def _stop_from_signal(signum: int, _frame: Any) -> None:
            exit_code["value"] = 130 if signum == signal.SIGINT else 0
            # shutdown() must not run on the serve_forever thread (it
            # joins the accept loop) — and a signal handler runs on the
            # main thread, which *is* that thread here. Hand off.
            threading.Thread(target=self.stop, daemon=True).start()

        previous = {
            sig: signal.signal(sig, _stop_from_signal)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self.sampler.start()
            if warm_first:
                self.state.warm()
            else:
                self.warm_in_background()
            self.serve_forever()
            # Either a signal handed stop() to a helper thread (wait for
            # the drain to finish) or something broke the accept loop
            # (close up ourselves).
            self.stop()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return exit_code["value"]


def create_server(
    seed: int = 2024,
    scale: float = 0.15,
    datasets: Tuple[str, ...] = ("device", "web"),
    history_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    debug_delay: bool = False,
    warm_artefacts: Optional[Tuple[str, ...]] = None,
    sample_interval_s: float = 1.0,
    sample_capacity: int = 600,
    profile_max_s: float = 30.0,
) -> MeasurementServer:
    """One-call constructor used by the CLI, tests and benches."""
    from repro.server.state import WARM_ARTEFACTS

    state = ServerState(
        seed=seed, scale=scale, datasets=datasets, history_dir=history_dir,
        debug_delay=debug_delay,
        warm_artefacts=(
            WARM_ARTEFACTS if warm_artefacts is None else warm_artefacts
        ),
    )
    return MeasurementServer(
        state, host=host, port=port, quiet=quiet,
        sample_interval_s=sample_interval_s,
        sample_capacity=sample_capacity,
        profile_max_s=profile_max_s,
    )
