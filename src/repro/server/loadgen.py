"""Thread-based load generation against the measurement service.

``LoadGenerator`` drives N concurrent clients — each a thread owning
one keep-alive :class:`http.client.HTTPConnection` and a private
``random.Random`` seeded from ``(seed, client index)`` — over a mixed
workload whose *composition* is deterministic: given the same seed,
client count and duration, every client walks the same request
sequence. Latencies are wall-clock and vary run to run; the workload
does not.

The mix mirrors how the corpus is consumed interactively (heavy
slicing, some artefact lookups, occasional ops endpoints — including
the telemetry plane, which is part of the SLO surface and therefore
part of the load):

========  ======  ==============================================
route     weight  request shape
========  ======  ==============================================
query     57%     count/count_by/group_by over random dimensions
artefact  15%     warm artefact lookups from a small id pool
history    8%     history listing
healthz    8%     liveness probe
metrics    7%     Prometheus text scrape
stats      5%     live sampler window JSON
========  ======  ==============================================

Every request carries a traceparent-style header
(``00-<trace_id>-<span_id>-01``). The server answers with an
``X-Repro-Span`` header — its ``server.request`` span exported as
JSON, parented under the client span id — and a traced run
(``trace=True``) ``adopt()``\\ s those exports into per-client
:class:`~repro.obs.recorder.TraceRecorder`\\ s, merged into one trace
at the end: a single tree showing the client *and* server side of
every request.

The report carries exact (not interpolated) per-route p50/p95/p99 —
computed from the full sorted latency list, no reservoir — plus
throughput and error counts, and converts to a history
:class:`~repro.obs.history.RunRecord` via
:func:`repro.server.slo.record_from_loadgen` so `repro regress` gates
service latency like artefact latency.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.server.state import WARM_ARTEFACTS

#: Artefacts the load mix requests: exactly the set the server warms at
#: startup, so steady-state artefact traffic is memo hits.
ARTEFACT_POOL: Tuple[str, ...] = WARM_ARTEFACTS

#: (route, weight) pairs the per-client RNG samples from.
MIX: Tuple[Tuple[str, int], ...] = (
    ("query", 57),
    ("artefact", 15),
    ("history", 8),
    ("healthz", 8),
    ("metrics", 7),
    ("stats", 5),
)

#: Dimensions the query traffic slices by (all kinds share these).
QUERY_DIMENSIONS: Tuple[str, ...] = (
    "country", "sim_kind", "architecture", "b_mno", "pgw_country", "rat",
)

QUERY_KINDS: Tuple[str, ...] = ("traceroute", "speedtest", "cdn", "dns", "web")


@dataclass
class RouteStats:
    """Latency accounting for one route across all clients."""

    count: int = 0
    errors: int = 0
    latencies_s: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Exact percentile over the observed latencies (0 when empty)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_jsonable(self) -> Dict[str, Any]:
        lat = self.latencies_s
        return {
            "count": self.count,
            "errors": self.errors,
            "p50_s": round(self.percentile(0.50), 6),
            "p95_s": round(self.percentile(0.95), 6),
            "p99_s": round(self.percentile(0.99), 6),
            "mean_s": round(sum(lat) / len(lat), 6) if lat else 0.0,
            "max_s": round(max(lat), 6) if lat else 0.0,
        }


@dataclass
class LoadgenReport:
    """One load run: configuration, per-route stats, throughput."""

    url: str
    clients: int
    duration_s: float
    seed: int
    wall_s: float = 0.0
    total_requests: int = 0
    total_errors: int = 0
    chaos_latency_s: float = 0.0
    routes: Dict[str, RouteStats] = field(default_factory=dict)
    #: The merged client+server trace when the run recorded one
    #: (``LoadGenerator(trace=True)``); not serialized — the CLI
    #: writes it with :func:`repro.obs.sink.write_trace`.
    trace_recorder: Optional[Any] = field(default=None, repr=False)

    @property
    def throughput_rps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.total_requests / self.wall_s

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "clients": self.clients,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "wall_s": round(self.wall_s, 3),
            "total_requests": self.total_requests,
            "total_errors": self.total_errors,
            "throughput_rps": round(self.throughput_rps, 1),
            "chaos_latency_s": self.chaos_latency_s,
            "routes": {
                route: stats.to_jsonable()
                for route, stats in sorted(self.routes.items())
            },
        }

    def render(self) -> str:
        lines = [
            f"loadgen vs {self.url}: {self.clients} clients x "
            f"{self.duration_s:g}s (seed {self.seed})",
            f"{self.total_requests} requests, {self.total_errors} errors, "
            f"{self.throughput_rps:.0f} req/s",
            f"{'route':10} {'count':>7} {'errors':>7} {'p50':>9} "
            f"{'p95':>9} {'p99':>9} {'max':>9}",
        ]
        for route, stats in sorted(self.routes.items()):
            view = stats.to_jsonable()
            lines.append(
                f"{route:10} {view['count']:>7} {view['errors']:>7} "
                f"{view['p50_s'] * 1000:>7.1f}ms {view['p95_s'] * 1000:>7.1f}ms "
                f"{view['p99_s'] * 1000:>7.1f}ms {view['max_s'] * 1000:>7.1f}ms"
            )
        if self.chaos_latency_s:
            lines.append(
                f"chaos: +{self.chaos_latency_s * 1000:.0f}ms injected into "
                f"every recorded latency"
            )
        return "\n".join(lines)


class _Client(threading.Thread):
    """One synthetic client: keep-alive connection, seeded walk."""

    def __init__(self, generator: "LoadGenerator", index: int) -> None:
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self.generator = generator
        self.index = index
        self.rng = random.Random(f"{generator.seed}:client{index}")
        self.stats: Dict[str, RouteStats] = {}
        self.requests = 0
        self.errors = 0
        #: Per-client recorder when tracing: TraceRecorder's span stack
        #: is single-threaded by design, so clients never share one.
        self.recorder: Optional[obs.TraceRecorder] = (
            obs.TraceRecorder(
                trace_id=f"loadgen-{generator.seed}.c{index}"
            )
            if generator.trace else None
        )
        self.trace_id = (
            self.recorder.trace_id
            if self.recorder is not None
            else f"loadgen{generator.seed:x}c{index:x}"
        )

    def run(self) -> None:
        gen = self.generator
        connection = http.client.HTTPConnection(
            gen.host, gen.port, timeout=gen.timeout_s
        )
        # Ramp: spread initial connects over one think interval so N
        # simultaneous SYNs don't race the server's accept loop.
        if gen.stop_event.wait(self.rng.random() * gen.think_s):
            return
        try:
            while not gen.stop_event.is_set():
                route, path = self._pick()
                started = time.perf_counter()
                ok = self._request(connection, route, path)
                elapsed = time.perf_counter() - started + gen.chaos_latency_s
                stats = self.stats.setdefault(route, RouteStats())
                stats.count += 1
                stats.latencies_s.append(elapsed)
                self.requests += 1
                if not ok:
                    stats.errors += 1
                    self.errors += 1
                # Think time: interactive clients pause between queries;
                # without it N threads degenerate into a busy-loop that
                # measures the GIL, not the service.
                pause = gen.think_s * (0.5 + self.rng.random())
                if pause and gen.stop_event.wait(pause):
                    break
        finally:
            connection.close()

    def _request(
        self, connection: http.client.HTTPConnection, route: str, path: str
    ) -> bool:
        """One request, traced when the run records a trace.

        The client span's id rides in the ``traceparent`` header; the
        server's ``X-Repro-Span`` export (its side of the same
        request) is adopted back under that span, so the merged trace
        interleaves client wall time with server handler time.
        """
        if self.recorder is None:
            span_id = f"c{self.index}.{self.requests + 1}"
            ok, _ = self._fetch(connection, path, span_id)
            return ok
        with self.recorder.span(
            "loadgen.request", route=route, path=path
        ) as span:
            ok, export = self._fetch(connection, path, span.span_id)
            span.set(ok=ok)
        if export:
            try:
                self.recorder.adopt(
                    {"spans": [json.loads(export)]}, parent_id=span.span_id
                )
            except (ValueError, KeyError, TypeError):
                pass  # a malformed export must never fail the fetch
        return ok

    def _fetch(
        self,
        connection: http.client.HTTPConnection,
        path: str,
        span_id: str,
    ) -> Tuple[bool, Optional[str]]:
        headers = {
            "traceparent": f"00-{self.trace_id}-{span_id}-01",
        }
        try:
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            body = response.read()
            export = response.getheader("X-Repro-Span")
            return response.status == 200 and bool(body), export
        except (http.client.HTTPException, OSError):
            # Reconnect once: the server may have closed an idle
            # keep-alive socket between requests.
            try:
                connection.close()
                connection.connect()
                connection.request("GET", path, headers=headers)
                response = connection.getresponse()
                body = response.read()
                export = response.getheader("X-Repro-Span")
                return response.status == 200 and bool(body), export
            except (http.client.HTTPException, OSError):
                connection.close()
                return False, None

    def _pick(self) -> Tuple[str, str]:
        roll = self.rng.randrange(sum(weight for _, weight in MIX))
        for route, weight in MIX:
            if roll < weight:
                break
            roll -= weight
        if route == "query":
            return "query", self._query_path()
        if route == "artefact":
            artefact = self.rng.choice(ARTEFACT_POOL)
            return "artefact", f"/artefact/{artefact}"
        if route == "history":
            return "history", "/history?limit=20"
        if route == "metrics":
            return "metrics", "/metrics"
        if route == "stats":
            return "stats", "/stats?window=30"
        return "healthz", "/healthz"

    def _query_path(self) -> str:
        kind = self.rng.choice(self.generator.kinds)
        dimension = self.rng.choice(QUERY_DIMENSIONS)
        shape = self.rng.randrange(3)
        if shape == 0:
            return f"/query?kind={kind}&count_by={dimension}"
        if shape == 1:
            other = self.rng.choice(QUERY_DIMENSIONS)
            return f"/query?kind={kind}&group_by={other}"
        country = self.rng.choice(self.generator.countries or ("US",))
        return f"/query?kind={kind}&country={country}"


class LoadGenerator:
    """Drive ``clients`` concurrent synthetic clients for ``duration_s``."""

    def __init__(
        self,
        host: str,
        port: int,
        clients: int = 50,
        duration_s: float = 10.0,
        seed: int = 2024,
        think_s: float = 0.2,
        timeout_s: float = 30.0,
        chaos_latency_s: float = 0.0,
        trace: bool = False,
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        self.host = host
        self.port = port
        self.clients = clients
        self.duration_s = duration_s
        self.seed = seed
        self.think_s = think_s
        self.timeout_s = timeout_s
        #: Injected into every recorded latency *after* the fetch — the
        #: seeded-regression lever for testing the SLO gate end to end
        #: without actually slowing the server down.
        self.chaos_latency_s = chaos_latency_s
        #: Record a client-side trace and adopt the server's span
        #: exports into it (one ``loadgen.request`` span per request).
        self.trace = trace
        self.stop_event = threading.Event()
        self.countries: Tuple[str, ...] = ()
        self.kinds: Tuple[str, ...] = QUERY_KINDS

    # -- bootstrap ------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Learn the server's shape: loaded datasets, country pool."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            health = json.loads(response.read().decode("utf-8"))
            loaded = set(health.get("datasets", {}))
            if loaded:
                self.kinds = tuple(
                    kind for kind in QUERY_KINDS
                    if ("web" if kind == "web" else "device") in loaded
                ) or QUERY_KINDS
            probe_kind = self.kinds[0]
            connection.request(
                "GET", f"/query?kind={probe_kind}&count_by=country"
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            if response.status == 200:
                self.countries = tuple(sorted(payload.get("counts", {})))
        except (http.client.HTTPException, OSError, ValueError):
            self.countries = ()
        finally:
            connection.close()

    def wait_ready(self, timeout_s: float = 120.0) -> bool:
        """Poll ``/healthz`` until the server reports ready."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=5.0
            )
            try:
                connection.request("GET", "/healthz")
                if connection.getresponse().status == 200:
                    return True
            except (http.client.HTTPException, OSError):
                pass
            finally:
                connection.close()
            time.sleep(0.25)
        return False

    # -- run ------------------------------------------------------------------

    def run(self) -> LoadgenReport:
        self._bootstrap()
        workers = [_Client(self, index) for index in range(self.clients)]
        started_unix = time.time()
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        self.stop_event.wait(self.duration_s)
        self.stop_event.set()
        for worker in workers:
            worker.join(timeout=self.timeout_s + 5.0)
        wall = time.perf_counter() - started

        report = LoadgenReport(
            url=f"http://{self.host}:{self.port}",
            clients=self.clients,
            duration_s=self.duration_s,
            seed=self.seed,
            wall_s=wall,
            chaos_latency_s=self.chaos_latency_s,
        )
        for worker in workers:
            report.total_requests += worker.requests
            report.total_errors += worker.errors
            for route, stats in worker.stats.items():
                merged = report.routes.setdefault(route, RouteStats())
                merged.count += stats.count
                merged.errors += stats.errors
                merged.latencies_s.extend(stats.latencies_s)
        if self.trace:
            # Fold every client's recorder into one trace. Client root
            # spans (loadgen.request) stay roots; their adopted
            # server.request children keep their parent links.
            root = obs.TraceRecorder(trace_id=f"loadgen-{self.seed}")
            with root.span(
                "loadgen.run", clients=self.clients,
                duration_s=self.duration_s, seed=self.seed,
            ) as run_span:
                pass
            # The span object is recorded by reference, so backdate it
            # to cover the run it describes: the clients already ran.
            run_span.start_unix = started_unix
            run_span.duration_s = wall
            for worker in workers:
                if worker.recorder is not None:
                    root.adopt(
                        worker.recorder.export(),
                        parent_id=run_span.span_id,
                    )
            report.trace_recorder = root
        return report


def run_loadgen(
    host: str,
    port: int,
    clients: int = 50,
    duration_s: float = 10.0,
    seed: int = 2024,
    think_s: float = 0.2,
    chaos_latency_s: float = 0.0,
    wait_ready_s: Optional[float] = 120.0,
    trace: bool = False,
) -> LoadgenReport:
    """Convenience wrapper: wait for readiness, then run one load pass."""
    generator = LoadGenerator(
        host, port, clients=clients, duration_s=duration_s, seed=seed,
        think_s=think_s, chaos_latency_s=chaos_latency_s, trace=trace,
    )
    if wait_ready_s and not generator.wait_ready(wait_ready_s):
        raise RuntimeError(
            f"server at {host}:{port} never became ready "
            f"(waited {wait_ready_s:g}s)"
        )
    return generator.run()
