"""The live dashboard page (``GET /dashboard``).

One self-contained HTML document — inline CSS (shared with the static
history report) and a small vanilla script, no external assets — that
subscribes to the server's ``/events`` Server-Sent-Events stream and
redraws itself on every sampler tick:

* headline tiles: total QPS, in-flight requests (``requests_started``
  minus finished ``requests``), resident memory, thread count and the
  warm phase (polled from ``/healthz``);
* a per-route table with QPS and p99 latency numbers plus SVG
  sparklines over the last ~2 minutes of ticks.

Everything renders client-side from the tick deltas the
:class:`~repro.obs.live.LiveSampler` already publishes, so the page
adds zero server-side state: the handler returns the same static bytes
every time and the browser does the rest. Point arrays are capped at
``MAX_POINTS`` so a tab left open overnight holds bounded memory —
the same discipline as the server-side ring buffers.
"""

from __future__ import annotations

from repro.obs.report import _CSS

#: Client-side points kept per sparkline (matches ~2 min at 1 Hz).
MAX_POINTS = 120

_PAGE = """<!doctype html>
<html><head><meta charset='utf-8'>
<title>repro — live telemetry</title>
<style>__CSS__
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
.tile { border: 1px solid #d7d7e0; background: #f7f7fa; padding: 0.6rem 1rem;
        border-radius: 6px; min-width: 8rem; }
.tile b { display: block; font-size: 1.3rem;
          font-variant-numeric: tabular-nums; }
.tile span { color: #6b6b7b; font-size: 0.75rem; }
svg.spark { vertical-align: middle; }
polyline.qps { fill: none; stroke: #2b6cb0; stroke-width: 1.5; }
polyline.p99 { fill: none; stroke: #b03a2b; stroke-width: 1.5; }
#link { font-size: 0.8rem; }
#link.dead { color: #a61b1b; } #link.live { color: #176e2c; }
</style></head><body>
<h1>repro — live telemetry</h1>
<p class=meta>streaming from <code>/events</code> ·
<span id=link class=dead>connecting…</span> ·
warm phase: <code id=phase>?</code> ·
sampler tick <span id=tick>0</span></p>
<div class=tiles>
<div class=tile><b id=qps>0</b><span>requests / s</span></div>
<div class=tile><b id=inflight>0</b><span>in-flight requests</span></div>
<div class=tile><b id=artefacts>0</b><span>memoized artefacts</span></div>
<div class=tile><b id=rss>?</b><span>resident memory</span></div>
<div class=tile><b id=threads>?</b><span>threads</span></div>
</div>
<h2>per-route</h2>
<table><thead><tr>
<th class=name>route</th><th>qps</th><th>qps trend</th>
<th>p99 (ms)</th><th>p99 trend</th><th>total</th>
</tr></thead><tbody id=routes></tbody></table>
<p class=meta>sparklines: last __MAX_POINTS__ sampler ticks, client-side
only. p99 is the windowed bucket-resolution quantile each tick reports.</p>
<script>
'use strict';
const MAX_POINTS = __MAX_POINTS__;
const series = {};               // key -> capped number array
const routeTotals = {};          // route -> last cumulative count
function push(key, value) {
  const arr = series[key] || (series[key] = []);
  arr.push(value);
  if (arr.length > MAX_POINTS) arr.shift();
}
function spark(key, cls) {
  const arr = series[key] || [];
  if (arr.length < 2) return '';
  const w = 140, h = 24, max = Math.max(...arr, 1e-9);
  const pts = arr.map((v, i) =>
    (i * w / (MAX_POINTS - 1)).toFixed(1) + ',' +
    (h - 2 - (v / max) * (h - 4)).toFixed(1)).join(' ');
  return '<svg class=spark width=' + w + ' height=' + h + '>' +
    '<polyline class=' + cls + ' points="' + pts + '"/></svg>';
}
function fmtBytes(n) {
  if (!n && n !== 0) return '?';
  const units = ['B', 'KiB', 'MiB', 'GiB'];
  let u = 0;
  while (n >= 1024 && u < units.length - 1) { n /= 1024; u += 1; }
  return n.toFixed(u ? 1 : 0) + ' ' + units[u];
}
function routeNames() {
  const names = new Set();
  for (const key of Object.keys(series)) {
    if (key.startsWith('qps:')) names.add(key.slice(4));
  }
  return Array.from(names).sort();
}
function redraw() {
  const rows = [];
  for (const route of routeNames()) {
    const qps = series['qps:' + route] || [];
    const p99 = series['p99:' + route] || [];
    rows.push('<tr><td class=name>' + route + '</td>' +
      '<td>' + (qps.length ? qps[qps.length - 1].toFixed(1) : '-') + '</td>' +
      '<td>' + spark('qps:' + route, 'qps') + '</td>' +
      '<td>' + (p99.length ? p99[p99.length - 1].toFixed(1) : '-') + '</td>' +
      '<td>' + spark('p99:' + route, 'p99') + '</td>' +
      '<td>' + (routeTotals[route] || 0) + '</td></tr>');
  }
  document.getElementById('routes').innerHTML = rows.join('');
}
function onTick(tick) {
  document.getElementById('tick').textContent = tick.tick;
  const total = tick.counters['server.requests'] || {};
  const started = tick.counters['server.requests_started'] || {};
  push('total_qps', total.rate_per_s || 0);
  document.getElementById('qps').textContent =
    (total.rate_per_s || 0).toFixed(1);
  document.getElementById('inflight').textContent =
    Math.max(0, (started.value || 0) - (total.value || 0));
  for (const [name, entry] of Object.entries(tick.counters)) {
    if (name.startsWith('server.requests.')) {
      const route = name.slice('server.requests.'.length);
      push('qps:' + route, entry.rate_per_s || 0);
      routeTotals[route] = entry.value || 0;
    }
  }
  for (const [name, entry] of Object.entries(tick.histograms)) {
    if (name.startsWith('server.latency_s.')) {
      const route = name.slice('server.latency_s.'.length);
      push('p99:' + route, (entry.p99_s || 0) * 1000);
    }
  }
  const gauges = tick.gauges || {};
  const rss = gauges['process_resident_memory_bytes'];
  if (rss) document.getElementById('rss').textContent = fmtBytes(rss.value);
  const threads = gauges['process_threads'];
  if (threads) {
    document.getElementById('threads').textContent = threads.value;
  }
  const memo = gauges['server.artefact_memo'];
  if (memo) document.getElementById('artefacts').textContent = memo.value;
  redraw();
}
function pollHealth() {
  fetch('/healthz').then(r => r.json()).then(h => {
    document.getElementById('phase').textContent = h.phase || '?';
  }).catch(() => {});
}
const link = document.getElementById('link');
const es = new EventSource('/events');
es.addEventListener('tick', e => { onTick(JSON.parse(e.data)); });
es.onopen = () => { link.textContent = 'live'; link.className = 'live'; };
es.onerror = () => {
  link.textContent = 'disconnected (retrying)'; link.className = 'dead';
};
pollHealth();
setInterval(pollHealth, 5000);
</script>
</body></html>
"""


def render_dashboard() -> str:
    """The ``/dashboard`` document (static bytes; the browser streams)."""
    return (
        _PAGE
        .replace("__CSS__", _CSS)
        .replace("__MAX_POINTS__", str(MAX_POINTS))
    )


__all__ = ["MAX_POINTS", "render_dashboard"]
