"""The always-on measurement service (``repro serve`` / ``repro loadgen``).

Turns the batch query/artefact/history machinery into a long-lived,
zero-dependency HTTP daemon — datasets, indexes and the artifact cache
load once at startup, then concurrent clients slice the corpus over
``GET /query``, fetch experiment results over ``GET /artefact/<id>``
and read the run history over ``GET /history`` / ``GET /regress``.
The live telemetry plane rides on the same daemon: ``GET /metrics``
(Prometheus text scrape), ``GET /stats`` (sampler window JSON),
``GET /events`` (Server-Sent-Events tick stream), ``GET /dashboard``
(auto-updating live view) and ``GET /profile`` (on-demand sampling
profiler). :mod:`repro.server.loadgen` stress-tests it;
:mod:`repro.server.slo` turns the measured latencies into CI-gated
SLO verdicts. See ``docs/SERVICE.md`` for the endpoint reference and
ops runbook.
"""

from repro.server.app import MeasurementServer, create_server
from repro.server.dashboard import render_dashboard
from repro.server.loadgen import LoadGenerator, LoadgenReport, run_loadgen
from repro.server.slo import ROUTE_SLOS_P99_S, check, record_from_loadgen
from repro.server.state import ServerState

__all__ = [
    "MeasurementServer",
    "create_server",
    "LoadGenerator",
    "LoadgenReport",
    "run_loadgen",
    "ROUTE_SLOS_P99_S",
    "check",
    "record_from_loadgen",
    "render_dashboard",
    "ServerState",
]
