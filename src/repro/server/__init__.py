"""The always-on measurement service (``repro serve`` / ``repro loadgen``).

Turns the batch query/artefact/history machinery into a long-lived,
zero-dependency HTTP daemon — datasets, indexes and the artifact cache
load once at startup, then concurrent clients slice the corpus over
``GET /query``, fetch experiment results over ``GET /artefact/<id>``
and read the run history over ``GET /history`` / ``GET /regress``.
:mod:`repro.server.loadgen` stress-tests it; :mod:`repro.server.slo`
turns the measured latencies into CI-gated SLO verdicts. See
``docs/SERVICE.md`` for the endpoint reference and ops runbook.
"""

from repro.server.app import MeasurementServer, create_server
from repro.server.loadgen import LoadGenerator, LoadgenReport, run_loadgen
from repro.server.slo import ROUTE_SLOS_P99_S, check, record_from_loadgen
from repro.server.state import ServerState

__all__ = [
    "MeasurementServer",
    "create_server",
    "LoadGenerator",
    "LoadgenReport",
    "run_loadgen",
    "ROUTE_SLOS_P99_S",
    "check",
    "record_from_loadgen",
    "ServerState",
]
