"""Service-level objectives for the measurement service.

The budgets below are per-route p99 latency ceilings for the canonical
CI workload (200 keep-alive clients with think time, default seed and
scale, warm indexes and warm artefact pool). Reference measurement:
~980 req/s with p99s of query 38ms / healthz 36ms / history 35ms /
artefact 38ms. Budgets sit an order of magnitude above those numbers
so they catch real regressions (an index rebuild on the hot path, a
lost cache, a cold GIL-bound compute stalling the tail) without
flaking on slower CI hardware. `docs/SERVICE.md` documents the
methodology; re-measure before tightening.

:func:`record_from_loadgen` is the bridge into the PR 5 history store:
one loadgen run becomes one :class:`~repro.obs.history.RunRecord` of
``kind="loadgen"`` whose "artefacts" are routes — ``wall_s`` holds the
route's p99 and ``slo_s`` its budget — so ``repro regress`` applies
both the absolute SLO gate and the rolling median/MAD
latency-regression gate to service latency with no new machinery.
"""

from __future__ import annotations

import platform
import time
from typing import Dict, Optional

from repro.obs.history import ArtefactStats, RunRecord, new_run_id
from repro.server.loadgen import LoadgenReport

#: Per-route p99 budgets (seconds) for the canonical CI workload.
#: The telemetry plane is part of the SLO surface: a scrape or stats
#: read that stalls under load is an observability outage exactly when
#: observability matters most.
ROUTE_SLOS_P99_S: Dict[str, float] = {
    "healthz": 0.50,
    "history": 0.60,
    "query": 1.00,
    "artefact": 4.00,
    "metrics": 0.60,
    "stats": 0.60,
}

#: Loadgen error-rate ceiling: above this the run is marked failed
#: outright (latency percentiles over failed requests mean nothing).
MAX_ERROR_RATE = 0.01


def check(report: LoadgenReport, slos: Optional[Dict[str, float]] = None) -> Dict[str, str]:
    """Route -> violation description for every route over budget."""
    slos = ROUTE_SLOS_P99_S if slos is None else slos
    violations: Dict[str, str] = {}
    for route, budget in sorted(slos.items()):
        stats = report.routes.get(route)
        if stats is None or not stats.latencies_s:
            continue
        p99 = stats.percentile(0.99)
        if p99 > budget:
            violations[route] = (
                f"p99 {p99 * 1000:.1f}ms > SLO {budget * 1000:.0f}ms"
            )
    return violations


def record_from_loadgen(
    report: LoadgenReport,
    slos: Optional[Dict[str, float]] = None,
    scale: float = 0.0,
    host: Optional[str] = None,
    now: Optional[float] = None,
) -> RunRecord:
    """Compact one loadgen run into a history record the regress engine
    can gate. Routes play the role artefacts play for batch runs."""
    slos = ROUTE_SLOS_P99_S if slos is None else slos
    created = now if now is not None else time.time()
    error_rate = (
        report.total_errors / report.total_requests
        if report.total_requests else 1.0
    )
    artefacts: Dict[str, ArtefactStats] = {}
    for route, stats in sorted(report.routes.items()):
        artefacts[route] = ArtefactStats(
            status="ok" if stats.errors == 0 else "error",
            wall_s=stats.percentile(0.99),
            slo_s=slos.get(route, 0.0),
        )
    ok = error_rate <= MAX_ERROR_RATE
    return RunRecord(
        run_id=new_run_id(created),
        kind="loadgen",
        created_unix=created,
        seed=report.seed,
        scale=scale,
        jobs=report.clients,
        host=host if host is not None else platform.node(),
        ok=ok,
        status="ok" if ok else "failed",
        total_wall_s=report.wall_s,
        artefacts=artefacts,
        metrics={
            "loadgen.requests": float(report.total_requests),
            "loadgen.errors": float(report.total_errors),
            "loadgen.throughput_rps": report.throughput_rps,
            "loadgen.chaos_latency_s": report.chaos_latency_s,
        },
    )
