"""Mobile Network Aggregator models.

The taxonomy of Figure 2 (light / thick / full MNAs) and the generic
aggregator operator: a sales front-end plus, for thick MNAs, the gateway
slice of the core network realised through IPX hub breakout.
"""

from repro.mna.aggregator import (
    MNAKind,
    CountryOffering,
    MobileNetworkAggregator,
    OfferingError,
)

__all__ = ["MNAKind", "CountryOffering", "MobileNetworkAggregator", "OfferingError"]
