"""Mobile Network Aggregators.

An MNA sells country-specific connectivity without owning radio assets.
The *kind* determines how much of the core it runs (Figure 2):

* light — sales only; the b-MNO's core carries everything (native
  profiles, like Airalo's Korea/Maldives/Thailand eSIMs).
* thick — sales plus the internet-gateway function, realised as PGWs in
  third-party (IPX/hosting) infrastructure: Airalo's main mode.
* full — sales plus a complete core of its own (e.g. Truphone).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.cellular.esim import RSPServer, SIMProfile
from repro.cellular.mno import OperatorRegistry
from repro.cellular.roaming import RoamingArchitecture


class MNAKind(enum.Enum):
    LIGHT = "light"
    THICK = "thick"
    FULL = "full"


class OfferingError(Exception):
    """Raised when an MNA has no offering for a requested country."""


@dataclass(frozen=True)
class CountryOffering:
    """How an MNA serves one country.

    ``b_mno_name`` issues the profile; ``v_mno_name`` is the visited
    network customers will camp on; ``expected_architecture`` is what the
    roaming fabric should produce (NATIVE when b == v). This is the
    ground-truth row behind Table 2.
    """

    country_iso3: str
    b_mno_name: str
    v_mno_name: str
    expected_architecture: RoamingArchitecture

    def __post_init__(self) -> None:
        native = self.b_mno_name == self.v_mno_name
        if native != (self.expected_architecture is RoamingArchitecture.NATIVE):
            raise ValueError(
                f"offering for {self.country_iso3}: architecture "
                f"{self.expected_architecture} inconsistent with b/v operators"
            )


class MobileNetworkAggregator:
    """An eSIM marketplace operator (Airalo, and comparables)."""

    def __init__(self, name: str, kind: MNAKind) -> None:
        self.name = name
        self.kind = kind
        self.rsp = RSPServer(name)
        self._offerings: Dict[str, CountryOffering] = {}

    # -- catalogue -------------------------------------------------------------

    def add_offering(self, offering: CountryOffering) -> None:
        if offering.country_iso3 in self._offerings:
            raise ValueError(f"duplicate offering for {offering.country_iso3}")
        self._offerings[offering.country_iso3] = offering

    def offering_for(self, country_iso3: str) -> CountryOffering:
        iso3 = country_iso3.upper()
        if iso3 not in self._offerings:
            raise OfferingError(f"{self.name} does not serve {iso3}")
        return self._offerings[iso3]

    def served_countries(self) -> List[str]:
        return sorted(self._offerings)

    def offerings_by_b_mno(self) -> Dict[str, List[CountryOffering]]:
        """Offerings grouped by issuing operator (the rows of Table 2)."""
        grouped: Dict[str, List[CountryOffering]] = {}
        for offering in self._offerings.values():
            grouped.setdefault(offering.b_mno_name, []).append(offering)
        for group in grouped.values():
            group.sort(key=lambda o: o.country_iso3)
        return grouped

    # -- provisioning ------------------------------------------------------------

    def sell_esim(
        self,
        country_iso3: str,
        operators: OperatorRegistry,
        rng: random.Random,
    ) -> SIMProfile:
        """Provision an eSIM for a destination country via RSP."""
        offering = self.offering_for(country_iso3)
        b_mno = operators.get(offering.b_mno_name)
        return self.rsp.issue(b_mno, offering.country_iso3, rng)

    def roaming_share(self) -> float:
        """Fraction of offerings that rely on roaming (21/24 for Airalo)."""
        if not self._offerings:
            return 0.0
        roaming = sum(
            1
            for o in self._offerings.values()
            if o.expected_architecture is not RoamingArchitecture.NATIVE
        )
        return roaming / len(self._offerings)
