"""Statistical machinery for the experiments.

Boxplot summaries (the paper's dominant visual), empirical CDFs, and the
two hypothesis tests the paper runs: Welch's t-test (SIM vs eSIM RTTs)
and Levene's test (variance homogeneity of RTTs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary plus mean and sample count."""

    count: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def whisker_low(self) -> float:
        """Tukey lower whisker: smallest point above Q1 - 1.5 IQR."""
        return max(self.minimum, self.q1 - 1.5 * self.iqr)

    @property
    def whisker_high(self) -> float:
        """Tukey upper whisker: largest point below Q3 + 1.5 IQR."""
        return min(self.maximum, self.q3 + 1.5 * self.iqr)


def boxplot_summary(values: Sequence[float]) -> BoxplotSummary:
    """Summary statistics for one boxplot."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    return BoxplotSummary(
        count=arr.size,
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
    )


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Sorted sample values and their cumulative probabilities."""
    if not values:
        raise ValueError("cannot build a CDF from an empty sample")
    xs = sorted(float(v) for v in values)
    n = len(xs)
    ys = [(i + 1) / n for i in range(n)]
    return xs, ys


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """P(X <= threshold) under the empirical distribution."""
    if not values:
        raise ValueError("cannot evaluate a CDF on an empty sample")
    return sum(1 for v in values if v <= threshold) / len(values)


def percent_above(values: Sequence[float], threshold: float) -> float:
    """Share of the sample strictly above ``threshold`` (0..1)."""
    if not values:
        raise ValueError("empty sample")
    return sum(1 for v in values if v > threshold) / len(values)


def percent_below(values: Sequence[float], threshold: float) -> float:
    """Share of the sample at or below ``threshold`` (0..1)."""
    return 1.0 - percent_above(values, threshold)


def welch_ttest(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's unequal-variance t-test; returns (statistic, p-value)."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("t-test needs at least two samples per group")
    result = scipy_stats.ttest_ind(list(a), list(b), equal_var=False)
    return float(result.statistic), float(result.pvalue)


def levene_test(*groups: Sequence[float]) -> Tuple[float, float]:
    """Levene's test for homogeneity of variances across groups."""
    if len(groups) < 2:
        raise ValueError("Levene's test needs at least two groups")
    if any(len(g) < 2 for g in groups):
        raise ValueError("each group needs at least two samples")
    result = scipy_stats.levene(*[list(g) for g in groups])
    return float(result.statistic), float(result.pvalue)
