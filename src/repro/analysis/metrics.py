"""Headline metrics.

The numbers the paper quotes in its abstract and takeaways: latency
inflation per architecture relative to native, the share of measurements
in the "less desirable" (> 150 ms) latency band, and the speed-category
split against the Speedtest Global Index thresholds.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, Sequence

from repro.cellular.roaming import RoamingArchitecture
from repro.measure.records import SpeedtestRecord

#: "Less desirable" latency threshold (Section 5.1).
LATENCY_BAD_MS = 150.0
#: Speedtest Global Index categories used by the paper.
SPEED_SLOW_MBPS = 15.0
SPEED_FAST_MBPS = 30.0


def latency_inflation_by_architecture(
    latencies: Dict[RoamingArchitecture, Sequence[float]],
) -> Dict[RoamingArchitecture, float]:
    """Mean latency inflation of each roaming architecture vs native.

    Returns, per architecture, ``mean(arch) / mean(native) - 1`` (e.g.
    6.21 for the paper's 621% HR figure). Requires a NATIVE entry.
    """
    if RoamingArchitecture.NATIVE not in latencies:
        raise ValueError("need NATIVE latencies as the baseline")
    native = latencies[RoamingArchitecture.NATIVE]
    if not native:
        raise ValueError("native baseline is empty")
    base = statistics.fmean(native)
    inflation: Dict[RoamingArchitecture, float] = {}
    for architecture, values in latencies.items():
        if architecture is RoamingArchitecture.NATIVE or not values:
            continue
        inflation[architecture] = statistics.fmean(values) / base - 1.0
    return inflation


def high_latency_share(values: Sequence[float], threshold: float = LATENCY_BAD_MS) -> float:
    """Share of measurements above the 'less desirable' threshold."""
    if not values:
        raise ValueError("empty sample")
    return sum(1 for v in values if v > threshold) / len(values)


def speed_categories(
    records: Iterable[SpeedtestRecord],
    slow_mbps: float = SPEED_SLOW_MBPS,
    fast_mbps: float = SPEED_FAST_MBPS,
) -> Dict[str, float]:
    """Share of downloads in the slow / medium / fast bands.

    Returns fractions keyed ``"slow"`` (<= slow threshold), ``"fast"``
    (>= fast threshold) and ``"medium"`` (in between) — the split quoted
    for Figure 13b.
    """
    downloads = [r.download_mbps for r in records]
    if not downloads:
        raise ValueError("no speedtest records")
    n = len(downloads)
    slow = sum(1 for d in downloads if d <= slow_mbps) / n
    fast = sum(1 for d in downloads if d >= fast_mbps) / n
    return {"slow": slow, "medium": 1.0 - slow - fast, "fast": fast}
