"""Generic thick-MNA auditing.

The paper suggests "extending our methodology to study additional eSIM
providers that may also operate as thick MNAs". This module packages the
whole pipeline — provision, attach, observe the public IP, traceroute,
verify the demarcation, geolocate the breakout, classify — as a reusable
auditor that works against *any* MNA built on the substrate (Airalo, the
emnify validation world, or an operator you define yourself).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.classify import classify_session_context
from repro.cellular.attach import SessionFactory
from repro.cellular.mno import OperatorRegistry
from repro.cellular.radio import RadioAccessTechnology, RadioConditions
from repro.cellular.roaming import RoamingArchitecture
from repro.cellular.ue import UserEquipment
from repro.geo.cities import City
from repro.measure.records import MeasurementContext
from repro.measure.traceroute import TracerouteEngine, postprocess
from repro.mna.aggregator import MobileNetworkAggregator
from repro.net.geoip import GeoIPDatabase
from repro.services.providers import ServiceProvider


@dataclass(frozen=True)
class AuditFinding:
    """What the audit concluded for one offering."""

    country_iso3: str
    b_mno: str
    v_mno: str
    inferred_architecture: RoamingArchitecture
    pgw_provider_org: str
    pgw_asn: int
    pgw_city: str
    pgw_country: str
    traceroutes: int
    verified_traceroutes: int

    @property
    def verification_rate(self) -> float:
        if self.traceroutes == 0:
            return 0.0
        return self.verified_traceroutes / self.traceroutes


@dataclass(frozen=True)
class AuditPlan:
    """Where to test one offering: the user city and visited network."""

    country_iso3: str
    user_city: City
    v_mno_name: str


class ThickMnaAuditor:
    """Runs the paper's classification methodology against any MNA."""

    def __init__(
        self,
        operators: OperatorRegistry,
        factory: SessionFactory,
        geoip: GeoIPDatabase,
        engine: TracerouteEngine,
        sp_targets: Sequence[ServiceProvider],
        traceroutes_per_offering: int = 12,
    ) -> None:
        if not sp_targets:
            raise ValueError("auditor needs at least one traceroute target")
        if traceroutes_per_offering < 1:
            raise ValueError("need at least one traceroute per offering")
        self.operators = operators
        self.factory = factory
        self.geoip = geoip
        self.engine = engine
        self.sp_targets = list(sp_targets)
        self.traceroutes_per_offering = traceroutes_per_offering

    def audit_offering(
        self,
        mna: MobileNetworkAggregator,
        plan: AuditPlan,
        rng: random.Random,
    ) -> AuditFinding:
        """Provision, attach, measure and classify one country offering."""
        esim = mna.sell_esim(plan.country_iso3, self.operators, rng)
        ue = UserEquipment.provision("audit device", plan.user_city, rng)
        ue.install_sim(esim)
        session = ue.switch_to(0, plan.v_mno_name, self.factory, rng)
        conditions = RadioConditions(RadioAccessTechnology.NR, 11, -84.0, 13.0)

        # Step 1: architecture from the public IP (web-campaign style).
        context = MeasurementContext.from_session(session, esim, conditions)
        architecture = classify_session_context(context, self.geoip, self.operators)

        # Step 2: breakout verification and geolocation via traceroutes.
        runs = 0
        verified = 0
        breakout: Optional[Dict] = None
        for index in range(self.traceroutes_per_offering):
            target = self.sp_targets[index % len(self.sp_targets)]
            result = self.engine.trace(session, target, conditions, rng)
            record = postprocess(result, session, esim, conditions, self.geoip)
            runs += 1
            if not record.pgw_verified:
                continue
            verified += 1
            geo = self.geoip.lookup(record.pgw_ip)
            breakout = {
                "asn": geo.asn,
                "city": geo.city,
                "country": geo.country_iso3,
            }
        ue.detach()

        if breakout is None:
            raise RuntimeError(
                f"audit of {plan.country_iso3} never verified a PGW hop "
                f"in {runs} traceroutes"
            )
        return AuditFinding(
            country_iso3=plan.country_iso3,
            b_mno=session.b_mno_name,
            v_mno=session.v_mno_name,
            inferred_architecture=architecture,
            pgw_provider_org=session.pgw_site.provider_org,
            pgw_asn=breakout["asn"],
            pgw_city=breakout["city"],
            pgw_country=breakout["country"],
            traceroutes=runs,
            verified_traceroutes=verified,
        )

    def audit(
        self,
        mna: MobileNetworkAggregator,
        plans: Sequence[AuditPlan],
        rng: random.Random,
    ) -> List[AuditFinding]:
        """Audit every plan; findings sorted by (b-MNO, country)."""
        findings = [self.audit_offering(mna, plan, rng) for plan in plans]
        findings.sort(key=lambda f: (f.b_mno, f.country_iso3))
        return findings


def render_findings(findings: Sequence[AuditFinding]) -> str:
    """Tabulate findings the way Table 2 reads."""
    lines = [
        f"{'Country':8} {'b-MNO':16} {'Type':7} {'Breakout':24} {'Verified':9}"
    ]
    for finding in findings:
        breakout = f"AS{finding.pgw_asn} {finding.pgw_city}, {finding.pgw_country}"
        lines.append(
            f"{finding.country_iso3:8} {finding.b_mno:16} "
            f"{finding.inferred_architecture.label:7} {breakout:24} "
            f"{finding.verification_rate:>8.0%}"
        )
    return "\n".join(lines)
