"""Analysis layer.

The paper's methodology distilled into reusable pieces: the roaming-
architecture classifier (public IP ASN vs b-MNO/v-MNO ASNs), traceroute
path analytics (private/public split, ASN diversity, PGW RTT series),
statistical machinery (boxplot summaries, CDFs, Welch t-test, Levene),
and headline latency/bandwidth metrics.
"""

from repro.analysis.classify import (
    ClassifiedBreakout,
    classify_architecture,
    classify_session_context,
    build_breakout_table,
)
from repro.analysis.stats import (
    BoxplotSummary,
    boxplot_summary,
    empirical_cdf,
    cdf_at,
    percent_above,
    percent_below,
    welch_ttest,
    levene_test,
)
from repro.analysis.paths import (
    path_length_series,
    unique_asn_medians,
    pgw_rtt_values,
    private_share_values,
)
from repro.analysis.jurisdiction import GeoExperience, assess_geo_experience
from repro.analysis.audit import (
    AuditFinding,
    AuditPlan,
    ThickMnaAuditor,
    render_findings,
)
from repro.analysis.metrics import (
    latency_inflation_by_architecture,
    high_latency_share,
    speed_categories,
    SPEED_SLOW_MBPS,
    SPEED_FAST_MBPS,
    LATENCY_BAD_MS,
)

__all__ = [
    "ClassifiedBreakout",
    "classify_architecture",
    "classify_session_context",
    "build_breakout_table",
    "BoxplotSummary",
    "boxplot_summary",
    "empirical_cdf",
    "cdf_at",
    "percent_above",
    "percent_below",
    "welch_ttest",
    "levene_test",
    "path_length_series",
    "unique_asn_medians",
    "pgw_rtt_values",
    "private_share_values",
    "latency_inflation_by_architecture",
    "high_latency_share",
    "speed_categories",
    "SPEED_SLOW_MBPS",
    "SPEED_FAST_MBPS",
    "LATENCY_BAD_MS",
    "GeoExperience",
    "assess_geo_experience",
    "AuditFinding",
    "AuditPlan",
    "ThickMnaAuditor",
    "render_findings",
]
