"""Content localization and data-jurisdiction analysis (Section 7).

Beyond performance, the paper flags two user implications of IHBO:
services geo-locate users at the PGW's country (wrong-language Netflix,
foreign content policies), and user traffic is handled by a third-party
network in an intermediary country the user never chose. This module
derives both from a session: the *apparent* country internet services
see, and the full set of jurisdictions the data path crosses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cellular.core import PDNSession
from repro.cellular.mno import OperatorRegistry
from repro.cellular.roaming import RoamingArchitecture


@dataclass(frozen=True)
class GeoExperience:
    """What geography-dependent services conclude about one session."""

    user_country: str
    apparent_country: str          # where the public IP geolocates
    architecture: RoamingArchitecture
    # Every jurisdiction the user-plane path crosses, in order:
    # visited country, intermediary (PGW/IPX) country, home country.
    jurisdictions: Tuple[str, ...]
    third_party_operator: str      # who runs the breakout

    @property
    def localized_correctly(self) -> bool:
        """True when geo-targeted content matches the user's location."""
        return self.apparent_country == self.user_country

    @property
    def crosses_third_country(self) -> bool:
        """Data handled in a country that is neither visited nor home."""
        return len(self.jurisdictions) > 2 or (
            len(self.jurisdictions) == 2
            and self.apparent_country not in (self.user_country,)
        )


def assess_geo_experience(
    session: PDNSession, operators: OperatorRegistry
) -> GeoExperience:
    """Derive the Section 7 implications for one attach."""
    user_country = session.sgw.city.country_iso3
    apparent = session.breakout_country
    b_mno = operators.get(session.b_mno_name)

    jurisdictions: List[str] = [user_country]
    if session.architecture is RoamingArchitecture.HR:
        # Traffic transits the IPX into the home country and breaks out there.
        if b_mno.country_iso3 not in jurisdictions:
            jurisdictions.append(b_mno.country_iso3)
    elif session.architecture is RoamingArchitecture.IHBO:
        # Breakout in the hub's country — typically neither home nor visited.
        if apparent not in jurisdictions:
            jurisdictions.append(apparent)
    # LBO and NATIVE break out in the visited country itself.

    return GeoExperience(
        user_country=user_country,
        apparent_country=apparent,
        architecture=session.architecture,
        jurisdictions=tuple(jurisdictions),
        third_party_operator=session.pgw_site.provider_org,
    )
