"""Terminal rendering of the paper's figure idioms.

The evaluation speaks in boxplots and CDFs; these helpers draw both as
monospace text so benchmark output shows the *shape* of each figure, not
just summary numbers. Pure string manipulation — no plotting stack.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.analysis.stats import BoxplotSummary


def _scale(value: float, low: float, high: float, width: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return max(0, min(width - 1, round(position * (width - 1))))


def ascii_boxplot(
    rows: Mapping[str, BoxplotSummary],
    width: int = 60,
    label_width: int = 22,
) -> str:
    """One boxplot per row on a shared axis.

    ``|--[==+==]--|`` per row: whiskers, interquartile box, median mark.
    """
    if not rows:
        raise ValueError("nothing to plot")
    if width < 10:
        raise ValueError("width too small")
    low = min(summary.whisker_low for summary in rows.values())
    high = max(summary.whisker_high for summary in rows.values())
    lines: List[str] = []
    for label, summary in rows.items():
        canvas = [" "] * width
        left = _scale(summary.whisker_low, low, high, width)
        right = _scale(summary.whisker_high, low, high, width)
        box_left = _scale(summary.q1, low, high, width)
        box_right = _scale(summary.q3, low, high, width)
        median = _scale(summary.median, low, high, width)
        for i in range(left, right + 1):
            canvas[i] = "-"
        for i in range(box_left, box_right + 1):
            canvas[i] = "="
        canvas[left] = "|"
        canvas[right] = "|"
        canvas[box_left] = "["
        canvas[box_right] = "]"
        canvas[median] = "+"
        lines.append(f"{label[:label_width]:{label_width}} {''.join(canvas)}")
    lines.append(
        f"{'':{label_width}} {low:<{width // 2}.0f}{high:>{width - width // 2}.0f}"
    )
    return "\n".join(lines)


def ascii_cdf(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Several CDFs on one grid; each series gets a distinct glyph."""
    if not series:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    populated = {k: v for k, v in series.items() if v[0]}
    if not populated:
        raise ValueError("all series are empty")
    low = min(xs[0] for xs, _ in populated.values())
    high = max(xs[-1] for xs, _ in populated.values())
    glyphs = "*o#@%&"
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, (xs, ys)) in enumerate(populated.items()):
        glyph = glyphs[index % len(glyphs)]
        legend.append(f"{glyph}={label}")
        for x, y in zip(xs, ys):
            col = _scale(x, low, high, width)
            row = height - 1 - _scale(y, 0.0, 1.0, height)
            grid[row][col] = glyph
    lines = ["1.0 |" + "".join(row) for row in grid[:1]]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {low:<{width // 2}.0f}{high:>{width - width // 2}.0f}")
    lines.append("     " + "  ".join(legend))
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    label_width: int = 22,
    unit: str = "",
) -> str:
    """Horizontal bar chart for per-category scalars."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("all values non-positive")
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(
            f"{label[:label_width]:{label_width}} {bar} {value:.1f}{unit}"
        )
    return "\n".join(lines)
