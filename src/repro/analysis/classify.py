"""Roaming-architecture classification.

The paper's core inference (Section 3.1): match the ASN of the public IP
assigned to a device against the b-MNO (home routing), the v-MNO (local
breakout), or anything else (IPX hub breakout). Applied over a campaign
it yields Table 2: visited countries grouped by b-MNO with their PGW
providers, locations and architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.cellular.mno import OperatorRegistry
from repro.cellular.roaming import RoamingArchitecture
from repro.measure.records import MeasurementContext
from repro.net.geoip import GeoIPDatabase


def classify_architecture(
    public_ip_asn: int,
    b_mno_asn: int,
    v_mno_asn: int,
    b_equals_v: bool = False,
) -> RoamingArchitecture:
    """The ASN-matching rule of Section 3.1.

    ``b_equals_v`` marks profiles whose issuer *is* the visited operator
    (native eSIMs) — there the same ASN match means "not roaming at all"
    rather than home routing.
    """
    if b_equals_v:
        return RoamingArchitecture.NATIVE
    if public_ip_asn == b_mno_asn:
        return RoamingArchitecture.HR
    if public_ip_asn == v_mno_asn:
        return RoamingArchitecture.LBO
    return RoamingArchitecture.IHBO


def classify_session_context(
    context: MeasurementContext,
    geoip: GeoIPDatabase,
    operators: OperatorRegistry,
) -> RoamingArchitecture:
    """Classify one measurement the way the paper does: from its public IP.

    Uses only externally observable data (public IP -> ASN via GeoIP,
    operator ASNs from the registry) — *not* the simulator's internal
    architecture label — so the experiments validate that the methodology
    recovers the ground truth.
    """
    public_asn = geoip.asn_of(context.public_ip)
    b_mno = operators.get(context.b_mno)
    v_mno = operators.get(context.v_mno)
    b_host = operators.parent_of(b_mno)
    v_host = operators.parent_of(v_mno)
    return classify_architecture(
        public_ip_asn=public_asn,
        b_mno_asn=b_mno.asn,
        v_mno_asn=v_mno.asn,
        b_equals_v=b_host.name == v_host.name,
    )


@dataclass(frozen=True)
class ClassifiedBreakout:
    """One row of the Table 2 dataset (pre-grouping)."""

    visited_country: str
    b_mno: str
    b_mno_country: str
    pgw_provider: str
    pgw_asn: int
    pgw_country: str
    architecture: RoamingArchitecture


def build_breakout_table(
    contexts: Iterable[MeasurementContext],
    geoip: GeoIPDatabase,
    operators: OperatorRegistry,
) -> List[ClassifiedBreakout]:
    """Aggregate measurement contexts into distinct breakout rows.

    Each distinct (visited country, b-MNO, PGW ASN) combination becomes
    one row, with the architecture inferred from the public IP. PGW
    provider/country come from the GeoIP record of the public IP — the
    same pipeline the paper runs on its campaign data.
    """
    rows: Dict[Tuple[str, str, int], ClassifiedBreakout] = {}
    for context in contexts:
        record = geoip.lookup(context.public_ip)
        architecture = classify_session_context(context, geoip, operators)
        b_mno = operators.get(context.b_mno)
        key = (context.country_iso3, context.b_mno, record.asn)
        if key in rows:
            continue
        rows[key] = ClassifiedBreakout(
            visited_country=context.country_iso3,
            b_mno=context.b_mno,
            b_mno_country=b_mno.country_iso3,
            pgw_provider=context.pgw_provider,
            pgw_asn=record.asn,
            pgw_country=record.country_iso3,
            architecture=architecture,
        )
    return sorted(
        rows.values(),
        key=lambda r: (r.b_mno, r.visited_country, r.pgw_asn),
    )
