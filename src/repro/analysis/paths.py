"""Traceroute path analytics (Section 4.3).

Slices post-processed traceroute records into the series the figures
plot: private/public path-length distributions per country and SIM kind
(Figures 7 and 10), median unique-ASN counts (Figure 6), PGW-hop RTT
samples (Figures 8 and 9) and private-latency shares (Figure 12).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cellular.esim import SIMKind
from repro.measure.records import TracerouteRecord


def path_length_series(
    records: Sequence[TracerouteRecord],
    segment: str = "private",
) -> Dict[Tuple[str, str], List[int]]:
    """Hop-count samples keyed by (country, config label).

    ``segment`` selects ``"private"`` (Figure 7) or ``"public"``
    (Figure 10) path lengths.
    """
    if segment not in ("private", "public"):
        raise ValueError("segment must be 'private' or 'public'")
    series: Dict[Tuple[str, str], List[int]] = {}
    for record in records:
        key = (record.context.country_iso3, record.context.config_label)
        value = record.private_hops if segment == "private" else record.public_hops
        series.setdefault(key, []).append(value)
    return series


def unique_asn_medians(
    records: Sequence[TracerouteRecord],
) -> Dict[Tuple[str, str], float]:
    """Median count of unique ASNs per (country, SIM/eSIM) — Figure 6."""
    buckets: Dict[Tuple[str, str], List[int]] = {}
    for record in records:
        kind = "SIM" if record.context.sim_kind is SIMKind.PHYSICAL else "eSIM"
        key = (record.context.country_iso3, kind)
        buckets.setdefault(key, []).append(len(record.unique_asns))
    return {key: statistics.median(counts) for key, counts in buckets.items()}


def pgw_rtt_values(
    records: Sequence[TracerouteRecord],
    country: Optional[str] = None,
    pgw_provider: Optional[str] = None,
    sim_kind: Optional[SIMKind] = None,
) -> List[float]:
    """Best RTTs observed at the PGW-IP hop, optionally filtered.

    The raw material of the Figure 8/9 CDFs: RTT where the first public
    IP answered.
    """
    out: List[float] = []
    for record in records:
        if record.pgw_rtt_ms is None:
            continue
        if country is not None and record.context.country_iso3 != country.upper():
            continue
        if pgw_provider is not None and record.context.pgw_provider != pgw_provider:
            continue
        if sim_kind is not None and record.context.sim_kind is not sim_kind:
            continue
        out.append(record.pgw_rtt_ms)
    return out


def private_share_values(
    records: Sequence[TracerouteRecord],
    country: Optional[str] = None,
    sim_kind: Optional[SIMKind] = None,
) -> List[float]:
    """Private-latency shares (PGW RTT / final RTT) for Figure 12."""
    out: List[float] = []
    for record in records:
        share = record.private_latency_share
        if share is None:
            continue
        if country is not None and record.context.country_iso3 != country.upper():
            continue
        if sim_kind is not None and record.context.sim_kind is not sim_kind:
            continue
        out.append(share)
    return out
