"""Static HTML dashboard over the history store (``repro report``).

Zero dependencies, zero scripts: one self-contained HTML file with
inline CSS, so it can be archived as a CI artifact and opened anywhere.
Per comparability group it renders a trend table (artefact rows, one
column per recent run, wall times with regression verdicts highlighted)
and, when the newest run recorded a trace that is still on disk, the
per-phase attribution and critical path from
:mod:`repro.obs.critical`.
"""

from __future__ import annotations

import html
import pathlib
import time
from typing import Dict, List, Optional, Union

from repro.obs.critical import render_critical
from repro.obs.history import HistoryStore, RunRecord
from repro.obs.regress import RegressionConfig, RegressionReport, compare
from repro.obs.sink import load_trace

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a24; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin: 0.5rem 0; }
th, td { border: 1px solid #d7d7e0; padding: 0.25rem 0.55rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f2f2f7; } td.name, th.name { text-align: left;
     font-family: ui-monospace, monospace; }
td.bad { background: #ffe3e3; font-weight: 600; }
td.err { background: #ffd4a8; font-weight: 600; }
pre { background: #f7f7fa; border: 1px solid #d7d7e0; padding: 0.75rem;
      overflow-x: auto; font-size: 0.8rem; }
p.meta, td.meta { color: #6b6b7b; font-size: 0.8rem; }
.ok-badge { color: #176e2c; } .fail-badge { color: #a61b1b; }
"""


def _fmt_wall(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.0f}ms"


def _trend_table(
    records: List[RunRecord], flagged: Dict[str, str]
) -> List[str]:
    """Artefact rows x run columns; ``flagged`` marks latest-run cells."""
    artefact_ids = sorted({
        artefact_id
        for record in records
        for artefact_id in record.artefacts
    })
    out = ["<table>", "<tr><th class=name>artefact</th>"]
    for record in records:
        out.append(f"<th title={html.escape(repr(record.run_id))}>"
                   f"{html.escape(record.run_id[-8:])}</th>")
    out.append("</tr>")
    for artefact_id in artefact_ids:
        out.append(f"<tr><td class=name>{html.escape(artefact_id)}</td>")
        for index, record in enumerate(records):
            stats = record.artefacts.get(artefact_id)
            if stats is None:
                out.append("<td>-</td>")
                continue
            latest = index == len(records) - 1
            css = ""
            title = ""
            if stats.status != "ok":
                css, title = "err", stats.status
            elif latest and artefact_id in flagged:
                css, title = "bad", flagged[artefact_id]
            cell = _fmt_wall(stats.wall_s) if stats.status == "ok" else "ERR"
            out.append(
                f"<td{' class=' + css if css else ''}"
                f"{' title=' + repr(html.escape(title)) if title else ''}>"
                f"{cell}</td>"
            )
        out.append("</tr>")
    out.append("</table>")
    return out


def render_html(
    store: HistoryStore,
    limit: int = 12,
    config: Optional[RegressionConfig] = None,
) -> str:
    """The dashboard for every comparability group in ``store``."""
    records = store.load()
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>repro run history</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro — cross-run history</h1>",
        f"<p class=meta>history: {html.escape(str(store.path))} · "
        f"{len(records)} recorded run(s) · generated "
        f"{time.strftime('%Y-%m-%d %H:%M:%S UTC', time.gmtime())}</p>",
    ]
    if not records:
        parts.append("<p>No runs recorded yet. Run "
                     "<code>python -m repro run-all --history DIR</code>.</p>")
        parts.append("</body></html>")
        return "\n".join(parts)

    groups: Dict[str, List[RunRecord]] = {}
    for record in records:
        groups.setdefault(record.group_key(), []).append(record)

    for key in sorted(groups):
        window = groups[key][-limit:]
        latest = window[-1]
        parts.append(f"<h2>{html.escape(key)}</h2>")
        badge = (
            "<span class=ok-badge>ok</span>" if latest.ok
            else "<span class=fail-badge>FAILED</span>"
        )
        parts.append(
            f"<p class=meta>latest run {html.escape(latest.run_id)} on "
            f"{html.escape(latest.host)}: {badge} · "
            f"total {_fmt_wall(latest.total_wall_s)} "
            f"(warm-up {_fmt_wall(latest.warm_wall_s)}) · "
            f"{len(window)} of {len(groups[key])} run(s) shown</p>"
        )
        flagged: Dict[str, str] = {}
        regression: Optional[RegressionReport] = None
        if len(groups[key]) >= 2:
            regression = compare(latest, groups[key][:-1], config)
            for verdict in regression.verdicts:
                flagged.setdefault(
                    verdict.artefact_id, f"{verdict.kind}: {verdict.detail}"
                )
        parts.extend(_trend_table(window, flagged))
        if regression is not None:
            if regression.ok():
                parts.append("<p class=ok-badge>no regressions against the "
                             "rolling baseline</p>")
            else:
                parts.append("<pre>" + html.escape(regression.render())
                             + "</pre>")
        trace_path = latest.trace_path
        if trace_path and pathlib.Path(trace_path).is_file():
            try:
                trace = load_trace(trace_path)
            except (OSError, ValueError):
                trace = None
            if trace is not None and trace.spans:
                parts.append("<h3>latest critical path</h3>")
                parts.append(
                    f"<p class=meta>{html.escape(trace_path)}</p>"
                )
                parts.append(
                    "<pre>" + html.escape(render_critical(trace)) + "</pre>"
                )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html(
    store: HistoryStore,
    path: Union[str, "pathlib.Path"],
    limit: int = 12,
    config: Optional[RegressionConfig] = None,
) -> pathlib.Path:
    """Render the dashboard and write it to ``path``; returns the path."""
    target = pathlib.Path(path)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_html(store, limit=limit, config=config))
    return target
