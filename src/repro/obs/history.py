"""The cross-run history store: one :class:`RunRecord` per ``run_all``.

PR 4 gave every run a trace; this module gives the traces (and the
runner's ledger) a memory. Each completed ``run_all`` appends one
compact JSON line — seed/scale/jobs/host, per-artefact wall and
cache-hit accounting, a metrics snapshot, result fingerprints and the
trace path — to ``history.jsonl`` inside a history directory. The
regression engine (:mod:`repro.obs.regress`) and the HTML report
(``python -m repro report``) read it back to turn isolated snapshots
into longitudinal trend data.

Design rules mirror :mod:`repro.core.cache`:

* **Atomic appends.** A record is serialized to one ``\\n``-terminated
  line and written with a single ``os.write`` on an ``O_APPEND`` file
  descriptor, so two concurrent ``run-all --history`` invocations can
  never interleave bytes within each other's records.
* **Corruption tolerance.** Loads skip anything they cannot use — a
  truncated final line from a killed writer, garbage bytes, records
  with an unknown (newer) schema version — and keep every record that
  parses. The store can always be appended to; it never needs repair.
* **Versioned schema.** Every record carries ``schema``; readers accept
  records up to their own :data:`SCHEMA_VERSION` and skip newer ones
  instead of misinterpreting them.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Union

#: Bump when a reader can no longer interpret older records.
SCHEMA_VERSION = 1

ENV_HISTORY_DIR = "REPRO_HISTORY_DIR"

_HISTORY_FILE = "history.jsonl"

PathLike = Union[str, "pathlib.Path"]


def default_history_root() -> pathlib.Path:
    """``$REPRO_HISTORY_DIR`` if set, else ``~/.cache/repro-airalo/history``."""
    override = os.environ.get(ENV_HISTORY_DIR)
    if override:
        return pathlib.Path(override).expanduser()
    from repro.core.cache import default_cache_root

    return default_cache_root() / "history"


@dataclass
class ArtefactStats:
    """Per-artefact slice of one run: what the ledger knew, plus the
    content fingerprint of the exported result."""

    status: str = "ok"
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_s: float = 0.0
    #: ``fingerprint("result", ...)`` of the exported JSON; empty when
    #: the artefact failed (there is no result to fingerprint).
    fingerprint: str = ""
    #: Declared latency budget for ``wall_s`` (0 = no SLO). Loadgen
    #: records store each route's p99 in ``wall_s`` and its budget here,
    #: so the regress engine can gate service latency absolutely.
    slo_s: float = 0.0

    def cache_hit_rate(self) -> Optional[float]:
        """Hit fraction of this artefact's cache lookups (None: no lookups)."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return None
        return self.cache_hits / lookups


@dataclass
class RunRecord:
    """One ``run_all``, compacted to a single history line."""

    run_id: str
    schema: int = SCHEMA_VERSION
    #: What produced this record: ``"run_all"`` (the batch runner) or
    #: ``"loadgen"`` (a service load-generation run). Different kinds
    #: never share a comparability key, so artefact walls and route p99s
    #: are baselined in separate populations.
    kind: str = "run_all"
    created_unix: float = 0.0
    seed: int = 0
    scale: float = 0.0
    jobs: int = 1
    host: str = ""
    ok: bool = True
    #: Run disposition: ``"ok"``, ``"failed"`` (some artefact not ok) or
    #: ``"interrupted"`` (SIGINT/SIGTERM stopped the run early). The
    #: regression engine skips interrupted runs when building baselines.
    status: str = "ok"
    total_wall_s: float = 0.0
    warm_wall_s: float = 0.0
    artefacts: Dict[str, ArtefactStats] = field(default_factory=dict)
    #: Counter snapshot (e.g. ``cache.hit``) when a recorder was live,
    #: plus the ledger-derived ``cache.*`` aggregates always.
    metrics: Dict[str, float] = field(default_factory=dict)
    trace_path: Optional[str] = None

    def group_key(self) -> str:
        """Comparability key: only runs of the same workload are baselined
        against each other. The historical ``run_all`` key shape is kept
        verbatim so pre-existing stores keep their baselines; other
        kinds prefix the key so they form their own populations."""
        key = f"seed{self.seed}-scale{self.scale:g}-jobs{self.jobs}"
        if self.kind != "run_all":
            return f"{self.kind}-{key}"
        return key

    def cache_hit_rate(self) -> Optional[float]:
        hits = sum(a.cache_hits for a in self.artefacts.values())
        misses = sum(a.cache_misses for a in self.artefacts.values())
        if not hits + misses:
            return None
        return hits / (hits + misses)

    def to_jsonable(self) -> Dict[str, Any]:
        data = asdict(self)
        return data

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "RunRecord":
        artefacts = {
            str(artefact_id): ArtefactStats(
                status=stats.get("status", "ok"),
                wall_s=stats.get("wall_s", 0.0),
                cache_hits=stats.get("cache_hits", 0),
                cache_misses=stats.get("cache_misses", 0),
                cache_hit_s=stats.get("cache_hit_s", 0.0),
                fingerprint=stats.get("fingerprint", ""),
                slo_s=stats.get("slo_s", 0.0),
            )
            for artefact_id, stats in data.get("artefacts", {}).items()
        }
        return cls(
            run_id=data["run_id"],
            schema=data.get("schema", SCHEMA_VERSION),
            kind=data.get("kind", "run_all"),
            created_unix=data.get("created_unix", 0.0),
            seed=data.get("seed", 0),
            scale=data.get("scale", 0.0),
            jobs=data.get("jobs", 1),
            host=data.get("host", ""),
            ok=data.get("ok", True),
            status=data.get("status")
            or ("ok" if data.get("ok", True) else "failed"),
            total_wall_s=data.get("total_wall_s", 0.0),
            warm_wall_s=data.get("warm_wall_s", 0.0),
            artefacts=artefacts,
            metrics=data.get("metrics", {}),
            trace_path=data.get("trace_path"),
        )


def new_run_id(now: Optional[float] = None) -> str:
    """A unique, sortable run id: UTC stamp plus a random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now or time.time()))
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def record_from_report(
    report: Any,
    metrics: Optional[Dict[str, float]] = None,
    host: Optional[str] = None,
    now: Optional[float] = None,
) -> RunRecord:
    """Compact a :class:`~repro.core.runner.RunReport` into a RunRecord.

    The RunReport ledger is the single source: per-artefact wall and
    cache accounting come straight from its rows, and each successful
    result is fingerprinted through the same canonicalisation the
    artifact cache keys use (:func:`repro.core.cache.fingerprint` over
    the exported JSON), so a byte-level change in any exported series
    shows up as a fingerprint change in the history.
    """
    from repro.core.cache import fingerprint
    from repro.experiments.export import jsonable

    created = now if now is not None else time.time()
    artefacts: Dict[str, ArtefactStats] = {}
    for run in report.runs:
        digest = ""
        if run.artefact_id in report.results:
            digest = fingerprint(
                "result",
                artefact=run.artefact_id,
                data=jsonable(report.results[run.artefact_id]),
            )
        artefacts[run.artefact_id] = ArtefactStats(
            status=run.status,
            wall_s=run.wall_s,
            cache_hits=run.cache_hits,
            cache_misses=run.cache_misses,
            cache_hit_s=run.cache_hit_s,
            fingerprint=digest,
        )
    snapshot: Dict[str, float] = dict(metrics or {})
    snapshot.setdefault(
        "cache.ledger.hits", sum(run.cache_hits for run in report.runs)
    )
    snapshot.setdefault(
        "cache.ledger.misses", sum(run.cache_misses for run in report.runs)
    )
    return RunRecord(
        run_id=new_run_id(created),
        created_unix=created,
        seed=report.seed,
        scale=report.scale,
        jobs=report.jobs,
        host=host if host is not None else platform.node(),
        ok=not report.failed(),
        status=(
            "interrupted"
            if getattr(report, "interrupted", False)
            else ("ok" if not report.failed() else "failed")
        ),
        total_wall_s=report.total_wall_s,
        warm_wall_s=report.warm_wall_s,
        artefacts=artefacts,
        metrics=snapshot,
        trace_path=report.trace_path,
    )


class HistoryStore:
    """Append-only JSONL store of :class:`RunRecord`\\ s."""

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = (
            pathlib.Path(root) if root is not None else default_history_root()
        )
        self.path = self.root / _HISTORY_FILE

    # -- append --------------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Persist ``record`` as one line; atomic against concurrent appends."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_jsonable(), sort_keys=True) + "\n"
        if self._needs_leading_newline():
            # A killed writer left a partial line with no terminator; seal
            # it off so this record starts on a fresh line. Still a single
            # write: the healthy path always leaves the file \n-terminated.
            line = "\n" + line
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record

    def _needs_leading_newline(self) -> bool:
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:  # missing or empty file
            return False

    # -- load ----------------------------------------------------------------

    def load(self) -> List[RunRecord]:
        """Every loadable record, in append order.

        Tolerates anything a crashed or newer writer can leave behind:
        non-JSON lines (a truncated final line), JSON that is not a
        record, and records with a schema version newer than this
        reader. Skipped lines never hide the records around them.
        """
        try:
            text = self.path.read_text()
        except (FileNotFoundError, NotADirectoryError):
            return []
        except OSError:
            return []
        records: List[RunRecord] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated or garbage line: keep the rest
            if not isinstance(data, dict) or "run_id" not in data:
                continue
            if data.get("schema", SCHEMA_VERSION) > SCHEMA_VERSION:
                continue  # written by a newer repro: skip, don't guess
            try:
                records.append(RunRecord.from_jsonable(data))
            except (KeyError, TypeError, AttributeError):
                continue
        return records

    def get(self, run_id: str) -> Optional[RunRecord]:
        """The record with ``run_id`` (unique-prefix match allowed)."""
        records = self.load()
        for record in records:
            if record.run_id == run_id:
                return record
        prefixed = [r for r in records if r.run_id.startswith(run_id)]
        if len(prefixed) == 1:
            return prefixed[0]
        return None

    def last(self, key: Optional[str] = None) -> Optional[RunRecord]:
        """The most recent record (optionally restricted to a group key)."""
        records = self.load()
        if key is not None:
            records = [r for r in records if r.group_key() == key]
        return records[-1] if records else None

    def runs_for(self, key: str) -> List[RunRecord]:
        """All records sharing one comparability key, append order."""
        return [r for r in self.load() if r.group_key() == key]
