"""The metrics registry: counters, gauges, fixed-bucket histograms.

Metrics are cheap aggregates that survive where spans would drown — a
cache that answers thousands of lookups per run gets two counters and a
latency histogram, not a thousand spans. Instruments are owned by a
:class:`MetricsRegistry` (one per recorder), keyed by name, and merge
across processes so worker metrics fold into the parent's registry.

Histograms use fixed upper-bound buckets (Prometheus-style cumulative
counts are derivable; we store per-bucket counts plus a ``+Inf``
overflow slot) so merging is exact — no quantile sketches, no deps.

Counters and histograms are **scrape-safe**: writes and snapshots
synchronize on a per-instrument lock, so a ``/metrics`` scrape or the
live sampler reading a registry mid-``observe`` can never see a torn
``(count, sum, buckets)`` triple. The null instruments the disabled
path uses stay lock-free — the <2% overhead budget is unaffected.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): microsecond cache hits through
#: minute-scale campaign builds.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        # ``+=`` is a read-modify-write across bytecodes: two handler
        # threads racing it can lose increments. The lock makes the
        # counter exact under the threaded server.
        with self._lock:
            self.value += amount

    def to_jsonable(self) -> Dict[str, Any]:
        with self._lock:
            return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_jsonable(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket distribution: per-bucket counts, sum and count.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow slot.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> None:
        bounds = tuple(buckets)
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram buckets must be non-empty and ascending")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow (> last bound)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile (the bucket's upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def to_jsonable(self) -> Dict[str, Any]:
        # The lock pairs with ``observe``: a snapshot taken mid-observe
        # always satisfies ``count == sum(counts)``.
        with self._lock:
            return {
                "type": "histogram",
                "name": self.name,
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }


class MetricsRegistry:
    """All instruments of one recorder, keyed by name.

    Lookup is lock-free on the hit path (dict reads are atomic);
    instrument *creation* double-checks under the registry lock so two
    handler threads racing the first touch of a name share one
    instrument instead of silently splitting its counts.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument lookup (creating lazily) --------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(
                        name, buckets
                    )
        return instrument

    # -- introspection ------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def operation_count(self) -> int:
        """Total recorded metric operations (counter incs count as their
        accumulated value; one observe = one operation). Used by the
        overhead benchmark to size the disabled-path cost model."""
        return sum(c.value for c in self._counters.values()) + sum(
            h.count for h in self._histograms.values()
        ) + len(self._gauges)

    def to_jsonable(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for name in sorted(self._counters):
            out.append(self._counters[name].to_jsonable())
        for name in sorted(self._gauges):
            out.append(self._gauges[name].to_jsonable())
        for name in sorted(self._histograms):
            out.append(self._histograms[name].to_jsonable())
        return out

    def snapshot(self) -> List[Dict[str, Any]]:
        """A scrape-consistent copy of every instrument.

        Each instrument is copied under its own lock, so concurrent
        ``inc``/``observe`` calls can reorder *between* instruments but
        never tear one — every histogram in the snapshot satisfies
        ``count == sum(counts)``. This is what ``/metrics`` exposition
        and the live sampler read.
        """
        return self.to_jsonable()

    # -- cross-process merge -------------------------------------------------

    def merge_jsonable(self, exported: Sequence[Dict[str, Any]]) -> None:
        """Fold an exported registry (e.g. from a worker) into this one.

        Counters and histogram cells add; gauges take the incoming value
        (last writer wins, like a scrape). Histograms must agree on
        buckets — all call sites share the module-level defaults.
        """
        for item in exported:
            kind, name = item["type"], item["name"]
            if kind == "counter":
                self.counter(name).inc(item["value"])
            elif kind == "gauge":
                self.gauge(name).set(item["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, tuple(item["buckets"]))
                if list(histogram.buckets) != list(item["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                with histogram._lock:
                    for index, count in enumerate(item["counts"]):
                        histogram.counts[index] += count
                    histogram.sum += item["sum"]
                    histogram.count += item["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r}")


class NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
