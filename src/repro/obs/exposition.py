"""Prometheus text-format (v0.0.4) exposition over the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot — plus a
handful of process gauges read from ``/proc/self`` — as the plain-text
scrape format every pull-based collector understands. Zero
dependencies, zero allocations kept: the renderer is a pure function
over a snapshot, so a scrape never blocks a writer for longer than one
per-instrument lock.

Naming rules (documented in ``docs/OBSERVABILITY.md``):

* every registry metric is prefixed ``repro_`` and every character
  outside ``[a-zA-Z0-9_]`` becomes ``_`` (``server.latency_s.query``
  -> ``repro_server_latency_s_query``);
* counters gain the conventional ``_total`` suffix;
* histograms render cumulative ``_bucket{le="..."}`` series ending in
  ``le="+Inf"``, plus ``_sum`` and ``_count``;
* process metrics keep their conventional Prometheus names
  (``process_resident_memory_bytes``, ``process_open_fds``, ...) and
  are omitted silently on platforms without ``/proc``.

The registry portion of the output is byte-deterministic for a given
snapshot (instruments sort by name; floats format via ``repr``-stable
rules), which the golden scrape test pins.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

#: Prefix for every registry-owned metric in the exposition.
NAME_PREFIX = "repro_"

#: The scrape content type (``version`` names the text format).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Wall clock at telemetry import — the uptime epoch for process gauges.
_START_UNIX = time.time()

_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


def metric_name(raw: str, suffix: str = "") -> str:
    """Map a registry instrument name onto a legal exposition name."""
    sanitized = "".join(
        char if char in _ALLOWED else "_" for char in raw
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{NAME_PREFIX}{sanitized}{suffix}"


def format_value(value: Any) -> str:
    """Render one sample value the way the text format expects.

    Integers (and integral floats) print without a fractional part so
    counters stay exact; everything else uses ``repr``, which is
    shortest-round-trip stable in Python 3 — the same float always
    renders the same bytes.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_snapshot(snapshot: Sequence[Dict[str, Any]]) -> str:
    """Render one registry snapshot (``MetricsRegistry.snapshot()``).

    Pure and deterministic: same snapshot, same bytes. The snapshot
    order (counters, gauges, histograms — each sorted by name) is the
    registry's own.
    """
    lines: List[str] = []
    for item in snapshot:
        kind, raw = item["type"], item["name"]
        if kind == "counter":
            name = metric_name(raw, "_total")
            lines.append(f"# HELP {name} repro counter {raw}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {format_value(item['value'])}")
        elif kind == "gauge":
            name = metric_name(raw)
            lines.append(f"# HELP {name} repro gauge {raw}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {format_value(item['value'])}")
        elif kind == "histogram":
            name = metric_name(raw)
            lines.append(f"# HELP {name} repro histogram {raw}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(item["buckets"], item["counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{format_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {format_value(item["count"])}'
            )
            lines.append(f"{name}_sum {format_value(item['sum'])}")
            lines.append(f"{name}_count {format_value(item['count'])}")
        else:
            raise ValueError(f"unknown metric type {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- process gauges (/proc/self) ----------------------------------------------


def _proc_statm() -> Optional[Dict[str, float]]:
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        page = os.sysconf("SC_PAGE_SIZE")
        return {
            "process_virtual_memory_bytes": float(fields[0]) * page,
            "process_resident_memory_bytes": float(fields[1]) * page,
        }
    except (OSError, ValueError, IndexError):
        return None


def _open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def process_samples(now: Optional[float] = None) -> List[Dict[str, Any]]:
    """Point-in-time process gauges: RSS, FDs, threads, GC, uptime.

    Returns ``{"name", "type", "help", "value", "labels"}`` dicts the
    renderer and the live sampler both consume. ``/proc``-backed
    entries vanish on platforms without procfs instead of erroring.
    """
    stamp = time.time() if now is None else now
    samples: List[Dict[str, Any]] = []

    def add(name: str, kind: str, help_text: str, value: float,
            labels: Optional[Dict[str, str]] = None) -> None:
        samples.append({
            "name": name, "type": kind, "help": help_text,
            "value": value, "labels": labels or {},
        })

    memory = _proc_statm()
    if memory is not None:
        add("process_resident_memory_bytes", "gauge",
            "Resident set size in bytes",
            memory["process_resident_memory_bytes"])
        add("process_virtual_memory_bytes", "gauge",
            "Virtual memory size in bytes",
            memory["process_virtual_memory_bytes"])
    fds = _open_fds()
    if fds is not None:
        add("process_open_fds", "gauge",
            "Open file descriptors", float(fds))
    add("process_threads", "gauge",
        "Live Python threads", float(threading.active_count()))
    add("process_start_time_seconds", "gauge",
        "Unix time the telemetry plane initialized", _START_UNIX)
    add("process_uptime_seconds", "gauge",
        "Seconds since the telemetry plane initialized",
        max(0.0, stamp - _START_UNIX))
    for generation, stats in enumerate(gc.get_stats()):
        add("python_gc_collections_total", "counter",
            "GC collections per generation",
            float(stats.get("collections", 0)),
            {"generation": str(generation)})
        add("python_gc_objects_collected_total", "counter",
            "Objects collected by the GC per generation",
            float(stats.get("collected", 0)),
            {"generation": str(generation)})
    return samples


def render_process(now: Optional[float] = None) -> str:
    """Render the process gauges (no registry needed)."""
    lines: List[str] = []
    seen: set = set()
    for sample in process_samples(now=now):
        if sample["name"] not in seen:
            seen.add(sample["name"])
            lines.append(f"# HELP {sample['name']} {sample['help']}")
            lines.append(f"# TYPE {sample['name']} {sample['type']}")
        lines.append(
            f"{sample['name']}{_labels(sample['labels'])} "
            f"{format_value(sample['value'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def render(
    registry: Optional[Any] = None,
    include_process: bool = True,
    now: Optional[float] = None,
) -> str:
    """The full ``GET /metrics`` body.

    ``registry`` defaults to the current recorder's
    :class:`~repro.obs.metrics.MetricsRegistry` when it has one; with
    the null recorder installed only the process section renders.
    """
    if registry is None:
        from repro.obs.recorder import get_recorder

        registry = getattr(get_recorder(), "metrics", None)
    parts: List[str] = []
    if registry is not None:
        parts.append(render_snapshot(registry.snapshot()))
    if include_process:
        parts.append(render_process(now=now))
    return "".join(parts)


def parse_sample_line(line: str) -> Optional[Dict[str, Any]]:
    """Parse one non-comment exposition line -> name/labels/value.

    Shared with ``tools/check_exposition.py`` (which imports this
    module when available) and the scrape-monotonicity tests. Returns
    ``None`` for blank and comment lines; raises ``ValueError`` on a
    malformed sample.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if "{" in stripped:
        name, _, rest = stripped.partition("{")
        labels_raw, _, value_part = rest.partition("}")
        labels: Dict[str, str] = {}
        for pair in filter(None, labels_raw.split(",")):
            key, _, value = pair.partition("=")
            if not value.startswith('"') or not value.endswith('"'):
                raise ValueError(f"unquoted label value in {line!r}")
            labels[key.strip()] = value[1:-1]
    else:
        name, _, value_part = stripped.partition(" ")
        labels = {}
    fields = value_part.split()
    if not fields:
        raise ValueError(f"sample line without a value: {line!r}")
    raw_value = fields[0]
    if raw_value == "+Inf":
        value = float("inf")
    elif raw_value == "-Inf":
        value = float("-inf")
    else:
        value = float(raw_value)
    if not name or not all(
        char in _ALLOWED or char == ":" for char in name
    ) or name[0].isdigit():
        raise ValueError(f"illegal metric name {name!r}")
    return {"name": name, "labels": labels, "value": value}


def parse_exposition(text: str) -> Dict[str, Any]:
    """Parse a whole scrape into ``{"types": ..., "samples": [...]}}``.

    Minimal but strict enough for CI: every sample line must parse,
    and a family's samples must follow its ``# TYPE`` declaration when
    one exists.
    """
    types: Dict[str, str] = {}
    samples: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("# TYPE "):
            fields = stripped.split()
            if len(fields) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            if fields[3] not in ("counter", "gauge", "histogram",
                                 "summary", "untyped"):
                raise ValueError(
                    f"line {lineno}: unknown type {fields[3]!r}"
                )
            types[fields[2]] = fields[3]
            continue
        try:
            sample = parse_sample_line(line)
        except ValueError as error:
            raise ValueError(f"line {lineno}: {error}")
        if sample is not None:
            sample["line"] = lineno
            samples.append(sample)
    return {"types": types, "samples": samples}


def counter_values(text: str) -> Dict[str, float]:
    """``name{labels} -> value`` for every counter sample in a scrape.

    Histogram ``_bucket``/``_count`` series count as counters too —
    they are cumulative — so monotonicity checks cover them.
    """
    parsed = parse_exposition(text)
    out: Dict[str, float] = {}
    for sample in parsed["samples"]:
        name = sample["name"]
        family = name
        for suffix in ("_bucket", "_count", "_sum", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        declared = parsed["types"].get(family) or parsed["types"].get(name)
        is_cumulative = (
            declared == "counter"
            or (declared == "histogram" and not name.endswith("_sum"))
        )
        if is_cumulative:
            key = name + _labels(sample["labels"])
            out[key] = sample["value"]
    return out


__all__ = [
    "CONTENT_TYPE",
    "NAME_PREFIX",
    "counter_values",
    "format_value",
    "metric_name",
    "parse_exposition",
    "parse_sample_line",
    "process_samples",
    "render",
    "render_process",
    "render_snapshot",
]
