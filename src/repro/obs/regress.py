"""Performance-regression detection over the cross-run history store.

Given the :class:`~repro.obs.history.HistoryStore`, this module groups
comparable runs (same ``seed/scale/jobs`` key), computes rolling
median/MAD baselines per artefact, and emits one :class:`Verdict` per
anomaly in the candidate run:

* ``latency-regression`` — an artefact's wall time exceeds the baseline
  median by both a relative factor and an absolute floor (and, when
  enough baseline runs exist, by a robust MAD band), so millisecond
  jitter on trivial artefacts never trips the gate;
* ``cache-hit-drop`` — an artefact's cache-hit rate fell by more than a
  configurable absolute amount (a silent collapse back to rebuilding);
* ``fingerprint-change`` — the exported result bytes changed for the
  same workload key: not slower, *wrong* (or at least different);
* ``new-failure`` — an artefact that succeeded in the baseline errored.

Two identical runs therefore produce zero verdicts, and
``python -m repro regress --fail-on-regression`` turns any verdict into
a non-zero exit for CI.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.obs.history import HistoryStore, RunRecord

#: Verdict kinds, in severity order (correctness before performance).
KIND_NEW_FAILURE = "new-failure"
KIND_FINGERPRINT = "fingerprint-change"
KIND_SLO = "slo-violation"
KIND_LATENCY = "latency-regression"
KIND_HIT_RATE = "cache-hit-drop"

_KIND_ORDER = {
    KIND_NEW_FAILURE: 0,
    KIND_FINGERPRINT: 1,
    KIND_SLO: 2,
    KIND_LATENCY: 3,
    KIND_HIT_RATE: 4,
}


@dataclass(frozen=True)
class RegressionConfig:
    """Thresholds for the verdict engine (defaults are CI-safe)."""

    #: Rolling window: at most this many prior runs form the baseline.
    baseline_window: int = 10
    #: Relative wall-time excess over the baseline median to flag.
    latency_threshold: float = 0.5
    #: Absolute wall-time excess floor (drowns scheduler jitter on
    #: millisecond artefacts).
    min_latency_excess_s: float = 0.1
    #: MAD multiplier: with >= 3 baseline runs the excess must also
    #: clear ``median + mad_k * MAD``.
    mad_k: float = 4.0
    #: Absolute cache-hit-rate drop to flag.
    hit_rate_drop: float = 0.15

    def __post_init__(self) -> None:
        if self.baseline_window < 1:
            raise ValueError("baseline_window must be >= 1")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be > 0")
        if not 0 < self.hit_rate_drop <= 1:
            raise ValueError("hit_rate_drop must be in (0, 1]")


@dataclass
class Verdict:
    """One flagged anomaly in the candidate run."""

    artefact_id: str
    kind: str
    baseline: str
    observed: str
    detail: str

    def render(self) -> str:
        return (
            f"{self.artefact_id:9} {self.kind:20} "
            f"{self.baseline:>14} -> {self.observed:<14} {self.detail}"
        )


@dataclass
class RegressionReport:
    """Every verdict of one candidate-vs-baseline comparison."""

    run_id: str
    key: str
    baseline_ids: List[str] = field(default_factory=list)
    verdicts: List[Verdict] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.verdicts

    def render(self) -> str:
        if len(self.baseline_ids) == 1:
            versus = f"baseline run {self.baseline_ids[0]}"
        else:
            versus = f"{len(self.baseline_ids)} baseline run(s)"
        lines = [f"run {self.run_id} ({self.key}) vs {versus}"]
        if self.ok():
            lines.append("no regressions detected")
            return "\n".join(lines)
        lines.append(
            f"{'artefact':9} {'verdict':20} {'baseline':>14}    {'observed':<14}"
        )
        for verdict in self.verdicts:
            lines.append(verdict.render())
        lines.append(f"{len(self.verdicts)} regression verdict(s)")
        return "\n".join(lines)


def median_mad(values: Sequence[float]) -> "tuple[float, float]":
    """Rolling-baseline statistics: median and median absolute deviation."""
    med = statistics.median(values)
    mad = statistics.median([abs(value - med) for value in values])
    return med, mad


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def compare(
    candidate: RunRecord,
    baselines: Sequence[RunRecord],
    config: Optional[RegressionConfig] = None,
) -> RegressionReport:
    """Judge ``candidate`` against explicit ``baselines`` (append order)."""
    config = config or RegressionConfig()
    baselines = list(baselines)[-config.baseline_window:]
    report = RegressionReport(
        run_id=candidate.run_id,
        key=candidate.group_key(),
        baseline_ids=[record.run_id for record in baselines],
    )
    # SLO gating is absolute — a declared budget needs no baseline, so a
    # service's very first recorded loadgen run is already gated.
    for artefact_id, observed in sorted(candidate.artefacts.items()):
        if (
            observed.slo_s > 0
            and observed.status == "ok"
            and observed.wall_s > observed.slo_s
        ):
            report.verdicts.append(Verdict(
                artefact_id=artefact_id,
                kind=KIND_SLO,
                baseline=_fmt_s(observed.slo_s),
                observed=_fmt_s(observed.wall_s),
                detail=(
                    f"{observed.wall_s / observed.slo_s:.2f}x the declared "
                    f"SLO budget"
                ),
            ))
    if not baselines:
        report.verdicts.sort(
            key=lambda v: (_KIND_ORDER.get(v.kind, 9), v.artefact_id)
        )
        return report
    for artefact_id, observed in sorted(candidate.artefacts.items()):
        history = [
            record.artefacts[artefact_id]
            for record in baselines
            if artefact_id in record.artefacts
        ]
        if not history:
            continue  # artefact is new to this group: nothing to compare

        baseline_ok = [stats for stats in history if stats.status == "ok"]
        if observed.status == "interrupted":
            # The artefact never ran (the run was stopped first): that is
            # not a failure and there is nothing to compare.
            continue
        if observed.status != "ok":
            if baseline_ok:
                report.verdicts.append(Verdict(
                    artefact_id=artefact_id,
                    kind=KIND_NEW_FAILURE,
                    baseline="ok",
                    observed=observed.status,
                    detail="artefact errored; baseline runs succeeded",
                ))
            continue  # no result: latency/fingerprint checks don't apply

        # Correctness: the exported bytes must match the most recent
        # successful baseline fingerprint for the same workload key.
        last_print = next(
            (s.fingerprint for s in reversed(baseline_ok) if s.fingerprint), ""
        )
        if last_print and observed.fingerprint and observed.fingerprint != last_print:
            report.verdicts.append(Verdict(
                artefact_id=artefact_id,
                kind=KIND_FINGERPRINT,
                baseline=last_print[-12:],
                observed=observed.fingerprint[-12:],
                detail="exported result bytes changed for an identical workload",
            ))

        # Latency: robust rolling baseline over the successful runs.
        walls = [stats.wall_s for stats in baseline_ok]
        if walls:
            med, mad = median_mad(walls)
            excess = observed.wall_s - med
            slow = (
                excess > config.min_latency_excess_s
                and observed.wall_s > med * (1.0 + config.latency_threshold)
            )
            if slow and len(walls) >= 3:
                slow = excess > config.mad_k * mad
            if slow:
                report.verdicts.append(Verdict(
                    artefact_id=artefact_id,
                    kind=KIND_LATENCY,
                    baseline=_fmt_s(med),
                    observed=_fmt_s(observed.wall_s),
                    detail=(
                        f"{observed.wall_s / med:.2f}x the median of "
                        f"{len(walls)} baseline run(s)"
                        + (f" (MAD {_fmt_s(mad)})" if len(walls) >= 3 else "")
                    ),
                ))

        # Cache economics: a hit-rate collapse means the artefact went
        # back to rebuilding inputs it used to load.
        observed_rate = observed.cache_hit_rate()
        baseline_rates = [
            rate for rate in (s.cache_hit_rate() for s in baseline_ok)
            if rate is not None
        ]
        if observed_rate is not None and baseline_rates:
            med_rate, _ = median_mad(baseline_rates)
            if med_rate - observed_rate > config.hit_rate_drop:
                report.verdicts.append(Verdict(
                    artefact_id=artefact_id,
                    kind=KIND_HIT_RATE,
                    baseline=f"{med_rate:.0%}",
                    observed=f"{observed_rate:.0%}",
                    detail="cache-hit rate dropped beyond threshold",
                ))
    report.verdicts.sort(
        key=lambda v: (_KIND_ORDER.get(v.kind, 9), v.artefact_id)
    )
    return report


def detect(
    store: HistoryStore,
    run_id: Optional[str] = None,
    against: Optional[str] = None,
    config: Optional[RegressionConfig] = None,
) -> RegressionReport:
    """Judge one stored run against its rolling (or pinned) baseline.

    ``run_id`` selects the candidate (default: the newest record);
    ``against`` pins the baseline to one specific run instead of the
    rolling window of earlier same-key runs. Raises :class:`KeyError`
    for unknown ids and :class:`ValueError` when there is nothing to
    compare against.
    """
    records = store.load()
    if not records:
        raise ValueError(f"no runs recorded under {store.root}")
    if run_id is None:
        candidate = records[-1]
    else:
        found = store.get(run_id)
        if found is None:
            raise KeyError(f"unknown run id {run_id!r} in {store.root}")
        candidate = found
    if against is not None:
        baseline = store.get(against)
        if baseline is None:
            raise KeyError(f"unknown baseline run id {against!r} in {store.root}")
        if baseline.group_key() != candidate.group_key():
            raise ValueError(
                f"run {candidate.run_id} ({candidate.group_key()}) is not "
                f"comparable to {baseline.run_id} ({baseline.group_key()})"
            )
        baselines: List[RunRecord] = [baseline]
    else:
        key = candidate.group_key()
        baselines = [
            record for record in records
            if record.group_key() == key and record.run_id != candidate.run_id
            and record.created_unix <= candidate.created_unix
            # Interrupted runs are partial by definition: baselining
            # against them turns every artefact they skipped into a
            # false new-failure/latency verdict on the next full run.
            and record.status != "interrupted"
        ]
        if not baselines:
            if any(s.slo_s > 0 for s in candidate.artefacts.values()):
                # SLO budgets gate absolutely: a first-ever loadgen run
                # is still judged against its declared budgets.
                return compare(candidate, [], config)
            raise ValueError(
                f"run {candidate.run_id} has no earlier baseline runs for "
                f"key {key} — record at least two comparable runs first"
            )
    return compare(candidate, baselines, config)
