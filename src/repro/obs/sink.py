"""The per-run trace file: JSON-lines, written alongside artefacts.

Format — one JSON object per line, discriminated by ``type``:

* ``{"type": "meta", "trace_id": ..., "created_unix": ..., "attrs": {...}}``
  — exactly one, first;
* ``{"type": "span", "name": ..., "span_id": ..., "parent_id": ...,
  "start_unix": ..., "duration_s": ..., "status": ..., "attrs": {...},
  "events": [...]}`` — one per finished span, completion order;
* ``{"type": "event", ...}`` — trace-level events emitted outside any span;
* ``{"type": "metric", "metric": {...}}`` — one per instrument, sorted
  by kind then name.

Timestamps live *only* here — never in artefact bytes — so a traced
``run_all`` exports byte-identical results to an untraced one.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.obs.recorder import TraceRecorder

PathLike = Union[str, "pathlib.Path"]


@dataclass
class TraceData:
    """A trace file, parsed back into its three record kinds."""

    trace_id: str = ""
    created_unix: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    def roots(self) -> List[Dict[str, Any]]:
        """Spans with no parent in the trace (normally exactly one)."""
        known = {span["span_id"] for span in self.spans}
        return [
            span for span in self.spans
            if span.get("parent_id") is None or span["parent_id"] not in known
        ]

    def children_of(self, span_id: Optional[str]) -> List[Dict[str, Any]]:
        return [span for span in self.spans if span.get("parent_id") == span_id]


def write_trace(
    recorder: TraceRecorder,
    path: PathLike,
    attrs: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Serialize ``recorder`` to ``path`` as JSONL; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "type": "meta",
                "trace_id": recorder.trace_id,
                "created_unix": time.time(),
                "attrs": attrs or {},
            },
            sort_keys=True,
        )
    ]
    for span in recorder.spans:
        lines.append(
            json.dumps({"type": "span", **span.to_jsonable()}, sort_keys=True)
        )
    for event in recorder.orphan_events:
        lines.append(
            json.dumps({"type": "event", **event.to_jsonable()}, sort_keys=True)
        )
    for metric in recorder.metrics.to_jsonable():
        lines.append(json.dumps({"type": "metric", "metric": metric}, sort_keys=True))
    target.write_text("\n".join(lines) + "\n")
    return target


def load_trace(path: PathLike) -> TraceData:
    """Parse a trace file; unknown line types are ignored (forward compat)."""
    trace = TraceData()
    text = pathlib.Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_number}: not a JSONL trace line ({error})"
            ) from None
        kind = record.get("type")
        if kind == "meta":
            trace.trace_id = record.get("trace_id", "")
            trace.created_unix = record.get("created_unix", 0.0)
            trace.attrs = record.get("attrs", {})
        elif kind == "span":
            trace.spans.append(record)
        elif kind == "event":
            trace.events.append(record)
        elif kind == "metric":
            trace.metrics.append(record["metric"])
    return trace
