"""Hierarchical spans: the trace's unit of attributed wall time.

A :class:`Span` measures one named stretch of work. Spans nest: entering
a span pushes it onto its recorder's stack, so any span (or event)
started while it is open becomes its child. Durations come from
``time.perf_counter`` (monotonic); the absolute ``start_unix`` stamp is
``time.time`` so spans produced by different worker processes on the
same host line up on one timeline after re-parenting.

Used via the module-level API, never constructed directly::

    from repro import obs

    with obs.span("campaign.endpoint", country="JPN") as sp:
        ...
        sp.set(records=42)
        obs.event("retry.backoff", delay_s=1.5)   # lands on this span
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

#: Span status values (set on exit).
STATUS_OK = "ok"
STATUS_ERROR = "error"


class SpanEvent:
    """A point-in-time annotation attached to a span (e.g. one fault)."""

    __slots__ = ("name", "time_unix", "attrs")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.time_unix = time.time()
        self.attrs = attrs

    def to_jsonable(self) -> Dict[str, Any]:
        return {"name": self.name, "time_unix": self.time_unix, "attrs": self.attrs}

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "SpanEvent":
        event = cls.__new__(cls)
        event.name = data["name"]
        event.time_unix = data.get("time_unix", 0.0)
        event.attrs = data.get("attrs", {})
        return event


class Span:
    """One timed, attributed stretch of work inside a trace.

    Context-manager protocol: ``__enter__`` stamps the clocks and pushes
    the span onto the recorder's stack (fixing its parent), ``__exit__``
    pops it, computes the monotonic duration and hands the finished span
    to the recorder. Exceptions propagate but mark ``status="error"``.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start_unix", "duration_s",
        "attrs", "events", "status", "_recorder", "_t0",
    )

    def __init__(
        self,
        recorder: Any,
        name: str,
        span_id: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[str] = None
        self.start_unix = 0.0
        self.duration_s = 0.0
        self.attrs = attrs
        self.events: List[SpanEvent] = []
        self.status = STATUS_OK
        self._recorder = recorder
        self._t0 = 0.0

    # -- annotation ---------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) key/value attributes."""
        self.attrs.update(attrs)
        return self

    def add_event(self, name: str, **attrs: Any) -> SpanEvent:
        """Attach a point-in-time event to this span."""
        event = SpanEvent(name, attrs)
        self.events.append(event)
        return event

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self)
        return False

    # -- serialization ------------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
            "events": [event.to_jsonable() for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "Span":
        """Rehydrate an exported span (cross-process adoption, trace files)."""
        span = cls(None, data["name"], data["span_id"], dict(data.get("attrs", {})))
        span.parent_id = data.get("parent_id")
        span.start_unix = data.get("start_unix", 0.0)
        span.duration_s = data.get("duration_s", 0.0)
        span.status = data.get("status", STATUS_OK)
        span.events = [
            SpanEvent.from_jsonable(event) for event in data.get("events", [])
        ]
        return span


class NullSpan:
    """The do-nothing span the :class:`~repro.obs.recorder.NullRecorder`
    hands out: a process-wide singleton, so a disabled instrumentation
    point costs one attribute check and no allocation."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()
