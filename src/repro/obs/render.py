"""Render a trace file for the terminal (``python -m repro trace ...``).

Three views over one :class:`~repro.obs.sink.TraceData`:

* :func:`summary` — per-span-name aggregates, the attribution line
  (share of root wall time covered by named child spans) and the
  metrics tables;
* :func:`tree` — the span hierarchy with durations, children in
  start order;
* :func:`slowest` — the N longest spans with their ancestry paths.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.sink import TraceData


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.2f}s"
    return f"{seconds * 1000:7.1f}ms"


def coverage(trace: TraceData) -> Optional[float]:
    """Fraction of root wall time attributed to named direct children.

    The acceptance bar of the telemetry layer: a traced ``run_all``
    must attribute >= 95% of its wall time to named child spans.
    ``None`` when the trace has no root span or zero-duration roots.
    """
    roots = trace.roots()
    total = sum(span["duration_s"] for span in roots)
    if total <= 0:
        return None
    attributed = sum(
        child["duration_s"]
        for root in roots
        for child in trace.children_of(root["span_id"])
    )
    return min(1.0, attributed / total)


def summary(trace: TraceData) -> str:
    """Aggregate table: spans by name, attribution, then metrics."""
    by_name: Dict[str, List[float]] = {}
    for span in trace.spans:
        by_name.setdefault(span["name"], []).append(span["duration_s"])
    roots = trace.roots()
    root_total = sum(span["duration_s"] for span in roots)

    lines = [f"trace {trace.trace_id}"]
    if trace.attrs:
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in sorted(trace.attrs.items()))
        )
    lines.append("")
    lines.append(
        f"{'span':28} {'count':>6} {'total':>9} {'mean':>9} {'max':>9} {'share':>7}"
    )
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durations = by_name[name]
        total = sum(durations)
        share = f"{total / root_total:6.1%}" if root_total > 0 else "     -"
        lines.append(
            f"{name:28} {len(durations):6d} {_fmt_s(total):>9} "
            f"{_fmt_s(total / len(durations)):>9} {_fmt_s(max(durations)):>9} {share:>7}"
        )
    events = sum(len(span.get("events", ())) for span in trace.spans)
    events += len(trace.events)
    lines.append("")
    lines.append(
        f"{len(trace.spans)} spans, {events} span events, "
        f"root wall {root_total:.2f}s"
    )
    share = coverage(trace)
    if share is not None:
        lines.append(f"attributed to named child spans: {share:.1%}")

    metric_lines = _metric_tables(trace)
    if metric_lines:
        lines.append("")
        lines.extend(metric_lines)
    return "\n".join(lines)


def _metric_tables(trace: TraceData) -> List[str]:
    """The counter/gauge and histogram tables (shared by two views)."""
    counters = [m for m in trace.metrics if m["type"] == "counter"]
    gauges = [m for m in trace.metrics if m["type"] == "gauge"]
    histograms = [m for m in trace.metrics if m["type"] == "histogram"]
    lines: List[str] = []
    if counters or gauges:
        lines.append(f"{'counter':36} {'value':>12}")
        for metric in sorted(counters + gauges, key=lambda m: m["name"]):
            lines.append(f"{metric['name']:36} {metric['value']:>12}")
    if histograms:
        if lines:
            lines.append("")
        lines.append(
            f"{'histogram':24} {'count':>8} {'mean':>9} {'p50':>9} {'p95':>9} {'max<=':>9}"
        )
        for metric in sorted(histograms, key=lambda m: m["name"]):
            lines.append(
                f"{metric['name']:24} {metric['count']:8d} "
                f"{_fmt_s(_hist_mean(metric)):>9} {_hist_quantile(metric, 0.5):>9} "
                f"{_hist_quantile(metric, 0.95):>9} {_hist_max_bound(metric):>9}"
            )
    return lines


def metrics_view(trace: TraceData) -> str:
    """Only the counters/gauges/histograms embedded in a trace file."""
    lines = _metric_tables(trace)
    if not lines:
        return "(no metrics recorded in this trace)"
    return "\n".join(lines)


def _hist_mean(metric: Dict[str, Any]) -> float:
    return metric["sum"] / metric["count"] if metric["count"] else 0.0


def _hist_quantile(metric: Dict[str, Any], q: float) -> str:
    """Bucket-resolution quantile bound, formatted."""
    count = metric["count"]
    if not count:
        return "-"
    target = q * count
    seen = 0
    for index, bucket_count in enumerate(metric["counts"]):
        seen += bucket_count
        if seen >= target and bucket_count:
            if index < len(metric["buckets"]):
                return _fmt_s(metric["buckets"][index])
            return ">max"
    return ">max"


def _hist_max_bound(metric: Dict[str, Any]) -> str:
    """Upper bound of the highest occupied bucket."""
    for index in range(len(metric["counts"]) - 1, -1, -1):
        if metric["counts"][index]:
            if index < len(metric["buckets"]):
                return _fmt_s(metric["buckets"][index])
            return ">max"
    return "-"


def tree(trace: TraceData, max_depth: Optional[int] = None) -> str:
    """The span hierarchy, children in start order, one line per span."""
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    known = {span["span_id"] for span in trace.spans}
    for span in trace.spans:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: (span["start_unix"], span["span_id"]))

    lines: List[str] = []

    def _walk(span: Dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        label = span["name"]
        attrs = span.get("attrs", {})
        if attrs:
            label += " [" + " ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
            ) + "]"
        flag = "" if span.get("status", "ok") == "ok" else "  !ERROR"
        events = len(span.get("events", ()))
        suffix = f"  ({events} events)" if events else ""
        lines.append(
            f"{_fmt_s(span['duration_s'])}  {'  ' * depth}{label}{suffix}{flag}"
        )
        for child in children.get(span["span_id"], ()):
            _walk(child, depth + 1)

    for root in children.get(None, ()):
        _walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def slowest(trace: TraceData, top: int = 15) -> str:
    """The ``top`` longest spans, with each span's ancestry path."""
    by_id = {span["span_id"]: span for span in trace.spans}

    def _path(span: Dict[str, Any]) -> str:
        parts = [span["name"]]
        seen = {span["span_id"]}
        parent = span.get("parent_id")
        while parent in by_id and parent not in seen:
            seen.add(parent)
            parts.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent_id")
        return " < ".join(parts)

    ranked = sorted(trace.spans, key=lambda span: -span["duration_s"])[:top]
    lines = [f"{'wall':>9}  span (ancestry)"]
    for span in ranked:
        attrs = span.get("attrs", {})
        detail = (
            " [" + " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs else ""
        )
        lines.append(f"{_fmt_s(span['duration_s'])}  {_path(span)}{detail}")
    return "\n".join(lines)
