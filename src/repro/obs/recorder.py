"""Recorders and the process-wide current-recorder slot.

Telemetry is a sidecar: the default recorder is a :class:`NullRecorder`
whose every operation is a no-op on a shared singleton, so instrumented
code pays one global read and one method call per touch point when
tracing is off (the <2% budget ``benchmarks/test_bench_obs.py``
enforces). Install a :class:`TraceRecorder` — usually via
``use_recorder`` or ``StudyRunner(trace_dir=...)`` — to collect.

Cross-process story: each :class:`~repro.core.runner.StudyRunner` worker
records into its own ``TraceRecorder``, ``export()``\\ s the result over
the pickle channel, and the parent ``adopt()``\\ s the spans — re-rooting
them under its own span — and merges the metrics. Span ids embed the
producing PID, so adopted ids never collide.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanEvent


class NullRecorder:
    """The default recorder: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def counter(self, name: str) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> NullHistogram:
        return NULL_HISTOGRAM


class MetricsRecorder:
    """A metrics-only recorder for long-lived daemons.

    Counters, gauges and histograms collect into a real (lock-guarded)
    :class:`~repro.obs.metrics.MetricsRegistry`; spans and events stay
    no-ops. That is exactly the always-on shape a server needs: the
    instrument set is bounded by distinct metric names, so memory never
    grows with request count, while a :class:`TraceRecorder` would
    retain one span per request forever. ``enabled`` stays ``False``
    because it gates *span/event* collection — the hot-path check in
    :func:`event` keeps costing one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        return self.metrics.histogram(name, buckets)


_recorder_seq = itertools.count(1)


class TraceRecorder:
    """Collects spans, span events and metrics for one process.

    Spans form a stack (campaigns and experiments are single-threaded
    per process): entering a span parents it under the previous top.
    Finished spans accumulate in :attr:`spans` in completion order.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or f"trace-{os.getpid():x}"
        self.spans: List[Span] = []
        #: Events emitted with no span open (rare; kept trace-level).
        self.orphan_events: List[SpanEvent] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self._next_id = 0
        # PID plus a per-process recorder sequence: span ids stay unique
        # when several recorders from one process land in the same trace
        # (one per artefact, adopted by the parent's run_all recorder).
        self._id_prefix = f"{os.getpid():x}.{next(_recorder_seq)}"

    # -- span machinery ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        self._next_id += 1
        return Span(self, name, f"{self._id_prefix}.{self._next_id}", attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate a mispaired exit instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        self.spans.append(span)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        current = self.current_span()
        if current is not None:
            current.add_event(name, **attrs)
        else:
            self.orphan_events.append(SpanEvent(name, attrs))

    # -- metrics -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        return self.metrics.histogram(name, buckets)

    # -- events of interest ---------------------------------------------------

    def span_events(self, name: Optional[str] = None) -> List[SpanEvent]:
        """Every event on every finished span (optionally filtered by name)."""
        out: List[SpanEvent] = []
        for span in self.spans:
            out.extend(
                e for e in span.events if name is None or e.name == name
            )
        out.extend(
            e for e in self.orphan_events if name is None or e.name == name
        )
        return out

    # -- cross-process export / adoption --------------------------------------

    def export(self) -> Dict[str, Any]:
        """Everything this recorder collected, as pickle/JSON-safe data."""
        return {
            "trace_id": self.trace_id,
            "spans": [span.to_jsonable() for span in self.spans],
            "orphan_events": [e.to_jsonable() for e in self.orphan_events],
            "metrics": self.metrics.to_jsonable(),
        }

    def adopt(
        self, exported: Dict[str, Any], parent_id: Optional[str] = None
    ) -> None:
        """Fold a worker's export into this trace.

        Spans whose parent is not in the export (the worker's roots) are
        re-parented under ``parent_id``; everything else keeps its
        in-worker ancestry. Metrics merge additively.
        """
        known = {span["span_id"] for span in exported.get("spans", ())}
        for data in exported.get("spans", ()):
            span = Span.from_jsonable(data)
            if span.parent_id is None or span.parent_id not in known:
                span.parent_id = parent_id
            self.spans.append(span)
        for data in exported.get("orphan_events", ()):
            self.orphan_events.append(SpanEvent.from_jsonable(data))
        self.metrics.merge_jsonable(exported.get("metrics", ()))


Recorder = Union[NullRecorder, MetricsRecorder, TraceRecorder]

NULL_RECORDER = NullRecorder()

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The recorder instrumentation points write to right now."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` (None = the null recorder); returns the previous."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Optional[Recorder]) -> Iterator[Recorder]:
    """Scoped :func:`set_recorder` — always restores the previous one."""
    previous = set_recorder(recorder)
    try:
        yield get_recorder()
    finally:
        set_recorder(previous)


def enabled() -> bool:
    """True when a collecting recorder is installed (hot-path fast check)."""
    return _current.enabled


# -- module-level instrumentation API (what call sites use) ------------------


def span(name: str, **attrs: Any) -> Union[Span, NullSpan]:
    """Open a span on the current recorder (use as a context manager)."""
    return _current.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Attach an event to the innermost open span of the current recorder."""
    if _current.enabled:
        _current.event(name, **attrs)


def counter(name: str) -> Union[Counter, NullCounter]:
    return _current.counter(name)


def gauge(name: str) -> Union[Gauge, NullGauge]:
    return _current.gauge(name)


def histogram(
    name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
) -> Union[Histogram, NullHistogram]:
    return _current.histogram(name, buckets)
