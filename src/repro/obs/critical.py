"""Critical-path and phase attribution over a PR-4 trace file.

A trace tells you *what ran*; this module tells you *what to make
faster*. Two views over one :class:`~repro.obs.sink.TraceData`:

* :func:`critical_path` — the chain of spans that bounded the run's
  wall clock. Starting from the longest root, each step descends into
  the child that **finished last** (``start_unix + duration_s``), which
  under concurrency is the child the parent actually waited for; ties
  fall to the longer span. Each step carries its *self time* (duration
  minus the time covered by its own children) so the path reads as an
  attribution, not just a lineage.
* :func:`phase_attribution` — wall time grouped by the root's direct
  child span names (``warm_inputs``, ``artefact``, ...), plus the
  unattributed remainder, i.e. the per-phase budget the regression
  docs talk about.

Both power ``python -m repro report --html`` and are importable on
their own for ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.sink import TraceData


@dataclass
class CriticalStep:
    """One span on the critical path."""

    name: str
    span_id: str
    depth: int
    duration_s: float
    self_s: float
    attrs: Dict[str, Any]

    def label(self) -> str:
        if not self.attrs:
            return self.name
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return f"{self.name} [{detail}]"


@dataclass
class Phase:
    """Aggregated direct children of the root span, by name."""

    name: str
    count: int
    total_s: float
    share: float  # of the root's wall time; can exceed 1 under concurrency


def _child_index(trace: TraceData) -> Dict[Optional[str], List[Dict[str, Any]]]:
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    known = {span["span_id"] for span in trace.spans}
    for span in trace.spans:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None
        children.setdefault(parent, []).append(span)
    return children


def _end_unix(span: Dict[str, Any]) -> float:
    return span.get("start_unix", 0.0) + span.get("duration_s", 0.0)


def critical_path(trace: TraceData) -> List[CriticalStep]:
    """The last-finishing chain from the longest root down to a leaf."""
    children = _child_index(trace)
    roots = children.get(None, [])
    if not roots:
        return []
    span = max(roots, key=lambda s: s.get("duration_s", 0.0))
    path: List[CriticalStep] = []
    depth = 0
    seen = set()
    while span is not None and span["span_id"] not in seen:
        seen.add(span["span_id"])
        kids = children.get(span["span_id"], [])
        covered = sum(kid.get("duration_s", 0.0) for kid in kids)
        path.append(CriticalStep(
            name=span["name"],
            span_id=span["span_id"],
            depth=depth,
            duration_s=span.get("duration_s", 0.0),
            self_s=max(0.0, span.get("duration_s", 0.0) - covered),
            attrs=dict(span.get("attrs", {})),
        ))
        span = (
            max(kids, key=lambda s: (_end_unix(s), s.get("duration_s", 0.0)))
            if kids else None
        )
        depth += 1
    return path


def phase_attribution(trace: TraceData) -> List[Phase]:
    """Root wall time grouped by direct-child span name (+ unattributed)."""
    children = _child_index(trace)
    roots = children.get(None, [])
    if not roots:
        return []
    root = max(roots, key=lambda s: s.get("duration_s", 0.0))
    root_wall = root.get("duration_s", 0.0)
    by_name: Dict[str, List[float]] = {}
    for child in children.get(root["span_id"], []):
        by_name.setdefault(child["name"], []).append(
            child.get("duration_s", 0.0)
        )
    phases = [
        Phase(
            name=name,
            count=len(durations),
            total_s=sum(durations),
            share=(sum(durations) / root_wall) if root_wall > 0 else 0.0,
        )
        for name, durations in by_name.items()
    ]
    phases.sort(key=lambda phase: -phase.total_s)
    attributed = sum(phase.total_s for phase in phases)
    remainder = root_wall - attributed
    if root_wall > 0 and remainder > 0:
        phases.append(Phase(
            name="(unattributed)",
            count=0,
            total_s=remainder,
            share=remainder / root_wall,
        ))
    return phases


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.2f}s"
    return f"{seconds * 1000:7.1f}ms"


def render_critical(trace: TraceData) -> str:
    """Terminal view: phase table then the indented critical path."""
    phases = phase_attribution(trace)
    path = critical_path(trace)
    if not path:
        return "(no spans)"
    lines = [f"{'phase':28} {'count':>6} {'total':>9} {'share':>7}"]
    for phase in phases:
        lines.append(
            f"{phase.name:28} {phase.count:6d} {_fmt_s(phase.total_s):>9} "
            f"{phase.share:6.1%}"
        )
    lines.append("")
    lines.append(f"critical path ({len(path)} spans):")
    lines.append(f"{'wall':>9} {'self':>9}  span")
    for step in path:
        lines.append(
            f"{_fmt_s(step.duration_s):>9} {_fmt_s(step.self_s):>9}  "
            f"{'  ' * step.depth}{step.label()}"
        )
    return "\n".join(lines)
