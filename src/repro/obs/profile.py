"""A sampling wall-clock profiler (collapsed-stack flamegraph output).

``SamplingProfiler`` runs a ticker thread that snapshots every live
thread's Python stack via ``sys._current_frames()`` at a fixed
interval, aggregating identical stacks into counts. The output is the
collapsed-stack format flamegraph tooling standardizes on — one line
per distinct stack, root first, semicolon-separated frames, a space,
and the sample count::

    MainThread;repro.core.runner:run_all;repro.experiments.fig3:compute 412

Wall-clock sampling (py-spy style, in-process): a sample lands
wherever a thread *is*, so blocking I/O and lock waits show up — this
is the profile of the live daemon, not of CPU alone. Overhead is one
``sys._current_frames()`` walk per interval regardless of load, so
the default 10 ms cadence costs well under 1% of a busy process.

Attach points: ``repro profile -- <subcommand>`` (CLI),
``run-all --profile DIR`` (batch runs), and ``GET /profile?seconds=N``
against the live server (on-demand, serialized by the server).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

#: Default sampling cadence: 10 ms = 100 Hz.
DEFAULT_INTERVAL_S = 0.010

#: Frames deeper than this are truncated (defensive; recursive code).
MAX_STACK_DEPTH = 128


def _frame_label(frame: Any) -> str:
    """One collapsed-stack frame: ``module:qualname``."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    name = getattr(code, "co_qualname", code.co_name)
    return f"{module}:{name}"


class SamplingProfiler:
    """Samples all threads' stacks on a fixed wall-clock cadence."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        include_idle: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        #: When False, stacks whose leaf is the profiler's own wait or
        #: a ``threading`` internal wait are dropped — trims the idle
        #: accept/condition threads from a daemon profile.
        self.include_idle = include_idle
        self.samples = 0
        self.started_unix = 0.0
        self.wall_s = 0.0
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        self.started_unix = time.time()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.stop()
        return False

    def run_for(
        self,
        seconds: float,
        abort: Optional[threading.Event] = None,
    ) -> "SamplingProfiler":
        """Profile for ``seconds`` (blocking), early-out on ``abort``.

        The ``/profile`` endpoint uses the abort event so an in-flight
        profile never delays a server shutdown by more than one tick.
        """
        self.start()
        deadline = time.monotonic() + seconds
        try:
            while time.monotonic() < deadline:
                if abort is not None and abort.is_set():
                    break
                time.sleep(min(0.05, self.interval_s))
        finally:
            self.stop()
        return self

    # -- the ticker -----------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        started = time.perf_counter()
        while not self._stop.is_set():
            names = {
                thread.ident: thread.name
                for thread in threading.enumerate()
            }
            frames = sys._current_frames()
            stacks: List[Tuple[str, ...]] = []
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.append(names.get(ident, f"thread-{ident}"))
                stacks.append(tuple(reversed(stack)))
            with self._lock:
                self.samples += 1
                for stack in stacks:
                    self._counts[stack] = self._counts.get(stack, 0) + 1
            self._stop.wait(self.interval_s)
        self.wall_s += time.perf_counter() - started

    # -- output ---------------------------------------------------------------

    def stacks(self) -> Dict[Tuple[str, ...], int]:
        """``stack tuple -> sample count`` (root-first, thread name first)."""
        with self._lock:
            counts = dict(self._counts)
        if self.include_idle:
            return counts
        return {
            stack: count
            for stack, count in counts.items()
            if not _is_idle_stack(stack)
        }

    def collapsed(self) -> str:
        """The collapsed-stack text: ``frame;frame;... count`` lines.

        Lines sort by descending count then stack text, so the hottest
        stack is the first line and output is deterministic for a
        given set of counts.
        """
        rows = sorted(
            self.stacks().items(), key=lambda item: (-item[1], item[0])
        )
        return "\n".join(
            ";".join(stack) + f" {count}" for stack, count in rows
        ) + ("\n" if rows else "")

    def write(self, path: Union[str, Any]) -> str:
        """Write the collapsed stacks to ``path``; returns the path."""
        text = self.collapsed()
        with open(path, "w") as handle:
            handle.write(text)
        return str(path)

    def summary(self, top: int = 10) -> str:
        """A terminal-friendly digest: hottest stacks with percentages."""
        rows = sorted(
            self.stacks().items(), key=lambda item: (-item[1], item[0])
        )
        total = sum(count for _, count in rows)
        lines = [
            f"profile: {self.samples} ticks, {total} stack samples, "
            f"{len(rows)} distinct stacks "
            f"({self.interval_s * 1000:g} ms interval)",
        ]
        for stack, count in rows[:top]:
            leaf = stack[-1]
            share = count / total if total else 0.0
            lines.append(f"  {share:6.1%} {count:>6}  {leaf}  "
                         f"[{stack[0]}; depth {len(stack) - 1}]")
        return "\n".join(lines)


#: Leaf substrings that mark a thread as idle/parked.
_IDLE_LEAVES = (
    "threading:Event.wait",
    "threading:Condition.wait",
    "threading:wait",
    "selectors:",
    "socketserver:",
    "socket:accept",
)


def _is_idle_stack(stack: Tuple[str, ...]) -> bool:
    leaf = stack[-1]
    return any(marker in leaf for marker in _IDLE_LEAVES)


def profile_call(
    func: Any,
    *args: Any,
    interval_s: float = DEFAULT_INTERVAL_S,
    **kwargs: Any,
) -> Tuple[Any, SamplingProfiler]:
    """Run ``func(*args, **kwargs)`` under a profiler; return both."""
    profiler = SamplingProfiler(interval_s=interval_s)
    with profiler:
        result = func(*args, **kwargs)
    return result, profiler


__all__ = [
    "DEFAULT_INTERVAL_S",
    "MAX_STACK_DEPTH",
    "SamplingProfiler",
    "profile_call",
]
