"""``repro.obs`` — the zero-dependency telemetry sidecar.

Hierarchical spans, a metrics registry (counters / gauges / fixed-bucket
histograms) and a per-run JSONL trace sink, instrumented through every
layer of the pipeline. Off by default: the :class:`NullRecorder`
answers every instrumentation point with shared no-op singletons, and a
traced run exports byte-identical artefacts to an untraced one —
timestamps live only in the trace file.

Typical use::

    from repro import obs
    from repro.core.runner import StudyRunner

    runner = StudyRunner(seed=2024, jobs=4, trace_dir="traces/")
    report = runner.run_all(scale=0.15)
    print(report.trace_path)          # traces/run_all-....jsonl

or, instrumenting by hand::

    with obs.use_recorder(obs.TraceRecorder()) as rec:
        with obs.span("my.stage", shard=3):
            obs.counter("my.items").inc()
            obs.event("my.retry", attempt=1)
    obs.write_trace(rec, "trace.jsonl")

See ``docs/OBSERVABILITY.md`` for naming conventions and the trace
schema, and ``python -m repro trace {summary,tree,slowest}`` for the
terminal views.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    counter,
    enabled,
    event,
    gauge,
    get_recorder,
    histogram,
    set_recorder,
    span,
    use_recorder,
)
from repro.obs.render import coverage, slowest, summary, tree
from repro.obs.sink import TraceData, load_trace, write_trace
from repro.obs.spans import Span, SpanEvent

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TraceRecorder",
    "Span",
    "SpanEvent",
    "TraceData",
    "counter",
    "coverage",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "histogram",
    "load_trace",
    "set_recorder",
    "slowest",
    "span",
    "summary",
    "tree",
    "use_recorder",
    "write_trace",
]
