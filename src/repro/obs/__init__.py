"""``repro.obs`` — the zero-dependency telemetry sidecar.

Hierarchical spans, a metrics registry (counters / gauges / fixed-bucket
histograms) and a per-run JSONL trace sink, instrumented through every
layer of the pipeline. Off by default: the :class:`NullRecorder`
answers every instrumentation point with shared no-op singletons, and a
traced run exports byte-identical artefacts to an untraced one —
timestamps live only in the trace file.

Typical use::

    from repro import obs
    from repro.core.runner import StudyRunner

    runner = StudyRunner(seed=2024, jobs=4, trace_dir="traces/")
    report = runner.run_all(scale=0.15)
    print(report.trace_path)          # traces/run_all-....jsonl

or, instrumenting by hand::

    with obs.use_recorder(obs.TraceRecorder()) as rec:
        with obs.span("my.stage", shard=3):
            obs.counter("my.items").inc()
            obs.event("my.retry", attempt=1)
    obs.write_trace(rec, "trace.jsonl")

See ``docs/OBSERVABILITY.md`` for naming conventions and the trace
schema, and ``python -m repro trace {summary,tree,slowest}`` for the
terminal views.
"""

from repro.obs.critical import (
    CriticalStep,
    Phase,
    critical_path,
    phase_attribution,
    render_critical,
)
from repro.obs.history import (
    ArtefactStats,
    HistoryStore,
    RunRecord,
    default_history_root,
    record_from_report,
)
from repro.obs.exposition import render as render_metrics
from repro.obs.live import LiveSampler, RingBuffer
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import SamplingProfiler, profile_call
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    TraceRecorder,
    counter,
    enabled,
    event,
    gauge,
    get_recorder,
    histogram,
    set_recorder,
    span,
    use_recorder,
)
from repro.obs.regress import (
    RegressionConfig,
    RegressionReport,
    Verdict,
    compare,
    detect,
)
from repro.obs.render import coverage, metrics_view, slowest, summary, tree
from repro.obs.report import render_html, write_html
from repro.obs.sink import TraceData, load_trace, write_trace
from repro.obs.spans import Span, SpanEvent

__all__ = [
    "LATENCY_BUCKETS_S",
    "ArtefactStats",
    "Counter",
    "CriticalStep",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "LiveSampler",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Phase",
    "RingBuffer",
    "SamplingProfiler",
    "Recorder",
    "RegressionConfig",
    "RegressionReport",
    "RunRecord",
    "TraceRecorder",
    "Span",
    "SpanEvent",
    "TraceData",
    "Verdict",
    "compare",
    "counter",
    "coverage",
    "critical_path",
    "default_history_root",
    "detect",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "histogram",
    "load_trace",
    "metrics_view",
    "phase_attribution",
    "profile_call",
    "record_from_report",
    "render_critical",
    "render_html",
    "render_metrics",
    "set_recorder",
    "slowest",
    "span",
    "summary",
    "tree",
    "use_recorder",
    "write_html",
    "write_trace",
]
