"""The live telemetry store: a ring-buffer time-series sampler.

A :class:`LiveSampler` thread snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` every ``interval_s``
seconds into fixed-capacity :class:`RingBuffer` series — bounded
memory no matter how long the daemon runs. From the retained window it
derives what a post-hoc trace cannot show while the process lives:
per-counter deltas and rates, windowed histogram quantiles (bucket
diffs between two snapshots), and process gauges (RSS, FDs, threads).

Consumers:

* ``GET /stats?window=N`` — one JSON view over the retained window;
* ``GET /events`` — each tick's delta payload, streamed as
  Server-Sent Events (handlers block on :meth:`wait_for_event`);
* the live ``/dashboard`` page, which feeds sparklines from both.

``tick()`` is public and takes an explicit ``now`` so tests can soak
simulated minutes deterministically; the background thread just calls
it on a wall-clock cadence.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.exposition import process_samples

#: Default sampler cadence (seconds) — also the SSE delta cadence.
DEFAULT_INTERVAL_S = 1.0

#: Default per-series retention (samples). 600 ticks x 1 s = 10 min.
DEFAULT_CAPACITY = 600

#: Process gauges the sampler tracks as series (subset of
#: :func:`repro.obs.exposition.process_samples` — gauges only).
PROCESS_SERIES = (
    "process_resident_memory_bytes",
    "process_open_fds",
    "process_threads",
)


class RingBuffer:
    """A fixed-capacity ring of ``(t, value)`` samples.

    Appending past ``capacity`` overwrites the oldest sample; memory
    never grows after the first wrap. Reads return chronological
    copies, so a reader race-costs one list build, never a lock on the
    writer's cadence.
    """

    __slots__ = ("capacity", "_times", "_values", "_next", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError("ring buffer capacity must be >= 2")
        self.capacity = capacity
        self._times: List[float] = [0.0] * capacity
        self._values: List[Any] = [None] * capacity
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, t: float, value: Any) -> None:
        self._times[self._next] = t
        self._values[self._next] = value
        self._next = (self._next + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def items(self) -> List[Tuple[float, Any]]:
        """Chronological ``(t, value)`` pairs, oldest first."""
        if self._size < self.capacity:
            indexes = range(self._size)
        else:
            indexes = [
                (self._next + offset) % self.capacity
                for offset in range(self.capacity)
            ]
        return [(self._times[i], self._values[i]) for i in indexes]

    def since(self, t_min: float) -> List[Tuple[float, Any]]:
        """Samples with ``t >= t_min``, oldest first."""
        return [(t, v) for t, v in self.items() if t >= t_min]

    def last(self) -> Optional[Tuple[float, Any]]:
        if not self._size:
            return None
        return self.items()[-1]


def _window_quantile(
    buckets: Sequence[float], delta_counts: Sequence[int], q: float
) -> Optional[float]:
    """Bucket-resolution quantile over a *window* of observations.

    ``delta_counts`` are per-bucket counts accumulated inside the
    window (cumulative snapshots differenced). Returns the matched
    bucket's upper bound; overflow observations clamp to the last
    finite bound (JSON has no ``+Inf``).
    """
    total = sum(delta_counts)
    if not total:
        return None
    target = q * total
    seen = 0
    for index, count in enumerate(delta_counts):
        seen += count
        if seen >= target and count:
            if index < len(buckets):
                return float(buckets[index])
            return float(buckets[-1])
    return float(buckets[-1])


class LiveSampler:
    """Samples one registry into bounded time series on a fixed cadence."""

    def __init__(
        self,
        registry: Any,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        include_process: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        self.include_process = include_process
        self.started_unix = time.time()
        #: Ticks completed and the wall stamp of the newest one —
        #: what /healthz reports as sampler liveness.
        self.ticks = 0
        self.last_tick_unix = 0.0
        #: Cumulative wall seconds spent inside ``tick()`` (the
        #: overhead benchmark divides this by run wall time).
        self.tick_wall_s = 0.0
        self._series: Dict[str, RingBuffer] = {}
        self._kinds: Dict[str, str] = {}
        self._hist: Dict[str, RingBuffer] = {}
        self._hist_buckets: Dict[str, Tuple[float, ...]] = {}
        self._last_stamp: Optional[float] = None
        self._latest_event: Optional[Dict[str, Any]] = None
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "LiveSampler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-live-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval_s + 5.0)

    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.tick()
            elapsed = (
                time.time() - self.last_tick_unix
                if self.last_tick_unix else 0.0
            )
            self._stop.wait(max(0.05, self.interval_s - elapsed))

    # -- sampling -------------------------------------------------------------

    def _buffer(self, name: str, kind: str) -> RingBuffer:
        buffer = self._series.get(name)
        if buffer is None:
            buffer = self._series[name] = RingBuffer(self.capacity)
            self._kinds[name] = kind
        return buffer

    def tick(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Take one sample; returns (and publishes) the delta payload."""
        t0 = time.perf_counter()
        stamp = time.time() if now is None else now
        dt = (
            stamp - self._last_stamp
            if self._last_stamp is not None and stamp > self._last_stamp
            else None
        )
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}

        for item in self.registry.snapshot():
            name, kind = item["name"], item["type"]
            if kind in ("counter", "gauge"):
                buffer = self._buffer(name, kind)
                previous = buffer.last()
                buffer.append(stamp, item["value"])
                if kind == "gauge":
                    gauges[name] = {"value": item["value"]}
                else:
                    delta = (
                        item["value"] - previous[1]
                        if previous is not None else item["value"]
                    )
                    entry: Dict[str, Any] = {
                        "value": item["value"], "delta": delta,
                    }
                    if dt:
                        entry["rate_per_s"] = round(delta / dt, 6)
                    counters[name] = entry
            elif kind == "histogram":
                buffer = self._hist.get(name)
                if buffer is None:
                    buffer = self._hist[name] = RingBuffer(self.capacity)
                    self._hist_buckets[name] = tuple(item["buckets"])
                previous = buffer.last()
                state = (item["count"], item["sum"], tuple(item["counts"]))
                buffer.append(stamp, state)
                histograms[name] = self._hist_delta(
                    name, previous[1] if previous else None, state, dt
                )
        if self.include_process:
            for sample in process_samples(now=stamp):
                if sample["name"] not in PROCESS_SERIES:
                    continue
                self._buffer(sample["name"], "gauge").append(
                    stamp, sample["value"]
                )
                gauges[sample["name"]] = {"value": sample["value"]}

        event = {
            "tick": self.ticks + 1,
            "t": stamp,
            "interval_s": self.interval_s,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        self._last_stamp = stamp
        with self._cond:
            self.ticks += 1
            self.last_tick_unix = stamp
            self._latest_event = event
            self._cond.notify_all()
        self.tick_wall_s += time.perf_counter() - t0
        return event

    def _hist_delta(
        self,
        name: str,
        previous: Optional[Tuple[int, float, Tuple[int, ...]]],
        current: Tuple[int, float, Tuple[int, ...]],
        dt: Optional[float],
    ) -> Dict[str, Any]:
        count, total, cells = current
        if previous is None:
            previous = (0, 0.0, (0,) * len(cells))
        delta_count = count - previous[0]
        delta_sum = total - previous[1]
        delta_cells = [c - p for c, p in zip(cells, previous[2])]
        buckets = self._hist_buckets[name]
        entry: Dict[str, Any] = {"count": count, "delta": delta_count}
        if dt:
            entry["rate_per_s"] = round(delta_count / dt, 6)
        if delta_count > 0:
            entry["mean_s"] = round(delta_sum / delta_count, 9)
            entry["p50_s"] = _window_quantile(buckets, delta_cells, 0.50)
            entry["p99_s"] = _window_quantile(buckets, delta_cells, 0.99)
        return entry

    # -- queries --------------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Sampler liveness for ``/healthz``: is the plane ticking?"""
        now = time.time()
        return {
            "alive": self.alive(),
            "ticks": self.ticks,
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "series": len(self._series) + len(self._hist),
            "last_tick_age_s": (
                round(now - self.last_tick_unix, 3)
                if self.last_tick_unix else None
            ),
            "tick_wall_s": round(self.tick_wall_s, 6),
        }

    def stats(
        self,
        window_s: float = 60.0,
        series: Sequence[str] = (),
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The ``GET /stats`` payload: the retained window, summarized.

        Counters report first->last deltas and rates over the window;
        gauges report last/min/max; histograms report windowed count,
        rate, mean and bucket-resolution p50/p99 — all derived from
        ring-buffer samples, never from re-reading the registry.
        ``series`` names get their raw ``[[t, value], ...]`` points
        included (sparkline feed).
        """
        stamp = time.time() if now is None else now
        cutoff = stamp - window_s
        payload: Dict[str, Any] = {
            "now": stamp,
            "window_s": window_s,
            "sampler": self.info(),
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, buffer in sorted(self._series.items()):
            points = buffer.since(cutoff)
            if not points:
                continue
            first_t, first_v = points[0]
            last_t, last_v = points[-1]
            if self._kinds.get(name) == "counter":
                delta = last_v - first_v
                span = last_t - first_t
                payload["counters"][name] = {
                    "value": last_v,
                    "delta": delta,
                    "rate_per_s": (
                        round(delta / span, 6) if span > 0 else 0.0
                    ),
                    "samples": len(points),
                }
            else:
                values = [v for _, v in points]
                payload["gauges"][name] = {
                    "value": last_v,
                    "min": min(values),
                    "max": max(values),
                    "samples": len(points),
                }
        for name, buffer in sorted(self._hist.items()):
            points = buffer.since(cutoff)
            if not points:
                continue
            first_t, first_state = points[0]
            last_t, last_state = points[-1]
            span = last_t - first_t
            entry = self._hist_delta(
                name, first_state, last_state, span if span > 0 else None
            )
            entry["samples"] = len(points)
            payload["histograms"][name] = entry
        if series:
            payload["series"] = {}
            for name in series:
                buffer = self._series.get(name)
                if buffer is not None:
                    payload["series"][name] = [
                        [round(t, 3), v] for t, v in buffer.since(cutoff)
                    ]
        return payload

    # -- SSE feed -------------------------------------------------------------

    def wait_for_event(
        self, seen_tick: int, timeout_s: float
    ) -> Optional[Dict[str, Any]]:
        """Block until a tick newer than ``seen_tick`` exists (or timeout).

        Returns the newest delta payload, or ``None`` on timeout /
        sampler shutdown — the SSE handler's loop condition.
        """
        with self._cond:
            if self.ticks <= seen_tick and not self._stop.is_set():
                self._cond.wait(timeout=timeout_s)
            if self.ticks > seen_tick and self._latest_event is not None:
                return self._latest_event
            return None


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL_S",
    "PROCESS_SERIES",
    "LiveSampler",
    "RingBuffer",
]
