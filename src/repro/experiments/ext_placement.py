"""Extension X2: dynamic PGW placement vs today's static IHBO.

The paper's conclusion: "achieving performant global connectivity will
likely require thick MNAs to evolve beyond today's static IHBO setups,
for example by leveraging PGW deployment that adapts dynamically to user
geography". This experiment quantifies that evolution in three steps:

1. today's static b-MNO-keyed assignment (the measured baseline),
2. nearest-PGW selection over the *existing* fleet,
3. a re-optimised fleet of the same size, placed by greedy k-median
   over the measured user geography.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import common
from repro.experiments.registry import experiment
from repro.geo.coords import haversine_km
from repro.ipx.placement import DemandPoint, assignment, greedy_k_median, mean_weighted_distance_km
from repro.worlds import paperdata as pd

#: Hub cities a PGW could realistically be hosted in.
CANDIDATE_HOSTING_CITIES = [
    ("Amsterdam", "NLD"), ("London", "GBR"), ("Frankfurt", "DEU"),
    ("Paris", "FRA"), ("Madrid", "ESP"), ("Warsaw", "POL"),
    ("Istanbul", "TUR"), ("Dubai", "ARE"), ("Singapore", "SGP"),
    ("Hong Kong", "HKG"), ("Tokyo", "JPN"), ("Mumbai", "IND"),
    ("Ashburn", "USA"), ("Dallas", "USA"), ("Sao Paulo", "BRA"),
    ("Johannesburg", "ZAF"), ("Nairobi", "KEN"), ("Sydney", "AUS"),
]


def _ihbo_demands(world) -> List[DemandPoint]:
    """One demand point per IHBO eSIM country, weighted by campaign size."""
    weights = {e.country_iso3: sum(e.ookla) for e in pd.DEVICE_CAMPAIGN}
    demands = []
    for spec in pd.ESIM_OFFERINGS:
        if spec.architecture != "IHBO":
            continue
        city = world.cities.get(spec.user_city, spec.country_iso3)
        demands.append(
            DemandPoint(
                location=city.location,
                weight=float(weights.get(spec.country_iso3, 10)),
                label=spec.country_iso3,
            )
        )
    return demands


@experiment("X2", title="Extension X2 — dynamic PGW placement",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    demands = _ihbo_demands(world)

    # Baseline: today's static assignment (first configured site).
    static_distances = {}
    for spec in pd.ESIM_OFFERINGS:
        if spec.architecture != "IHBO":
            continue
        site = world.pgw_sites[spec.pgw_site_ids[0]]
        city = world.cities.get(spec.user_city, spec.country_iso3)
        static_distances[spec.country_iso3] = haversine_km(
            city.location, site.location
        )
    weight = {d.label: d.weight for d in demands}
    total_weight = sum(weight.values())
    static_mean = sum(
        static_distances[label] * weight[label] for label in static_distances
    ) / total_weight

    # Nearest selection over the existing hub fleet.
    existing_sites = [
        world.pgw_sites[sid].city
        for sid in ("packet-host-ams", "packet-host-ash", "ovh-lille",
                    "wlogic-lon", "webbing-ams", "webbing-dal")
    ]
    nearest_mean = mean_weighted_distance_km(
        demands, [c.location for c in existing_sites]
    )

    # Re-optimised fleet of the same size over the hosting candidates.
    candidates = [world.cities.get(name, iso3) for name, iso3 in CANDIDATE_HOSTING_CITIES]
    k = len({c.key for c in existing_sites})
    optimised = greedy_k_median(demands, candidates, k)
    optimised_mean = mean_weighted_distance_km(
        demands, [c.location for c in optimised]
    )
    placed = assignment(demands, optimised)

    return {
        "static_mean_km": static_mean,
        "nearest_mean_km": nearest_mean,
        "optimised_mean_km": optimised_mean,
        "fleet_size": k,
        "optimised_sites": [c.key for c in optimised],
        "assignment": placed,
        "saving_nearest": 1 - nearest_mean / static_mean,
        "saving_optimised": 1 - optimised_mean / static_mean,
    }


def format_result(result: Dict) -> str:
    lines = [
        "demand-weighted mean SGW->PGW distance for the 16 IHBO eSIMs:",
        f"  static (today)        : {result['static_mean_km']:7.0f} km",
        f"  nearest, same fleet   : {result['nearest_mean_km']:7.0f} km "
        f"(-{result['saving_nearest']:.0%})",
        f"  optimised fleet (k={result['fleet_size']}) : "
        f"{result['optimised_mean_km']:7.0f} km (-{result['saving_optimised']:.0%})",
        f"  optimised sites: {', '.join(result['optimised_sites'])}",
    ]
    return "\n".join(lines)
