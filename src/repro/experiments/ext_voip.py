"""Extension X1: jitter, packet loss and VoIP quality per configuration.

Implements the paper's Future Directions item: "a broader suite of
network performance metrics, specifically including jitter and packet
loss, which are crucial for evaluating real-time services like VoIP".
Probes every device-campaign deployment with an RTP-style train and
scores calls with the ITU-T E-model.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List

from repro.cellular import UserEquipment, issue_physical_sim
from repro.cellular.radio import RadioAccessTechnology, RadioConditions
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.measure.voip import VoIPRecord, probe_voip
from repro.worlds import paperdata as pd

PROBES_PER_DEPLOYMENT = 12


@experiment("X1", title="Extension X1 — jitter / loss / VoIP MOS",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    resources = world.resources
    google = resources.sp_targets["Google"]
    conditions = RadioConditions(RadioAccessTechnology.NR, 11, -84.0, 13.0)

    rows: Dict = {}
    for entry in pd.DEVICE_CAMPAIGN:
        country = entry.country_iso3
        rng = random.Random(f"{seed}:voip:{country}")
        spec = world.offering(country)
        city = world.cities.get(spec.user_city, country)
        physical_operator = world.operators.get(pd.PHYSICAL_SIM_OPERATORS[country])

        device = UserEquipment.provision("Samsung S21+ 5G", city, rng)
        physical_slot = device.install_sim(issue_physical_sim(physical_operator, rng))
        esim_slot = device.install_sim(world.sell_esim(country, rng))

        for label, slot, v_mno in (
            ("SIM", physical_slot, physical_operator.name),
            ("eSIM", esim_slot, spec.v_mno),
        ):
            records: List[VoIPRecord] = []
            for _ in range(PROBES_PER_DEPLOYMENT):
                session = device.switch_to(slot, v_mno, world.factory, rng)
                records.append(
                    probe_voip(session, device.active_sim, google,
                               resources.fabric, conditions, rng)
                )
            config = records[0].context.config_label
            rows[(country, config)] = {
                "mos_median": statistics.median(r.mos for r in records),
                "jitter_median_ms": statistics.median(r.jitter_ms for r in records),
                "loss_mean": statistics.fmean(r.loss_rate for r in records),
                "rtt_median_ms": statistics.median(r.mean_rtt_ms for r in records),
                "usable_share": statistics.fmean(
                    1.0 if r.usable_for_calls else 0.0 for r in records
                ),
            }
        device.detach()

    by_config: Dict[str, List[float]] = {}
    for (country, config), stats in rows.items():
        by_config.setdefault(config, []).append(stats["mos_median"])
    return {
        "rows": dict(sorted(rows.items())),
        "mos_by_config": {
            config: statistics.median(values) for config, values in by_config.items()
        },
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{'Country':8} {'Config':12} {'MOS':>5} {'jitter':>8} {'loss':>7} "
        f"{'RTT':>7} {'usable':>7}"
    ]
    for (country, config), stats in result["rows"].items():
        lines.append(
            f"{country:8} {config:12} {stats['mos_median']:>5.2f} "
            f"{stats['jitter_median_ms']:>7.1f}ms {stats['loss_mean']:>6.1%} "
            f"{stats['rtt_median_ms']:>6.0f}ms {stats['usable_share']:>7.0%}"
        )
    lines.append(
        "median MOS by config: "
        + ", ".join(f"{cfg} {mos:.2f}" for cfg, mos in sorted(result["mos_by_config"].items()))
    )
    return "\n".join(lines)
