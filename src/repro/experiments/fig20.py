"""Figure 20: jQuery download time from the four remaining CDN
providers (Google CDN, Microsoft Ajax, jQuery, jsDelivr)."""

from __future__ import annotations

from typing import Dict

from repro.analysis.stats import boxplot_summary
from repro.experiments import common
from repro.experiments.registry import experiment

PROVIDERS = ("Google CDN", "Microsoft Ajax", "jQuery", "jsDelivr")


@experiment("F20", title="Figure 20 — remaining CDN download times",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    result: Dict = {}
    for provider in PROVIDERS:
        groups = dataset.select("cdn").where(provider=provider).group_by(
            "country", "config"
        )
        result[provider] = {
            key: boxplot_summary([r.total_ms for r in records])
            for key, records in groups.items()
        }
    return result


def format_result(result: Dict) -> str:
    lines = []
    for provider, series in result.items():
        lines.append(f"-- {provider} download time (ms) --")
        lines.append(f"{'Country':8} {'Config':10} {'mean':>8} {'med':>8}")
        for (country, config), summary in series.items():
            lines.append(
                f"{country:8} {config:10} {summary.mean:>8.0f} {summary.median:>8.0f}"
            )
    return "\n".join(lines)
