"""Figure 7: private path length per country (traceroutes to Google)."""

from __future__ import annotations

from typing import Dict

from repro.analysis.paths import path_length_series
from repro.analysis.stats import boxplot_summary
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F7", title="Figure 7 — private path length",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    records = dataset.traceroutes_to("Google")
    series = path_length_series(records, segment="private")
    return {
        key: boxplot_summary(values) for key, values in sorted(series.items())
    }


def format_result(result: Dict) -> str:
    lines = [f"{'Country':8} {'Config':10} {'min':>4} {'q1':>5} {'med':>5} {'q3':>5} {'max':>4}"]
    for (country, config), summary in result.items():
        lines.append(
            f"{country:8} {config:10} {summary.minimum:>4.0f} {summary.q1:>5.1f} "
            f"{summary.median:>5.1f} {summary.q3:>5.1f} {summary.maximum:>4.0f}"
        )
    return "\n".join(lines)
