"""Figure 14: (a) Cloudflare CDN download time and (b) DNS lookup time
per country and configuration."""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.analysis.stats import boxplot_summary
from repro.cellular.roaming import RoamingArchitecture
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import paperdata as pd


@experiment("F14", title="Figure 14 — Cloudflare download + DNS lookup times",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)

    # Insertion-ordered (country, config) series: means_by_arch below
    # concatenates across keys, so first-appearance order is preserved
    # exactly like the historic full-scan loops.
    cdn: Dict[Tuple[str, str], List[float]] = {}
    for record in dataset.select("cdn").where(provider="Cloudflare"):
        key = (record.context.country_iso3, record.context.config_label)
        cdn.setdefault(key, []).append(record.total_ms)

    dns: Dict[Tuple[str, str], List[float]] = {}
    for record in dataset.select("dns"):
        key = (record.context.country_iso3, record.context.config_label)
        dns.setdefault(key, []).append(record.lookup_ms)
    ihbo = dataset.select("dns").where(architecture=RoamingArchitecture.IHBO)
    ihbo_probes = ihbo.count()
    same_country = ihbo.filter(
        lambda r: r.resolver_country == r.context.pgw_country
    ).count()

    def means_by_arch(records_by_key):
        by_arch: Dict[str, List[float]] = {}
        for (country, config), values in records_by_key.items():
            by_arch.setdefault(config, []).extend(values)
        return {cfg: statistics.fmean(vals) for cfg, vals in by_arch.items()}

    return {
        "cdn": {k: boxplot_summary(v) for k, v in sorted(cdn.items())},
        "dns": {k: boxplot_summary(v) for k, v in sorted(dns.items())},
        "cdn_mean_by_config": means_by_arch(cdn),
        "dns_same_country_share": same_country / ihbo_probes if ihbo_probes else None,
    }


def format_result(result: Dict) -> str:
    lines = ["-- (a) Cloudflare jquery.min.js download time (ms) --"]
    lines.append(f"{'Country':8} {'Config':10} {'mean':>8} {'med':>8}")
    for (country, config), summary in result["cdn"].items():
        lines.append(
            f"{country:8} {config:10} {summary.mean:>8.0f} {summary.median:>8.0f}"
        )
    lines.append("-- (b) DNS lookup time (ms) --")
    for (country, config), summary in result["dns"].items():
        lines.append(
            f"{country:8} {config:10} {summary.mean:>8.0f} {summary.median:>8.0f}"
        )
    means = result["cdn_mean_by_config"]
    lines.append(
        "Cloudflare mean by config: "
        + ", ".join(f"{cfg} {mean:.0f} ms" for cfg, mean in sorted(means.items()))
        + "  (paper: IHBO 1316, HR 3203/1781, native 306/514)"
    )
    share = result["dns_same_country_share"]
    if share is not None:
        lines.append(
            f"IHBO DNS resolver in PGW country: {share:.0%} "
            f"(paper {pd.EXPECTED_DNS_SAME_COUNTRY_SHARE:.0%})"
        )
    return "\n".join(lines)
