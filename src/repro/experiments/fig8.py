"""Figure 8: CDF of RTT towards Singtel PGWs from the HR eSIMs in
Pakistan and the UAE.

Same path length (the Singtel core), yet the UAE corridor is faster —
the peering-quality effect the paper highlights.
"""

from __future__ import annotations

import statistics
from typing import Dict

from repro.analysis.paths import pgw_rtt_values
from repro.analysis.stats import empirical_cdf
from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F8", title="Figure 8 — RTT to Singtel PGWs (HR)",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    result = {}
    for country in ("PAK", "ARE"):
        records = [
            r
            for target in ("Google", "Facebook", "YouTube")
            for r in dataset.traceroutes_to(target, country=country, sim_kind=SIMKind.ESIM)
        ]
        values = pgw_rtt_values(records, pgw_provider="Singtel")
        result[country] = {
            "cdf": empirical_cdf(values),
            "median_ms": statistics.median(values) if values else None,
            "samples": len(values),
        }
    return result


def format_result(result: Dict) -> str:
    from repro.analysis.asciiplot import ascii_cdf

    lines = ["RTT to Singtel PGWs (HR eSIMs)"]
    for country, data in result.items():
        lines.append(
            f"{country}: n={data['samples']}, median {data['median_ms']:.0f} ms"
        )
    if result["ARE"]["median_ms"] and result["PAK"]["median_ms"]:
        ratio = result["PAK"]["median_ms"] / result["ARE"]["median_ms"]
        lines.append(f"PAK/ARE median ratio: {ratio:.2f} (paper: PAK slower)")
    series = {c: d["cdf"] for c, d in result.items() if d["cdf"][0]}
    if series:
        lines.append(ascii_cdf(series))
    return "\n".join(lines)
