"""Figure 18: median Airalo eSIM cost per country ($/GB), decile-coded.

The map's data: one median per country plus the decile bounds used for
the colour scale, with Central America called out as the expensive band.
"""

from __future__ import annotations

import statistics
from typing import Dict

from repro.experiments import common
from repro.experiments.registry import experiment
from repro.market import decile_bounds, median_usd_per_gb_by_country


@experiment("F18", title="Figure 18 — median $/GB per country",
            inputs=('market',))
def run(step_days: int = 7, snapshot_day: int = 90) -> Dict:
    esimdb, _ = common.get_market(step_days)
    countries = common.get_countries()
    snapshot = esimdb.snapshot(snapshot_day)
    per_country = median_usd_per_gb_by_country(snapshot.offers, provider="Airalo")
    values = list(per_country.values())
    bounds = decile_bounds(values)

    central = [
        v for iso3, v in per_country.items()
        if countries.get(iso3).subregion == "Central America"
    ]
    return {
        "per_country": dict(sorted(per_country.items())),
        "decile_bounds": bounds,
        "world_median": statistics.median(values),
        "central_america_median": statistics.median(central) if central else None,
        "central_america_above_world": (
            all(v > statistics.median(values) for v in central) if central else None
        ),
    }


def format_result(result: Dict) -> str:
    bounds = result["decile_bounds"]
    lines = [
        f"world median: ${result['world_median']:.2f}/GB (paper $7.9)",
        f"decile bounds: lowest <= ${bounds[0]:.2f} ... highest > ${bounds[-1]:.2f} "
        f"(paper: $4.33 / $12.25)",
        f"Central America median: ${result['central_america_median']:.2f}/GB, "
        f"all above world median: {result['central_america_above_world']}",
    ]
    cheap = sorted(result["per_country"].items(), key=lambda kv: kv[1])[:5]
    pricey = sorted(result["per_country"].items(), key=lambda kv: -kv[1])[:5]
    lines.append("cheapest: " + ", ".join(f"{c} ${v:.2f}" for c, v in cheap))
    lines.append("priciest: " + ", ".join(f"{c} ${v:.2f}" for c, v in pricey))
    return "\n".join(lines)
