"""Experiment reproductions.

One module per table/figure of the paper. Every module exposes
``run(...) -> dict`` returning the figure's data series plus a
``format_result(result) -> str`` that prints the same rows/series the
paper reports. The benchmark harness in ``benchmarks/`` wraps these.
"""

from repro.experiments import common

__all__ = ["common"]
