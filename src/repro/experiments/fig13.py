"""Figure 13: download/upload speeds.

(a) web-campaign fast.com downloads per country (grouped by network
configuration and b-MNO), (b) device-campaign downlink and (c) uplink,
per country and configuration, CQI-filtered like the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.metrics import speed_categories
from repro.analysis.stats import boxplot_summary, welch_ttest
from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment

ROAMING_DEVICE_COUNTRIES = ("GEO", "DEU", "PAK", "QAT", "SAU", "ESP", "ARE", "GBR")


@experiment("F13", title="Figure 13 — download/upload speeds",
            inputs=('device_dataset', 'web_dataset'))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    device = common.get_device_dataset(scale, seed)
    web = common.get_web_dataset(seed)

    web_summary = {
        country: boxplot_summary([r.download_mbps for r in records])
        for country, records in web.select("web").group_by("country").items()
    }

    down: Dict[Tuple[str, str], List[float]] = {}
    up: Dict[Tuple[str, str], List[float]] = {}
    for record in device.speedtests:
        if not record.passes_cqi_filter:
            continue
        key = (record.context.country_iso3, record.context.config_label)
        down.setdefault(key, []).append(record.download_mbps)
        up.setdefault(key, []).append(record.upload_mbps)

    def category_shares(sim_kind: SIMKind) -> Dict[str, float]:
        """Country-balanced speed-category shares.

        Per-country category fractions averaged with equal weight, so
        Germany's month-long deployment doesn't drown out the one-day
        ones — this is how the paper's 78.8%/31.9% split reads.
        """
        per_country = []
        by_kind = device.select("speedtest").where(sim_kind=sim_kind).filter(
            lambda r: r.passes_cqi_filter
        )
        for country in ROAMING_DEVICE_COUNTRIES:
            records = by_kind.where(country=country).records()
            if records:
                per_country.append(speed_categories(records))
        keys = ("slow", "medium", "fast")
        if not per_country:
            # A fault-degraded campaign can lose every series of one kind.
            return {key: 0.0 for key in keys}
        return {
            key: sum(shares[key] for shares in per_country) / len(per_country)
            for key in keys
        }

    # Per-country uplink significance (PAK/GEO are the throttled ones).
    uplink_p: Dict[str, float] = {}
    for country in ROAMING_DEVICE_COUNTRIES:
        sim_up = up.get((country, "SIM"), [])
        esim_ups = [v for (c, cfg), vals in up.items()
                    if c == country and cfg != "SIM" for v in vals]
        if len(sim_up) >= 2 and len(esim_ups) >= 2:
            _, p = welch_ttest(sim_up, esim_ups)
            uplink_p[country] = p

    total_filtered = sum(len(v) for v in down.values())
    total_all = len(device.speedtests)
    return {
        "web_download": web_summary,
        "device_down": {k: boxplot_summary(v) for k, v in sorted(down.items())},
        "device_up": {k: boxplot_summary(v) for k, v in sorted(up.items())},
        "esim_categories": category_shares(SIMKind.ESIM),
        "sim_categories": category_shares(SIMKind.PHYSICAL),
        "cqi_retention": total_filtered / total_all if total_all else None,
        "uplink_p_values": uplink_p,
    }


def format_result(result: Dict) -> str:
    lines = ["-- (a) web campaign fast.com download (Mbps) --"]
    lines.append(f"{'Country':8} {'med':>7} {'q1':>7} {'q3':>7}")
    for country, summary in result["web_download"].items():
        lines.append(
            f"{country:8} {summary.median:>7.1f} {summary.q1:>7.1f} {summary.q3:>7.1f}"
        )
    for panel, label in (("device_down", "(b) downlink"), ("device_up", "(c) uplink")):
        lines.append(f"-- {label} (Mbps, CQI>=7) --")
        lines.append(f"{'Country':8} {'Config':10} {'mean':>7} {'med':>7}")
        for (country, config), summary in result[panel].items():
            lines.append(
                f"{country:8} {config:10} {summary.mean:>7.1f} {summary.median:>7.1f}"
            )
    esim = result["esim_categories"]
    sim = result["sim_categories"]
    lines.append(
        f"roaming eSIM: slow {esim['slow']:.1%} fast {esim['fast']:.1%} "
        f"(paper 78.8% / 4.5%)"
    )
    lines.append(
        f"physical SIM: slow {sim['slow']:.1%} fast {sim['fast']:.1%} "
        f"(paper 31.9% / 48%)"
    )
    retention = result["cqi_retention"]
    lines.append(
        "CQI filter retention: "
        + (f"{retention:.0%}" if retention is not None else "n/a")
        + " (paper 80%)"
    )
    return "\n".join(lines)
