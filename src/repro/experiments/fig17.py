"""Figure 17: CDF of median $/GB per country for notable providers, plus
the local-physical-SIM survey line."""

from __future__ import annotations

import statistics
from typing import Dict

from repro.analysis.stats import empirical_cdf
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.market import (
    DEFAULT_LOCAL_OFFERS,
    LocalSIMSurvey,
    provider_country_medians,
)

PROVIDERS = ("Airhub", "MobiMatter", "Airalo", "Keepgo")


@experiment("F17", title="Figure 17 — provider $/GB CDFs + local SIM",
            inputs=('market',))
def run(step_days: int = 7, snapshot_day: int = 90) -> Dict:
    esimdb, _ = common.get_market(step_days)
    snapshot = esimdb.snapshot(snapshot_day)
    medians = provider_country_medians(snapshot.offers)

    result: Dict = {"providers": {}}
    for provider in PROVIDERS:
        values = medians.get(provider, [])
        result["providers"][provider] = {
            "cdf": empirical_cdf(values),
            "median": statistics.median(values),
            "countries": len(values),
            "offer_share": len(snapshot.for_provider(provider)) / len(snapshot.offers),
        }
    survey = LocalSIMSurvey(DEFAULT_LOCAL_OFFERS)
    result["local_sim"] = {
        "cdf": empirical_cdf(survey.usd_per_gb_values()),
        "median": survey.median_usd_per_gb(),
    }
    result["total_offers"] = len(snapshot.offers)
    return result


def format_result(result: Dict) -> str:
    lines = [f"aggregator lists {result['total_offers']} offers on snapshot day"]
    for provider, data in result["providers"].items():
        lines.append(
            f"{provider:12} median ${data['median']:5.2f}/GB over "
            f"{data['countries']} countries ({data['offer_share']:.1%} of offers)"
        )
    lines.append(
        f"{'local SIM':12} median ${result['local_sim']['median']:5.2f}/GB (dashed line)"
    )
    return "\n".join(lines)
