"""Figure 11: RTT to Facebook/Google (final traceroute hop) and latency
to the nearest Ookla server, per country and configuration."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.stats import boxplot_summary, welch_ttest, levene_test
from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F11", title="Figure 11 — RTT to Facebook/Google/Ookla",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)

    panels: Dict[str, Dict[Tuple[str, str], object]] = {}
    for target in ("Facebook", "Google"):
        groups = (
            dataset.select("traceroute")
            .where(target=target)
            .filter(lambda r: r.final_rtt_ms is not None)
            .group_by("country", "config")
        )
        panels[target] = {
            key: boxplot_summary([r.final_rtt_ms for r in records])
            for key, records in groups.items()
        }

    speedtests = dataset.select("speedtest")
    panels["Ookla"] = {
        key: boxplot_summary([r.latency_ms for r in records])
        for key, records in speedtests.group_by("country", "config").items()
    }

    # The statistical tests of Section 5.1.
    roaming_sim, roaming_esim = [], []
    native_sim, native_esim = [], []
    all_sim, all_esim = [], []
    for record in speedtests:
        ctx = record.context
        is_esim = ctx.sim_kind is SIMKind.ESIM
        native_country = ctx.country_iso3 in ("KOR", "THA")
        (all_esim if is_esim else all_sim).append(record.latency_ms)
        if native_country:
            (native_esim if is_esim else native_sim).append(record.latency_ms)
        else:
            (roaming_esim if is_esim else roaming_sim).append(record.latency_ms)

    _, p_roaming = welch_ttest(roaming_sim, roaming_esim)
    _, p_native = welch_ttest(native_sim, native_esim)
    _, p_levene = levene_test(all_sim, all_esim)
    return {
        "panels": panels,
        "ttest_roaming_p": p_roaming,
        "ttest_native_p": p_native,
        "levene_p": p_levene,
    }


def format_result(result: Dict) -> str:
    from repro.analysis.asciiplot import ascii_boxplot

    lines = []
    for target, series in result["panels"].items():
        lines.append(f"-- RTT/latency to {target} (ms) --")
        lines.append(f"{'Country':8} {'Config':10} {'q1':>7} {'med':>7} {'q3':>7}")
        for (country, config), summary in series.items():
            lines.append(
                f"{country:8} {config:10} {summary.q1:>7.1f} "
                f"{summary.median:>7.1f} {summary.q3:>7.1f}"
            )
    lines.append(
        f"t-test roaming countries p={result['ttest_roaming_p']:.2e} "
        f"(paper 7.65e-5, significant)"
    )
    lines.append(
        f"t-test native countries p={result['ttest_native_p']:.3f} "
        f"(paper 0.152, not significant)"
    )
    lines.append(f"Levene p={result['levene_p']:.3f} (paper 0.025, heteroscedastic)")
    ookla = result["panels"]["Ookla"]
    if ookla:
        lines.append("Ookla latency boxplots (ms):")
        lines.append(
            ascii_boxplot({f"{c} {cfg}": s for (c, cfg), s in ookla.items()})
        )
    return "\n".join(lines)
