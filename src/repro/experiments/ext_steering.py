"""Extension X4: steering of roaming and partner-network visibility.

Quantifies the mechanism behind Figure 5's roamer comparison: generic
Play-Poland roamers spread across several UK networks (coverage choice
plus Play's SoR), so the partner v-MNO observes only a slice of their
activity — while Airalo's profile pins its one partner and shows up in
full. The experiment reports the attach distribution under three
regimes and the resulting visibility ratio at the partner network.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.cellular.steering import (
    NetworkSelector,
    SteeringPolicy,
    VisitedNetworkOption,
)
from repro.experiments import common
from repro.experiments.registry import experiment

#: A UK-like market: the partner network plus two competitors.
UK_NETWORKS = (
    VisitedNetworkOption("O2 UK", 0.35),
    VisitedNetworkOption("EE", 0.40),
    VisitedNetworkOption("Vodafone UK", 0.25),
)

#: Play steers its roamers toward EE (cheapest wholesale agreement).
PLAY_POLICY = SteeringPolicy("Play", preferred=("EE",), compliance=0.75)

SAMPLES = 20_000


@experiment("X4", title="Extension X4 — steering of roaming",
            inputs=())
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    rng = random.Random(f"{seed}:steering")
    selector = NetworkSelector()
    selector.register_country("GBR", UK_NETWORKS)
    selector.set_policy("GBR", PLAY_POLICY)

    unsteered_selector = NetworkSelector()
    unsteered_selector.register_country("GBR", UK_NETWORKS)

    unsteered = unsteered_selector.attach_distribution("Play", "GBR", rng, SAMPLES)
    steered = selector.attach_distribution("Play", "GBR", rng, SAMPLES)
    airalo = selector.attach_distribution(
        "Play", "GBR", rng, SAMPLES, pinned_operator="O2 UK"
    )

    partner = "O2 UK"
    return {
        "unsteered": unsteered,
        "steered": steered,
        "airalo_pinned": airalo,
        "partner": partner,
        # How much of a roamer's activity the partner core can see,
        # relative to an Airalo user's (always 100% at the partner).
        "partner_visibility_ratio": steered[partner] / airalo[partner],
    }


def format_result(result: Dict) -> str:
    lines = ["attach shares of Play roamers across UK networks:"]
    header = sorted(result["unsteered"])
    lines.append(f"{'regime':16}" + "".join(f"{name:>14}" for name in header))
    for regime in ("unsteered", "steered", "airalo_pinned"):
        shares = result[regime]
        lines.append(
            f"{regime:16}"
            + "".join(f"{shares.get(name, 0.0):>13.1%} " for name in header)
        )
    lines.append(
        f"partner ({result['partner']}) sees "
        f"{result['partner_visibility_ratio']:.0%} of a generic roamer's "
        "activity vs 100% of an Airalo user's — the Figure 5 visibility gap"
    )
    return "\n".join(lines)
