"""Figure 12: CDFs of the private share of end-to-end latency.

(a) SIM vs native eSIMs, (b) SIM vs HR eSIMs, (c) the six IHBO-country
datasets — the GTP tunnel's contribution to total RTT.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.paths import private_share_values
from repro.analysis.stats import empirical_cdf, percent_above
from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment

NATIVE_COUNTRIES = ("KOR", "THA")
HR_COUNTRIES = ("PAK", "ARE")
IHBO_COUNTRIES = ("GEO", "DEU", "QAT", "SAU", "ESP", "GBR")


def _records(dataset, countries):
    return [
        r
        for target in ("Google", "Facebook", "YouTube")
        for country in countries
        for r in dataset.traceroutes_to(target, country=country)
    ]


@experiment("F12", title="Figure 12 — private share of latency",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    panels = {}
    for label, countries in (
        ("native", NATIVE_COUNTRIES),
        ("hr", HR_COUNTRIES),
        ("ihbo", IHBO_COUNTRIES),
    ):
        records = _records(dataset, countries)
        sim = private_share_values(records, sim_kind=SIMKind.PHYSICAL)
        esim = private_share_values(records, sim_kind=SIMKind.ESIM)
        panels[label] = {
            "sim_cdf": empirical_cdf(sim) if sim else ([], []),
            "esim_cdf": empirical_cdf(esim) if esim else ([], []),
            "sim_share_above_98pct": percent_above(sim, 0.98) if sim else None,
            "esim_share_above_98pct": percent_above(esim, 0.98) if esim else None,
        }
    return panels


def format_result(result: Dict) -> str:
    lines = ["share of traceroutes whose private latency exceeds 98% of total:"]
    for label, panel in result.items():
        sim = panel["sim_share_above_98pct"]
        esim = panel["esim_share_above_98pct"]
        lines.append(
            f"{label:7} SIM {sim:6.1%}   eSIM {esim:6.1%}"
        )
    lines.append("paper: >=80% of HR eSIM runs above 98%, <10% for SIMs")
    from repro.analysis.asciiplot import ascii_cdf

    series = {
        f"eSIM/{label}": panel["esim_cdf"]
        for label, panel in result.items()
        if panel["esim_cdf"][0]
    }
    if series:
        lines.append("private-share CDFs (x = share of RTT that is private):")
        lines.append(ascii_cdf(series))
    return "\n".join(lines)
