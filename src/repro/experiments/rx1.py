"""RX1: the campaign under fire — resilience of the headline results.

Runs the device campaign twice with the same seed: once clean and once
under paper-plausible fault rates (attach rejects with 3GPP causes,
SIM-flip wedges, transient service outages and probe timeouts, endpoint
churn). The chaotic run must (a) still complete >= 95% of the plan via
retries, quarantine recovery and make-up days, and (b) preserve the
paper's headline *shape*: native < IHBO < HR latency inflation (HX1)
and the Figure 13 speed-category split (roaming eSIMs slower than
physical SIMs).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import speed_categories
from repro.cellular import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.faults import ChaosConfig
from repro.measure.dataset import MeasurementDataset

#: The acceptance bar for plan completion under paper-plausible faults.
COMPLETION_TARGET = 0.95


def default_chaos(seed: int = common.DEFAULT_SEED) -> ChaosConfig:
    """Paper-plausible fault rates, keyed to the study seed."""
    return ChaosConfig.paper_plausible(seed=seed)


def _latencies_by_architecture(
    dataset: MeasurementDataset,
) -> Dict[RoamingArchitecture, List[float]]:
    """Every eSIM RTT observation, grouped by roaming architecture."""
    observations: List[Tuple] = [
        (r.context, r.latency_ms) for r in dataset.speedtests
    ]
    observations.extend(
        (r.context, r.final_rtt_ms)
        for r in dataset.traceroutes
        if r.final_rtt_ms is not None
    )
    by_arch: Dict[RoamingArchitecture, List[float]] = {}
    for ctx, latency in observations:
        if ctx.sim_kind is SIMKind.ESIM:
            by_arch.setdefault(ctx.architecture, []).append(latency)
    return by_arch


def _mean_by_architecture(
    dataset: MeasurementDataset,
) -> Dict[RoamingArchitecture, Optional[float]]:
    by_arch = _latencies_by_architecture(dataset)
    return {
        arch: (statistics.fmean(values) if values else None)
        for arch, values in by_arch.items()
    }


def _categories(dataset: MeasurementDataset, sim_kind: SIMKind) -> Dict[str, float]:
    records = (
        dataset.select("speedtest")
        .where(sim_kind=sim_kind)
        .filter(lambda r: r.passes_cqi_filter)
        .records()
    )
    if not records:
        return {"slow": 0.0, "medium": 0.0, "fast": 0.0}
    return speed_categories(records)


@experiment("RX1", title="Resilience — the campaign under paper-plausible fault injection",
            inputs=('device_dataset',))
def run(
    scale: float = common.DEFAULT_SCALE,
    seed: int = common.DEFAULT_SEED,
    chaos: Optional[ChaosConfig] = None,
) -> Dict:
    chaos = chaos if chaos is not None and chaos.enabled else default_chaos(seed)
    clean = common.get_device_dataset(scale, seed)
    stressed = common.get_device_dataset(scale, seed, chaos=chaos)
    health = stressed.health

    means = _mean_by_architecture(stressed)
    native = means.get(RoamingArchitecture.NATIVE)
    ihbo = means.get(RoamingArchitecture.IHBO)
    hr = means.get(RoamingArchitecture.HR)
    ordering_holds = (
        native is not None and ihbo is not None and hr is not None
        and native < ihbo < hr
    )

    return {
        "chaos": chaos,
        "completion_rate": health.completion_rate(),
        "completion_target": COMPLETION_TARGET,
        "records_clean": clean.total_records(),
        "records_stressed": stressed.total_records(),
        "retried": health.retried_total,
        "dropped": health.dropped_total,
        "attach_retries": health.attach_retries,
        "attach_failures": health.attach_failures,
        "quarantines": len(health.quarantines),
        "offline_days": health.offline_days,
        "makeup_days": health.makeup_days,
        "mean_latency_ms": {
            "native": native, "ihbo": ihbo, "hr": hr,
        },
        "inflation_ordering_holds": ordering_holds,
        "esim_categories_clean": _categories(clean, SIMKind.ESIM),
        "esim_categories_stressed": _categories(stressed, SIMKind.ESIM),
        "sim_categories_clean": _categories(clean, SIMKind.PHYSICAL),
        "sim_categories_stressed": _categories(stressed, SIMKind.PHYSICAL),
        "health": health,
    }


def format_result(result: Dict) -> str:
    chaos: ChaosConfig = result["chaos"]
    means = result["mean_latency_ms"]

    def fmt_ms(value: Optional[float]) -> str:
        return f"{value:7.1f}" if value is not None else "    n/a"

    completion = result["completion_rate"]
    lines = [
        "-- campaign under fire (paper-plausible fault rates) --",
        f"attach rejects {chaos.attach_reject_rate:.0%}, SIM-flip wedges "
        f"{chaos.sim_flip_failure_rate:.0%}, outages "
        f"{chaos.service_outage_rate:.0%}, timeouts "
        f"{chaos.probe_timeout_rate:.0%}, churn "
        f"{chaos.churn_rate_per_day:.0%}/day",
        f"records: {result['records_clean']} clean -> "
        f"{result['records_stressed']} stressed",
        f"plan completion: "
        + (f"{completion:.1%}" if completion is not None else "n/a")
        + f" (target >= {result['completion_target']:.0%})",
        f"test retries: {result['retried']}; dropped runs: {result['dropped']}",
        f"attach retries: {result['attach_retries']}; attach give-ups: "
        f"{result['attach_failures']}",
        f"quarantines: {result['quarantines']}; offline days: "
        f"{result['offline_days']}; make-up days: {result['makeup_days']}",
        "-- HX1 ordering under faults --",
        f"native {fmt_ms(means['native'])} ms < IHBO {fmt_ms(means['ihbo'])} ms"
        f" < HR {fmt_ms(means['hr'])} ms : "
        + ("holds" if result["inflation_ordering_holds"] else "VIOLATED"),
        "-- F13 speed buckets (CQI>=7) --",
    ]
    for label, key in (
        ("roaming eSIM (clean)", "esim_categories_clean"),
        ("roaming eSIM (chaos)", "esim_categories_stressed"),
        ("physical SIM (clean)", "sim_categories_clean"),
        ("physical SIM (chaos)", "sim_categories_stressed"),
    ):
        cats = result[key]
        lines.append(
            f"{label:22} slow {cats['slow']:.1%}  medium {cats['medium']:.1%}  "
            f"fast {cats['fast']:.1%}"
        )
    lines.append("-- degradation accounting --")
    lines.append(result["health"].render())
    return "\n".join(lines)
