"""Experiment result export.

Experiment ``run()`` functions return plain-Python structures that may
contain dataclasses (boxplot summaries, classified rows), enums and
tuple keys. This module flattens them into strict JSON so results can be
archived or plotted elsewhere (``python -m repro run F11 --json out.json``).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import pathlib
from typing import Any, Union


def jsonable(obj: Any) -> Any:
    """Recursively convert an experiment result into JSON-safe data.

    Tuple dict keys become ``"a|b"`` strings; dataclasses become dicts;
    enums their values; non-finite floats become strings.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(key, tuple):
                key = "|".join(str(part) for part in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = jsonable(value)
        return out
    if isinstance(obj, (list, tuple, set)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            return str(obj)
        return obj
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return str(obj)


def save_result(result: Any, path: Union[str, pathlib.Path]) -> None:
    """Dump one experiment result as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(jsonable(result), indent=2, sort_keys=True) + "\n")
