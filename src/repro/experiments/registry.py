"""Declarative experiment registry.

Every experiment module registers itself with one decorator on its
``run``::

    from repro.experiments.registry import experiment

    @experiment("T4", title="Table 4 — device-based campaign overview",
                inputs=("device_dataset",))
    def run(scale: float = common.DEFAULT_SCALE,
            seed: int = common.DEFAULT_SEED) -> Dict:
        ...

The decorator captures an :class:`ExperimentSpec` — the artefact id,
its human title, which shared inputs it consumes (``world``,
``device_dataset``, ``web_dataset``, ``market``) and which driver
parameters its ``run`` accepts. ``supports_scale`` / ``uses_chaos`` are
*derived from the signature*, never hand-maintained, which kills the
drift bug class the old ``_SCALED`` set had; ``uses_seed`` is derived
too but can be pinned (the emnify validation deliberately runs on its
own seed).

The driver (:class:`repro.core.ThickMnaStudy`) and the parallel runner
dispatch through :func:`get_spec` instead of ``importlib`` string
lookups, and :meth:`ExperimentSpec.inputs` tells the runner exactly
which shared inputs to warm for a shard.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

#: The shared inputs an experiment may declare (what the runner warms).
#: ``population`` is the columnar subscriber substrate
#: (:mod:`repro.worlds.population`) — warmed once in the parent and
#: shared zero-copy with pool workers via ``multiprocessing.shared_memory``.
INPUT_KINDS: Tuple[str, ...] = (
    "world", "device_dataset", "web_dataset", "market", "population",
)

#: Artefact id prefix -> artefact kind (what ``python -m repro list`` prints).
_KIND_BY_PREFIX = {
    "T": "table",
    "F": "figure",
    "H": "headline",
    "R": "resilience",
    "X": "extension",
}

#: Modules under ``repro.experiments`` that are infrastructure, not
#: experiments (everything else must register a spec).
SUPPORT_MODULES: FrozenSet[str] = frozenset({"common", "export", "registry"})


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the driver needs to know about one artefact."""

    artefact_id: str
    title: str
    #: Subset of :data:`INPUT_KINDS` this experiment consumes.
    inputs: FrozenSet[str]
    #: ``run`` accepts a campaign ``scale`` (derived from its signature).
    supports_scale: bool
    #: The driver forwards its seed (derived; pinned False for HX2).
    uses_seed: bool
    #: ``run`` accepts a ``chaos`` fault config (derived).
    uses_chaos: bool
    #: "table" | "figure" | "headline" | "resilience" | "extension".
    kind: str
    #: Defining module (``repro.experiments.<name>``).
    module: str
    #: Name of the registered function inside ``module`` (always "run").
    run_name: str = "run"

    @property
    def run(self) -> Callable[..., Dict]:
        """The experiment's ``run`` — resolved from the module at call
        time so test monkeypatching of ``module.run`` keeps working."""
        return getattr(importlib.import_module(self.module), self.run_name)

    def invoke(
        self,
        seed: int,
        scale: Optional[float] = None,
        chaos: Optional[Any] = None,
    ) -> Dict:
        """Call ``run`` with exactly the parameters the spec declares."""
        kwargs: Dict[str, Any] = {}
        if self.uses_seed:
            kwargs["seed"] = seed
        if self.supports_scale and scale is not None:
            kwargs["scale"] = scale
        if self.uses_chaos:
            kwargs["chaos"] = chaos
        return self.run(**kwargs)

    def render(self, result: Dict) -> str:
        """Format a ``run`` result the paper's way (module ``format_result``)."""
        module = importlib.import_module(self.module)
        return module.format_result(result)

    def describe_inputs(self) -> str:
        """The declared inputs as a stable, compact label."""
        return "+".join(k for k in INPUT_KINDS if k in self.inputs) or "-"


_SPECS: Dict[str, ExperimentSpec] = {}
_LOADED = False


def experiment(
    artefact_id: str,
    *,
    title: str,
    inputs: Iterable[str] = ("world",),
    uses_seed: Optional[bool] = None,
) -> Callable[[Callable[..., Dict]], Callable[..., Dict]]:
    """Register the decorated ``run`` as artefact ``artefact_id``.

    ``inputs`` declares the shared inputs the experiment reads through
    :mod:`repro.experiments.common`; ``supports_scale`` and
    ``uses_chaos`` are read off the function signature. Pass
    ``uses_seed=False`` for an experiment that pins its own seed.
    """
    artefact_id = artefact_id.upper()
    declared = frozenset(inputs)
    unknown = declared - set(INPUT_KINDS)
    if unknown:
        raise ValueError(
            f"{artefact_id}: unknown inputs {sorted(unknown)}; "
            f"allowed: {INPUT_KINDS}"
        )
    kind = _KIND_BY_PREFIX.get(artefact_id[0], "artefact")

    def decorate(run_fn: Callable[..., Dict]) -> Callable[..., Dict]:
        parameters = inspect.signature(run_fn).parameters
        spec = ExperimentSpec(
            artefact_id=artefact_id,
            title=title,
            inputs=declared,
            supports_scale="scale" in parameters,
            uses_seed=("seed" in parameters) if uses_seed is None else uses_seed,
            uses_chaos="chaos" in parameters,
            kind=kind,
            module=run_fn.__module__,
            run_name=run_fn.__name__,
        )
        previous = _SPECS.get(artefact_id)
        if previous is not None and previous.module != spec.module:
            raise ValueError(
                f"duplicate experiment id {artefact_id!r}: "
                f"{previous.module} vs {spec.module}"
            )
        _SPECS[artefact_id] = spec
        run_fn.__experiment_spec__ = spec  # type: ignore[attr-defined]
        return run_fn

    return decorate


def load_all() -> None:
    """Import every experiment module so each registers its spec."""
    global _LOADED
    if _LOADED:
        return
    import repro.experiments as package

    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_") or info.name in SUPPORT_MODULES:
            continue
        importlib.import_module(f"repro.experiments.{info.name}")
    _LOADED = True


def get_spec(artefact_id: str) -> ExperimentSpec:
    """The spec for ``artefact_id`` (case-insensitive); KeyError if unknown."""
    load_all()
    artefact_id = artefact_id.upper()
    if artefact_id not in _SPECS:
        raise KeyError(
            f"unknown experiment {artefact_id!r}; "
            f"known: {', '.join(sorted(_SPECS))}"
        )
    return _SPECS[artefact_id]


def all_specs() -> Dict[str, ExperimentSpec]:
    """Every registered spec, keyed by artefact id (loads on demand)."""
    load_all()
    return dict(_SPECS)


def artefact_ids() -> List[str]:
    load_all()
    return sorted(_SPECS)


def legacy_registry() -> Dict[str, str]:
    """{artefact id: module basename} — the shape the old hand-written
    ``EXPERIMENT_REGISTRY`` dict had, now derived from the specs."""
    load_all()
    return {
        artefact_id: spec.module.rsplit(".", 1)[-1]
        for artefact_id, spec in _SPECS.items()
    }
