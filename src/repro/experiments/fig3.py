"""Figure 3: SGW-to-PGW mapping for the 21 roaming eSIMs.

For every roaming offering: the end-user (SGW) location, the PGW
location(s) observed, the straight-line tunnel distance and the
architecture (solid HR / dashed IHBO lines in the paper's map).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cellular import UserEquipment
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import paperdata as pd

ATTACHES = 10


@experiment("F3", title="Figure 3 — SGW-to-PGW mapping, 21 roaming eSIMs",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    lines: List[Dict] = []
    for spec in pd.ESIM_OFFERINGS:
        if spec.architecture == "NATIVE":
            continue
        rng = random.Random(f"{seed}:fig3:{spec.country_iso3}")
        seen = {}
        for _ in range(ATTACHES):
            esim = world.sell_esim(spec.country_iso3, rng)
            ue = UserEquipment.provision(
                "Samsung S21+ 5G",
                world.cities.get(spec.user_city, spec.country_iso3), rng,
            )
            ue.install_sim(esim)
            session = ue.switch_to(0, spec.v_mno, world.factory, rng)
            key = session.pgw_site.site_id
            if key not in seen:
                seen[key] = {
                    "visited_country": spec.country_iso3,
                    "user_city": spec.user_city,
                    "b_mno": spec.b_mno,
                    "pgw_site": key,
                    "pgw_provider": session.pgw_site.provider_org,
                    "pgw_city": session.pgw_site.city.name,
                    "pgw_country": session.breakout_country,
                    "distance_km": round(session.tunnel.distance_km, 1),
                    "architecture": session.architecture.label,
                }
            ue.detach()
        lines.extend(seen.values())
    lines.sort(key=lambda e: (e["b_mno"], e["visited_country"], e["pgw_site"]))
    return {
        "lines": lines,
        "roaming_esims": len({e["visited_country"] for e in lines}),
        "hr_lines": [e for e in lines if e["architecture"] == "HR"],
        "ihbo_lines": [e for e in lines if e["architecture"] == "IHBO"],
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{'Visited':8} {'User city':14} {'b-MNO':16} {'PGW':22} "
        f"{'Dist km':>8} {'Type':5}"
    ]
    for entry in result["lines"]:
        pgw = f"{entry['pgw_city']} ({entry['pgw_provider']})"
        lines.append(
            f"{entry['visited_country']:8} {entry['user_city']:14} "
            f"{entry['b_mno']:16} {pgw:22} {entry['distance_km']:>8} "
            f"{entry['architecture']:5}"
        )
    lines.append(
        f"{result['roaming_esims']} roaming eSIMs; "
        f"{len(result['hr_lines'])} HR lines (solid), "
        f"{len(result['ihbo_lines'])} IHBO lines (dashed)"
    )
    return "\n".join(lines)
