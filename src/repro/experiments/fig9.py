"""Figure 9: CDF of PGW RTT from IHBO eSIMs in Georgia, Germany and
Spain, split by PGW provider (OVH SAS vs Packet Host)."""

from __future__ import annotations

import statistics
from typing import Dict

from repro.analysis.paths import pgw_rtt_values
from repro.analysis.stats import empirical_cdf
from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment

COUNTRIES = ("GEO", "DEU", "ESP")
PROVIDERS = ("OVH SAS", "Packet Host")


@experiment("F9", title="Figure 9 — PGW RTT by provider (IHBO)",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    result: Dict = {}
    for country in COUNTRIES:
        records = [
            r
            for target in ("Google", "Facebook", "YouTube")
            for r in dataset.traceroutes_to(target, country=country, sim_kind=SIMKind.ESIM)
        ]
        per_provider = {}
        for provider in PROVIDERS:
            values = pgw_rtt_values(records, pgw_provider=provider)
            per_provider[provider] = {
                "cdf": empirical_cdf(values) if values else ([], []),
                "median_ms": statistics.median(values) if values else None,
                "samples": len(values),
            }
        result[country] = per_provider
    return result


def format_result(result: Dict) -> str:
    lines = ["PGW RTT by provider (IHBO eSIMs); OS: OVH SAS, PH: Packet Host"]
    for country, per_provider in result.items():
        cells = []
        for provider, data in per_provider.items():
            short = "OS" if provider.startswith("OVH") else "PH"
            median = data["median_ms"]
            text = f"{short}: n={data['samples']}"
            if median is not None:
                text += f", med {median:.0f} ms"
            cells.append(text)
        lines.append(f"{country:5} " + " | ".join(cells))
    return "\n".join(lines)
