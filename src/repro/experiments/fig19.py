"""Figure 19: plan size vs price per eSIM and b-MNO.

Airalo plans (<= 5 GB) for countries sharing a b-MNO: same
infrastructure, different prices, and a gap that widens with size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments import common
from repro.experiments.registry import experiment
from repro.market import size_price_curve
from repro.worlds import paperdata as pd


@experiment("F19", title="Figure 19 — plan size vs price per b-MNO",
            inputs=('market',))
def run(step_days: int = 7, snapshot_day: int = 90, max_gb: float = 5.0) -> Dict:
    esimdb, _ = common.get_market(step_days)
    snapshot = esimdb.snapshot(snapshot_day)

    groups: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for spec in pd.ESIM_OFFERINGS:
        curve = size_price_curve(
            snapshot.offers, spec.country_iso3, provider="Airalo", max_gb=max_gb
        )
        if curve:
            groups.setdefault(spec.b_mno, {})[spec.country_iso3] = curve

    # The paper's example: Play in Georgia vs Spain.
    geo = dict(groups.get("Play", {}).get("GEO", []))
    esp = dict(groups.get("Play", {}).get("ESP", []))
    shared = sorted(set(geo) & set(esp))
    gap_ratio = None
    if shared:
        gap_ratio = geo[shared[-1]] / esp[shared[-1]]
    return {"groups": groups, "geo_vs_esp_price_ratio": gap_ratio}


def format_result(result: Dict) -> str:
    lines = []
    for b_mno, curves in sorted(result["groups"].items()):
        lines.append(f"-- b-MNO: {b_mno} --")
        for country, curve in sorted(curves.items()):
            points = "  ".join(f"{size:g}GB=${price:.2f}" for size, price in curve)
            lines.append(f"  {country:5} {points}")
    ratio = result["geo_vs_esp_price_ratio"]
    if ratio is not None:
        lines.append(
            f"Play eSIM: Georgia costs {ratio:.2f}x Spain at the largest shared size "
            "(paper: up to ~2x)"
        )
    return "\n".join(lines)
