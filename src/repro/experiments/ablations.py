"""Ablations of the design choices DESIGN.md calls out.

* ``pgw_selection`` — static b-MNO-keyed PGW assignment (the measured
  reality) vs geography-aware nearest-PGW selection (the paper's future
  direction): how much latency the France/Uzbekistan eSIMs would gain.
* ``lbo`` — what Local Breakout would deliver if the trust problems were
  solved: breakout at the v-MNO itself.
* ``doh`` — the DoH-on-by-default accident: lookup times with and
  without DNS-over-HTTPS on the IHBO resolvers.
* ``cqi_filter`` — how much radio noise the paper's CQI >= 7 admission
  rule removes from the roaming bandwidth comparison.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict

from repro.cellular import (
    PGWSelection,
    RoamingAgreement,
    RoamingArchitecture,
    SIMKind,
    UserEquipment,
)
from repro.experiments import common
from repro.experiments.registry import experiment


def _attach_with_selection(world, country: str, selection: PGWSelection, rng):
    """Attach an eSIM in ``country`` under a modified selection policy."""
    spec = world.offering(country)
    original = world.agreements.get(spec.b_mno, spec.v_mno)
    modified = RoamingAgreement(
        b_mno_name=original.b_mno_name,
        v_mno_name=original.v_mno_name,
        architecture=original.architecture,
        pgw_site_ids=tuple(sorted(world.pgw_sites))
        if selection is PGWSelection.NEAREST
        else original.pgw_site_ids,
        selection=selection,
        tunnel_stretch=original.tunnel_stretch,
        extra_rtt_ms=original.extra_rtt_ms,
    )
    # NEAREST may only choose among hub-breakout sites the b-MNO's IPX
    # contract can reach.
    if selection is PGWSelection.NEAREST:
        reachable = tuple(
            site_id for site_id in sorted(world.pgw_sites)
            if world.ipx.can_reach(original.b_mno_name, site_id)
        )
        modified = RoamingAgreement(
            b_mno_name=original.b_mno_name,
            v_mno_name=original.v_mno_name,
            architecture=original.architecture,
            pgw_site_ids=reachable or original.pgw_site_ids,
            selection=selection,
            tunnel_stretch=original.tunnel_stretch,
            extra_rtt_ms=original.extra_rtt_ms,
        )

    # Swap the agreement in, attach, swap back.
    world.agreements._by_key[original.key] = modified  # noqa: SLF001
    try:
        esim = world.sell_esim(country, rng)
        ue = UserEquipment.provision(
            "Samsung S21+ 5G", world.cities.get(spec.user_city, country), rng
        )
        ue.install_sim(esim)
        session = ue.switch_to(0, spec.v_mno, world.factory, rng)
    finally:
        world.agreements._by_key[original.key] = original  # noqa: SLF001
    return session


def run_pgw_selection(seed: int = common.DEFAULT_SEED, samples: int = 20) -> Dict:
    """Static vs nearest PGW selection for the transatlantic eSIMs."""
    world = common.get_world(seed)
    out: Dict = {}
    for country in ("FRA", "UZB", "TUR"):
        rng = random.Random(f"{seed}:ablate-pgw:{country}")
        static_rtts, nearest_rtts = [], []
        nearest_sites = set()
        for _ in range(samples):
            s_static = _attach_with_selection(world, country, PGWSelection.STATIC_BMNO, rng)
            static_rtts.append(s_static.base_private_rtt_ms)
            s_near = _attach_with_selection(world, country, PGWSelection.NEAREST, rng)
            nearest_rtts.append(s_near.base_private_rtt_ms)
            nearest_sites.add(s_near.pgw_site.site_id)
        out[country] = {
            "static_median_ms": statistics.median(static_rtts),
            "nearest_median_ms": statistics.median(nearest_rtts),
            "nearest_sites": sorted(nearest_sites),
            "saving": 1 - statistics.median(nearest_rtts) / statistics.median(static_rtts),
        }
    return out


def run_lbo(seed: int = common.DEFAULT_SEED, samples: int = 20) -> Dict:
    """IHBO as deployed vs hypothetical Local Breakout at the v-MNO."""
    world = common.get_world(seed)
    out: Dict = {}
    for country in ("ESP", "GEO", "UZB"):
        spec = world.offering(country)
        rng = random.Random(f"{seed}:ablate-lbo:{country}")
        original = world.agreements.get(spec.b_mno, spec.v_mno)
        lbo_site = None
        for site_id, site in world.pgw_sites.items():
            if site.provider_org == spec.v_mno:
                lbo_site = site_id
                break
        assert lbo_site is not None, f"{spec.v_mno} has no core site"
        lbo_agreement = RoamingAgreement(
            b_mno_name=original.b_mno_name,
            v_mno_name=original.v_mno_name,
            architecture=RoamingArchitecture.LBO,
            pgw_site_ids=(lbo_site,),
            selection=PGWSelection.STATIC_BMNO,
            tunnel_stretch=1.4,          # in-country path
            extra_rtt_ms=0.0,
        )
        ihbo_rtts, lbo_rtts = [], []
        for _ in range(samples):
            session = _attach_with_selection(world, country, original.selection, rng)
            ihbo_rtts.append(session.base_private_rtt_ms)
            world.agreements._by_key[original.key] = lbo_agreement  # noqa: SLF001
            try:
                esim = world.sell_esim(country, rng)
                ue = UserEquipment.provision(
                    "Samsung S21+ 5G", world.cities.get(spec.user_city, country), rng
                )
                ue.install_sim(esim)
                lbo_session = ue.switch_to(0, spec.v_mno, world.factory, rng)
            finally:
                world.agreements._by_key[original.key] = original  # noqa: SLF001
            lbo_rtts.append(lbo_session.base_private_rtt_ms)
            assert lbo_session.architecture is RoamingArchitecture.LBO
        out[country] = {
            "ihbo_median_ms": statistics.median(ihbo_rtts),
            "lbo_median_ms": statistics.median(lbo_rtts),
            "saving": 1 - statistics.median(lbo_rtts) / statistics.median(ihbo_rtts),
        }
    return out


def run_doh(
    scale: float = common.DEFAULT_SCALE,
    seed: int = common.DEFAULT_SEED,
    samples: int = 200,
) -> Dict:
    """DoH on vs off for an IHBO session's resolver."""
    world = common.get_world(seed)
    spec = world.offering("ESP")
    rng = random.Random(f"{seed}:ablate-doh")
    esim = world.sell_esim("ESP", rng)
    ue = UserEquipment.provision(
        "Samsung S21+ 5G", world.cities.get(spec.user_city, "ESP"), rng
    )
    ue.install_sim(esim)
    session = ue.switch_to(0, spec.v_mno, world.factory, rng)
    dns = world.resources.dns_for(session)
    with_doh = [
        dns.resolve(session, world.fabric, rng, use_doh=True).lookup_ms
        for _ in range(samples)
    ]
    without = [
        dns.resolve(session, world.fabric, rng, use_doh=False).lookup_ms
        for _ in range(samples)
    ]
    return {
        "doh_median_ms": statistics.median(with_doh),
        "plain_median_ms": statistics.median(without),
        "overhead": statistics.median(with_doh) / statistics.median(without) - 1,
    }


def run_cqi_filter(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    """Roaming-eSIM download statistics with and without the CQI filter."""
    dataset = common.get_device_dataset(scale, seed)
    esim = (
        dataset.select("speedtest")
        .where(sim_kind=SIMKind.ESIM)
        .filter(lambda r: r.context.architecture is not RoamingArchitecture.NATIVE)
        .records()
    )
    unfiltered = [r.download_mbps for r in esim]
    filtered = [r.download_mbps for r in esim if r.passes_cqi_filter]
    return {
        "all_count": len(unfiltered),
        "filtered_count": len(filtered),
        "retention": len(filtered) / len(unfiltered) if unfiltered else None,
        "mean_all": statistics.fmean(unfiltered),
        "mean_filtered": statistics.fmean(filtered),
        "stdev_all": statistics.pstdev(unfiltered),
        "stdev_filtered": statistics.pstdev(filtered),
    }


@experiment("XA", title="Ablations — PGW selection / LBO / DoH / CQI filter",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    """All four ablations."""
    return {
        "pgw_selection": run_pgw_selection(seed),
        "lbo": run_lbo(seed),
        "doh": run_doh(seed=seed),
        "cqi_filter": run_cqi_filter(seed=seed),
    }


def format_result(result: Dict) -> str:
    lines = ["-- ablation: static vs nearest PGW selection --"]
    for country, data in result["pgw_selection"].items():
        lines.append(
            f"{country}: static {data['static_median_ms']:.0f} ms -> nearest "
            f"{data['nearest_median_ms']:.0f} ms via {data['nearest_sites']} "
            f"({data['saving']:.0%} saved)"
        )
    lines.append("-- ablation: IHBO vs hypothetical LBO --")
    for country, data in result["lbo"].items():
        lines.append(
            f"{country}: IHBO {data['ihbo_median_ms']:.0f} ms -> LBO "
            f"{data['lbo_median_ms']:.0f} ms ({data['saving']:.0%} saved)"
        )
    doh = result["doh"]
    lines.append(
        f"-- ablation: DoH {doh['doh_median_ms']:.0f} ms vs plain "
        f"{doh['plain_median_ms']:.0f} ms (+{doh['overhead']:.0%}) --"
    )
    cqi = result["cqi_filter"]
    lines.append(
        f"-- ablation: CQI filter keeps {cqi['retention']:.0%} of runs; "
        f"mean {cqi['mean_all']:.1f} -> {cqi['mean_filtered']:.1f} Mbps, "
        f"stdev {cqi['stdev_all']:.1f} -> {cqi['stdev_filtered']:.1f} --"
    )
    return "\n".join(lines)
