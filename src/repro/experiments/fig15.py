"""Figure 15: YouTube playback resolution per country and configuration."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F15", title="Figure 15 — YouTube playback resolution",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    distributions: Dict[Tuple[str, str], Dict[str, float]] = {}
    groups = dataset.select("video").group_by("country", "config")
    for key, records in groups.items():
        bucket = distributions.setdefault(key, {})
        for record in records:
            for label, count in record.resolution_counts.items():
                bucket[label] = bucket.get(label, 0) + count
    # Normalise to shares.
    for bucket in distributions.values():
        total = sum(bucket.values())
        for label in bucket:
            bucket[label] = bucket[label] / total

    share_1080 = {
        key: sum(v for label, v in bucket.items() if int(label.rstrip("p")) >= 1080)
        for key, bucket in distributions.items()
    }
    return {
        "distributions": dict(sorted(distributions.items())),
        "share_1080p_or_better": dict(sorted(share_1080.items())),
    }


def format_result(result: Dict) -> str:
    lines = [f"{'Country':8} {'Config':10} resolution shares"]
    for (country, config), bucket in result["distributions"].items():
        ordered = sorted(bucket.items(), key=lambda kv: int(kv[0].rstrip("p")))
        shares = "  ".join(f"{label}:{share:.0%}" for label, share in ordered)
        lines.append(f"{country:8} {config:10} {shares}")
    lines.append("share of segments at >=1080p:")
    for (country, config), share in result["share_1080p_or_better"].items():
        lines.append(f"  {country:8} {config:10} {share:.0%}")
    return "\n".join(lines)
