"""Headline numbers quoted across the abstract and Section 5.1.

Latency inflation of HR (+621%) and IHBO (+64%) over native; share of
measurements above 150 ms per SIM kind; the roaming speed-category
split; and the DoH/DNS observations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import (
    high_latency_share,
    latency_inflation_by_architecture,
)
from repro.cellular import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import paperdata as pd


@experiment("HX1", title="Headline numbers (latency inflation, >150 ms shares)",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)

    # "Latency measurements" in the paper's sense: every RTT observation —
    # speedtest pings and traceroute end-to-end RTTs alike.
    observations: List = [
        (r.context, r.latency_ms) for r in dataset.speedtests
    ]
    observations.extend(
        (r.context, r.final_rtt_ms)
        for r in dataset.traceroutes
        if r.final_rtt_ms is not None
    )

    by_arch: Dict[RoamingArchitecture, List[float]] = {}
    esim_roaming: List[float] = []
    sim_all: List[float] = []
    for ctx, latency in observations:
        if ctx.sim_kind is SIMKind.ESIM:
            by_arch.setdefault(ctx.architecture, []).append(latency)
            if ctx.architecture is not RoamingArchitecture.NATIVE:
                esim_roaming.append(latency)
        else:
            sim_all.append(latency)

    inflation = latency_inflation_by_architecture(by_arch)
    return {
        "hr_inflation": inflation.get(RoamingArchitecture.HR),
        "ihbo_inflation": inflation.get(RoamingArchitecture.IHBO),
        "esim_roaming_high_latency_share": high_latency_share(esim_roaming),
        "sim_high_latency_share": high_latency_share(sim_all),
        "paper": {
            "hr_inflation": pd.EXPECTED_HR_INFLATION,
            "ihbo_inflation": pd.EXPECTED_IHBO_INFLATION,
            "esim_high_latency_share": pd.EXPECTED_ESIM_HIGH_LATENCY_SHARE,
            "sim_high_latency_share": pd.EXPECTED_SIM_HIGH_LATENCY_SHARE,
        },
    }


def format_result(result: Dict) -> str:
    paper = result["paper"]

    def fmt(value) -> str:
        # A partial (fault-degraded) series can miss an architecture.
        return f"+{value:.0%}" if value is not None else "n/a"

    return "\n".join(
        [
            f"HR latency inflation vs native:   {fmt(result['hr_inflation'])} "
            f"(paper +{paper['hr_inflation']:.0%})",
            f"IHBO latency inflation vs native: {fmt(result['ihbo_inflation'])} "
            f"(paper +{paper['ihbo_inflation']:.0%})",
            f"roaming-eSIM measurements >150 ms: "
            f"{result['esim_roaming_high_latency_share']:.1%} "
            f"(paper {paper['esim_high_latency_share']:.1%}; our campaign mix is "
            f"HR-heavier, see EXPERIMENTS.md)",
            f"physical-SIM measurements >150 ms: "
            f"{result['sim_high_latency_share']:.1%} "
            f"(paper {paper['sim_high_latency_share']:.1%})",
        ]
    )
