"""Figure 16: evolution of Airalo's median $/GB per continent, February
to May 2024, plus the New-Jersey-vantage check."""

from __future__ import annotations

from typing import Dict

from repro.market import MarketCrawler, price_timeline
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F16", title="Figure 16 — $/GB over time per continent",
            inputs=('market',))
def run(step_days: int = 7) -> Dict:
    esimdb, crawl = common.get_market(step_days)
    countries = common.get_countries()
    snapshots = {s.day: s.offers for s in crawl.daily_snapshots}
    timeline = price_timeline(snapshots, countries, provider="Airalo")

    crawler = MarketCrawler(esimdb)
    vantage_snaps = crawler.crawl_vantages(day=84)  # late April
    discrimination = MarketCrawler.price_discrimination_detected(vantage_snaps)

    return {
        "timeline": timeline,
        "price_discrimination": discrimination,
        "days": sorted(snapshots),
    }


def format_result(result: Dict) -> str:
    lines = ["median Airalo $/GB per continent over the crawl:"]
    for continent, series in sorted(result["timeline"].items()):
        first = series[0][1]
        last = series[-1][1]
        lines.append(
            f"{continent:14} day {series[0][0]:>3}: ${first:5.2f}  ->  "
            f"day {series[-1][0]:>3}: ${last:5.2f}"
        )
    lines.append(
        f"price discrimination across vantages: {result['price_discrimination']} "
        "(paper: none observed)"
    )
    return "\n".join(lines)
