"""Extension X6: the Section 7 user implications, quantified.

For every Airalo offering: where do geography-dependent services think
the user is, which jurisdictions handle the data, and who is the
third party in the middle. Summarises the paper's two QoE/privacy
claims — mislocalized content and opaque intermediary handling — across
the 24-country footprint.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analysis.jurisdiction import GeoExperience, assess_geo_experience
from repro.cellular import UserEquipment
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import paperdata as pd


@experiment("X6", title="Extension X6 — localization and jurisdiction",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    experiences: List[GeoExperience] = []
    for spec in pd.ESIM_OFFERINGS:
        rng = random.Random(f"{seed}:jurisdiction:{spec.country_iso3}")
        esim = world.sell_esim(spec.country_iso3, rng)
        ue = UserEquipment.provision(
            "Samsung S21+ 5G",
            world.cities.get(spec.user_city, spec.country_iso3),
            rng,
        )
        ue.install_sim(esim)
        session = ue.switch_to(0, spec.v_mno, world.factory, rng)
        experiences.append(assess_geo_experience(session, world.operators))
        ue.detach()

    mislocalized = [e for e in experiences if not e.localized_correctly]
    third_party = [e for e in experiences if e.crosses_third_country]
    intermediary_countries = sorted(
        {e.apparent_country for e in mislocalized}
    )
    return {
        "experiences": experiences,
        "total": len(experiences),
        "mislocalized": len(mislocalized),
        "third_party_handled": len(third_party),
        "intermediary_countries": intermediary_countries,
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{'User in':8} {'Appears in':10} {'Type':7} {'Handled by':18} "
        f"{'Jurisdictions':20}"
    ]
    for experience in result["experiences"]:
        marker = "" if experience.localized_correctly else "  <- mislocalized"
        lines.append(
            f"{experience.user_country:8} {experience.apparent_country:10} "
            f"{experience.architecture.label:7} "
            f"{experience.third_party_operator:18} "
            f"{'>'.join(experience.jurisdictions):20}{marker}"
        )
    lines.append(
        f"{result['mislocalized']}/{result['total']} eSIMs receive "
        f"geo-content for the wrong country "
        f"(intermediaries: {', '.join(result['intermediary_countries'])})"
    )
    lines.append(
        f"{result['third_party_handled']}/{result['total']} have user data "
        "handled in a country that is neither visited nor chosen — the "
        "Section 7 transparency concern"
    )
    return "\n".join(lines)
