"""Figure 4: Packet Host (AS54825) PGW assignments and their suboptimality.

The 10 eSIMs whose PGW provider is Packet Host, with the paper's two
headline observations: France/Uzbekistan (Polkomtel) break out in
Virginia despite Amsterdam being closer, and Turkey's breakout in
Amsterdam is farther than its b-MNO's home network.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cellular import UserEquipment
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.geo.coords import haversine_km
from repro.worlds import paperdata as pd

ATTACHES = 16


@experiment("F4", title="Figure 4 — Packet Host (AS54825) assignments",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    entries: List[Dict] = []
    ams = world.cities.get("Amsterdam", "NLD").location
    for spec in pd.ESIM_OFFERINGS:
        if not any(site.startswith("packet-host") for site in spec.pgw_site_ids):
            continue
        rng = random.Random(f"{seed}:fig4:{spec.country_iso3}")
        user_city = world.cities.get(spec.user_city, spec.country_iso3)
        b_home = world.operators.get(spec.b_mno).home_city
        assert b_home is not None
        pgw_cities = set()
        for _ in range(ATTACHES):
            esim = world.sell_esim(spec.country_iso3, rng)
            ue = UserEquipment.provision("Samsung S21+ 5G", user_city, rng)
            ue.install_sim(esim)
            session = ue.switch_to(0, spec.v_mno, world.factory, rng)
            if session.pgw_site.provider_org == "Packet Host":
                pgw_cities.add(session.pgw_site.city.name)
            ue.detach()
        for pgw_city_name in sorted(pgw_cities):
            pgw_city = world.cities.get(
                pgw_city_name, "NLD" if pgw_city_name == "Amsterdam" else "USA"
            )
            distance = haversine_km(user_city.location, pgw_city.location)
            entries.append(
                {
                    "visited_country": spec.country_iso3,
                    "b_mno": spec.b_mno,
                    "b_mno_country": world.operators.get(spec.b_mno).country_iso3,
                    "pgw_city": pgw_city_name,
                    "distance_km": round(distance, 1),
                    "amsterdam_closer": haversine_km(user_city.location, ams) < distance,
                    "farther_than_b_mno": distance
                    > haversine_km(user_city.location, b_home.location),
                }
            )
    return {
        "entries": entries,
        "esim_count": len({e["visited_country"] for e in entries}),
        "transatlantic": [
            e for e in entries if e["pgw_city"] == "Ashburn" and e["amsterdam_closer"]
        ],
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{'Visited':8} {'b-MNO':14} {'PGW city':10} {'Dist km':>9} "
        f"{'AMS closer?':12} {'> b-MNO dist?':13}"
    ]
    for entry in result["entries"]:
        lines.append(
            f"{entry['visited_country']:8} {entry['b_mno']:14} "
            f"{entry['pgw_city']:10} {entry['distance_km']:>9} "
            f"{str(entry['amsterdam_closer']):12} {str(entry['farther_than_b_mno']):13}"
        )
    lines.append(
        f"{result['esim_count']} eSIMs on AS54825; "
        f"{len(result['transatlantic'])} break out in Virginia with Amsterdam closer"
    )
    return "\n".join(lines)
