"""Table 2: visited countries, b-MNOs, PGW providers and architectures.

Provisions every Airalo offering repeatedly, records the public IPs the
sessions receive, and runs the paper's classification pipeline (public
IP -> ASN -> HR/LBO/IHBO) to rebuild the table from observations alone.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analysis.classify import build_breakout_table
from repro.cellular import UserEquipment
from repro.cellular.radio import RadioAccessTechnology, RadioConditions
from repro.measure.records import MeasurementContext
from repro.experiments import common
from repro.experiments.registry import experiment

#: Attaches per country: enough to observe both PGW providers of the
#: alternating (Play / Telna) eSIMs.
ATTACHES_PER_COUNTRY = 12


@experiment("T2", title="Table 2 — eSIM topology (b-MNO / PGW provider / architecture)",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    conditions = RadioConditions(RadioAccessTechnology.NR, 11, -85.0, 14.0)
    contexts: List[MeasurementContext] = []
    for country in world.airalo.served_countries():
        rng = random.Random(f"{seed}:table2:{country}")
        spec = world.offering(country)
        for _ in range(ATTACHES_PER_COUNTRY):
            esim = world.sell_esim(country, rng)
            ue = UserEquipment.provision(
                "Samsung S21+ 5G", world.cities.get(spec.user_city, country), rng
            )
            ue.install_sim(esim)
            session = ue.switch_to(0, spec.v_mno, world.factory, rng)
            contexts.append(MeasurementContext.from_session(session, esim, conditions))
            ue.detach()

    rows = build_breakout_table(contexts, world.geoip, world.operators)
    countries_by_arch: Dict[str, set] = {}
    for row in rows:
        label = row.architecture.label
        countries_by_arch.setdefault(label, set()).add(row.visited_country)
    counts = {label: len(countries) for label, countries in countries_by_arch.items()}
    return {
        "rows": rows,
        "architecture_country_counts": counts,
        "b_mnos": sorted({r.b_mno for r in rows}),
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{'Visited':8} {'b-MNO':16} {'PGW Provider':16} "
        f"{'ASN':7} {'PGW Ctry':8} {'Type':6}"
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.visited_country:8} {row.b_mno:16} {row.pgw_provider:16} "
            f"AS{row.pgw_asn:<5} {row.pgw_country:8} {row.architecture.label:6}"
        )
    lines.append(f"countries per architecture: {result['architecture_country_counts']}")
    return "\n".join(lines)
