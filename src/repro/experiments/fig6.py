"""Figure 6: median unique ASNs in traceroutes to Google and Facebook."""

from __future__ import annotations

from typing import Dict

from repro.analysis.paths import unique_asn_medians
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F6", title="Figure 6 — unique ASNs in traceroutes",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    result: Dict = {}
    sp_only: Dict = {}
    for target in ("Google", "Facebook"):
        query = dataset.select("traceroute").where(target=target)
        result[target] = unique_asn_medians(query.records())
        # Runs revealing only the SP's ASN: the CG-NAT stayed silent.
        totals = query.count_by("country", "config")
        only = query.filter(lambda r: len(r.unique_asns) <= 1).count_by(
            "country", "config"
        )
        sp_only[target] = {
            key: only.get(key, 0) / total for key, total in totals.items() if total
        }
    result["sp_asn_only_share"] = sp_only
    return result


def format_result(result: Dict) -> str:
    lines = []
    for target, medians in result.items():
        if target == "sp_asn_only_share":
            continue
        lines.append(f"-- {target} --")
        lines.append(f"{'Country':8} {'SIM':>5} {'eSIM':>6}")
        countries = sorted({country for country, _ in medians})
        for country in countries:
            sim = medians.get((country, "SIM"), float("nan"))
            esim = medians.get((country, "eSIM"), float("nan"))
            lines.append(f"{country:8} {sim:>5.1f} {esim:>6.1f}")
    hidden = result.get("sp_asn_only_share", {}).get("Facebook", {})
    notable = {k: v for k, v in sorted(hidden.items()) if v > 0.25}
    if notable:
        lines.append("Facebook runs revealing only the SP ASN (silent CG-NAT):")
        for (country, config), share in notable.items():
            lines.append(f"  {country} {config}: {share:.0%}")
    return "\n".join(lines)
