"""Figure 10: public path length per country and SIM configuration,
traceroutes to Google and Facebook."""

from __future__ import annotations

from typing import Dict

from repro.analysis.paths import path_length_series
from repro.analysis.stats import boxplot_summary
from repro.experiments import common
from repro.experiments.registry import experiment


@experiment("F10", title="Figure 10 — public path length",
            inputs=('device_dataset',))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    result: Dict = {}
    for target in ("Google", "Facebook"):
        series = path_length_series(dataset.traceroutes_to(target), segment="public")
        result[target] = {
            key: boxplot_summary(values) for key, values in sorted(series.items())
        }
    return result


def format_result(result: Dict) -> str:
    lines = []
    for target, series in result.items():
        lines.append(f"-- public path length to {target} --")
        lines.append(f"{'Country':8} {'Config':10} {'q1':>5} {'med':>5} {'q3':>5}")
        for (country, config), summary in series.items():
            lines.append(
                f"{country:8} {config:10} {summary.q1:>5.1f} "
                f"{summary.median:>5.1f} {summary.q3:>5.1f}"
            )
    return "\n".join(lines)
