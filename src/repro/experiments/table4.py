"""Table 4: device-based campaign overview.

Reports per-country successful test counts as <physical SIM> // <eSIM>
for every tool, from an actual campaign run (scaled by default).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cellular import SIMKind
from repro.experiments import common

_TESTS = [
    ("Ookla", "speedtest"),
    ("MTR(Facebook)", "mtr:Facebook"),
    ("MTR(Google)", "mtr:Google"),
    ("MTR(YouTube)", "mtr:YouTube"),
    ("CDN(Cloudflare)", "cdn:Cloudflare"),
    ("CDN(Google)", "cdn:Google CDN"),
    ("CDN(jQuery)", "cdn:jQuery"),
    ("CDN(jsDelivr)", "cdn:jsDelivr"),
    ("CDN(MS Ajax)", "cdn:Microsoft Ajax"),
    ("Video", "video"),
]


def _count(dataset, country: str) -> Dict[str, Tuple[int, int]]:
    counts: Dict[str, Tuple[int, int]] = {}

    def pair(records):
        sim = sum(1 for r in records if r.context.sim_kind is SIMKind.PHYSICAL)
        esim = sum(1 for r in records if r.context.sim_kind is SIMKind.ESIM)
        return (sim, esim)

    counts["speedtest"] = pair(
        [r for r in dataset.speedtests if r.context.country_iso3 == country]
    )
    for target in ("Facebook", "Google", "YouTube"):
        counts[f"mtr:{target}"] = pair(dataset.traceroutes_to(target, country=country))
    for provider in ("Cloudflare", "Google CDN", "jQuery", "jsDelivr", "Microsoft Ajax"):
        counts[f"cdn:{provider}"] = pair(
            dataset.cdn_fetches_where(provider=provider, country=country)
        )
    counts["video"] = pair(dataset.video_probes_where(country=country))
    return counts


def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    rows = {}
    for country in dataset.countries():
        rows[country] = _count(dataset, country)
    return {"rows": rows, "scale": scale}


def format_result(result: Dict) -> str:
    header = f"{'Country':8}" + "".join(f"{label:>17}" for label, _ in _TESTS)
    lines = [f"(scale={result['scale']}) counts are <SIM> // <eSIM>", header]
    for country, counts in sorted(result["rows"].items()):
        cells = []
        for _, key in _TESTS:
            sim, esim = counts.get(key, (0, 0))
            cells.append(f"{sim:>7} // {esim:<5}")
        lines.append(f"{country:8}" + "".join(f"{c:>17}" for c in cells))
    return "\n".join(lines)
