"""Table 4: device-based campaign overview.

Reports per-country successful test counts as <physical SIM> // <eSIM>
for every tool, from an actual campaign run (scaled by default).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cellular import SIMKind
from repro.experiments import common
from repro.experiments.registry import experiment

_TESTS = [
    ("Ookla", "speedtest"),
    ("MTR(Facebook)", "mtr:Facebook"),
    ("MTR(Google)", "mtr:Google"),
    ("MTR(YouTube)", "mtr:YouTube"),
    ("CDN(Cloudflare)", "cdn:Cloudflare"),
    ("CDN(Google)", "cdn:Google CDN"),
    ("CDN(jQuery)", "cdn:jQuery"),
    ("CDN(jsDelivr)", "cdn:jsDelivr"),
    ("CDN(MS Ajax)", "cdn:Microsoft Ajax"),
    ("Video", "video"),
]


def _count(dataset, country: str) -> Dict[str, Tuple[int, int]]:
    """Successful (physical SIM, eSIM) counts per test for one country.

    Each cell is two position-list intersections on the dataset index —
    the naive per-country full scans this replaced are kept honest by
    ``benchmarks/test_bench_query.py``.
    """
    counts: Dict[str, Tuple[int, int]] = {}

    def pair(query) -> Tuple[int, int]:
        return (
            query.where(sim_kind=SIMKind.PHYSICAL).count(),
            query.where(sim_kind=SIMKind.ESIM).count(),
        )

    counts["speedtest"] = pair(dataset.select("speedtest").where(country=country))
    mtr = dataset.select("traceroute").where(country=country)
    for target in ("Facebook", "Google", "YouTube"):
        counts[f"mtr:{target}"] = pair(mtr.where(target=target))
    cdn = dataset.select("cdn").where(country=country)
    for provider in ("Cloudflare", "Google CDN", "jQuery", "jsDelivr", "Microsoft Ajax"):
        counts[f"cdn:{provider}"] = pair(cdn.where(provider=provider))
    counts["video"] = pair(dataset.select("video").where(country=country))
    return counts


@experiment("T4", title="Table 4 — device-based campaign overview",
            inputs=("device_dataset",))
def run(scale: float = common.DEFAULT_SCALE, seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_device_dataset(scale, seed)
    rows = {}
    for country in dataset.countries():
        rows[country] = _count(dataset, country)
    return {"rows": rows, "scale": scale}


def format_result(result: Dict) -> str:
    header = f"{'Country':8}" + "".join(f"{label:>17}" for label, _ in _TESTS)
    lines = [f"(scale={result['scale']}) counts are <SIM> // <eSIM>", header]
    for country, counts in sorted(result["rows"].items()):
        cells = []
        for _, key in _TESTS:
            sim, esim = counts.get(key, (0, 0))
            cells.append(f"{sim:>7} // {esim:<5}")
        lines.append(f"{country:8}" + "".join(f"{c:>17}" for c in cells))
    return "\n".join(lines)
