"""Section 4.3.1: methodology validation against emnify.

Runs 219 traceroutes (73 per SP, as in the paper) from an emnify eSIM in
London and checks that the breakout-geolocation pipeline identifies
AS16509 (Amazon) in Dublin — the operator-confirmed ground truth.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.cellular.radio import RadioAccessTechnology, RadioConditions
from repro.experiments.registry import experiment
from repro.measure.traceroute import postprocess
from repro.worlds import build_emnify_world
from repro.worlds import paperdata as pd

TRACEROUTES_PER_SP = 73  # 3 SPs x 73 = 219 runs


@experiment("HX2", title="Methodology validation (emnify, Section 4.3.1)",
            inputs=(), uses_seed=False)
def run(seed: int = 42) -> Dict:
    world = build_emnify_world(seed)
    rng = random.Random(f"{seed}:validation")
    esim, session = world.provision_session(rng)
    conditions = RadioConditions(RadioAccessTechnology.NR, 11, -82.0, 14.0)

    identified: Dict = {}
    runs = 0
    verified = 0
    for target in ("Google", "YouTube", "Facebook"):
        provider = world.sp_targets[target]
        for _ in range(TRACEROUTES_PER_SP):
            runs += 1
            result = world.engine.trace(session, provider, conditions, rng)
            record = postprocess(result, session, esim, conditions, world.geoip)
            if not record.pgw_verified:
                continue
            verified += 1
            geo = world.geoip.lookup(record.pgw_ip)
            key = (geo.asn, geo.city, geo.country_iso3)
            identified[key] = identified.get(key, 0) + 1

    return {
        "runs": runs,
        "verified_runs": verified,
        "identified": identified,
        "expected": (pd.ASN_AMAZON, "Dublin", "IRL"),
        "matches_ground_truth": set(identified) == {(pd.ASN_AMAZON, "Dublin", "IRL")},
    }


def format_result(result: Dict) -> str:
    lines = [
        f"{result['runs']} traceroutes, {result['verified_runs']} with verified PGW hop"
    ]
    for (asn, city, country), count in sorted(result["identified"].items()):
        lines.append(f"  PGW provider AS{asn} in {city}, {country}: {count} runs")
    lines.append(
        f"matches operator-confirmed ground truth "
        f"(AS{result['expected'][0]}, {result['expected'][1]}): "
        f"{result['matches_ground_truth']}"
    )
    return "\n".join(lines)
