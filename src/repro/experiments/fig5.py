"""Figure 5: data/signalling traffic of Airalo users vs Play roamers vs
native subscribers, from the UK v-MNO's core telemetry.

Deploys ten Airalo-on-Play devices in the partner network, mines their
IMSI prefixes, flags matching inbound roamers, and compares the three
populations' daily volumes.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.analysis.stats import boxplot_summary
from repro.cellular import (
    CoreTelemetryGenerator,
    IMSIRange,
    PLMN,
    SubscriberPopulation,
    detect_airalo_imsis,
)
from repro.cellular.signalling import AIRALO_PROFILE, NATIVE_PROFILE, ROAMER_PROFILE
from repro.experiments import common
from repro.experiments.registry import experiment

PLAY_PLMN = PLMN("260", "06")
OBSERVATION_DAYS = 30  # April 2024


@experiment("F5", title="Figure 5 — v-MNO telemetry: Airalo vs Play roamers vs native",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    world = common.get_world(seed)
    rng = random.Random(f"{seed}:fig5")
    play = world.operators.get("Play")
    airalo_ranges = play.ranges_for("Airalo")
    assert airalo_ranges, "Play must rent ranges to Airalo"
    retail = IMSIRange(prefix=play.plmn.code, label="play retail")
    uk_native = IMSIRange(prefix="23410", label="uk native")

    # Signalling comes from the mechanistic control-plane model: native
    # users vs travellers (more mobility, IPX-crossing authentications)
    # vs generic Play roamers (activity split across several UK v-MNOs).
    generator = CoreTelemetryGenerator(rng)
    generator.add_population(
        SubscriberPopulation("native", 400, data_mu=5.8, data_sigma=0.8,
                             signalling_mu=0.0, signalling_sigma=0.0,
                             signalling_profile=NATIVE_PROFILE),
        [uk_native],
    )
    generator.add_population(
        SubscriberPopulation("airalo", 120, data_mu=5.7, data_sigma=0.8,
                             signalling_mu=0.0, signalling_sigma=0.0,
                             signalling_profile=AIRALO_PROFILE),
        airalo_ranges,
    )
    generator.add_population(
        SubscriberPopulation("play-roamer", 250, data_mu=4.5, data_sigma=1.0,
                             signalling_mu=0.0, signalling_sigma=0.0,
                             signalling_profile=ROAMER_PROFILE),
        [retail],
    )
    records = generator.generate(days=OBSERVATION_DAYS)

    # Detection: ten deployed devices with known Airalo IMSIs.
    deployed = [airalo_ranges[0].sample(rng) for _ in range(10)]
    roamer_imsis = {r.imsi for r in records if r.population in ("airalo", "play-roamer")}
    flagged = detect_airalo_imsis(roamer_imsis, deployed, PLAY_PLMN)

    airalo_truth = {r.imsi for r in records if r.population == "airalo"}
    roamer_truth = {r.imsi for r in records if r.population == "play-roamer"}
    detection = {
        "true_positive_rate": len(flagged & airalo_truth) / len(airalo_truth),
        "false_positives": len(flagged & roamer_truth),
    }

    series = {}
    for population in ("native", "airalo", "play-roamer"):
        data = [r.data_mb for r in records if r.population == population]
        signalling = [r.signalling_kb for r in records if r.population == population]
        series[population] = {
            "data_mb": boxplot_summary(data),
            "signalling_kb": boxplot_summary(signalling),
        }
    return {"series": series, "detection": detection, "days": OBSERVATION_DAYS}


def format_result(result: Dict) -> str:
    lines = [f"UK v-MNO telemetry over {result['days']} days"]
    for population, stats in result["series"].items():
        lines.append(
            f"{population:12} data median {stats['data_mb'].median:8.1f} MB/day   "
            f"signalling median {stats['signalling_kb'].median:7.1f} KB/day"
        )
    det = result["detection"]
    lines.append(
        f"IMSI detector: TPR {det['true_positive_rate']:.2f}, "
        f"false positives {det['false_positives']}"
    )
    return "\n".join(lines)
