"""Extension X3: auditing additional thick MNAs with the same pipeline.

The paper's Future Directions: "extending our methodology to study
additional eSIM providers that may also operate as thick MNAs". The
generic :class:`ThickMnaAuditor` runs the full provision-attach-
classify-verify loop against both Airalo (recovering Table 2) and the
emnify validation operator, with no per-operator code.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.analysis.audit import AuditPlan, ThickMnaAuditor, render_findings
from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import build_emnify_world
from repro.worlds import paperdata as pd

#: Audit a representative slice of Airalo (one offering per b-MNO + the
#: native trio) to keep the default run quick; pass ``full=True`` for
#: all 24.
REPRESENTATIVE_COUNTRIES = (
    "PAK",  # Singtel HR
    "ESP",  # Play IHBO, alternating providers
    "SAU",  # Telna IHBO, Packet Host only
    "MDA",  # Telecom Italia IHBO via Wireless Logic
    "USA",  # Orange IHBO via Webbing Dallas
    "FRA",  # Polkomtel IHBO via Packet Host Virginia
    "KOR", "THA", "MDV",  # native
)


@experiment("X3", title="Extension X3 — generic thick-MNA audit",
            inputs=('world',))
def run(seed: int = common.DEFAULT_SEED, full: bool = False) -> Dict:
    world = common.get_world(seed)
    rng = random.Random(f"{seed}:audit")

    auditor = ThickMnaAuditor(
        operators=world.operators,
        factory=world.factory,
        geoip=world.geoip,
        engine=world.resources.traceroute_engine,
        sp_targets=list(world.resources.sp_targets.values()),
    )
    countries = (
        world.airalo.served_countries() if full else list(REPRESENTATIVE_COUNTRIES)
    )
    plans = []
    for country in countries:
        spec = world.offering(country)
        plans.append(
            AuditPlan(
                country_iso3=country,
                user_city=world.cities.get(spec.user_city, country),
                v_mno_name=spec.v_mno,
            )
        )
    airalo_findings = auditor.audit(world.airalo, plans, rng)

    # Same auditor, different operator: the emnify world.
    emnify_world = build_emnify_world()
    emnify_auditor = ThickMnaAuditor(
        operators=emnify_world.operators,
        factory=emnify_world.factory,
        geoip=emnify_world.geoip,
        engine=emnify_world.engine,
        sp_targets=list(emnify_world.sp_targets.values()),
    )
    emnify_findings = emnify_auditor.audit(
        emnify_world.emnify,
        [AuditPlan("GBR", emnify_world.cities.get("London", "GBR"), "O2 UK")],
        rng,
    )

    # Cross-check Airalo findings against ground truth.
    expected = {
        spec.country_iso3: spec.architecture for spec in pd.ESIM_OFFERINGS
    }
    mismatches = [
        f.country_iso3
        for f in airalo_findings
        if f.inferred_architecture.label.upper() != expected[f.country_iso3].upper()
    ]
    return {
        "airalo": airalo_findings,
        "emnify": emnify_findings,
        "mismatches": mismatches,
        "audited_countries": len(airalo_findings),
    }


def format_result(result: Dict) -> str:
    lines = ["-- Airalo audit --", render_findings(result["airalo"])]
    lines.append("-- emnify audit --")
    lines.append(render_findings(result["emnify"]))
    lines.append(
        f"{result['audited_countries']} offerings audited; "
        f"mismatches vs ground truth: {result['mismatches'] or 'none'}"
    )
    return "\n".join(lines)
