"""Table 3: web-based campaign overview.

Runs the web campaign and reports, per country, the number of volunteers,
collection days and completed measurements — matching the paper's counts
exactly (the campaign plan is the calibrated inventory).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import common
from repro.experiments.registry import experiment
from repro.worlds import paperdata as pd


@experiment("T3", title="Table 3 — web-based campaign overview",
            inputs=("web_dataset",))
def run(seed: int = common.DEFAULT_SEED) -> Dict:
    dataset = common.get_web_dataset(seed)
    rows = []
    expected = {e.country_iso3: e for e in pd.WEB_CAMPAIGN}
    for iso3, records in dataset.select("web").group_by("country").items():
        rows.append(
            {
                "country": iso3,
                "volunteers": len({r.volunteer for r in records}),
                "duration_days": expected[iso3].duration_days,
                "measurements": len(records),
                "paper_measurements": expected[iso3].measurements,
            }
        )
    return {"rows": rows, "total_measurements": sum(r["measurements"] for r in rows)}


def format_result(result: Dict) -> str:
    lines = [f"{'Country':8} {'#Vol':5} {'Days':5} {'#Meas':6} {'(paper)':7}"]
    for row in result["rows"]:
        lines.append(
            f"{row['country']:8} {row['volunteers']:<5} {row['duration_days']:<5} "
            f"{row['measurements']:<6} {row['paper_measurements']:<7}"
        )
    lines.append(f"total completed measurements: {result['total_measurements']}")
    return "\n".join(lines)
