"""Extension X5: unit economics of Airalo's offerings.

Section 6 conjectures that same-b-MNO price gaps "likely stem from the
distinct roaming agreements between b-MNO and v-MNO". With the wholesale
layer modelled, this experiment decomposes each offering's retail $/GB
into corridor cost and aggregator margin and verifies the conjecture:
Play's Georgia corridor costs more than its Spain corridor, and that
difference, not the markup, drives the Figure 19 gap.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import common
from repro.experiments.registry import experiment
from repro.market import median_usd_per_gb_by_country
from repro.market.wholesale import WholesaleMarket, margin_summary
from repro.worlds import paperdata as pd


@experiment("X5", title="Extension X5 — wholesale unit economics",
            inputs=('market',))
def run(seed: int = common.DEFAULT_SEED, snapshot_day: int = 90) -> Dict:
    esimdb, _ = common.get_market()
    snapshot = esimdb.snapshot(snapshot_day)
    retail = median_usd_per_gb_by_country(snapshot.offers, provider="Airalo")

    offerings = [
        (spec.country_iso3, spec.b_mno, spec.v_mno)
        for spec in pd.ESIM_OFFERINGS
    ]
    market = WholesaleMarket()
    rows = market.economics_for(offerings, retail)
    summary = margin_summary(rows)

    by_country = {row.country_iso3: row for row in rows}
    geo = by_country.get("GEO")
    esp = by_country.get("ESP")
    decomposition = None
    if geo and esp:
        retail_gap = geo.retail_usd_per_gb - esp.retail_usd_per_gb
        wholesale_gap = geo.wholesale_usd_per_gb - esp.wholesale_usd_per_gb
        decomposition = {
            "retail_gap": retail_gap,
            "wholesale_gap": wholesale_gap,
            "wholesale_share_of_gap": (
                wholesale_gap / retail_gap if retail_gap else None
            ),
        }
    return {"rows": rows, "summary": summary, "geo_vs_esp": decomposition}


def format_result(result: Dict) -> str:
    lines = [
        f"{'Country':8} {'b-MNO':16} {'retail':>8} {'wholesale':>10} "
        f"{'margin':>8} {'share':>7}"
    ]
    for row in result["rows"]:
        lines.append(
            f"{row.country_iso3:8} {row.b_mno:16} "
            f"${row.retail_usd_per_gb:>6.2f} ${row.wholesale_usd_per_gb:>8.2f} "
            f"${row.margin_usd_per_gb:>6.2f} {row.margin_share:>7.0%}"
        )
    summary = result["summary"]
    lines.append(
        f"margins across {summary['count']:.0f} offerings: median "
        f"{summary['median_margin_share']:.0%} "
        f"(range {summary['min_margin_share']:.0%}-"
        f"{summary['max_margin_share']:.0%})"
    )
    decomposition = result["geo_vs_esp"]
    if decomposition:
        lines.append(
            f"Play GEO vs ESP retail gap ${decomposition['retail_gap']:.2f}/GB, "
            f"of which wholesale ${decomposition['wholesale_gap']:.2f} "
            f"({decomposition['wholesale_share_of_gap']:.0%}) — the 'distinct "
            "roaming agreements' of Section 6"
        )
    return "\n".join(lines)
