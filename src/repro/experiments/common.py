"""Shared experiment infrastructure: cached worlds and campaign datasets.

Experiments reuse one world build and one campaign run per (seed, scale)
so a full benchmark session does the expensive simulation once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults import ChaosConfig
from repro.geo import CountryRegistry, default_country_registry
from repro.market import CrawlDataset, EsimDB, MarketCrawler, build_provider_universe
from repro.measure.dataset import MeasurementDataset
from repro.worlds import AiraloWorld, build_airalo_world

#: Default fraction of the Table 4 test counts the experiments replay.
#: 0.15 keeps a bench run in seconds while every per-country series stays
#: statistically meaningful; pass scale=1.0 for the full campaign.
DEFAULT_SCALE = 0.15
DEFAULT_SEED = 2024

_worlds: Dict[int, AiraloWorld] = {}
_device_datasets: Dict[Tuple[int, float, Optional[ChaosConfig]], MeasurementDataset] = {}
_web_datasets: Dict[Tuple[int, Optional[ChaosConfig]], MeasurementDataset] = {}
_market: Dict[int, Tuple[EsimDB, CrawlDataset]] = {}
_countries: Optional[CountryRegistry] = None


def get_world(seed: int = DEFAULT_SEED) -> AiraloWorld:
    if seed not in _worlds:
        _worlds[seed] = build_airalo_world(seed=seed)
    return _worlds[seed]


def get_device_dataset(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    chaos: Optional[ChaosConfig] = None,
) -> MeasurementDataset:
    key = (seed, scale, chaos)
    if key not in _device_datasets:
        _device_datasets[key] = get_world(seed).run_device_campaign(
            scale=scale, chaos=chaos
        )
    return _device_datasets[key]


def get_web_dataset(
    seed: int = DEFAULT_SEED, chaos: Optional[ChaosConfig] = None
) -> MeasurementDataset:
    key = (seed, chaos)
    if key not in _web_datasets:
        _web_datasets[key] = get_world(seed).run_web_campaign(chaos=chaos)
    return _web_datasets[key]


def get_countries() -> CountryRegistry:
    global _countries
    if _countries is None:
        _countries = default_country_registry()
    return _countries


def get_market(step_days: int = 7) -> Tuple[EsimDB, CrawlDataset]:
    """The aggregator plus a Feb-May crawl sampled every ``step_days``."""
    if step_days not in _market:
        esimdb = EsimDB(build_provider_universe(), get_countries())
        crawl = MarketCrawler(esimdb).crawl_daily(0, 120, step=step_days)
        _market[step_days] = (esimdb, crawl)
    return _market[step_days]


def clear_caches() -> None:
    """Drop every cached world/dataset (for isolation in tests)."""
    _worlds.clear()
    _device_datasets.clear()
    _web_datasets.clear()
    _market.clear()
