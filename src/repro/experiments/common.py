"""Shared experiment infrastructure: cached worlds and campaign datasets.

Two cache layers sit under every getter:

1. a process-local dict, so one benchmark session builds each expensive
   input exactly once and always hands back the *same object*;
2. the persistent :mod:`repro.core.cache` pickle store, so a fresh
   process (a CLI invocation, a ``StudyRunner`` worker) loads the bytes
   a previous process built instead of re-simulating the campaign.

Entries are keyed by a content fingerprint of ``(package version, seed,
scale, ChaosConfig)``; corrupt or stale entries fall back to a rebuild.
``clear_caches()`` keeps its historical semantics — it drops only the
in-memory layer (pass ``disk=True`` to also wipe the store).
"""

from __future__ import annotations

import pathlib
import shutil
from typing import Dict, Optional, Tuple

import repro
from repro import obs
from repro.core import cache as _cache
from repro.core.columns import ColumnError, SnapshotDescriptor
from repro.faults import ChaosConfig
from repro.geo import CountryRegistry, default_country_registry
from repro.market import CrawlDataset, EsimDB, MarketCrawler, build_provider_universe
from repro.measure.dataset import MeasurementDataset
from repro.worlds import AiraloWorld, build_airalo_world
from repro.worlds.population import Population, attach_population, build_population

#: Default fraction of the Table 4 test counts the experiments replay.
#: 0.15 keeps a bench run in seconds while every per-country series stays
#: statistically meaningful; pass scale=1.0 for the full campaign.
DEFAULT_SCALE = 0.15
DEFAULT_SEED = 2024

_worlds: Dict[int, AiraloWorld] = {}
_device_datasets: Dict[Tuple[int, float, Optional[ChaosConfig]], MeasurementDataset] = {}
_web_datasets: Dict[Tuple[int, Optional[ChaosConfig]], MeasurementDataset] = {}
_market: Dict[int, Tuple[EsimDB, CrawlDataset]] = {}
_populations: Dict[Tuple[int, float], Population] = {}
_adopted_population: Optional[Population] = None
_countries: Optional[CountryRegistry] = None


def _disk_key(kind: str, **parts) -> str:
    return _cache.fingerprint(kind, version=repro.__version__, **parts)


def get_world(seed: int = DEFAULT_SEED) -> AiraloWorld:
    if seed not in _worlds:
        with obs.span("input.world", seed=seed) as span:
            store = _cache.get_default_cache()
            key = _disk_key("world", seed=seed)
            world = store.load(key)
            if world is None:
                span.set(source="build")
                world = build_airalo_world(seed=seed)
                store.store(key, world)
            else:
                span.set(source="disk")
        _worlds[seed] = world
    return _worlds[seed]


def get_device_dataset(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    chaos: Optional[ChaosConfig] = None,
) -> MeasurementDataset:
    key = (seed, scale, chaos)
    if key not in _device_datasets:
        with obs.span(
            "input.device_dataset", seed=seed, scale=scale,
            chaos=chaos is not None and chaos.enabled,
        ) as span:
            store = _cache.get_default_cache()
            disk_key = _disk_key("device-dataset", seed=seed, scale=scale, chaos=chaos)
            dataset = store.load(disk_key)
            if dataset is None:
                span.set(source="build")
                dataset = get_world(seed).run_device_campaign(scale=scale, chaos=chaos)
                store.store(disk_key, dataset)
            else:
                span.set(source="disk")
        _device_datasets[key] = dataset
    return _device_datasets[key]


def get_web_dataset(
    seed: int = DEFAULT_SEED, chaos: Optional[ChaosConfig] = None
) -> MeasurementDataset:
    key = (seed, chaos)
    if key not in _web_datasets:
        with obs.span(
            "input.web_dataset", seed=seed,
            chaos=chaos is not None and chaos.enabled,
        ) as span:
            store = _cache.get_default_cache()
            disk_key = _disk_key("web-dataset", seed=seed, chaos=chaos)
            dataset = store.load(disk_key)
            if dataset is None:
                span.set(source="build")
                dataset = get_world(seed).run_web_campaign(chaos=chaos)
                store.store(disk_key, dataset)
            else:
                span.set(source="disk")
        _web_datasets[key] = dataset
    return _web_datasets[key]


def get_countries() -> CountryRegistry:
    global _countries
    if _countries is None:
        _countries = default_country_registry()
    return _countries


def get_market(step_days: int = 7) -> Tuple[EsimDB, CrawlDataset]:
    """The aggregator plus a Feb-May crawl sampled every ``step_days``."""
    if step_days not in _market:
        with obs.span("input.market", step_days=step_days) as span:
            store = _cache.get_default_cache()
            disk_key = _disk_key("market-crawl", step_days=step_days)
            pair = store.load(disk_key)
            if pair is None:
                span.set(source="build")
                esimdb = EsimDB(build_provider_universe(), get_countries())
                crawl = MarketCrawler(esimdb).crawl_daily(0, 120, step=step_days)
                pair = (esimdb, crawl)
                store.store(disk_key, pair)
            else:
                span.set(source="disk")
        _market[step_days] = pair
    return _market[step_days]


def population_snapshot_path(
    seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE
) -> pathlib.Path:
    """Where the columnar population snapshot for ``(seed, scale)`` lives.

    Snapshots are raw :class:`~repro.core.columns.ColumnStore` blobs —
    not pickles — kept in a ``populations/`` subdirectory so the pickle
    store's ``clear()`` (which only globs ``*.pkl`` in its root) leaves
    them alone; ``clear_caches(disk=True)`` removes the directory.
    """
    store = _cache.get_default_cache()
    key = _disk_key("population", seed=seed, scale=scale)
    return (
        store.root / "populations"
        / f"population-seed{seed}-scale{scale:g}-{key[:12]}.cols"
    )


def get_population(
    seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE
) -> Population:
    """The columnar subscriber population for ``(seed, scale)``.

    Resolution order: a snapshot adopted from the parent process
    (zero-copy shared memory, see :func:`adopt_population`), then the
    process-local memo, then an mmap of the on-disk snapshot — the
    columnar replacement for unpickling a world copy per process —
    and only then a build (persisted for the next process).
    """
    adopted = _adopted_population
    if adopted is not None and adopted.seed == seed and adopted.scale == scale:
        return adopted
    key = (seed, scale)
    if key not in _populations:
        with obs.span("input.population", seed=seed, scale=scale) as span:
            store = _cache.get_default_cache()
            path = population_snapshot_path(seed, scale)
            population = None
            if store.enabled and path.exists():
                try:
                    population = Population.load(path)
                    span.set(source="mmap")
                except (ColumnError, ValueError, OSError):
                    population = None
            if population is None:
                span.set(source="build")
                population = build_population(seed, scale)
                if store.enabled:
                    try:
                        path.parent.mkdir(parents=True, exist_ok=True)
                        population.save(path)
                    except OSError:
                        pass
        _populations[key] = population
    return _populations[key]


def adopt_population(descriptor: SnapshotDescriptor) -> Population:
    """Attach the parent's published population snapshot (worker side).

    Adopted once per worker from ``StudyRunner``'s pool initializer;
    subsequent :func:`get_population` calls for the same ``(seed,
    scale)`` return the shared zero-copy view instead of loading or
    building a private copy.
    """
    global _adopted_population
    release_adopted_population()
    population, _ = attach_population(descriptor)
    _adopted_population = population
    return population


def release_adopted_population() -> None:
    """Drop the adopted shared snapshot, releasing its mapping."""
    global _adopted_population
    if _adopted_population is not None:
        population, _adopted_population = _adopted_population, None
        population.close()


def clear_caches(disk: bool = False) -> None:
    """Drop every cached world/dataset (for isolation in tests).

    The persistent store survives by default — it is content-addressed,
    so a later getter returns equal bytes either way. ``disk=True``
    additionally wipes it (what ``python -m repro cache clear`` does).
    """
    _worlds.clear()
    _device_datasets.clear()
    _web_datasets.clear()
    _market.clear()
    _populations.clear()
    release_adopted_population()
    if disk:
        store = _cache.get_default_cache()
        store.clear()
        shutil.rmtree(store.root / "populations", ignore_errors=True)
