"""Dynamic PGW placement.

The paper's conclusion argues thick MNAs should "leverage PGW deployment
that adapts dynamically to user geography" instead of today's static
IHBO. This module provides the optimisation behind that idea: given
where an MNA's users actually are and where PGWs *could* be hosted,
choose a fleet of k sites minimising the demand-weighted tunnel
distance (greedy k-median, the classic facility-location heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.geo.cities import City
from repro.geo.coords import GeoPoint, haversine_km


@dataclass(frozen=True)
class DemandPoint:
    """A user population at one location (e.g. an eSIM's visited city)."""

    location: GeoPoint
    weight: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("demand weight must be positive")


def mean_weighted_distance_km(
    demands: Sequence[DemandPoint], sites: Sequence[GeoPoint]
) -> float:
    """Average distance from each demand to its nearest site, weighted."""
    if not demands:
        raise ValueError("no demand points")
    if not sites:
        raise ValueError("no sites")
    total_weight = sum(d.weight for d in demands)
    total = 0.0
    for demand in demands:
        nearest = min(haversine_km(demand.location, site) for site in sites)
        total += demand.weight * nearest
    return total / total_weight


def greedy_k_median(
    demands: Sequence[DemandPoint],
    candidates: Sequence[City],
    k: int,
) -> List[City]:
    """Choose k candidate cities minimising weighted distance (greedy).

    Classic greedy facility location: repeatedly add the candidate that
    most reduces the objective. The greedy solution is within a constant
    factor of optimal and, at this problem size, usually optimal.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not candidates:
        raise ValueError("no candidate sites")
    if k > len(candidates):
        raise ValueError("k exceeds the candidate count")

    chosen: List[City] = []
    remaining = list(candidates)
    while len(chosen) < k:
        best_city = None
        best_cost = None
        for city in remaining:
            cost = mean_weighted_distance_km(
                demands, [c.location for c in chosen] + [city.location]
            )
            if best_cost is None or cost < best_cost or (
                cost == best_cost and city.key < best_city.key  # type: ignore[union-attr]
            ):
                best_city = city
                best_cost = cost
        assert best_city is not None
        chosen.append(best_city)
        remaining.remove(best_city)
    return chosen


def assignment(
    demands: Sequence[DemandPoint], sites: Sequence[City]
) -> Dict[str, Tuple[str, float]]:
    """Map each demand label to (nearest site key, distance km)."""
    if not sites:
        raise ValueError("no sites")
    out: Dict[str, Tuple[str, float]] = {}
    for demand in demands:
        nearest = min(
            sites, key=lambda c: (haversine_km(demand.location, c.location), c.key)
        )
        out[demand.label] = (
            nearest.key,
            haversine_km(demand.location, nearest.location),
        )
    return out
