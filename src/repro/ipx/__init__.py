"""IPX network substrate.

The private interconnection fabric between mobile operators: IPX
providers peer with each other and sell roaming-hub services (signalling,
GTP transport, and — for thick MNAs — hub-breakout PGWs) to operators.
"""

from repro.ipx.network import IPXProvider, IPXNetwork, IPXReachabilityError
from repro.ipx.placement import (
    DemandPoint,
    greedy_k_median,
    mean_weighted_distance_km,
    assignment,
)

__all__ = [
    "IPXProvider",
    "IPXNetwork",
    "IPXReachabilityError",
    "DemandPoint",
    "greedy_k_median",
    "mean_weighted_distance_km",
    "assignment",
]
