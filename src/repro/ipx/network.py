"""IPX providers and their private interconnection mesh.

Section 2 of the paper describes the IPX network as a small set of
providers peering over a private backbone: an operator contracts one
IPX-P and thereby reaches every other operator. This module models that
mesh and answers the reachability questions world-building needs: can
this b-MNO's traffic reach that hub-breakout PGW, and through which
providers does the GTP tunnel transit?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx


class IPXReachabilityError(Exception):
    """Raised when no IPX path connects an operator to a target."""


@dataclass
class IPXProvider:
    """One IPX provider.

    ``hub_pgw_site_ids`` are the breakout PGW deployments this provider
    operates or fronts (possibly hosted on third-party infrastructure
    like Packet Host or OVH — the paper's key observation is exactly that
    the ASN seen at breakout is a hosting company's, not an MNO's).
    """

    name: str
    asn: int
    hub_pgw_site_ids: Tuple[str, ...] = ()
    customer_operators: Set[str] = field(default_factory=set)

    def serves(self, operator_name: str) -> bool:
        return operator_name in self.customer_operators

    def add_customer(self, operator_name: str) -> None:
        self.customer_operators.add(operator_name)


class IPXNetwork:
    """The peering mesh among IPX providers.

    Operators attach to the mesh via their contracted providers; PGW
    sites attach via the provider that fronts them. Reachability and
    transit paths are computed over the provider-level graph.
    """

    def __init__(self) -> None:
        self._providers: Dict[str, IPXProvider] = {}
        self._graph = nx.Graph()
        self._site_owner: Dict[str, str] = {}

    # -- construction --------------------------------------------------------

    def add_provider(self, provider: IPXProvider) -> None:
        if provider.name in self._providers:
            raise ValueError(f"duplicate IPX provider: {provider.name}")
        self._providers[provider.name] = provider
        self._graph.add_node(provider.name)
        for site_id in provider.hub_pgw_site_ids:
            if site_id in self._site_owner:
                raise ValueError(f"PGW site {site_id} already fronted by "
                                 f"{self._site_owner[site_id]}")
            self._site_owner[site_id] = provider.name

    def peer(self, a: str, b: str) -> None:
        """Establish bilateral peering between two providers."""
        self._require(a)
        self._require(b)
        if a == b:
            raise ValueError("a provider cannot peer with itself")
        self._graph.add_edge(a, b)

    def contract(self, operator_name: str, provider_name: str) -> None:
        """Operator buys IPX service from a provider."""
        self._require(provider_name)
        self._providers[provider_name].add_customer(operator_name)

    def _require(self, name: str) -> None:
        if name not in self._providers:
            raise KeyError(f"unknown IPX provider: {name}")

    # -- queries ---------------------------------------------------------------

    def providers(self) -> List[IPXProvider]:
        return sorted(self._providers.values(), key=lambda p: p.name)

    def provider_of_site(self, site_id: str) -> IPXProvider:
        if site_id not in self._site_owner:
            raise KeyError(f"PGW site {site_id} is not fronted by any IPX provider")
        return self._providers[self._site_owner[site_id]]

    def providers_serving(self, operator_name: str) -> List[IPXProvider]:
        return sorted(
            (p for p in self._providers.values() if p.serves(operator_name)),
            key=lambda p: p.name,
        )

    def transit_path(self, operator_name: str, site_id: str) -> List[str]:
        """Provider chain from an operator's IPX-P to a PGW site's IPX-P.

        The shortest provider-level path; its length approximates how many
        IPX domains the GTP tunnel transits (which the world builders use
        to scale tunnel stretch). Raises :class:`IPXReachabilityError`
        when the operator has no contract or the mesh is partitioned.
        """
        entry_points = self.providers_serving(operator_name)
        if not entry_points:
            raise IPXReachabilityError(f"{operator_name} has no IPX contract")
        target = self.provider_of_site(site_id).name

        best: Optional[List[str]] = None
        for entry in entry_points:
            try:
                path = nx.shortest_path(self._graph, entry.name, target)
            except nx.NetworkXNoPath:
                continue
            if best is None or len(path) < len(best):
                best = path
        if best is None:
            raise IPXReachabilityError(
                f"no IPX path from {operator_name} to site {site_id}"
            )
        return best

    def can_reach(self, operator_name: str, site_id: str) -> bool:
        try:
            self.transit_path(operator_name, site_id)
        except (IPXReachabilityError, KeyError):
            return False
        return True
