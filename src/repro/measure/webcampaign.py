"""The web-based measurement campaign (Section 3.1).

Volunteers visit a measurement webpage while travelling: they upload a
screenshot of their network settings (validated — in the paper by a
vision model — to prove the Airalo eSIM is active and Wi-Fi is off), the
page retrieves their DNS configuration, then runs a fast.com-style
speedtest in an iframe and parses the uploaded result.

With a :class:`~repro.faults.ChaosConfig` supplied, the runner also
weathers injected faults: unreadable uploads, attach rejects and probe
timeouts all burn attempts from the volunteer's (enlarged) retry budget,
and the dataset's health report accounts for what survived.

Logger: ``repro.measure.webcampaign`` (per-attempt retry chatter at
DEBUG, one WARNING per volunteer that exhausts their retry budget).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.cellular.attach import SessionFactory
from repro.cellular.esim import SIMProfile
from repro.cellular.mno import OperatorRegistry
from repro.cellular.ue import UserEquipment
from repro.faults import ChaosConfig, FaultInjector, FaultPlan
from repro.geo.cities import City
from repro.measure.dataset import MeasurementDataset
from repro.measure.records import MeasurementContext, WebMeasurementRecord
from repro.services.dns import DNSService
from repro.services.fabric import ServiceFabric
from repro.services.speedtest import SpeedtestFleet

logger = logging.getLogger("repro.measure.webcampaign")

#: Attempts a volunteer makes per planned measurement (clean / chaotic).
_ATTEMPT_BUDGET = 3
_CHAOS_ATTEMPT_BUDGET = 6


class UploadRejected(Exception):
    """The screenshot failed validation (Wi-Fi on, wrong SIM, unreadable)."""


@dataclass(frozen=True)
class ScreenshotUpload:
    """What the vision model extracts from a settings screenshot."""

    shows_cellular: bool
    operator_shown: str
    readable: bool = True


class ScreenshotValidator:
    """Stand-in for the ChatGPT-vision screenshot check.

    Validates the extracted claims against the session that produced the
    upload: the device must be on cellular (not Wi-Fi) and camped on the
    expected visited operator.
    """

    def validate(self, upload: ScreenshotUpload, expected_operator: str) -> None:
        if not upload.readable:
            raise UploadRejected("screenshot unreadable")
        if not upload.shows_cellular:
            raise UploadRejected("device is on Wi-Fi, not the eSIM")
        if upload.operator_shown != expected_operator:
            raise UploadRejected(
                f"screenshot shows {upload.operator_shown!r}, "
                f"expected {expected_operator!r}"
            )


@dataclass(frozen=True)
class WebVolunteer:
    """One traveller with a complimentary Airalo eSIM."""

    name: str
    country_iso3: str
    city: City
    esim: SIMProfile
    v_mno_name: str
    duration_days: int
    planned_measurements: int
    # Probability a given upload attempt is valid (volunteers sometimes
    # forget to disable Wi-Fi; such attempts are rejected and retried).
    upload_reliability: float = 0.9

    def __post_init__(self) -> None:
        if self.duration_days < 1 or self.planned_measurements < 1:
            raise ValueError("volunteer needs at least one day and one measurement")
        if not 0.0 < self.upload_reliability <= 1.0:
            raise ValueError("upload_reliability must be in (0, 1]")


class WebCampaignRunner:
    """Runs the full web campaign for a set of volunteers."""

    def __init__(
        self,
        fabric: ServiceFabric,
        fastcom: SpeedtestFleet,
        dns_services: Dict[str, DNSService],
        operators: OperatorRegistry,
        factory: SessionFactory,
        validator: Optional[ScreenshotValidator] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.fastcom = fastcom
        self.dns_services = dns_services
        self.operators = operators
        self.factory = factory
        self.validator = validator or ScreenshotValidator()
        self.chaos = chaos
        self.rejected_uploads = 0

    def run(self, volunteers: List[WebVolunteer], rng: random.Random) -> MeasurementDataset:
        dataset = MeasurementDataset()
        injector = (
            FaultInjector(self.chaos)
            if self.chaos is not None and self.chaos.enabled
            else None
        )
        for volunteer in volunteers:
            plan = injector.plan_for(volunteer.name) if injector else None
            dataset.merge(self._run_volunteer(volunteer, rng, plan))
        return dataset

    def _run_volunteer(
        self,
        volunteer: WebVolunteer,
        rng: random.Random,
        plan: Optional[FaultPlan] = None,
    ) -> MeasurementDataset:
        with obs.span(
            "campaign.volunteer",
            country=volunteer.country_iso3, volunteer=volunteer.name,
        ):
            return self._run_volunteer_inner(volunteer, rng, plan)

    def _run_volunteer_inner(
        self,
        volunteer: WebVolunteer,
        rng: random.Random,
        plan: Optional[FaultPlan] = None,
    ) -> MeasurementDataset:
        dataset = MeasurementDataset()
        cell = dataset.health.cell(volunteer.country_iso3, "web")
        cell.planned += volunteer.planned_measurements
        device = UserEquipment.provision("volunteer phone", volunteer.city, rng)
        slot = device.install_sim(volunteer.esim)

        completed = 0
        attempts = 0
        # Volunteers retry failed uploads, but give up eventually; a
        # chaotic campaign grants a larger budget (more retries needed).
        budget = _ATTEMPT_BUDGET if plan is None else _CHAOS_ATTEMPT_BUDGET
        max_attempts = volunteer.planned_measurements * budget
        while completed < volunteer.planned_measurements and attempts < max_attempts:
            attempts += 1
            day = (attempts - 1) * volunteer.duration_days // max_attempts
            if plan is not None and plan.attach_fault(day) is not None:
                # The eSIM would not attach; the volunteer tries later.
                cell.retried += 1
                plan.backoff_delay_s(0)
                continue
            session = device.switch_to(slot, volunteer.v_mno_name, self.factory, rng)
            cell.attempted += 1

            upload = self._simulate_upload(volunteer, session.v_mno_name, rng)
            if plan is not None and plan.upload_malformed(day):
                upload = ScreenshotUpload(
                    shows_cellular=upload.shows_cellular,
                    operator_shown=upload.operator_shown,
                    readable=False,
                )
            try:
                self.validator.validate(upload, session.v_mno_name)
            except UploadRejected as error:
                self.rejected_uploads += 1
                cell.retried += 1
                obs.counter("web.upload.rejected").inc()
                logger.debug("%s day %d: upload rejected (%s)",
                             volunteer.name, day, error)
                continue

            if plan is not None and plan.test_fault("web", day) is not None:
                # fast.com iframe timed out; burn an attempt and retry.
                cell.retried += 1
                plan.backoff_delay_s(0)
                continue

            record = self._measure(volunteer, device, session, day, rng)
            dataset.web_measurements.append(record)
            cell.succeeded += 1
            completed += 1
        if completed < volunteer.planned_measurements:
            missing = volunteer.planned_measurements - completed
            cell.dropped += missing
            logger.warning(
                "%s completed %d/%d measurements before exhausting retries",
                volunteer.name, completed, volunteer.planned_measurements,
            )
        device.detach()
        return dataset

    def _simulate_upload(
        self, volunteer: WebVolunteer, operator: str, rng: random.Random
    ) -> ScreenshotUpload:
        if rng.random() < volunteer.upload_reliability:
            return ScreenshotUpload(shows_cellular=True, operator_shown=operator)
        # Most failures: Wi-Fi left on.
        return ScreenshotUpload(shows_cellular=False, operator_shown=operator)

    def _measure(
        self,
        volunteer: WebVolunteer,
        device: UserEquipment,
        session,
        day: int,
        rng: random.Random,
    ) -> WebMeasurementRecord:
        conditions = self.fabric.radio.sample_conditions(device.preferred_rat(rng), rng)
        # Step 1: DNS configuration retrieval (NextDNS-style).
        dns = self.dns_services[session.dns_operator]
        answer = dns.resolve(session, self.fabric, rng)
        # Step 2: fast.com iframe speedtest.
        policy = self._policy_for(session)
        result = self.fastcom.run(session, self.fabric, policy, conditions, rng)
        context = MeasurementContext.from_session(
            session, volunteer.esim, conditions, day=day
        )
        return WebMeasurementRecord(
            context=context,
            volunteer=volunteer.name,
            download_mbps=result.download_mbps,
            latency_ms=result.latency_ms,
            resolver_service=answer.service_name,
            resolver_country=answer.resolver_country,
        )

    def _policy_for(self, session):
        operator = self.operators.get(session.v_mno_name)
        if operator.bandwidth is not None:
            return operator.bandwidth
        return self.operators.parent_of(operator).bandwidth
