"""Client-side wrappers: speedtest, CDN fetch, DNS probe, video probe.

Each wrapper runs one tool over a PDN session and returns the
corresponding record type, tagging it with the full measurement context.
They correspond one-to-one with the shell scripts the AmiGo endpoints
execute in the real testbed (Table 1).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMProfile
from repro.cellular.mno import BandwidthPolicy
from repro.cellular.radio import RadioConditions
from repro.measure.records import (
    CDNRecord,
    DNSRecord,
    MeasurementContext,
    SpeedtestRecord,
    VideoRecord,
)
from repro.services.cdn import Asset, CDNProvider, JQUERY_ASSET
from repro.services.dns import DNSService
from repro.services.fabric import ServiceFabric
from repro.services.speedtest import SpeedtestFleet
from repro.services.video import AdaptiveBitratePlayer


class TransientNetworkError(RuntimeError):
    """A client run failed for a reason a retry can plausibly fix."""


class ServiceOutage(TransientNetworkError):
    """The target service (PGW path, speedtest server, CDN edge) was down."""


class ProbeTimeout(TransientNetworkError):
    """The probe (DNS lookup, speedtest, fetch) timed out mid-run."""


def run_speedtest(
    session: PDNSession,
    sim: SIMProfile,
    fleet: SpeedtestFleet,
    fabric: ServiceFabric,
    policy: BandwidthPolicy,
    conditions: RadioConditions,
    rng: random.Random,
    uplink_asymmetry: float = 1.0,
    day: int = 0,
) -> SpeedtestRecord:
    """One Ookla-style run; the CQI filter is applied later in analysis."""
    result = fleet.run(
        session, fabric, policy, conditions, rng, uplink_asymmetry=uplink_asymmetry
    )
    return SpeedtestRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        server_city=result.server.site.city.name,
        latency_ms=result.latency_ms,
        download_mbps=result.download_mbps,
        upload_mbps=result.upload_mbps,
    )


def probe_dns(
    session: PDNSession,
    sim: SIMProfile,
    dns: DNSService,
    fabric: ServiceFabric,
    conditions: RadioConditions,
    rng: random.Random,
    use_doh: Optional[bool] = None,
    day: int = 0,
) -> DNSRecord:
    """NextDNS-style probe: time a lookup and identify the resolver."""
    answer = dns.resolve(session, fabric, rng, use_doh=use_doh)
    return DNSRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        resolver_service=answer.service_name,
        resolver_ip=str(answer.resolver.ip),
        resolver_country=answer.resolver_country,
        lookup_ms=answer.lookup_ms,
        used_doh=answer.used_doh,
    )


def fetch_from_cdn(
    session: PDNSession,
    sim: SIMProfile,
    cdn: CDNProvider,
    dns: DNSService,
    fabric: ServiceFabric,
    policy: BandwidthPolicy,
    conditions: RadioConditions,
    rng: random.Random,
    asset: Asset = JQUERY_ASSET,
    day: int = 0,
) -> CDNRecord:
    """curl-style fetch: DNS phase via the session's resolver, then HTTPS.

    CDN request steering sees the resolver's location, so IHBO sessions
    (Google DNS near the PGW) land on edges near the breakout, while
    operator-resolved sessions are steered from the b-MNO's core.
    """
    answer = dns.resolve(session, fabric, rng)
    bandwidth = fabric.radio.throughput_mbps(
        policy.downlink_for(session.is_roaming), conditions, rng
    )
    bandwidth = max(bandwidth, 0.1)  # a fetch always trickles through
    result = cdn.fetch(
        session=session,
        fabric=fabric,
        asset=asset,
        dns_ms=answer.lookup_ms,
        resolver_location=answer.resolver.location,
        bandwidth_mbps=bandwidth,
        rng=rng,
    )
    return CDNRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        provider=cdn.name,
        edge_city=result.edge.city.name,
        dns_ms=result.dns_ms,
        total_ms=result.total_ms,
        cache_hit=result.cache_hit,
    )


def probe_video(
    session: PDNSession,
    sim: SIMProfile,
    player: AdaptiveBitratePlayer,
    fabric: ServiceFabric,
    policy: BandwidthPolicy,
    conditions: RadioConditions,
    rng: random.Random,
    youtube_cap_mbps: Optional[float] = None,
    duration_s: float = 120.0,
    day: int = 0,
) -> VideoRecord:
    """stats-for-nerds playback probe.

    ``youtube_cap_mbps`` models per-service traffic differentiation by
    the operator (the paper's conjecture for the flat 720p in Pakistan
    and the UAE despite sufficient raw bandwidth).
    """
    throughput = fabric.radio.throughput_mbps(
        policy.downlink_for(session.is_roaming), conditions, rng
    )
    if youtube_cap_mbps is not None:
        throughput = min(throughput, youtube_cap_mbps)
    throughput = max(throughput, 0.1)
    report = player.play(throughput, rng, duration_s=duration_s)
    return VideoRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        resolution_counts=report.resolution_counts,
        dominant_resolution=report.dominant_resolution,
        rebuffer_events=report.rebuffer_events,
        mean_buffer_s=report.mean_buffer_s,
    )
