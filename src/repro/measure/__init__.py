"""Measurement tooling.

The instruments of both campaigns: traceroute (mtr-like), ping, the
speedtest client, curl-style CDN fetches, the NextDNS-style resolver
probe, the stats-for-nerds video probe, the AmiGo control server with
its measurement endpoints, and the web-based campaign runner.
"""

from repro.measure.records import (
    CampaignHealth,
    MeasurementContext,
    QuarantineEvent,
    TestHealth,
    TracerouteRecord,
    SpeedtestRecord,
    CDNRecord,
    DNSRecord,
    VideoRecord,
    WebMeasurementRecord,
)
from repro.measure.dataset import MeasurementDataset
from repro.measure.query import DatasetIndex, KindIndex, RecordQuery
from repro.measure.traceroute import Hop, TracerouteEngine, TracerouteResult
from repro.measure.ping import ping_provider
from repro.measure.voip import VoIPRecord, probe_voip, rfc3550_jitter, e_model_r_factor, mos_from_r
from repro.measure.clients import (
    ProbeTimeout,
    ServiceOutage,
    TransientNetworkError,
    run_speedtest,
    fetch_from_cdn,
    probe_dns,
    probe_video,
)
from repro.measure.amigo import (
    AmigoControlServer,
    ConfigurationError,
    MeasurementEndpoint,
    DeviceStatus,
)
from repro.measure.webcampaign import WebCampaignRunner, ScreenshotValidator, UploadRejected

__all__ = [
    "CampaignHealth",
    "ConfigurationError",
    "DatasetIndex",
    "KindIndex",
    "MeasurementContext",
    "MeasurementDataset",
    "RecordQuery",
    "ProbeTimeout",
    "QuarantineEvent",
    "ServiceOutage",
    "TestHealth",
    "TransientNetworkError",
    "TracerouteRecord",
    "SpeedtestRecord",
    "CDNRecord",
    "DNSRecord",
    "VideoRecord",
    "WebMeasurementRecord",
    "Hop",
    "TracerouteEngine",
    "TracerouteResult",
    "ping_provider",
    "VoIPRecord",
    "probe_voip",
    "rfc3550_jitter",
    "e_model_r_factor",
    "mos_from_r",
    "run_speedtest",
    "fetch_from_cdn",
    "probe_dns",
    "probe_video",
    "AmigoControlServer",
    "MeasurementEndpoint",
    "DeviceStatus",
    "WebCampaignRunner",
    "ScreenshotValidator",
    "UploadRejected",
]


#: Table 1 of the paper: the instruments of the device-based campaign,
#: what they do, and what they make visible — as implemented here.
TOOL_CATALOGUE = (
    ("Speedtest", "Ookla-style test against the server nearest the "
     "session's public-IP geolocation", "latency, down/up bandwidth",
     "repro.measure.clients.run_speedtest"),
    ("Traceroute", "mtr-style run to Google/Facebook/YouTube with "
     "per-hop best RTTs", "latency, network path, ASNs",
     "repro.measure.traceroute.TracerouteEngine"),
    ("CDN", "download jquery.min.js (v3.6.0) from five CDN providers "
     "with curl-style phase timing", "download time, cache state",
     "repro.measure.clients.fetch_from_cdn"),
    ("DNS", "identify the serving resolver NextDNS-style and time a "
     "lookup", "resolver identity/geo, lookup time, DoH",
     "repro.measure.clients.probe_dns"),
    ("YouTube", "stats-for-nerds playback of a 4K-capable video",
     "playback resolution, buffer occupancy",
     "repro.measure.clients.probe_video"),
    ("VoIP", "RTP-style packet train scored with the G.107 E-model "
     "(the paper's future-work metrics)", "jitter, loss, MOS",
     "repro.measure.voip.probe_voip"),
)
