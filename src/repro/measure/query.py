"""Indexed dimensional queries over a :class:`MeasurementDataset`.

Every figure of the paper pivots the same campaign records along
:class:`~repro.measure.records.MeasurementContext` dimensions (country,
SIM kind, architecture, b-MNO, PGW provider, ...). Scanning the full
record lists per pivot is O(N) per call and the Table 4 counting path
alone issues hundreds of such scans. This module gives the dataset a
real query layer::

    q = dataset.select("speedtest").where(country="JPN", sim_kind=SIMKind.ESIM)
    by_arch = q.group_by("architecture")     # {architecture: [records]}
    n = q.count()

Per-dimension hash indexes (value -> sorted record positions) are built
lazily, once per dataset and dimension, then reused by every subsequent
query; filters intersect position lists instead of re-scanning. Results
always come back in insertion order, exactly like the naive list
comprehensions they replace.

Staleness: an index remembers how many records its backing list had
when it was built and silently rebuilds if records were appended since
(campaigns append, then analysis queries). ``MeasurementDataset.merge``
also invalidates explicitly, and pickling drops the index cache so
cached campaign bytes stay identical whether or not a dataset was ever
queried.
"""

from __future__ import annotations

import bisect
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs

#: Query kind -> the MeasurementDataset attribute holding its records.
KIND_FIELDS: Dict[str, str] = {
    "traceroute": "traceroutes",
    "speedtest": "speedtests",
    "cdn": "cdn_fetches",
    "dns": "dns_probes",
    "video": "video_probes",
    "web": "web_measurements",
}

#: Dimensions shared by every record kind (all live on ``record.context``).
CONTEXT_DIMENSIONS: Dict[str, Callable[[Any], Any]] = {
    "country": lambda r: r.context.country_iso3,
    "sim_kind": lambda r: r.context.sim_kind,
    "architecture": lambda r: r.context.architecture,
    "b_mno": lambda r: r.context.b_mno,
    "v_mno": lambda r: r.context.v_mno,
    "pgw_provider": lambda r: r.context.pgw_provider,
    "pgw_country": lambda r: r.context.pgw_country,
    "rat": lambda r: r.context.rat,
    "day": lambda r: r.context.day,
    "config": lambda r: r.context.config_label,
}

#: Record-kind-specific dimensions (fields on the record itself).
RECORD_DIMENSIONS: Dict[str, Dict[str, Callable[[Any], Any]]] = {
    "traceroute": {"target": lambda r: r.target},
    "cdn": {"provider": lambda r: r.provider},
    "dns": {"resolver_service": lambda r: r.resolver_service},
    "web": {"volunteer": lambda r: r.volunteer},
    "speedtest": {},
    "video": {},
}


def dimensions_for(kind: str) -> Dict[str, Callable[[Any], Any]]:
    """All queryable dimensions of one record kind (name -> extractor)."""
    dims = dict(CONTEXT_DIMENSIONS)
    dims.update(RECORD_DIMENSIONS.get(kind, {}))
    return dims


def _intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Intersection of two ascending position lists, ascending.

    Lopsided inputs are the common case (a narrow country+target slice
    against the dataset-wide SIM-kind list), so the small side is
    binary-searched into the big one — O(len(a) log len(b)) — instead
    of hashing the big side, which would cost O(len(b)) per query and
    hand back the full-scan complexity the index exists to avoid.
    """
    if len(a) > len(b):
        a, b = b, a
    if len(b) > 16 * len(a):
        out = []
        for position in a:
            i = bisect.bisect_left(b, position)
            if i < len(b) and b[i] == position:
                out.append(position)
        return out
    bset = set(b)
    return [p for p in a if p in bset]


class KindIndex:
    """Hash indexes for one record kind of one dataset.

    One dict per dimension, ``value -> ascending positions``, built on
    first use of that dimension and cached until the backing list grows
    or the owner invalidates.
    """

    def __init__(self, kind: str, records: List[Any]) -> None:
        self.kind = kind
        self._records = records
        self._built_len = len(records)
        self._by_dimension: Dict[str, Dict[Any, List[int]]] = {}
        self._dims = dimensions_for(kind)

    # -- maintenance --------------------------------------------------------

    def _fresh(self) -> bool:
        return self._built_len == len(self._records)

    def _ensure_fresh(self) -> None:
        if not self._fresh():
            self._built_len = len(self._records)
            self._by_dimension.clear()

    def _ensure_dimension(self, dimension: str) -> Dict[Any, List[int]]:
        self._ensure_fresh()
        if dimension not in self._by_dimension:
            if dimension not in self._dims:
                raise KeyError(
                    f"unknown dimension {dimension!r} for kind {self.kind!r}; "
                    f"known: {', '.join(sorted(self._dims))}"
                )
            extract = self._dims[dimension]
            table: Dict[Any, List[int]] = {}
            for position, record in enumerate(self._records):
                table.setdefault(extract(record), []).append(position)
            self._by_dimension[dimension] = table
            obs.counter("query.index.build").inc()
        else:
            obs.counter("query.index.reuse").inc()
        return self._by_dimension[dimension]

    # -- lookups ------------------------------------------------------------

    @property
    def records(self) -> List[Any]:
        return self._records

    def positions(self, dimension: str, value: Any) -> List[int]:
        """Ascending positions of records whose ``dimension`` == ``value``."""
        return self._ensure_dimension(dimension).get(value, [])

    def values(self, dimension: str) -> List[Any]:
        """Distinct values of ``dimension``, deterministically ordered."""
        return _sorted_values(self._ensure_dimension(dimension))

    def groups(self, dimension: str) -> Dict[Any, List[int]]:
        return self._ensure_dimension(dimension)


def _sorted_values(table: Dict[Any, Any]) -> List[Any]:
    try:
        return sorted(table)
    except TypeError:
        return sorted(table, key=repr)


class RecordQuery:
    """A lazily-evaluated, chainable slice of one record kind.

    Immutable: ``where``/``filter`` return new queries, so a base query
    can be refined several ways (the Table 4 counting pattern)::

        base = dataset.select("cdn").where(provider="Cloudflare")
        sim = base.where(sim_kind=SIMKind.PHYSICAL).count()
        esim = base.where(sim_kind=SIMKind.ESIM).count()
    """

    def __init__(
        self,
        index: KindIndex,
        positions: Optional[List[int]] = None,
        predicates: Tuple[Callable[[Any], bool], ...] = (),
    ) -> None:
        self._index = index
        self._positions = positions  # None = every record, in order
        self._predicates = predicates

    # -- refinement ---------------------------------------------------------

    def where(self, **dimensions: Any) -> "RecordQuery":
        """Narrow to records matching every ``dimension=value`` given.

        ``None`` values are ignored (so optional filter arguments can be
        forwarded verbatim); ``country`` is upper-cased like the historic
        slice helpers did.
        """
        positions = self._positions
        for dimension, value in dimensions.items():
            if value is None:
                continue
            if dimension == "country" and isinstance(value, str):
                value = value.upper()
            matched = self._index.positions(dimension, value)
            positions = (
                list(matched)
                if positions is None
                else _intersect_sorted(positions, matched)
            )
        if positions is self._positions:
            return self
        return RecordQuery(self._index, positions, self._predicates)

    def filter(self, predicate: Callable[[Any], bool]) -> "RecordQuery":
        """Narrow by an arbitrary per-record predicate (applied lazily)."""
        return RecordQuery(
            self._index, self._positions, self._predicates + (predicate,)
        )

    # -- evaluation ---------------------------------------------------------

    def _candidates(self) -> Iterator[Any]:
        records = self._index.records
        if self._positions is None:
            yield from records
        else:
            for position in self._positions:
                yield records[position]

    def records(self) -> List[Any]:
        """The matching records, in campaign insertion order."""
        out = self._candidates()
        for predicate in self._predicates:
            out = (r for r in out if predicate(r))
        return list(out)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records())

    def __len__(self) -> int:
        return self.count()

    def count(self) -> int:
        if not self._predicates:
            if self._positions is None:
                return len(self._index.records)
            return len(self._positions)
        return len(self.records())

    def values(self, dimension: str) -> List[Any]:
        """Distinct values of ``dimension`` among the matches, ordered."""
        if self._positions is None and not self._predicates:
            return self._index.values(dimension)
        extract = dimensions_for(self._index.kind)[dimension]
        return _sorted_values({extract(r): None for r in self.records()})

    def group_by(self, *dimensions: str) -> Dict[Any, List[Any]]:
        """Matching records bucketed by one or more dimensions.

        With one dimension the keys are its values; with several they
        are tuples (e.g. ``group_by("country", "config")`` — the pivot
        most figures use). Keys are deterministically ordered (sorted,
        falling back to ``repr`` for unorderable values); each bucket
        keeps insertion order.
        """
        if not dimensions:
            raise TypeError("group_by needs at least one dimension")
        if len(dimensions) == 1 and self._positions is None and not self._predicates:
            groups = self._index.groups(dimensions[0])
            records = self._index.records
            return {
                value: [records[p] for p in groups[value]]
                for value in _sorted_values(groups)
            }
        dims = dimensions_for(self._index.kind)
        extractors = [dims[d] for d in dimensions]
        buckets: Dict[Any, List[Any]] = {}
        for record in self.records():
            if len(extractors) == 1:
                key = extractors[0](record)
            else:
                key = tuple(extract(record) for extract in extractors)
            buckets.setdefault(key, []).append(record)
        return {value: buckets[value] for value in _sorted_values(buckets)}

    def count_by(self, *dimensions: str) -> Dict[Any, int]:
        """Match counts per dimension value (ordered like group_by)."""
        if len(dimensions) == 1 and self._positions is None and not self._predicates:
            groups = self._index.groups(dimensions[0])
            return {v: len(groups[v]) for v in _sorted_values(groups)}
        return {v: len(rs) for v, rs in self.group_by(*dimensions).items()}


class DatasetIndex:
    """The per-dataset index cache: one :class:`KindIndex` per record kind.

    Owned by :class:`~repro.measure.dataset.MeasurementDataset`; not
    pickled (see ``MeasurementDataset.__getstate__``), rebuilt lazily in
    any process that queries.
    """

    def __init__(self, dataset: Any) -> None:
        self._dataset = dataset
        self._kinds: Dict[str, KindIndex] = {}

    def kind(self, kind: str) -> KindIndex:
        if kind not in KIND_FIELDS:
            raise KeyError(
                f"unknown record kind {kind!r}; "
                f"known: {', '.join(sorted(KIND_FIELDS))}"
            )
        index = self._kinds.get(kind)
        records = getattr(self._dataset, KIND_FIELDS[kind])
        if index is None or index.records is not records:
            index = KindIndex(kind, records)
            self._kinds[kind] = index
        return index

    def invalidate(self) -> None:
        self._kinds.clear()


def select(dataset: Any, kind: str) -> RecordQuery:
    """Entry point used by ``MeasurementDataset.select``."""
    return RecordQuery(dataset.index.kind(kind))


# -- columnar queries ---------------------------------------------------------

try:  # numpy is a declared dependency, but the query layer degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

#: array typecode -> numpy dtype string for the zero-copy fast path.
_TYPECODE_DTYPES: Dict[str, str] = {
    "b": "<i1", "B": "<u1", "h": "<i2", "H": "<u2",
    "q": "<i8", "Q": "<u8", "f": "<f4", "d": "<f8",
}


class ColumnQuery:
    """Chainable filters and aggregates over a ``ColumnStore``.

    The columnar sibling of :class:`RecordQuery`: instead of indexing
    record objects it reads typed columns directly — over live arrays,
    a memory-mapped snapshot or an attached shared-memory segment alike.
    String-table columns accept their labels transparently::

        q = population.query().where(country="JPN", kind=1)
        q.count(), q.mean("monthly_mb"), q.count_by("architecture")

    Aggregation goes through ``numpy.frombuffer`` when numpy is present
    (zero-copy, no per-row Python objects — this is what keeps worker
    RSS flat over a shared snapshot) with a pure-Python fallback.
    """

    def __init__(self, store: Any, mask: Optional[Any] = None) -> None:
        self._store = store
        self._mask = mask  # None = all rows; else one truthy flag per row

    # -- plumbing -------------------------------------------------------------

    def _column(self, name: str) -> Any:
        view = self._store.column(name)
        if _np is not None:
            return _np.frombuffer(
                view, dtype=_TYPECODE_DTYPES[self._store.typecode(name)]
            )
        return view

    def _encode(self, name: str, value: Any) -> Any:
        if isinstance(value, str):
            table = self._store.strings_for(name)
            if table is None:
                raise KeyError(
                    f"column {name!r} has no string table; "
                    f"filter it with a numeric value"
                )
            return table.lookup(value)  # -1 never matches any stored code
        return value

    def _rows(self) -> int:
        names = self._store.column_names()
        return self._store.rows(names[0]) if names else 0

    # -- refinement -----------------------------------------------------------

    def where(self, **columns: Any) -> "ColumnQuery":
        """Narrow to rows matching every ``column=value`` given.

        ``None`` values are ignored, mirroring :meth:`RecordQuery.where`.
        """
        mask = self._mask
        for name, value in columns.items():
            if value is None:
                continue
            code = self._encode(name, value)
            column = self._column(name)
            if _np is not None:
                matched = column == code
                mask = matched if mask is None else (mask & matched)
            else:
                matched = bytearray(
                    1 if item == code else 0 for item in column
                )
                if mask is not None:
                    matched = bytearray(
                        a & b for a, b in zip(mask, matched)
                    )
                mask = matched
        if mask is self._mask:
            return self
        return ColumnQuery(self._store, mask)

    # -- aggregates -----------------------------------------------------------

    def count(self) -> int:
        if self._mask is None:
            return self._rows()
        if _np is not None:
            return int(self._mask.sum())
        return sum(self._mask)

    def sum(self, name: str) -> float:
        column = self._column(name)
        if _np is not None:
            if self._mask is not None:
                column = column[self._mask]
            return float(column.sum())
        if self._mask is None:
            return float(sum(column))
        return float(
            sum(item for item, keep in zip(column, self._mask) if keep)
        )

    def mean(self, name: str) -> float:
        n = self.count()
        return self.sum(name) / n if n else 0.0

    def values(self, name: str) -> List[Any]:
        """Distinct values (labels for string columns), ordered."""
        return list(self.count_by(name))

    def count_by(self, name: str) -> Dict[Any, int]:
        """Row counts per distinct value, decoded and ordered by label."""
        column = self._column(name)
        if _np is not None:
            if self._mask is not None:
                column = column[self._mask]
            codes, counts = _np.unique(column, return_counts=True)
            raw = dict(zip(codes.tolist(), counts.tolist()))
        else:
            raw = {}
            flags = self._mask if self._mask is not None else None
            for position, item in enumerate(column):
                if flags is not None and not flags[position]:
                    continue
                raw[item] = raw.get(item, 0) + 1
        table = self._store.strings_for(name)
        if table is None:
            return {value: raw[value] for value in sorted(raw)}
        decoded = {table.value(code): n for code, n in raw.items()}
        return {value: decoded[value] for value in sorted(decoded)}
