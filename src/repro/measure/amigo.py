"""AmiGo-style testbed: control server and measurement endpoints.

Mirrors the architecture of the real AmiGo system the paper extends: a
control server that endpoints poll over REST-like calls to (1) report
device vitals and radio metrics and (2) receive instrumentation (which
tests to run). Endpoints are rooted phones carrying a local physical SIM
and an Airalo eSIM, flipping between them per battery of tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cellular.attach import SessionFactory
from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMProfile
from repro.cellular.mno import BandwidthPolicy, OperatorRegistry
from repro.cellular.radio import RadioConditions
from repro.cellular.ue import UserEquipment
from repro.geo.cities import City
from repro.measure.clients import fetch_from_cdn, probe_dns, probe_video, run_speedtest
from repro.measure.dataset import MeasurementDataset
from repro.measure.traceroute import TracerouteEngine, postprocess
from repro.net.geoip import GeoIPDatabase
from repro.services.cdn import CDNProvider
from repro.services.dns import DNSService
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServiceProvider
from repro.services.speedtest import SpeedtestFleet
from repro.services.video import AdaptiveBitratePlayer


@dataclass
class TestbedResources:
    """Everything an endpoint needs to execute its instrumentation."""

    fabric: ServiceFabric
    geoip: GeoIPDatabase
    traceroute_engine: TracerouteEngine
    operators: OperatorRegistry
    ookla: SpeedtestFleet
    cdns: Dict[str, CDNProvider]
    dns_services: Dict[str, DNSService]
    sp_targets: Dict[str, ServiceProvider]
    player: AdaptiveBitratePlayer = field(default_factory=AdaptiveBitratePlayer)

    def dns_for(self, session: PDNSession) -> DNSService:
        """The resolver service a session's DNS configuration points at."""
        if session.dns_operator not in self.dns_services:
            raise KeyError(f"no DNS service registered for {session.dns_operator}")
        return self.dns_services[session.dns_operator]

    def policy_for(self, session: PDNSession) -> BandwidthPolicy:
        """The v-MNO shaper applied to this session's traffic class."""
        operator = self.operators.get(session.v_mno_name)
        if operator.bandwidth is not None:
            return operator.bandwidth
        parent = self.operators.parent_of(operator)
        if parent.bandwidth is None:
            raise ValueError(f"{operator.name} has no bandwidth policy configured")
        return parent.bandwidth

    def youtube_cap_for(self, session: PDNSession) -> Optional[float]:
        """Per-service throttling on this session's path.

        Either endpoint operator can shape YouTube: the b-MNO (it carries
        HR traffic through its core) or the v-MNO (it owns the radio leg
        every session crosses). The tightest configured cap applies.
        """
        caps = []
        for name in (session.b_mno_name, session.v_mno_name):
            operator = self.operators.get(name)
            if operator.bandwidth is not None and operator.bandwidth.youtube_cap_mbps:
                caps.append(operator.bandwidth.youtube_cap_mbps)
        return min(caps) if caps else None


@dataclass(frozen=True)
class CountryDeployment:
    """One volunteer's kit: device location, both SIMs, corridor quirks."""

    country_iso3: str
    city: City
    physical_sim: SIMProfile
    esim: SIMProfile
    v_mno_physical: str
    v_mno_esim: str
    esim_uplink_asymmetry: float = 1.0
    duration_days: int = 1

    def __post_init__(self) -> None:
        if self.esim_uplink_asymmetry <= 0:
            raise ValueError("uplink asymmetry must be positive")
        if self.duration_days < 1:
            raise ValueError("deployment needs at least one day")


@dataclass(frozen=True)
class DeviceStatus:
    """A status ping an endpoint posts to the control server."""

    imei: str
    day: int
    battery_pct: float
    connectivity: str
    conditions: RadioConditions


#: Test plan entry: (physical-SIM runs, eSIM runs), keyed by test name.
TestPlan = Dict[str, Tuple[int, int]]


class MeasurementEndpoint:
    """A rooted phone executing instrumentation under server control."""

    def __init__(
        self,
        deployment: CountryDeployment,
        resources: TestbedResources,
        factory: SessionFactory,
        rng: random.Random,
    ) -> None:
        self.deployment = deployment
        self.resources = resources
        self.factory = factory
        self.rng = rng
        self.device = UserEquipment.provision("Samsung S21+ 5G", deployment.city, rng)
        self._physical_slot = self.device.install_sim(deployment.physical_sim)
        self._esim_slot = self.device.install_sim(deployment.esim)
        self._battery = 100.0

    # -- control-plane calls ---------------------------------------------------

    def report_status(self, day: int) -> DeviceStatus:
        """Device vitals + radio metrics (the first AmiGo API)."""
        conditions = self._sample_conditions()
        self._battery = max(5.0, self._battery - self.rng.uniform(1.0, 6.0))
        if self._battery < 25.0 and self.rng.random() < 0.7:
            self._battery = 100.0  # volunteer recharges
        return DeviceStatus(
            imei=self.device.imei,
            day=day,
            battery_pct=self._battery,
            connectivity="cellular" if self.device.attached else "idle",
            conditions=conditions,
        )

    # -- data-plane execution ---------------------------------------------------

    def run_battery(self, plan: TestPlan, day: int) -> MeasurementDataset:
        """Execute one day's share of the plan on both SIMs.

        Each test script reattaches before running (the SIM flip tears the
        PDP context down anyway), so PGW selection is re-rolled per test
        type — which is how the paper observed Play/Telna eSIMs
        alternating between Packet Host and OVH within a deployment.
        """
        dataset = MeasurementDataset()
        for use_esim in (False, True):
            for test_name, (sim_count, esim_count) in sorted(plan.items()):
                count = esim_count if use_esim else sim_count
                if count == 0:
                    continue
                self._attach(use_esim)
                sim = self.device.active_sim
                session = self.device.session
                assert session is not None
                for _ in range(count):
                    self._run_one(test_name, session, sim, day, dataset)
        self.device.detach()
        return dataset

    def _attach(self, use_esim: bool) -> None:
        slot = self._esim_slot if use_esim else self._physical_slot
        v_mno = (
            self.deployment.v_mno_esim if use_esim else self.deployment.v_mno_physical
        )
        self.device.switch_to(slot, v_mno, self.factory, self.rng)

    def _sample_conditions(self) -> RadioConditions:
        rat = self.device.preferred_rat(self.rng)
        return self.resources.fabric.radio.sample_conditions(rat, self.rng)

    def _run_one(
        self,
        test_name: str,
        session: PDNSession,
        sim: SIMProfile,
        day: int,
        dataset: MeasurementDataset,
    ) -> None:
        resources = self.resources
        conditions = self._sample_conditions()
        policy = resources.policy_for(session)

        if test_name == "speedtest":
            asymmetry = (
                self.deployment.esim_uplink_asymmetry if sim.is_esim else 1.0
            )
            dataset.speedtests.append(
                run_speedtest(
                    session, sim, resources.ookla, resources.fabric, policy,
                    conditions, self.rng, uplink_asymmetry=asymmetry, day=day,
                )
            )
        elif test_name.startswith("mtr:"):
            target = test_name.split(":", 1)[1]
            provider = resources.sp_targets[target]
            result = resources.traceroute_engine.trace(
                session, provider, conditions, self.rng
            )
            dataset.traceroutes.append(
                postprocess(result, session, sim, conditions, resources.geoip, day=day)
            )
        elif test_name.startswith("cdn:"):
            provider_name = test_name.split(":", 1)[1]
            cdn = resources.cdns[provider_name]
            dns = resources.dns_for(session)
            dataset.cdn_fetches.append(
                fetch_from_cdn(
                    session, sim, cdn, dns, resources.fabric, policy,
                    conditions, self.rng, day=day,
                )
            )
        elif test_name == "dns":
            dns = resources.dns_for(session)
            dataset.dns_probes.append(
                probe_dns(session, sim, dns, resources.fabric, conditions, self.rng, day=day)
            )
        elif test_name == "video":
            dataset.video_probes.append(
                probe_video(
                    session, sim, resources.player, resources.fabric, policy,
                    conditions, self.rng,
                    youtube_cap_mbps=resources.youtube_cap_for(session), day=day,
                )
            )
        else:
            raise ValueError(f"unknown test: {test_name}")


class AmigoControlServer:
    """Coordinates endpoints: collects status pings, distributes plans."""

    def __init__(self, resources: TestbedResources, factory: SessionFactory) -> None:
        self.resources = resources
        self.factory = factory
        self._endpoints: List[MeasurementEndpoint] = []
        self.status_log: List[DeviceStatus] = []

    def register_endpoint(
        self, deployment: CountryDeployment, rng: random.Random
    ) -> MeasurementEndpoint:
        endpoint = MeasurementEndpoint(deployment, self.resources, self.factory, rng)
        self._endpoints.append(endpoint)
        return endpoint

    @property
    def endpoints(self) -> List[MeasurementEndpoint]:
        return list(self._endpoints)

    def run_campaign(self, plans: Dict[str, TestPlan]) -> MeasurementDataset:
        """Run every endpoint's plan, spread over its deployment days.

        ``plans`` maps country ISO3 to the total per-test counts; counts
        are split evenly across the deployment's days (remainder lands on
        the earliest days, like a cron-driven battery does).
        """
        dataset = MeasurementDataset()
        for endpoint in self._endpoints:
            country = endpoint.deployment.country_iso3
            if country not in plans:
                continue
            plan = plans[country]
            days = endpoint.deployment.duration_days
            for day in range(days):
                self.status_log.append(endpoint.report_status(day))
                daily = {
                    test: (
                        _share(sim_count, day, days),
                        _share(esim_count, day, days),
                    )
                    for test, (sim_count, esim_count) in plan.items()
                }
                daily = {t: c for t, c in daily.items() if c != (0, 0)}
                if daily:
                    dataset.merge(endpoint.run_battery(daily, day))
        return dataset


def _share(total: int, day: int, days: int) -> int:
    """Even split of ``total`` runs across ``days``, remainder first."""
    base, remainder = divmod(total, days)
    return base + (1 if day < remainder else 0)
