"""AmiGo-style testbed: control server and measurement endpoints.

Mirrors the architecture of the real AmiGo system the paper extends: a
control server that endpoints poll over REST-like calls to (1) report
device vitals and radio metrics and (2) receive instrumentation (which
tests to run). Endpoints are rooted phones carrying a local physical SIM
and an Airalo eSIM, flipping between them per battery of tests.

Orchestration is resilient the way a real cron-driven fleet is: attaches
and test runs retry with exponential backoff, a per-endpoint circuit
breaker quarantines devices that keep failing, and missed runs roll onto
later deployment days (make-up scheduling). All of it is inert unless a
:class:`~repro.faults.ChaosConfig` is supplied — the clean path draws
exactly the same RNG stream the fault-free implementation did.

Loggers: ``repro.measure.amigo`` (retries at DEBUG, churn/quarantine and
skipped endpoints at WARNING).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.cellular.attach import AttachReject, SessionFactory
from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMProfile
from repro.cellular.mno import BandwidthPolicy, OperatorRegistry
from repro.cellular.radio import RadioConditions
from repro.cellular.ue import SimFlipError, UserEquipment
from repro.faults import ChaosConfig, CircuitBreaker, FaultInjector, FaultKind, FaultPlan
from repro.geo.cities import City
from repro.measure.clients import (
    ProbeTimeout,
    ServiceOutage,
    TransientNetworkError,
    fetch_from_cdn,
    probe_dns,
    probe_video,
    run_speedtest,
)
from repro.measure.dataset import MeasurementDataset
from repro.measure.records import CampaignHealth, QuarantineEvent
from repro.measure.traceroute import TracerouteEngine, postprocess
from repro.net.geoip import GeoIPDatabase
from repro.services.cdn import CDNProvider
from repro.services.dns import DNSService
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServiceProvider
from repro.services.speedtest import SpeedtestFleet
from repro.services.video import AdaptiveBitratePlayer

logger = logging.getLogger("repro.measure.amigo")


class ConfigurationError(RuntimeError):
    """A session references services the testbed was not provisioned with."""


@dataclass
class TestbedResources:
    """Everything an endpoint needs to execute its instrumentation."""

    fabric: ServiceFabric
    geoip: GeoIPDatabase
    traceroute_engine: TracerouteEngine
    operators: OperatorRegistry
    ookla: SpeedtestFleet
    cdns: Dict[str, CDNProvider]
    dns_services: Dict[str, DNSService]
    sp_targets: Dict[str, ServiceProvider]
    player: AdaptiveBitratePlayer = field(default_factory=AdaptiveBitratePlayer)

    def dns_for(self, session: PDNSession) -> DNSService:
        """The resolver service a session's DNS configuration points at."""
        if session.dns_operator not in self.dns_services:
            raise ConfigurationError(
                f"no DNS service registered for {session.dns_operator!r} "
                f"(session {getattr(session, 'session_id', '?')}, "
                f"v-MNO {getattr(session, 'v_mno_name', '?')})"
            )
        return self.dns_services[session.dns_operator]

    def policy_for(self, session: PDNSession) -> BandwidthPolicy:
        """The v-MNO shaper applied to this session's traffic class."""
        operator = self.operators.get(session.v_mno_name)
        if operator.bandwidth is not None:
            return operator.bandwidth
        parent = self.operators.parent_of(operator)
        if parent.bandwidth is None:
            raise ConfigurationError(
                f"{operator.name} has no bandwidth policy configured "
                f"(nor has its host {parent.name}; session "
                f"{getattr(session, 'session_id', '?')})"
            )
        return parent.bandwidth

    def youtube_cap_for(self, session: PDNSession) -> Optional[float]:
        """Per-service throttling on this session's path.

        Either endpoint operator can shape YouTube: the b-MNO (it carries
        HR traffic through its core) or the v-MNO (it owns the radio leg
        every session crosses). The tightest configured cap applies.
        """
        caps = []
        for name in (session.b_mno_name, session.v_mno_name):
            operator = self.operators.get(name)
            if operator.bandwidth is not None and operator.bandwidth.youtube_cap_mbps:
                caps.append(operator.bandwidth.youtube_cap_mbps)
        return min(caps) if caps else None


@dataclass(frozen=True)
class CountryDeployment:
    """One volunteer's kit: device location, both SIMs, corridor quirks."""

    country_iso3: str
    city: City
    physical_sim: SIMProfile
    esim: SIMProfile
    v_mno_physical: str
    v_mno_esim: str
    esim_uplink_asymmetry: float = 1.0
    duration_days: int = 1

    def __post_init__(self) -> None:
        if self.esim_uplink_asymmetry <= 0:
            raise ValueError("uplink asymmetry must be positive")
        if self.duration_days < 1:
            raise ValueError("deployment needs at least one day")


@dataclass(frozen=True)
class DeviceStatus:
    """A status ping an endpoint posts to the control server."""

    imei: str
    day: int
    battery_pct: float
    connectivity: str
    conditions: RadioConditions


#: Test plan entry: (physical-SIM runs, eSIM runs), keyed by test name.
TestPlan = Dict[str, Tuple[int, int]]

#: Mutable per-endpoint backlog: test name -> [physical runs, eSIM runs].
Backlog = Dict[str, List[int]]


@dataclass
class _EndpointChaos:
    """Per-endpoint resilience state during a chaotic campaign."""

    config: ChaosConfig
    plan: FaultPlan
    breaker: CircuitBreaker


class MeasurementEndpoint:
    """A rooted phone executing instrumentation under server control."""

    def __init__(
        self,
        deployment: CountryDeployment,
        resources: TestbedResources,
        factory: SessionFactory,
        rng: random.Random,
    ) -> None:
        self.deployment = deployment
        self.resources = resources
        self.factory = factory
        self.rng = rng
        self.device = UserEquipment.provision("Samsung S21+ 5G", deployment.city, rng)
        self._physical_slot = self.device.install_sim(deployment.physical_sim)
        self._esim_slot = self.device.install_sim(deployment.esim)
        self._battery = 100.0

    # -- control-plane calls ---------------------------------------------------

    def report_status(self, day: int) -> DeviceStatus:
        """Device vitals + radio metrics (the first AmiGo API)."""
        conditions = self._sample_conditions()
        self._battery = max(5.0, self._battery - self.rng.uniform(1.0, 6.0))
        if self._battery < 25.0 and self.rng.random() < 0.7:
            self._battery = 100.0  # volunteer recharges
        return DeviceStatus(
            imei=self.device.imei,
            day=day,
            battery_pct=self._battery,
            connectivity="cellular" if self.device.attached else "idle",
            conditions=conditions,
        )

    # -- data-plane execution ---------------------------------------------------

    def run_battery(
        self,
        plan: TestPlan,
        day: int,
        chaos: Optional[_EndpointChaos] = None,
        health: Optional[CampaignHealth] = None,
        backlog: Optional[Backlog] = None,
        makeup: bool = False,
    ) -> MeasurementDataset:
        """Execute one day's share of the plan on both SIMs.

        Each test script reattaches before running (the SIM flip tears the
        PDP context down anyway), so PGW selection is re-rolled per test
        type — which is how the paper observed Play/Telna eSIMs
        alternating between Packet Host and OVH within a deployment.

        With ``chaos`` set, attaches and runs are retried with backoff;
        runs that still fail are pushed onto ``backlog`` for make-up
        scheduling, and final failures feed the circuit breaker.
        """
        dataset = MeasurementDataset()
        for use_esim in (False, True):
            for test_name, (sim_count, esim_count) in sorted(plan.items()):
                count = esim_count if use_esim else sim_count
                if count == 0:
                    continue
                if not self._attach_with_retry(use_esim, day, chaos, health):
                    _push_backlog(backlog, test_name, use_esim, count)
                    continue
                sim = self.device.active_sim
                session = self.device.session
                assert session is not None
                for _ in range(count):
                    done = self._run_with_retry(
                        test_name, session, sim, day, dataset, chaos, health, makeup
                    )
                    if not done:
                        _push_backlog(backlog, test_name, use_esim, 1)
        self.device.detach()
        return dataset

    def _attach(self, use_esim: bool) -> None:
        slot = self._esim_slot if use_esim else self._physical_slot
        v_mno = (
            self.deployment.v_mno_esim if use_esim else self.deployment.v_mno_physical
        )
        self.device.switch_to(slot, v_mno, self.factory, self.rng)

    def _attach_with_retry(
        self,
        use_esim: bool,
        day: int,
        chaos: Optional[_EndpointChaos],
        health: Optional[CampaignHealth],
    ) -> bool:
        """Attach, retrying injected rejects/SIM-flip wedges with backoff."""
        if chaos is None:
            if health is not None:
                health.attach_attempts += 1
            self._attach(use_esim)
            return True
        country = self.deployment.country_iso3
        for attempt in range(chaos.config.max_attach_attempts):
            if health is not None:
                health.attach_attempts += 1
                if attempt:
                    health.attach_retries += 1
            try:
                fault = chaos.plan.attach_fault(day)
                if fault is not None:
                    if fault.kind is FaultKind.SIM_FLIP:
                        raise SimFlipError(fault.detail)
                    raise AttachReject(fault.detail)
                self._attach(use_esim)
                chaos.breaker.record_success()
                return True
            except (AttachReject, SimFlipError) as error:
                obs.counter("campaign.attach.retry").inc()
                delay = chaos.plan.backoff_delay_s(attempt)
                logger.debug(
                    "%s day %d: attach attempt %d failed (%s); backing off %.1fs",
                    country, day, attempt + 1, error, delay,
                )
        if health is not None:
            health.attach_failures += 1
        self._note_failure(day, chaos, health)
        logger.info(
            "%s day %d: attach gave up after %d attempts",
            country, day, chaos.config.max_attach_attempts,
        )
        return False

    def _run_with_retry(
        self,
        test_name: str,
        session: PDNSession,
        sim: SIMProfile,
        day: int,
        dataset: MeasurementDataset,
        chaos: Optional[_EndpointChaos],
        health: Optional[CampaignHealth],
        makeup: bool,
    ) -> bool:
        """One planned run, retried through injected outages/timeouts."""
        country = self.deployment.country_iso3
        cell = health.cell(country, test_name) if health is not None else None
        if cell is not None:
            cell.attempted += 1
        if chaos is None:
            self._run_one(test_name, session, sim, day, dataset)
            if cell is not None:
                cell.succeeded += 1
            return True
        for attempt in range(chaos.config.max_test_attempts):
            try:
                fault = chaos.plan.test_fault(test_name, day)
                if fault is not None:
                    if fault.kind is FaultKind.SERVICE_OUTAGE:
                        raise ServiceOutage(f"{test_name}: service outage")
                    raise ProbeTimeout(f"{test_name}: probe timed out")
                self._run_one(test_name, session, sim, day, dataset)
                if cell is not None:
                    cell.succeeded += 1
                    if makeup:
                        cell.made_up += 1
                chaos.breaker.record_success()
                return True
            except TransientNetworkError as error:
                if cell is not None:
                    cell.retried += 1
                obs.counter("campaign.test.retry").inc()
                delay = chaos.plan.backoff_delay_s(attempt)
                logger.debug(
                    "%s day %d: %s attempt %d failed (%s); backing off %.1fs",
                    country, day, test_name, attempt + 1, error, delay,
                )
        self._note_failure(day, chaos, health)
        logger.info(
            "%s day %d: %s gave up after %d attempts; rescheduling",
            country, day, test_name, chaos.config.max_test_attempts,
        )
        return False

    def _note_failure(
        self,
        day: int,
        chaos: _EndpointChaos,
        health: Optional[CampaignHealth],
    ) -> None:
        """Feed a final (post-retry) failure to the circuit breaker."""
        if chaos.breaker.record_failure(day) and health is not None:
            obs.counter("campaign.quarantine").inc()
            health.quarantines.append(
                QuarantineEvent(
                    country_iso3=self.deployment.country_iso3,
                    imei=self.device.imei,
                    day=day,
                    consecutive_failures=chaos.breaker.threshold,
                )
            )
            logger.info(
                "%s day %d: circuit breaker tripped; quarantined for %d days",
                self.deployment.country_iso3, day, chaos.breaker.quarantine_days,
            )

    def _sample_conditions(self) -> RadioConditions:
        rat = self.device.preferred_rat(self.rng)
        return self.resources.fabric.radio.sample_conditions(rat, self.rng)

    def _run_one(
        self,
        test_name: str,
        session: PDNSession,
        sim: SIMProfile,
        day: int,
        dataset: MeasurementDataset,
    ) -> None:
        resources = self.resources
        conditions = self._sample_conditions()
        policy = resources.policy_for(session)

        if test_name == "speedtest":
            asymmetry = (
                self.deployment.esim_uplink_asymmetry if sim.is_esim else 1.0
            )
            dataset.speedtests.append(
                run_speedtest(
                    session, sim, resources.ookla, resources.fabric, policy,
                    conditions, self.rng, uplink_asymmetry=asymmetry, day=day,
                )
            )
        elif test_name.startswith("mtr:"):
            target = test_name.split(":", 1)[1]
            provider = resources.sp_targets[target]
            result = resources.traceroute_engine.trace(
                session, provider, conditions, self.rng
            )
            dataset.traceroutes.append(
                postprocess(result, session, sim, conditions, resources.geoip, day=day)
            )
        elif test_name.startswith("cdn:"):
            provider_name = test_name.split(":", 1)[1]
            cdn = resources.cdns[provider_name]
            dns = resources.dns_for(session)
            dataset.cdn_fetches.append(
                fetch_from_cdn(
                    session, sim, cdn, dns, resources.fabric, policy,
                    conditions, self.rng, day=day,
                )
            )
        elif test_name == "dns":
            dns = resources.dns_for(session)
            dataset.dns_probes.append(
                probe_dns(session, sim, dns, resources.fabric, conditions, self.rng, day=day)
            )
        elif test_name == "video":
            dataset.video_probes.append(
                probe_video(
                    session, sim, resources.player, resources.fabric, policy,
                    conditions, self.rng,
                    youtube_cap_mbps=resources.youtube_cap_for(session), day=day,
                )
            )
        else:
            raise ValueError(f"unknown test: {test_name}")


class AmigoControlServer:
    """Coordinates endpoints: collects status pings, distributes plans."""

    def __init__(
        self,
        resources: TestbedResources,
        factory: SessionFactory,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.resources = resources
        self.factory = factory
        self.chaos = chaos
        self._endpoints: List[MeasurementEndpoint] = []
        self.status_log: List[DeviceStatus] = []

    def register_endpoint(
        self, deployment: CountryDeployment, rng: random.Random
    ) -> MeasurementEndpoint:
        endpoint = MeasurementEndpoint(deployment, self.resources, self.factory, rng)
        self._endpoints.append(endpoint)
        return endpoint

    @property
    def endpoints(self) -> List[MeasurementEndpoint]:
        return list(self._endpoints)

    def run_campaign(self, plans: Dict[str, TestPlan]) -> MeasurementDataset:
        """Run every endpoint's plan, spread over its deployment days.

        ``plans`` maps country ISO3 to the total per-test counts; counts
        are split evenly across the deployment's days (remainder lands on
        the earliest days, like a cron-driven battery does). The result's
        ``health`` carries the degradation accounting — full completion
        and no incidents unless the server was built with a chaos config.
        """
        dataset = MeasurementDataset()
        health = dataset.health
        injector = (
            FaultInjector(self.chaos)
            if self.chaos is not None and self.chaos.enabled
            else None
        )
        for endpoint in self._endpoints:
            country = endpoint.deployment.country_iso3
            if country not in plans:
                label = f"{country}:{endpoint.device.imei}"
                logger.warning(
                    "endpoint %s registered but its country has no plan; skipping",
                    label,
                )
                health.skipped_endpoints.append(label)
                continue
            plan = plans[country]
            for test, (sim_count, esim_count) in plan.items():
                health.cell(country, test).planned += sim_count + esim_count
            with obs.span(
                "campaign.endpoint", country=country, imei=endpoint.device.imei,
            ):
                if injector is None:
                    self._run_clean(endpoint, plan, dataset, health)
                else:
                    self._run_resilient(endpoint, plan, injector, dataset, health)
        return dataset

    # -- campaign drivers ---------------------------------------------------

    def _run_clean(
        self,
        endpoint: MeasurementEndpoint,
        plan: TestPlan,
        dataset: MeasurementDataset,
        health: CampaignHealth,
    ) -> None:
        """The fault-free path: bit-identical to the pre-chaos testbed."""
        days = endpoint.deployment.duration_days
        for day in range(days):
            self.status_log.append(endpoint.report_status(day))
            daily = _daily_share(plan, day, days)
            if daily:
                dataset.merge(endpoint.run_battery(daily, day, health=health))

    def _run_resilient(
        self,
        endpoint: MeasurementEndpoint,
        plan: TestPlan,
        injector: FaultInjector,
        dataset: MeasurementDataset,
        health: CampaignHealth,
    ) -> None:
        """Chaotic path: churn/quarantine skip days, failures roll forward
        onto later days, and make-up days drain the backlog at the end."""
        config = injector.config
        country = endpoint.deployment.country_iso3
        chaos = _EndpointChaos(
            config=config,
            plan=injector.plan_for(f"{country}:{endpoint.device.imei}"),
            breaker=CircuitBreaker(config.breaker_threshold, config.quarantine_days),
        )
        days = endpoint.deployment.duration_days
        backlog: Backlog = {}
        offline_until = -1
        for day in range(days + config.max_makeup_days):
            makeup = day >= days
            if makeup and not _backlog_total(backlog):
                break
            if day <= offline_until or chaos.breaker.is_quarantined(day):
                health.offline_days += 1
                if not makeup:
                    _defer_day(plan, day, days, backlog)
                continue
            churn = chaos.plan.churn_days(day)
            if churn:
                offline_until = day + churn - 1
                health.offline_days += 1
                logger.info(
                    "%s day %d: endpoint went dark for %d day(s)",
                    country, day, churn,
                )
                if not makeup:
                    _defer_day(plan, day, days, backlog)
                continue
            self.status_log.append(endpoint.report_status(day))
            todays = _daily_share(plan, day, days) if not makeup else {}
            todays = _merge_backlog(todays, backlog)
            if makeup:
                health.makeup_days += 1
            if todays:
                dataset.merge(
                    endpoint.run_battery(
                        todays, day, chaos=chaos, health=health,
                        backlog=backlog, makeup=makeup,
                    )
                )
        for test, (sim_count, esim_count) in sorted(
            (t, tuple(c)) for t, c in backlog.items()
        ):
            dropped = sim_count + esim_count
            if dropped:
                health.cell(country, test).dropped += dropped
                logger.info(
                    "%s: dropping %d %s run(s) after the make-up window",
                    country, dropped, test,
                )


def _share(total: int, day: int, days: int) -> int:
    """Even split of ``total`` runs across ``days``, remainder first."""
    base, remainder = divmod(total, days)
    return base + (1 if day < remainder else 0)


def _daily_share(plan: TestPlan, day: int, days: int) -> TestPlan:
    """One day's slice of the plan, dropping empty entries."""
    daily = {
        test: (_share(sim_count, day, days), _share(esim_count, day, days))
        for test, (sim_count, esim_count) in plan.items()
    }
    return {t: c for t, c in daily.items() if c != (0, 0)}


def _backlog_total(backlog: Backlog) -> int:
    return sum(sim_count + esim_count for sim_count, esim_count in backlog.values())


def _push_backlog(
    backlog: Optional[Backlog], test: str, use_esim: bool, count: int
) -> None:
    if backlog is None:
        return
    entry = backlog.setdefault(test, [0, 0])
    entry[1 if use_esim else 0] += count


def _defer_day(plan: TestPlan, day: int, days: int, backlog: Backlog) -> None:
    """Roll a missed day's share forward onto the backlog."""
    for test, (sim_count, esim_count) in _daily_share(plan, day, days).items():
        entry = backlog.setdefault(test, [0, 0])
        entry[0] += sim_count
        entry[1] += esim_count


def _merge_backlog(todays: TestPlan, backlog: Backlog) -> TestPlan:
    """Today's share plus everything owed; consumes the backlog."""
    merged = {test: list(counts) for test, counts in todays.items()}
    for test, (sim_count, esim_count) in backlog.items():
        entry = merged.setdefault(test, [0, 0])
        entry[0] += sim_count
        entry[1] += esim_count
    backlog.clear()
    return {
        test: (sim_count, esim_count)
        for test, (sim_count, esim_count) in merged.items()
        if (sim_count, esim_count) != (0, 0)
    }
