"""Measurement record types.

Every probe emits a record carrying a :class:`MeasurementContext` — the
metadata dimension along which all the paper's figures pivot (country,
SIM kind, architecture, b-MNO, PGW provider, RAT) — plus the probe's own
observables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMKind, SIMProfile
from repro.cellular.radio import RadioConditions
from repro.cellular.roaming import RoamingArchitecture


@dataclass(frozen=True)
class MeasurementContext:
    """Where / with what a measurement ran."""

    country_iso3: str
    sim_kind: SIMKind
    architecture: RoamingArchitecture
    b_mno: str
    v_mno: str
    pgw_provider: str
    pgw_asn: int
    pgw_country: str
    public_ip: str
    rat: str
    cqi: int
    session_id: str
    day: int = 0

    @classmethod
    def from_session(
        cls,
        session: PDNSession,
        sim: SIMProfile,
        conditions: RadioConditions,
        day: int = 0,
    ) -> "MeasurementContext":
        return cls(
            country_iso3=session.sgw.city.country_iso3,
            sim_kind=sim.kind,
            architecture=session.architecture,
            b_mno=session.b_mno_name,
            v_mno=session.v_mno_name,
            pgw_provider=session.pgw_site.provider_org,
            pgw_asn=session.pgw_site.provider_asn,
            pgw_country=session.breakout_country,
            public_ip=str(session.public_ip),
            rat=conditions.rat.value,
            cqi=conditions.cqi,
            session_id=session.session_id,
            day=day,
        )

    @property
    def is_esim(self) -> bool:
        return self.sim_kind is SIMKind.ESIM

    @property
    def config_label(self) -> str:
        """'SIM' or the eSIM's architecture — the x-axis grouping of most figures."""
        if self.sim_kind is SIMKind.PHYSICAL:
            return "SIM"
        return f"eSIM/{self.architecture.label}"


@dataclass(frozen=True)
class TracerouteRecord:
    """One mtr run, post-processed (Section 4.3's dataset row)."""

    context: MeasurementContext
    target: str
    hop_ips: List[Optional[str]]
    hop_rtts_ms: List[Optional[float]]
    private_hops: int
    public_hops: int
    pgw_ip: Optional[str]
    pgw_rtt_ms: Optional[float]
    final_rtt_ms: Optional[float]
    unique_asns: List[int]

    @property
    def path_length(self) -> int:
        return len(self.hop_ips)

    @property
    def pgw_verified(self) -> bool:
        """The paper's sanity check: the first public hop must carry the
        same address the device sees as its public IP (obtained from the
        speedtest run just before the traceroute). A mismatch means the
        CG-NAT hop timed out and the demarcation is unreliable."""
        return self.pgw_ip is not None and self.pgw_ip == self.context.public_ip

    @property
    def private_latency_share(self) -> Optional[float]:
        """Fraction of end-to-end RTT spent before public breakout (Fig 12)."""
        if self.pgw_rtt_ms is None or self.final_rtt_ms is None or self.final_rtt_ms <= 0:
            return None
        return min(1.0, self.pgw_rtt_ms / self.final_rtt_ms)


@dataclass(frozen=True)
class SpeedtestRecord:
    """One Ookla-style run."""

    context: MeasurementContext
    server_city: str
    latency_ms: float
    download_mbps: float
    upload_mbps: float

    @property
    def passes_cqi_filter(self) -> bool:
        """The paper's CQI >= 7 admission rule for bandwidth analysis."""
        return self.context.cqi >= 7


@dataclass(frozen=True)
class CDNRecord:
    """One jquery.min.js fetch."""

    context: MeasurementContext
    provider: str
    edge_city: str
    dns_ms: float
    total_ms: float
    cache_hit: bool


@dataclass(frozen=True)
class DNSRecord:
    """One resolver-identification probe."""

    context: MeasurementContext
    resolver_service: str
    resolver_ip: str
    resolver_country: str
    lookup_ms: float
    used_doh: bool


@dataclass(frozen=True)
class VideoRecord:
    """One stats-for-nerds playback."""

    context: MeasurementContext
    resolution_counts: Dict[str, int]
    dominant_resolution: str
    rebuffer_events: int
    mean_buffer_s: float


@dataclass(frozen=True)
class WebMeasurementRecord:
    """One completed web-campaign measurement (DNS upload + fast.com)."""

    context: MeasurementContext
    volunteer: str
    download_mbps: float
    latency_ms: float
    resolver_service: str
    resolver_country: str
