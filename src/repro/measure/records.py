"""Measurement record types.

Every probe emits a record carrying a :class:`MeasurementContext` — the
metadata dimension along which all the paper's figures pivot (country,
SIM kind, architecture, b-MNO, PGW provider, RAT) — plus the probe's own
observables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMKind, SIMProfile
from repro.cellular.radio import RadioConditions
from repro.cellular.roaming import RoamingArchitecture


@dataclass(frozen=True)
class MeasurementContext:
    """Where / with what a measurement ran."""

    country_iso3: str
    sim_kind: SIMKind
    architecture: RoamingArchitecture
    b_mno: str
    v_mno: str
    pgw_provider: str
    pgw_asn: int
    pgw_country: str
    public_ip: str
    rat: str
    cqi: int
    session_id: str
    day: int = 0

    @classmethod
    def from_session(
        cls,
        session: PDNSession,
        sim: SIMProfile,
        conditions: RadioConditions,
        day: int = 0,
    ) -> "MeasurementContext":
        return cls(
            country_iso3=session.sgw.city.country_iso3,
            sim_kind=sim.kind,
            architecture=session.architecture,
            b_mno=session.b_mno_name,
            v_mno=session.v_mno_name,
            pgw_provider=session.pgw_site.provider_org,
            pgw_asn=session.pgw_site.provider_asn,
            pgw_country=session.breakout_country,
            public_ip=str(session.public_ip),
            rat=conditions.rat.value,
            cqi=conditions.cqi,
            session_id=session.session_id,
            day=day,
        )

    @property
    def is_esim(self) -> bool:
        return self.sim_kind is SIMKind.ESIM

    @property
    def config_label(self) -> str:
        """'SIM' or the eSIM's architecture — the x-axis grouping of most figures."""
        if self.sim_kind is SIMKind.PHYSICAL:
            return "SIM"
        return f"eSIM/{self.architecture.label}"


@dataclass(frozen=True)
class TracerouteRecord:
    """One mtr run, post-processed (Section 4.3's dataset row)."""

    context: MeasurementContext
    target: str
    hop_ips: List[Optional[str]]
    hop_rtts_ms: List[Optional[float]]
    private_hops: int
    public_hops: int
    pgw_ip: Optional[str]
    pgw_rtt_ms: Optional[float]
    final_rtt_ms: Optional[float]
    unique_asns: List[int]

    @property
    def path_length(self) -> int:
        return len(self.hop_ips)

    @property
    def pgw_verified(self) -> bool:
        """The paper's sanity check: the first public hop must carry the
        same address the device sees as its public IP (obtained from the
        speedtest run just before the traceroute). A mismatch means the
        CG-NAT hop timed out and the demarcation is unreliable."""
        return self.pgw_ip is not None and self.pgw_ip == self.context.public_ip

    @property
    def private_latency_share(self) -> Optional[float]:
        """Fraction of end-to-end RTT spent before public breakout (Fig 12)."""
        if self.pgw_rtt_ms is None or self.final_rtt_ms is None or self.final_rtt_ms <= 0:
            return None
        return min(1.0, self.pgw_rtt_ms / self.final_rtt_ms)


@dataclass(frozen=True)
class SpeedtestRecord:
    """One Ookla-style run."""

    context: MeasurementContext
    server_city: str
    latency_ms: float
    download_mbps: float
    upload_mbps: float

    @property
    def passes_cqi_filter(self) -> bool:
        """The paper's CQI >= 7 admission rule for bandwidth analysis."""
        return self.context.cqi >= 7


@dataclass(frozen=True)
class CDNRecord:
    """One jquery.min.js fetch."""

    context: MeasurementContext
    provider: str
    edge_city: str
    dns_ms: float
    total_ms: float
    cache_hit: bool


@dataclass(frozen=True)
class DNSRecord:
    """One resolver-identification probe."""

    context: MeasurementContext
    resolver_service: str
    resolver_ip: str
    resolver_country: str
    lookup_ms: float
    used_doh: bool


@dataclass(frozen=True)
class VideoRecord:
    """One stats-for-nerds playback."""

    context: MeasurementContext
    resolution_counts: Dict[str, int]
    dominant_resolution: str
    rebuffer_events: int
    mean_buffer_s: float


@dataclass(frozen=True)
class WebMeasurementRecord:
    """One completed web-campaign measurement (DNS upload + fast.com)."""

    context: MeasurementContext
    volunteer: str
    download_mbps: float
    latency_ms: float
    resolver_service: str
    resolver_country: str


# ---------------------------------------------------------------------------
# Degradation accounting
# ---------------------------------------------------------------------------


@dataclass
class TestHealth:
    """Run accounting for one (country, test kind) cell of a campaign."""

    planned: int = 0
    attempted: int = 0
    succeeded: int = 0
    retried: int = 0
    dropped: int = 0
    made_up: int = 0

    def merge(self, other: "TestHealth") -> None:
        self.planned += other.planned
        self.attempted += other.attempted
        self.succeeded += other.succeeded
        self.retried += other.retried
        self.dropped += other.dropped
        self.made_up += other.made_up


@dataclass(frozen=True)
class QuarantineEvent:
    """A circuit breaker taking one device out of rotation."""

    country_iso3: str
    imei: str
    day: int
    consecutive_failures: int


@dataclass
class CampaignHealth:
    """How much of the plan survived the campaign's operational weather.

    Keys of ``tests`` are ``(country_iso3, test kind)`` where the kind is
    the test name up to any ``:`` qualifier (``mtr:Google`` -> ``mtr``).
    A clean (chaos-off) campaign reports full completion with zero
    retries, quarantines and offline days.
    """

    tests: Dict[Tuple[str, str], TestHealth] = field(default_factory=dict)
    quarantines: List[QuarantineEvent] = field(default_factory=list)
    skipped_endpoints: List[str] = field(default_factory=list)
    offline_days: int = 0
    makeup_days: int = 0
    attach_attempts: int = 0
    attach_retries: int = 0
    attach_failures: int = 0

    @staticmethod
    def test_kind(test_name: str) -> str:
        return test_name.split(":", 1)[0]

    def cell(self, country_iso3: str, test_name: str) -> TestHealth:
        key = (country_iso3, self.test_kind(test_name))
        if key not in self.tests:
            self.tests[key] = TestHealth()
        return self.tests[key]

    # -- aggregates ---------------------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(cell, attr) for cell in self.tests.values())

    @property
    def planned_total(self) -> int:
        return self._total("planned")

    @property
    def succeeded_total(self) -> int:
        return self._total("succeeded")

    @property
    def retried_total(self) -> int:
        return self._total("retried")

    @property
    def dropped_total(self) -> int:
        return self._total("dropped")

    def completion_rate(self) -> Optional[float]:
        """Fraction of planned runs that produced a record (None if no plan)."""
        if self.planned_total == 0:
            return None
        return self.succeeded_total / self.planned_total

    def merge(self, other: "CampaignHealth") -> None:
        for key, cell in other.tests.items():
            if key not in self.tests:
                self.tests[key] = TestHealth()
            self.tests[key].merge(cell)
        self.quarantines.extend(other.quarantines)
        self.skipped_endpoints.extend(other.skipped_endpoints)
        self.offline_days += other.offline_days
        self.makeup_days += other.makeup_days
        self.attach_attempts += other.attach_attempts
        self.attach_retries += other.attach_retries
        self.attach_failures += other.attach_failures

    def render(self) -> str:
        """Human-readable health report (the CLI's ``chaos`` output)."""
        lines = [
            f"{'Country':8} {'Test':10} {'plan':>6} {'ok':>6} {'retry':>6} "
            f"{'drop':>6} {'makeup':>6}"
        ]
        for (country, kind), cell in sorted(self.tests.items()):
            lines.append(
                f"{country:8} {kind:10} {cell.planned:>6} {cell.succeeded:>6} "
                f"{cell.retried:>6} {cell.dropped:>6} {cell.made_up:>6}"
            )
        rate = self.completion_rate()
        lines.append(
            f"plan completion: {rate:.1%}" if rate is not None
            else "plan completion: n/a"
        )
        lines.append(
            f"attach: {self.attach_attempts} attempts, "
            f"{self.attach_retries} retries, {self.attach_failures} gave up"
        )
        lines.append(
            f"quarantines: {len(self.quarantines)}; offline days: "
            f"{self.offline_days}; make-up days: {self.makeup_days}; "
            f"skipped endpoints: {len(self.skipped_endpoints)}"
        )
        return "\n".join(lines)
