"""ICMP-style latency probing against service-provider edges."""

from __future__ import annotations

import random
from typing import List

from repro.cellular.core import PDNSession
from repro.cellular.radio import RadioConditions
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServiceProvider


def ping_provider(
    session: PDNSession,
    provider: ServiceProvider,
    fabric: ServiceFabric,
    conditions: RadioConditions,
    rng: random.Random,
    count: int = 4,
) -> List[float]:
    """RTT samples (ms) to the provider edge the session is steered to.

    Matches the paper's RTT-to-SP metric (Figure 11 a/b reads the final
    traceroute hop; a ping train to the same edge gives the same
    distribution).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    edge = provider.nearest_edge(session.pgw_site.location)
    return [
        fabric.session_rtt_ms(session, edge.location, conditions, rng)
        for _ in range(count)
    ]
