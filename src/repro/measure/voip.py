"""Real-time-traffic probe: jitter, packet loss and VoIP quality.

The paper's Future Directions call for "a broader suite of network
performance metrics, specifically including jitter and packet loss,
which are crucial for evaluating real-time services like Voice over IP".
This probe sends a simulated RTP-style packet train over a session,
measures RFC 3550 interarrival jitter and loss, and scores the path with
the ITU-T G.107 E-model (simplified), yielding a MOS estimate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMProfile
from repro.cellular.radio import RadioConditions
from repro.measure.records import MeasurementContext
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServiceProvider


@dataclass(frozen=True)
class VoIPRecord:
    """One real-time probe result."""

    context: MeasurementContext
    target: str
    mean_rtt_ms: float
    jitter_ms: float
    loss_rate: float
    r_factor: float
    mos: float

    @property
    def usable_for_calls(self) -> bool:
        """MOS >= 3.6 is the usual 'satisfied users' bar."""
        return self.mos >= 3.6


def rfc3550_jitter(rtts_ms: List[float]) -> float:
    """Interarrival jitter per RFC 3550's running estimator."""
    if len(rtts_ms) < 2:
        return 0.0
    jitter = 0.0
    for previous, current in zip(rtts_ms, rtts_ms[1:]):
        jitter += (abs(current - previous) - jitter) / 16.0
    return jitter


def e_model_r_factor(one_way_delay_ms: float, loss_rate: float) -> float:
    """Simplified ITU-T G.107 E-model transmission rating.

    R = R0 - Id(delay) - Ie-eff(loss) with R0 = 93.2 (G.711 defaults).
    ``Id`` penalises one-way delay (sharply beyond 177.3 ms); ``Ie-eff``
    penalises loss with G.711+PLC coefficients.
    """
    if one_way_delay_ms < 0 or not 0.0 <= loss_rate <= 1.0:
        raise ValueError("invalid delay or loss")
    delay_penalty = 0.024 * one_way_delay_ms
    if one_way_delay_ms > 177.3:
        delay_penalty += 0.11 * (one_way_delay_ms - 177.3)
    loss_pct = loss_rate * 100.0
    loss_penalty = 30.0 * math.log(1.0 + 0.15 * loss_pct)
    return max(0.0, 93.2 - delay_penalty - loss_penalty)


def mos_from_r(r: float) -> float:
    """ITU-T G.107 Annex B mapping from R factor to MOS (1.0-4.5)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7.0e-6
    # The cubic dips fractionally below 1 near R ~ 0; clamp like G.107 does.
    return min(4.5, max(1.0, mos))


def probe_voip(
    session: PDNSession,
    sim: SIMProfile,
    provider: ServiceProvider,
    fabric: ServiceFabric,
    conditions: RadioConditions,
    rng: random.Random,
    packets: int = 50,
    day: int = 0,
) -> VoIPRecord:
    """One RTP-style train to the provider's nearest edge."""
    if packets < 2:
        raise ValueError("need at least two packets to measure jitter")
    edge = provider.nearest_edge(session.pgw_site.location)
    loss_rate = fabric.loss_rate(session)

    rtts: List[float] = []
    lost = 0
    for _ in range(packets):
        if rng.random() < loss_rate:
            lost += 1
            continue
        rtts.append(fabric.session_rtt_ms(session, edge.location, conditions, rng))
    if not rtts:  # a fully black-holed path: report the worst score
        context = MeasurementContext.from_session(session, sim, conditions, day=day)
        return VoIPRecord(context, provider.name, float("inf"), 0.0, 1.0, 0.0, 1.0)

    mean_rtt = sum(rtts) / len(rtts)
    jitter = rfc3550_jitter(rtts)
    observed_loss = lost / packets
    # One-way delay: half the RTT plus codec/jitter-buffer time (~30 ms
    # packetisation + buffer sized to absorb the measured jitter).
    one_way = mean_rtt / 2.0 + 30.0 + 2.0 * jitter
    r = e_model_r_factor(one_way, observed_loss)
    return VoIPRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        target=provider.name,
        mean_rtt_ms=mean_rtt,
        jitter_ms=jitter,
        loss_rate=observed_loss,
        r_factor=r,
        mos=mos_from_r(r),
    )
