"""Traceroute (mtr-style) over simulated data paths.

Produces the hop-by-hop view the paper's path analysis consumes: a run of
private-IP hops inside the PGW provider's core (the GTP tunnel itself is
invisible), the first public IP at the CG-NAT (the "PGW IP address"),
then the public path across transit/peering ASes into the service
provider's network, ending at the chosen edge.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.cellular.core import PDNSession
from repro.cellular.esim import SIMProfile
from repro.cellular.radio import RadioConditions
from repro.measure.records import MeasurementContext, TracerouteRecord
from repro.net.addressbook import ASAddressBook
from repro.net.geoip import GeoIPDatabase
from repro.net.ipv4 import is_private_ip
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServiceProvider

#: Response rate for ordinary transit-network routers.
_TRANSIT_RESPONSE_RATE = 0.95


@dataclass(frozen=True)
class Hop:
    """One traceroute line: an address (None = ``*`` timeout) and best RTT."""

    index: int
    ip: Optional[str]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.ip is not None


@dataclass
class TracerouteResult:
    """Raw output of one run, before the paper's post-processing."""

    target_name: str
    target_ip: str
    hops: List[Hop]

    @property
    def responding_hops(self) -> List[Hop]:
        return [hop for hop in self.hops if hop.responded]


class TracerouteEngine:
    """Runs traceroutes from attach sessions to service providers."""

    def __init__(
        self,
        fabric: ServiceFabric,
        addressbook: ASAddressBook,
        cgnat_response_rate: float = 0.9,
        cgnat_response_overrides: Optional[dict] = None,
    ) -> None:
        """``cgnat_response_overrides`` maps (visited ISO3, target name)
        to a response rate, modelling paths where the CG-NAT drops probes
        so consistently that only the SP's ASN shows up (Facebook via the
        German eSIM and both Qatari configurations in the paper,
        attributed to congestion or low-priority ICMP handling)."""
        if not 0.0 <= cgnat_response_rate <= 1.0:
            raise ValueError("cgnat_response_rate must be a probability")
        self.fabric = fabric
        self.addressbook = addressbook
        self.cgnat_response_rate = cgnat_response_rate
        self.cgnat_response_overrides = dict(cgnat_response_overrides or {})
        for rate in self.cgnat_response_overrides.values():
            if not 0.0 <= rate <= 1.0:
                raise ValueError("override rates must be probabilities")

    def trace(
        self,
        session: PDNSession,
        provider: ServiceProvider,
        conditions: RadioConditions,
        rng: random.Random,
    ) -> TracerouteResult:
        """One mtr run to ``provider`` over ``session``.

        All hops of one run share a multiplicative run-level factor (mtr
        reports per-hop *best* RTTs, which are strongly correlated along a
        shared path) plus a small independent per-hop wiggle.
        """
        hops: List[Hop] = []
        radio = self.fabric.radio.access_rtt_ms(conditions)
        tunnel = session.tunnel.base_rtt_ms
        core_ms = session.pgw_site.core_crossing_ms
        k = session.private_hop_count
        run_factor = math.exp(rng.gauss(0.0, self.fabric.latency.params.jitter_sigma))

        # Private segment: the PGW first, then the provider's core.
        for i, private_ip in enumerate(session.private_path):
            progress = i / k
            base = (radio + tunnel + core_ms * progress) * run_factor
            hops.append(self._hop(len(hops) + 1, private_ip, base, rng, 0.98))

        # Public demarcation: the CG-NAT with the session's public IP.
        breakout_rtt = (radio + tunnel + core_ms) * run_factor
        cgnat_rate = self.cgnat_response_overrides.get(
            (session.sgw.city.country_iso3, provider.name),
            self.cgnat_response_rate,
        )
        hops.append(
            self._hop(
                len(hops) + 1,
                str(session.public_ip),
                breakout_rtt,
                rng,
                cgnat_rate,
            )
        )

        # Public segment: transit ASes, then the SP's internal routing.
        # One heavy-tailed overhead draw per run models the public-internet
        # variability this measurement would see (it accrues along the
        # public hops, not inside the GTP tunnel).
        edge = provider.nearest_edge(session.pgw_site.location)
        final_rtt = self.fabric.session_rtt_ms(session, edge.location, conditions)
        final_rtt = final_rtt * run_factor + self.fabric.sample_public_overhead_ms(rng)
        as_path = self.fabric.as_path(session, provider.asn)
        intermediate_asns = as_path[1:-1]

        public_hops: List[tuple] = []  # (asn, router_id, response_rate)
        for asn in intermediate_asns:
            for j in range(rng.randint(1, 2)):
                public_hops.append((asn, f"core-{j}", _TRANSIT_RESPONSE_RATE))
        for j in range(provider.sample_internal_hops(rng) - 1):
            public_hops.append(
                (provider.asn, f"{edge.city.name}-b{j}", provider.icmp_response_rate)
            )

        total_public = len(public_hops) + 1  # +1 for the edge itself
        for position, (asn, router_id, response_rate) in enumerate(public_hops, start=1):
            rtt = breakout_rtt + (final_rtt - breakout_rtt) * position / total_public
            ip = self._router_ip(asn, router_id)
            hops.append(self._hop(len(hops) + 1, ip, rtt, rng, response_rate))

        # Destination edge: always answers (it hosts the service).
        hops.append(self._hop(len(hops) + 1, str(edge.ip), final_rtt, rng, 1.0))

        return TracerouteResult(
            target_name=provider.name, target_ip=str(edge.ip), hops=hops
        )

    def _router_ip(self, asn: int, router_id: str) -> Optional[str]:
        if not self.addressbook.has(asn):
            return None  # unmapped AS: shows as a timeout line
        return str(self.addressbook.router_ip(asn, router_id))

    #: Residual per-hop wiggle on top of the shared run factor.
    _PER_HOP_SIGMA = 0.006

    def _hop(
        self,
        index: int,
        ip: Optional[str],
        base_rtt: float,
        rng: random.Random,
        response_rate: float,
    ) -> Hop:
        if ip is None or rng.random() > response_rate:
            return Hop(index=index, ip=None, rtt_ms=None)
        rtt = base_rtt * math.exp(rng.gauss(0.0, self._PER_HOP_SIGMA))
        return Hop(index=index, ip=ip, rtt_ms=max(rtt, 0.1))


def postprocess(
    result: TracerouteResult,
    session: PDNSession,
    sim: SIMProfile,
    conditions: RadioConditions,
    geoip: GeoIPDatabase,
    day: int = 0,
) -> TracerouteRecord:
    """The paper's post-processing: demarcation, geolocation, ASN mapping.

    Splits the path at the first *responding* public IP, extracts the PGW
    IP and its RTT, counts private/public hops, and maps every public hop
    to an ASN through the GeoIP database (unknown hops are skipped, like
    unmapped WHOIS entries).
    """
    first_public_index: Optional[int] = None
    for position, hop in enumerate(result.hops):
        if hop.responded and not is_private_ip(hop.ip):
            first_public_index = position
            break

    if first_public_index is None:
        private_count = len(result.hops)
        public_count = 0
        pgw_ip = None
        pgw_rtt = None
    else:
        private_count = first_public_index
        public_count = len(result.hops) - first_public_index
        pgw_hop = result.hops[first_public_index]
        pgw_ip = pgw_hop.ip
        pgw_rtt = pgw_hop.rtt_ms

    unique_asns: List[int] = []
    for hop in result.hops:
        if not hop.responded or is_private_ip(hop.ip):
            continue
        record = geoip.lookup_opt(hop.ip)
        if record is not None and record.asn not in unique_asns:
            unique_asns.append(record.asn)

    responding = result.responding_hops
    final_rtt = responding[-1].rtt_ms if responding else None

    return TracerouteRecord(
        context=MeasurementContext.from_session(session, sim, conditions, day=day),
        target=result.target_name,
        hop_ips=[hop.ip for hop in result.hops],
        hop_rtts_ms=[hop.rtt_ms for hop in result.hops],
        private_hops=private_count,
        public_hops=public_count,
        pgw_ip=pgw_ip,
        pgw_rtt_ms=pgw_rtt,
        final_rtt_ms=final_rtt,
        unique_asns=unique_asns,
    )
