"""Campaign dataset: the typed store all probes append to.

One object holds every record of a campaign; the analysis layer slices it
by country / SIM kind / architecture / target, which is how each figure
of the paper selects its series. Slicing goes through the indexed query
layer (:mod:`repro.measure.query`)::

    dataset.select("speedtest").where(country="JPN").group_by("architecture")

The historic ``*_where`` helpers remain as thin wrappers over the same
indexes, so every call site — old or new — shares one set of
per-dimension hash tables built lazily per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cellular.esim import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.measure import query as query_mod
from repro.measure.records import (
    CampaignHealth,
    CDNRecord,
    DNSRecord,
    SpeedtestRecord,
    TracerouteRecord,
    VideoRecord,
    WebMeasurementRecord,
)


@dataclass
class MeasurementDataset:
    """All records collected by a campaign."""

    traceroutes: List[TracerouteRecord] = field(default_factory=list)
    speedtests: List[SpeedtestRecord] = field(default_factory=list)
    cdn_fetches: List[CDNRecord] = field(default_factory=list)
    dns_probes: List[DNSRecord] = field(default_factory=list)
    video_probes: List[VideoRecord] = field(default_factory=list)
    web_measurements: List[WebMeasurementRecord] = field(default_factory=list)
    #: Degradation accounting: attempted/succeeded/retried/dropped per
    #: (country, test kind), quarantines, skipped endpoints.
    health: CampaignHealth = field(default_factory=CampaignHealth)

    # -- the query layer ------------------------------------------------------

    @property
    def index(self) -> query_mod.DatasetIndex:
        """The lazily-built per-dimension index cache (one per dataset)."""
        cache = self.__dict__.get("_index_cache")
        if cache is None:
            cache = query_mod.DatasetIndex(self)
            self.__dict__["_index_cache"] = cache
        return cache

    def select(self, kind: str) -> query_mod.RecordQuery:
        """Start an indexed query over one record kind.

        ``kind`` is one of ``traceroute``, ``speedtest``, ``cdn``,
        ``dns``, ``video``, ``web`` (see :data:`repro.measure.query.KIND_FIELDS`).
        """
        return query_mod.select(self, kind)

    def invalidate_indexes(self) -> None:
        """Drop every cached index (after mutating record lists in place)."""
        cache = self.__dict__.get("_index_cache")
        if cache is not None:
            cache.invalidate()

    def __getstate__(self) -> Dict[str, Any]:
        # Indexes are derived data: dropping them keeps pickled campaign
        # bytes identical whether or not the dataset was ever queried,
        # which the content-addressed artifact cache relies on.
        state = dict(self.__dict__)
        state.pop("_index_cache", None)
        return state

    def merge(self, other: "MeasurementDataset") -> None:
        """Append every record of ``other`` into this dataset."""
        self.traceroutes.extend(other.traceroutes)
        self.speedtests.extend(other.speedtests)
        self.cdn_fetches.extend(other.cdn_fetches)
        self.dns_probes.extend(other.dns_probes)
        self.video_probes.extend(other.video_probes)
        self.web_measurements.extend(other.web_measurements)
        self.health.merge(other.health)
        self.invalidate_indexes()

    def total_records(self) -> int:
        return (
            len(self.traceroutes)
            + len(self.speedtests)
            + len(self.cdn_fetches)
            + len(self.dns_probes)
            + len(self.video_probes)
            + len(self.web_measurements)
        )

    # -- common slices --------------------------------------------------------

    def countries(self) -> List[str]:
        """Countries present in the dataset, sorted."""
        seen = set()
        for kind in query_mod.KIND_FIELDS:
            seen.update(self.select(kind).values("country"))
        return sorted(seen)

    def traceroutes_to(
        self,
        target: str,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[TracerouteRecord]:
        return self.select("traceroute").where(
            target=target, country=country, sim_kind=sim_kind
        ).records()

    def speedtests_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
        architecture: Optional[RoamingArchitecture] = None,
        cqi_filtered: bool = False,
    ) -> List[SpeedtestRecord]:
        q = self.select("speedtest").where(
            country=country, sim_kind=sim_kind, architecture=architecture
        )
        if cqi_filtered:
            q = q.filter(lambda r: r.passes_cqi_filter)
        return q.records()

    def cdn_fetches_where(
        self,
        provider: Optional[str] = None,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[CDNRecord]:
        return self.select("cdn").where(
            provider=provider, country=country, sim_kind=sim_kind
        ).records()

    def dns_probes_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
        architecture: Optional[RoamingArchitecture] = None,
    ) -> List[DNSRecord]:
        return self.select("dns").where(
            country=country, sim_kind=sim_kind, architecture=architecture
        ).records()

    def video_probes_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[VideoRecord]:
        return self.select("video").where(
            country=country, sim_kind=sim_kind
        ).records()
