"""Campaign dataset: the typed store all probes append to.

One object holds every record of a campaign; the analysis layer slices it
by country / SIM kind / architecture / target, which is how each figure
of the paper selects its series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cellular.esim import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.measure.records import (
    CampaignHealth,
    CDNRecord,
    DNSRecord,
    SpeedtestRecord,
    TracerouteRecord,
    VideoRecord,
    WebMeasurementRecord,
)


@dataclass
class MeasurementDataset:
    """All records collected by a campaign."""

    traceroutes: List[TracerouteRecord] = field(default_factory=list)
    speedtests: List[SpeedtestRecord] = field(default_factory=list)
    cdn_fetches: List[CDNRecord] = field(default_factory=list)
    dns_probes: List[DNSRecord] = field(default_factory=list)
    video_probes: List[VideoRecord] = field(default_factory=list)
    web_measurements: List[WebMeasurementRecord] = field(default_factory=list)
    #: Degradation accounting: attempted/succeeded/retried/dropped per
    #: (country, test kind), quarantines, skipped endpoints.
    health: CampaignHealth = field(default_factory=CampaignHealth)

    def merge(self, other: "MeasurementDataset") -> None:
        """Append every record of ``other`` into this dataset."""
        self.traceroutes.extend(other.traceroutes)
        self.speedtests.extend(other.speedtests)
        self.cdn_fetches.extend(other.cdn_fetches)
        self.dns_probes.extend(other.dns_probes)
        self.video_probes.extend(other.video_probes)
        self.web_measurements.extend(other.web_measurements)
        self.health.merge(other.health)

    def total_records(self) -> int:
        return (
            len(self.traceroutes)
            + len(self.speedtests)
            + len(self.cdn_fetches)
            + len(self.dns_probes)
            + len(self.video_probes)
            + len(self.web_measurements)
        )

    # -- common slices --------------------------------------------------------

    def countries(self) -> List[str]:
        """Countries present in the dataset, sorted."""
        seen = set()
        for records in (
            self.traceroutes,
            self.speedtests,
            self.cdn_fetches,
            self.dns_probes,
            self.video_probes,
            self.web_measurements,
        ):
            seen.update(r.context.country_iso3 for r in records)
        return sorted(seen)

    def traceroutes_to(
        self,
        target: str,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[TracerouteRecord]:
        out = [r for r in self.traceroutes if r.target == target]
        if country is not None:
            out = [r for r in out if r.context.country_iso3 == country.upper()]
        if sim_kind is not None:
            out = [r for r in out if r.context.sim_kind is sim_kind]
        return out

    def speedtests_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
        architecture: Optional[RoamingArchitecture] = None,
        cqi_filtered: bool = False,
    ) -> List[SpeedtestRecord]:
        out = list(self.speedtests)
        if country is not None:
            out = [r for r in out if r.context.country_iso3 == country.upper()]
        if sim_kind is not None:
            out = [r for r in out if r.context.sim_kind is sim_kind]
        if architecture is not None:
            out = [r for r in out if r.context.architecture is architecture]
        if cqi_filtered:
            out = [r for r in out if r.passes_cqi_filter]
        return out

    def cdn_fetches_where(
        self,
        provider: Optional[str] = None,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[CDNRecord]:
        out = list(self.cdn_fetches)
        if provider is not None:
            out = [r for r in out if r.provider == provider]
        if country is not None:
            out = [r for r in out if r.context.country_iso3 == country.upper()]
        if sim_kind is not None:
            out = [r for r in out if r.context.sim_kind is sim_kind]
        return out

    def dns_probes_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
        architecture: Optional[RoamingArchitecture] = None,
    ) -> List[DNSRecord]:
        out = list(self.dns_probes)
        if country is not None:
            out = [r for r in out if r.context.country_iso3 == country.upper()]
        if sim_kind is not None:
            out = [r for r in out if r.context.sim_kind is sim_kind]
        if architecture is not None:
            out = [r for r in out if r.context.architecture is architecture]
        return out

    def video_probes_where(
        self,
        country: Optional[str] = None,
        sim_kind: Optional[SIMKind] = None,
    ) -> List[VideoRecord]:
        out = list(self.video_probes)
        if country is not None:
            out = [r for r in out if r.context.country_iso3 == country.upper()]
        if sim_kind is not None:
            out = [r for r in out if r.context.sim_kind is sim_kind]
        return out
