"""Campaign dataset persistence.

Campaigns are cheap to regenerate but expensive to share: saving the
record stream as JSON-lines lets an analysis run elsewhere (or a
notebook) consume exactly what a campaign measured. One line per record,
tagged with its type; loading restores the full typed dataset.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Type, Union

from repro.cellular.esim import SIMKind
from repro.cellular.roaming import RoamingArchitecture
from repro.measure.dataset import MeasurementDataset
from repro.measure.records import (
    CDNRecord,
    DNSRecord,
    MeasurementContext,
    SpeedtestRecord,
    TracerouteRecord,
    VideoRecord,
    WebMeasurementRecord,
)

_RECORD_TYPES: Dict[str, Type] = {
    "traceroute": TracerouteRecord,
    "speedtest": SpeedtestRecord,
    "cdn": CDNRecord,
    "dns": DNSRecord,
    "video": VideoRecord,
    "web": WebMeasurementRecord,
}
_FIELD_BY_TYPE = {
    "traceroute": "traceroutes",
    "speedtest": "speedtests",
    "cdn": "cdn_fetches",
    "dns": "dns_probes",
    "video": "video_probes",
    "web": "web_measurements",
}


def _encode(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _encode(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {key: _encode(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(item) for item in obj]
    return obj


def _decode_context(payload: Dict[str, Any]) -> MeasurementContext:
    payload = dict(payload)
    payload["sim_kind"] = SIMKind(payload["sim_kind"])
    payload["architecture"] = RoamingArchitecture(payload["architecture"])
    return MeasurementContext(**payload)


def _decode_record(kind: str, payload: Dict[str, Any]):
    record_type = _RECORD_TYPES[kind]
    payload = dict(payload)
    payload["context"] = _decode_context(payload["context"])
    return record_type(**payload)


def save_dataset(dataset: MeasurementDataset, path: Union[str, pathlib.Path]) -> int:
    """Write the dataset as JSON-lines; returns the record count.

    The write is atomic (temp file + rename in the target directory), so
    an interrupted save never leaves a truncated file under ``path`` —
    the same contract as the persistent artifact cache.
    """
    path = pathlib.Path(path)
    count = 0
    handle = tempfile.NamedTemporaryFile(
        mode="w", dir=path.parent or ".", prefix=f".{path.name}.", delete=False
    )
    try:
        with handle:
            for kind, field_name in _FIELD_BY_TYPE.items():
                for record in getattr(dataset, field_name):
                    line = {"type": kind, "record": _encode(record)}
                    handle.write(json.dumps(line) + "\n")
                    count += 1
        os.replace(handle.name, path)
    except Exception:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return count


def load_dataset(path: Union[str, pathlib.Path]) -> MeasurementDataset:
    """Read a JSON-lines file back into a typed dataset."""
    path = pathlib.Path(path)
    dataset = MeasurementDataset()
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
                kind = parsed["type"]
                record = _decode_record(kind, parsed["record"])
            except (KeyError, ValueError, TypeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed record ({error})"
                ) from error
            getattr(dataset, _FIELD_BY_TYPE[kind]).append(record)
    return dataset
