"""The service fabric: end-to-end cost composition.

Glues a PDN session (radio + GTP tunnel + PGW core) to the public
internet (PGW -> server). Every measurement tool asks this object the
same three questions: what is the base RTT to a server, how many public
hops does the path take, and which ASNs does it cross.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.cellular.core import PDNSession
from repro.cellular.radio import RadioConditions, RadioModel
from repro.geo.coords import GeoPoint
from repro.net.latency import LatencyModel
from repro.net.topology import ASTopology, NoRouteError

#: Public internet routes between well-peered networks are close to the
#: geodesic; this stretch reflects that (cf. the IPX corridors at >= 2.2).
PUBLIC_STRETCH = 1.25

#: Heavy-tailed per-measurement overhead of the public segment (peering
#: queues, SP internal routing, transient congestion). Lognormal with a
#: small median but a fat tail: most runs add a few ms, a few add tens —
#: exactly the variability the paper reads off the SIM curves in
#: Figure 12 and the 3% of physical-SIM RTTs above 150 ms.
PUBLIC_OVERHEAD_MEDIAN_MS = 2.5
PUBLIC_OVERHEAD_SIGMA = 1.7
#: Cap on a single overhead draw: beyond this a probe would be retried.
PUBLIC_OVERHEAD_CAP_MS = 200.0


class ServiceFabric:
    """Computes path costs from attach sessions to public servers."""

    def __init__(
        self,
        latency: LatencyModel,
        topology: ASTopology,
        radio: Optional[RadioModel] = None,
        public_stretch: float = PUBLIC_STRETCH,
        overhead_median_ms: float = PUBLIC_OVERHEAD_MEDIAN_MS,
        overhead_sigma: float = PUBLIC_OVERHEAD_SIGMA,
    ) -> None:
        if public_stretch < 1.0:
            raise ValueError("public_stretch must be >= 1")
        if overhead_median_ms < 0 or overhead_sigma < 0:
            raise ValueError("overhead parameters cannot be negative")
        self.latency = latency
        self.topology = topology
        self.radio = radio or RadioModel()
        self.public_stretch = public_stretch
        self.overhead_median_ms = overhead_median_ms
        self.overhead_sigma = overhead_sigma

    def sample_public_overhead_ms(self, rng: random.Random) -> float:
        """One draw of the public-segment overhead (ms)."""
        if self.overhead_median_ms == 0:
            return 0.0
        draw = self.overhead_median_ms * math.exp(rng.gauss(0.0, self.overhead_sigma))
        return min(draw, PUBLIC_OVERHEAD_CAP_MS)

    # -- loss --------------------------------------------------------------

    def loss_rate(self, session: PDNSession, base_rtt_ms: Optional[float] = None) -> float:
        """Packet-loss probability on this session's path.

        Loss grows with path length: long GTP corridors over the IPX
        traverse more queues and more congested interconnects. The rate
        is tiny for native paths (~0.1%) and reaches ~1-2% on the worst
        HR corridors — the regime where TCP timeouts and VoIP artefacts
        appear (the jitter/loss extension of Section 7).
        """
        rtt = session.base_private_rtt_ms if base_rtt_ms is None else base_rtt_ms
        return min(0.03, 0.001 + rtt * 3.0e-5)

    # -- latency ----------------------------------------------------------

    def public_rtt_ms(self, breakout: GeoPoint, server: GeoPoint) -> float:
        """Base RTT from the breakout point to a server over the internet."""
        return self.latency.rtt_between(breakout, server, stretch=self.public_stretch)

    def session_rtt_ms(
        self,
        session: PDNSession,
        server: GeoPoint,
        conditions: Optional[RadioConditions] = None,
        rng: Optional[random.Random] = None,
    ) -> float:
        """End-to-end base RTT: radio + private path + public path.

        With ``conditions`` the radio contribution reflects channel
        quality; with ``rng`` the total gets measurement jitter. Without
        either, the value is the deterministic baseline the analysis
        layer decomposes into private and public shares (Figure 12).
        """
        total = session.base_private_rtt_ms
        total += self.public_rtt_ms(session.pgw_site.location, server)
        if conditions is not None:
            total += self.radio.access_rtt_ms(conditions, rng)
        if rng is not None:
            total += self.sample_public_overhead_ms(rng)
            total = self.latency.sample_rtt_ms(total, rng)
        return total

    def private_rtt_ms(
        self,
        session: PDNSession,
        conditions: Optional[RadioConditions] = None,
    ) -> float:
        """Base RTT of the private segment (device to public breakout)."""
        total = session.base_private_rtt_ms
        if conditions is not None:
            total += self.radio.access_rtt_ms(conditions)
        return total

    # -- AS paths -----------------------------------------------------------

    def as_path(self, session: PDNSession, target_asn: int) -> List[int]:
        """ASNs crossed from the session's PGW provider to a target AS."""
        src = session.pgw_site.provider_asn
        try:
            return self.topology.as_path(src, target_asn)
        except (NoRouteError, KeyError):
            # Fall back to an opaque two-AS view: measurements still show
            # source and destination even when the policy graph is sparse
            # or the target AS is unmodelled.
            return [src, target_asn]
