"""Global service providers (the traceroute / latency targets).

Google and Facebook in the paper: content networks with their own AS and
edge presence near the major interconnection hubs. Edge selection is by
proximity to the *breakout point* — the paper's observation that SP edges
sit close to PGWs in Western Europe is what makes the public path short
for IHBO traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.geo.cities import City
from repro.geo.coords import GeoPoint, haversine_km
from repro.net.ipv4 import IPAddress


@dataclass(frozen=True)
class ServerSite:
    """One deployment location of a service, with its public address."""

    city: City
    ip: IPAddress

    @property
    def location(self) -> GeoPoint:
        return self.city.location


@dataclass
class ServiceProvider:
    """A content/service network with a global edge footprint.

    ``internal_hop_range`` bounds how many hops a traceroute records
    inside the provider's network after entering it (SPs' internal
    routing is what drives public-path-length variance in Figure 10).
    ``icmp_response_rate`` models hops that silently drop traceroute
    probes.
    """

    name: str
    asn: int
    edges: List[ServerSite]
    internal_hop_range: Tuple[int, int] = (2, 7)
    icmp_response_rate: float = 0.97

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError(f"{self.name} needs at least one edge site")
        low, high = self.internal_hop_range
        if not 1 <= low <= high:
            raise ValueError("invalid internal hop range")
        if not 0.0 <= self.icmp_response_rate <= 1.0:
            raise ValueError("icmp_response_rate must be a probability")

    def nearest_edge(self, location: GeoPoint) -> ServerSite:
        """The edge a client breaking out at ``location`` is steered to."""
        return min(
            self.edges,
            key=lambda site: (haversine_km(location, site.location), str(site.ip)),
        )

    def sample_internal_hops(self, rng: random.Random) -> int:
        low, high = self.internal_hop_range
        return rng.randint(low, high)
