"""DNS services: operator resolvers and public anycast (with DoH).

Native/HR/LBO sessions resolve inside the b-MNO's core; IHBO sessions use
Google's public anycast resolvers, which anycast routing lands near the
PGW (74% same-country in the paper). Android's default DNS-over-HTTPS
adds TLS setup cost on resolvers that support it — the overhead the paper
measured by accident and this module models explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.cellular.core import PDNSession
from repro.geo.coords import GeoPoint, haversine_km
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServerSite


@dataclass(frozen=True)
class DoHOverheadModel:
    """Cost of DNS-over-HTTPS on top of plain DNS.

    A cold DoH query pays TCP and TLS handshakes before the query itself
    (``extra_rtts`` more round trips); warm connections reuse the session
    and only pay a small HTTP framing cost.
    """

    cold_probability: float = 0.6
    extra_rtts: int = 2
    warm_overhead_ms: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cold_probability <= 1.0:
            raise ValueError("cold_probability must be a probability")
        if self.extra_rtts < 0 or self.warm_overhead_ms < 0:
            raise ValueError("overheads cannot be negative")


@dataclass(frozen=True)
class DNSAnswer:
    """Result of one resolver interaction (the NextDNS-style probe view)."""

    service_name: str
    resolver: ServerSite
    lookup_ms: float
    used_doh: bool
    cache_hit: bool

    @property
    def resolver_country(self) -> str:
        return self.resolver.city.country_iso3


@dataclass
class DNSService:
    """A DNS resolution service with one or more resolver sites.

    ``anycast`` services (Google DNS) pick the site nearest the querying
    network's breakout; unicast operator resolvers have a single site in
    the operator's core. ``cache_hit_rate`` controls how often answers
    come straight from the resolver cache versus requiring recursive
    resolution toward authoritative servers.
    """

    name: str
    sites: List[ServerSite]
    anycast: bool = False
    supports_doh: bool = False
    cache_hit_rate: float = 0.8
    recursive_penalty_ms: float = 45.0
    doh: DoHOverheadModel = DoHOverheadModel()
    # BGP anycast is not a geolocation service: a query sometimes lands
    # at the runner-up site (the paper found only 74% of IHBO queries on
    # a resolver in the PGW's country).
    anycast_miss_rate: float = 0.25

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError(f"DNS service {self.name} needs at least one site")
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be a probability")
        if self.recursive_penalty_ms < 0:
            raise ValueError("recursive penalty cannot be negative")

    def select_resolver(
        self,
        query_origin: GeoPoint,
        rng: Optional[random.Random] = None,
    ) -> ServerSite:
        """The resolver site answering a query entering at ``query_origin``.

        Anycast routes to the nearest site most of the time; with
        ``anycast_miss_rate`` (and an ``rng``) BGP hands the query to the
        runner-up instead. Unicast operator resolvers always answer from
        their first (canonical) site.
        """
        if not self.anycast:
            return self.sites[0]
        ranked = sorted(
            self.sites,
            key=lambda site: (haversine_km(query_origin, site.location), str(site.ip)),
        )
        if (
            rng is not None
            and len(ranked) > 1
            and rng.random() < self.anycast_miss_rate
        ):
            return ranked[1]
        return ranked[0]

    def resolve(
        self,
        session: PDNSession,
        fabric: ServiceFabric,
        rng: random.Random,
        use_doh: Optional[bool] = None,
    ) -> DNSAnswer:
        """One lookup from ``session``, timed like `curl`'s DNS phase.

        ``use_doh`` defaults to the session's negotiated setting; passing
        an explicit value supports the DoH ablation benchmark.
        """
        doh_active = session.dns_uses_doh if use_doh is None else use_doh
        doh_active = doh_active and self.supports_doh

        resolver = self.select_resolver(session.pgw_site.location, rng)
        base_rtt = fabric.session_rtt_ms(session, resolver.location)

        cache_hit = rng.random() < self.cache_hit_rate
        lookup = base_rtt
        if not cache_hit:
            lookup += self.recursive_penalty_ms * (0.5 + rng.random())
        if doh_active:
            if rng.random() < self.doh.cold_probability:
                lookup += self.doh.extra_rtts * base_rtt
            else:
                lookup += self.doh.warm_overhead_ms
        lookup = fabric.latency.sample_rtt_ms(lookup, rng)

        return DNSAnswer(
            service_name=self.name,
            resolver=resolver,
            lookup_ms=lookup,
            used_doh=doh_active,
            cache_hit=cache_hit,
        )
