"""Service-provider substrate.

The public-internet endpoints the measurement campaigns talk to: content
providers (Google, Facebook) with global edges, CDNs serving the jQuery
asset, Ookla-like and fast.com-like speedtest fleets, DNS services
(operator resolvers and public anycast with DoH), and the ABR video
backend behind the YouTube probe.
"""

from repro.services.fabric import ServiceFabric
from repro.services.providers import ServerSite, ServiceProvider
from repro.services.dns import DNSService, DNSAnswer, DoHOverheadModel
from repro.services.cdn import Asset, CDNProvider, CDNFetchResult, JQUERY_ASSET
from repro.services.speedtest import SpeedtestFleet, SpeedtestServer, SpeedtestResult
from repro.services.video import AdaptiveBitratePlayer, VideoLadderRung, PlaybackReport, YOUTUBE_LADDER

__all__ = [
    "ServiceFabric",
    "ServerSite",
    "ServiceProvider",
    "DNSService",
    "DNSAnswer",
    "DoHOverheadModel",
    "Asset",
    "CDNProvider",
    "CDNFetchResult",
    "JQUERY_ASSET",
    "SpeedtestFleet",
    "SpeedtestServer",
    "SpeedtestResult",
    "AdaptiveBitratePlayer",
    "VideoLadderRung",
    "PlaybackReport",
    "YOUTUBE_LADDER",
]
