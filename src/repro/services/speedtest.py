"""Speedtest server fleets (Ookla-like, fast.com-like).

Ookla picks a server near the client's *IP geolocation* — which for
roaming eSIMs is the PGW's location, not the user's. Figure 11c plots
exactly that: latency from the device to the Ookla server nearest the
PGW. Bandwidth results reflect the v-MNO policy shaped by radio quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.cellular.core import PDNSession
from repro.cellular.mno import BandwidthPolicy
from repro.cellular.radio import RadioConditions
from repro.geo.coords import GeoPoint, haversine_km
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServerSite


@dataclass(frozen=True)
class SpeedtestServer:
    """One test server of a fleet."""

    site: ServerSite
    sponsor: str = ""

    @property
    def location(self) -> GeoPoint:
        return self.site.location


@dataclass(frozen=True)
class SpeedtestResult:
    """What the CLI / web client reports after a run."""

    fleet: str
    server: SpeedtestServer
    latency_ms: float
    download_mbps: float
    upload_mbps: float


@dataclass
class SpeedtestFleet:
    """A speedtest service with geographically spread servers."""

    name: str
    servers: List[SpeedtestServer]

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError(f"fleet {self.name} needs at least one server")

    def nearest_server(self, client_ip_location: GeoPoint) -> SpeedtestServer:
        """Server selection by the client's IP geolocation."""
        return min(
            self.servers,
            key=lambda s: (haversine_km(client_ip_location, s.location), str(s.site.ip)),
        )

    def run(
        self,
        session: PDNSession,
        fabric: ServiceFabric,
        policy: BandwidthPolicy,
        conditions: RadioConditions,
        rng: random.Random,
        uplink_asymmetry: float = 1.0,
    ) -> SpeedtestResult:
        """One full test: latency + down/up against the nearest server.

        ``policy`` is the v-MNO's shaper for this traffic class;
        ``uplink_asymmetry`` scales the upload result for corridors where
        v-MNOs throttle roamers' uplink specifically (Pakistan, Georgia).
        """
        if uplink_asymmetry <= 0:
            raise ValueError("uplink_asymmetry must be positive")
        server = self.nearest_server(session.pgw_site.location)
        latency = fabric.session_rtt_ms(session, server.location, conditions, rng)

        roaming = session.is_roaming
        down = fabric.radio.throughput_mbps(policy.downlink_for(roaming), conditions, rng)
        up = fabric.radio.throughput_mbps(policy.uplink_for(roaming), conditions, rng)
        up *= uplink_asymmetry

        return SpeedtestResult(
            fleet=self.name,
            server=server,
            latency_ms=latency,
            download_mbps=down,
            upload_mbps=up,
        )
