"""Adaptive-bitrate video playback (the YouTube stats-for-nerds probe).

A throughput-driven ABR player over a fixed resolution ladder: estimate
bandwidth with an EWMA of observed segment throughputs, pick the highest
rung that fits with a safety margin, and track buffer occupancy. The
probe plays a 4K-capable video and reports the resolution distribution
and buffer state — the data behind Figure 15.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class VideoLadderRung:
    """One encoding of the ladder: vertical resolution and bitrate."""

    resolution_p: int
    bitrate_mbps: float

    def __post_init__(self) -> None:
        if self.resolution_p <= 0 or self.bitrate_mbps <= 0:
            raise ValueError("rung values must be positive")

    @property
    def label(self) -> str:
        return f"{self.resolution_p}p"


#: The ladder the paper's 4K test video exposes (capped at 1440p in the
#: observations; 2160p exists but was never reached on mobile).
YOUTUBE_LADDER = (
    VideoLadderRung(240, 0.7),
    VideoLadderRung(360, 1.2),
    VideoLadderRung(480, 2.5),
    VideoLadderRung(720, 5.0),
    VideoLadderRung(1080, 8.0),
    VideoLadderRung(1440, 16.0),
    VideoLadderRung(2160, 35.0),
)


@dataclass(frozen=True)
class PlaybackReport:
    """stats-for-nerds summary of one playback."""

    segment_resolutions: List[str]
    rebuffer_events: int
    mean_buffer_s: float
    startup_delay_s: float

    @property
    def resolution_counts(self) -> Dict[str, int]:
        return dict(Counter(self.segment_resolutions))

    @property
    def dominant_resolution(self) -> str:
        counts = Counter(self.segment_resolutions)
        # Highest count; ties resolved toward the lower resolution for
        # a conservative report.
        return min(
            counts,
            key=lambda label: (-counts[label], int(label.rstrip("p"))),
        )

    def share_at_or_above(self, resolution_p: int) -> float:
        """Fraction of segments played at >= ``resolution_p``."""
        if not self.segment_resolutions:
            return 0.0
        above = sum(
            1 for label in self.segment_resolutions if int(label.rstrip("p")) >= resolution_p
        )
        return above / len(self.segment_resolutions)


class AdaptiveBitratePlayer:
    """Throughput-based ABR with a buffer model.

    ``safety`` is the fraction of estimated throughput the player is
    willing to spend on bitrate (YouTube is conservative); ``max_rung_p``
    caps the ladder (device screens cap mobile playback at 1440p).
    """

    def __init__(
        self,
        ladder: Sequence[VideoLadderRung] = YOUTUBE_LADDER,
        safety: float = 0.75,
        segment_s: float = 4.0,
        buffer_capacity_s: float = 60.0,
        max_rung_p: int = 1440,
        default_rung_p: int = 1080,
        p_high_rung: float = 0.12,
    ) -> None:
        """``default_rung_p`` caps Auto-quality playback (mobile screens
        stream at most 1080p by default); with probability ``p_high_rung``
        a playback unlocks the full ladder up to ``max_rung_p`` — which is
        why 1440p shows up in ~10% of the paper's Korean playbacks and
        almost nowhere else."""
        if not ladder:
            raise ValueError("ladder cannot be empty")
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        if segment_s <= 0 or buffer_capacity_s <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= p_high_rung <= 1.0:
            raise ValueError("p_high_rung must be a probability")
        if default_rung_p > max_rung_p:
            raise ValueError("default_rung_p cannot exceed max_rung_p")
        self.ladder = sorted(
            (r for r in ladder if r.resolution_p <= max_rung_p),
            key=lambda r: r.bitrate_mbps,
        )
        if not self.ladder:
            raise ValueError("max_rung_p filters out the whole ladder")
        self.default_ladder = [
            r for r in self.ladder if r.resolution_p <= default_rung_p
        ] or self.ladder[:1]
        self.safety = safety
        self.segment_s = segment_s
        self.buffer_capacity_s = buffer_capacity_s
        self.p_high_rung = p_high_rung

    def _pick_rung(
        self,
        estimate_mbps: float,
        buffer_s: float,
        ladder: Sequence[VideoLadderRung],
    ) -> VideoLadderRung:
        budget = estimate_mbps * self.safety
        # Low buffer forces conservatism regardless of estimated rate.
        if buffer_s < 2 * self.segment_s:
            budget *= 0.6
        chosen = ladder[0]
        for rung in ladder:
            if rung.bitrate_mbps <= budget:
                chosen = rung
        return chosen

    def play(
        self,
        mean_throughput_mbps: float,
        rng: random.Random,
        duration_s: float = 120.0,
        throughput_cv: float = 0.25,
    ) -> PlaybackReport:
        """Simulate one playback session.

        ``mean_throughput_mbps`` is the session's sustainable rate (from
        the speedtest model); ``throughput_cv`` is its per-segment
        coefficient of variation.
        """
        if mean_throughput_mbps <= 0:
            raise ValueError("throughput must be positive")
        if duration_s <= 0:
            raise ValueError("duration must be positive")

        segments = max(1, int(duration_s / self.segment_s))
        ladder = self.ladder if rng.random() < self.p_high_rung else self.default_ladder
        estimate = mean_throughput_mbps * 0.7  # cautious initial estimate
        buffer_s = 0.0
        startup_delay = None
        rebuffers = 0
        buffer_samples: List[float] = []
        resolutions: List[str] = []
        clock = 0.0

        for _ in range(segments):
            rung = self._pick_rung(estimate, buffer_s, ladder)
            observed = max(
                0.05, mean_throughput_mbps * (1.0 + rng.gauss(0.0, throughput_cv))
            )
            download_s = rung.bitrate_mbps * self.segment_s / observed
            clock += download_s
            if startup_delay is None:
                # Waiting for the first segment is startup delay, not a
                # rebuffer: playback has not begun yet.
                startup_delay = clock
                buffer_s = min(self.segment_s, self.buffer_capacity_s)
                buffer_samples.append(buffer_s)
                resolutions.append(rung.label)
                estimate = 0.7 * estimate + 0.3 * observed
                continue
            # Playback consumes buffer while the next segment downloads.
            drained = buffer_s - download_s
            if drained < 0:
                rebuffers += 1
                drained = 0.0
            buffer_s = min(drained + self.segment_s, self.buffer_capacity_s)
            buffer_samples.append(buffer_s)
            resolutions.append(rung.label)
            # EWMA estimator over observed segment throughput.
            estimate = 0.7 * estimate + 0.3 * observed

        return PlaybackReport(
            segment_resolutions=resolutions,
            rebuffer_events=rebuffers,
            mean_buffer_s=sum(buffer_samples) / len(buffer_samples),
            startup_delay_s=startup_delay or 0.0,
        )
