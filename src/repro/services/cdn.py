"""CDN providers and the curl-style fetch model.

The device campaign downloads ``jquery.min.js`` (v3.6.0) from five CDNs
and records curl's timing phases. The dominant cost for a ~30 KB file is
round trips, not bandwidth — TCP slow start needs a handful of RTTs — so
HR eSIMs with ~400 ms RTTs take seconds while native SIMs take tens of
milliseconds, exactly the spread of Figures 14a/20.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.cellular.core import PDNSession
from repro.geo.coords import GeoPoint, haversine_km
from repro.services.fabric import ServiceFabric
from repro.services.providers import ServerSite

#: TCP initial congestion window (RFC 6928): 10 segments of ~1460 B.
_INITCWND_BYTES = 10 * 1460


@dataclass(frozen=True)
class Asset:
    """A fetchable object."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("asset size must be positive")


#: The artefact every CDN test in the paper downloads.
JQUERY_ASSET = Asset(name="jquery.min.js (v3.6.0)", size_bytes=30_288)


@dataclass(frozen=True)
class CDNFetchResult:
    """curl-style timing breakdown of one fetch."""

    provider: str
    edge: ServerSite
    dns_ms: float
    connect_ms: float
    tls_ms: float
    ttfb_ms: float
    transfer_ms: float
    cache_hit: bool

    @property
    def total_ms(self) -> float:
        return self.dns_ms + self.connect_ms + self.tls_ms + self.ttfb_ms + self.transfer_ms


def slow_start_rounds(size_bytes: int, initcwnd_bytes: int = _INITCWND_BYTES) -> int:
    """Round trips TCP slow start needs to deliver ``size_bytes``.

    The window doubles every RTT starting at ``initcwnd_bytes``; a 30 KB
    asset therefore needs 2 rounds, not a bandwidth-limited stream.
    """
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    if initcwnd_bytes <= 0:
        raise ValueError("initcwnd must be positive")
    delivered = 0
    window = initcwnd_bytes
    rounds = 0
    while delivered < size_bytes:
        delivered += window
        window *= 2
        rounds += 1
    return rounds


@dataclass
class CDNProvider:
    """A CDN: edge fleet, cache behaviour, and an origin for misses."""

    name: str
    edges: List[ServerSite]
    origin: ServerSite
    cache_hit_rate: float = 0.95
    server_processing_ms: float = 6.0
    # Per-country cache-hit overrides (e.g. Thailand's physical-SIM path
    # hitting a colder cache than the eSIM path, Section 5.1).
    country_cache_hit_rate: Dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError(f"CDN {self.name} needs at least one edge")
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be a probability")
        if self.server_processing_ms < 0:
            raise ValueError("processing time cannot be negative")
        if self.country_cache_hit_rate is None:
            self.country_cache_hit_rate = {}

    def edge_for(self, steering_location: GeoPoint) -> ServerSite:
        """Edge chosen by request steering.

        CDNs map clients via the recursive resolver's location (classic
        DNS-based steering), so the caller passes the resolver site —
        near the PGW for IHBO sessions, in the b-MNO core otherwise.
        """
        return min(
            self.edges,
            key=lambda site: (haversine_km(steering_location, site.location), str(site.ip)),
        )

    def hit_rate_for(self, country_iso3: str) -> float:
        return self.country_cache_hit_rate.get(country_iso3.upper(), self.cache_hit_rate)

    def fetch(
        self,
        session: PDNSession,
        fabric: ServiceFabric,
        asset: Asset,
        dns_ms: float,
        resolver_location: GeoPoint,
        bandwidth_mbps: float,
        rng: random.Random,
    ) -> CDNFetchResult:
        """One HTTPS fetch of ``asset`` with curl-style phase timing.

        ``dns_ms`` comes from the DNS service (measured separately, as
        curl reports it); ``bandwidth_mbps`` is the session's achievable
        rate, which caps the slow-start transfer for large assets.
        """
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        edge = self.edge_for(resolver_location)
        rtt = fabric.session_rtt_ms(session, edge.location)

        connect = fabric.latency.sample_rtt_ms(rtt, rng)          # TCP SYN/ACK
        tls = fabric.latency.sample_rtt_ms(rtt, rng)              # TLS 1.3: 1-RTT

        cache_hit = rng.random() < self.hit_rate_for(session.sgw.city.country_iso3)
        ttfb = rtt + self.server_processing_ms
        if not cache_hit:
            # Miss: the edge fetches from origin before first byte.
            ttfb += fabric.public_rtt_ms(edge.location, self.origin.location) * 1.5
        ttfb = fabric.latency.sample_rtt_ms(ttfb, rng)

        # Transfer: slow-start round trips, floored by raw bandwidth.
        rounds = slow_start_rounds(asset.size_bytes)
        rtt_limited = (rounds - 1) * rtt  # first-round bytes arrive with TTFB
        bandwidth_limited = asset.size_bytes * 8 / (bandwidth_mbps * 1e6) * 1e3
        transfer = max(rtt_limited, bandwidth_limited)
        transfer = fabric.latency.sample_rtt_ms(transfer, rng) if transfer > 0 else 0.0

        # Loss recovery: every data/handshake packet risks the path's loss
        # rate; fast retransmit costs one extra RTT, a retransmission
        # timeout costs the RTO. On long GTP corridors this is what blows
        # small fetches up to multiple seconds.
        packets = asset.size_bytes // 1460 + 6  # data + handshake segments
        rto_ms = max(1000.0, 2.0 * rtt)
        loss = fabric.loss_rate(session)
        for _ in range(packets):
            if rng.random() >= loss:
                continue
            if rng.random() < 0.5:
                transfer += rtt          # fast retransmit
            else:
                transfer += rto_ms       # timeout

        return CDNFetchResult(
            provider=self.name,
            edge=edge,
            dns_ms=dns_ms,
            connect_ms=connect,
            tls_ms=tls,
            ttfb_ms=ttfb,
            transfer_ms=transfer,
            cache_hit=cache_hit,
        )
