"""Subscriber and equipment identifiers.

IMSI / IMEI / ICCID generation with proper structure and Luhn check
digits, PLMN (MCC-MNC) codes, contiguous IMSI ranges for operators, and
the prefix-mining routine the paper uses to infer which IMSI ranges a
b-MNO rents to Airalo (Section 4.2, Figure 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def luhn_check_digit(digits: str) -> int:
    """Luhn check digit for a string of decimal digits.

    Used by both IMEI (15th digit) and ICCID (final digit).
    """
    if not digits.isdigit():
        raise ValueError(f"not a digit string: {digits!r}")
    total = 0
    # Process from the rightmost digit of the payload: double every
    # second digit counting from the right (position 1 = rightmost).
    for position, char in enumerate(reversed(digits), start=1):
        value = int(char)
        if position % 2 == 1:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return (10 - total % 10) % 10


def luhn_is_valid(digits: str) -> bool:
    """True when the final digit is a correct Luhn check digit."""
    if not digits.isdigit() or len(digits) < 2:
        return False
    return luhn_check_digit(digits[:-1]) == int(digits[-1])


@dataclass(frozen=True)
class PLMN:
    """Public Land Mobile Network code: MCC (3 digits) + MNC (2-3 digits)."""

    mcc: str
    mnc: str

    def __post_init__(self) -> None:
        if len(self.mcc) != 3 or not self.mcc.isdigit():
            raise ValueError(f"MCC must be 3 digits: {self.mcc!r}")
        if len(self.mnc) not in (2, 3) or not self.mnc.isdigit():
            raise ValueError(f"MNC must be 2-3 digits: {self.mnc!r}")

    def __str__(self) -> str:
        return f"{self.mcc}-{self.mnc}"

    @property
    def code(self) -> str:
        """Concatenated MCC+MNC as it appears at the front of an IMSI."""
        return self.mcc + self.mnc


@dataclass(frozen=True)
class IMSI:
    """International Mobile Subscriber Identity (15 digits)."""

    value: str

    def __post_init__(self) -> None:
        if len(self.value) != 15 or not self.value.isdigit():
            raise ValueError(f"IMSI must be 15 digits: {self.value!r}")

    def __str__(self) -> str:
        return self.value

    def plmn_of(self, mnc_length: int = 2) -> PLMN:
        """PLMN encoded at the front of the IMSI."""
        if mnc_length not in (2, 3):
            raise ValueError("MNC length must be 2 or 3")
        return PLMN(self.value[:3], self.value[3 : 3 + mnc_length])

    @property
    def msin(self) -> str:
        """Subscriber part (assumes 2-digit MNC, the common case here)."""
        return self.value[5:]


@dataclass(frozen=True)
class IMSIRange:
    """A contiguous block of IMSIs belonging to one operator.

    ``prefix`` is the fixed leading digits (PLMN plus any sub-allocation
    pattern); the remaining digits enumerate subscribers. The paper's
    v-MNO analysis hinges on Airalo renting *narrow, pre-determined*
    ranges from Play, i.e. long prefixes.
    """

    prefix: str
    label: str = ""

    def __post_init__(self) -> None:
        if not self.prefix.isdigit():
            raise ValueError(f"IMSI prefix must be digits: {self.prefix!r}")
        if not 5 <= len(self.prefix) <= 14:
            raise ValueError("IMSI prefix must be 5-14 digits (PLMN + sub-pattern)")

    @property
    def capacity(self) -> int:
        """Number of distinct IMSIs in the range."""
        return 10 ** (15 - len(self.prefix))

    def contains(self, imsi: IMSI) -> bool:
        return imsi.value.startswith(self.prefix)

    def issue(self, index: int) -> IMSI:
        """The ``index``-th IMSI of the range (stable, zero-padded)."""
        if not 0 <= index < self.capacity:
            raise ValueError(f"index {index} outside range capacity {self.capacity}")
        suffix_len = 15 - len(self.prefix)
        return IMSI(self.prefix + str(index).zfill(suffix_len))

    def sample(self, rng: random.Random) -> IMSI:
        """A uniformly random IMSI from the range."""
        return self.issue(rng.randrange(self.capacity))


def generate_imei(rng: random.Random, tac: str = "35123456") -> str:
    """A syntactically valid 15-digit IMEI (8-digit TAC + SNR + Luhn)."""
    if len(tac) != 8 or not tac.isdigit():
        raise ValueError(f"TAC must be 8 digits: {tac!r}")
    snr = "".join(str(rng.randrange(10)) for _ in range(6))
    payload = tac + snr
    return payload + str(luhn_check_digit(payload))


def generate_iccid(rng: random.Random, issuer: str = "8901") -> str:
    """A syntactically valid 19-digit ICCID ending in a Luhn digit."""
    if not issuer.isdigit() or not 2 <= len(issuer) <= 7:
        raise ValueError(f"issuer prefix must be 2-7 digits: {issuer!r}")
    body_len = 18 - len(issuer)
    body = "".join(str(rng.randrange(10)) for _ in range(body_len))
    payload = issuer + body
    return payload + str(luhn_check_digit(payload))


def infer_imsi_prefixes(
    imsis: Sequence[IMSI],
    plmn: PLMN,
    min_support: int = 3,
    max_prefix_len: int = 11,
    max_branching: int = 3,
) -> List[Tuple[str, int]]:
    """Mine candidate rented-IMSI prefixes from observed IMSIs.

    Reproduces the paper's pattern-matching analysis: restrict to IMSIs
    matching the b-MNO's MCC/MNC, then grow prefixes digit by digit and
    keep the longest prefixes that still cover at least ``min_support``
    observed IMSIs. A prefix is only refined into children when the split
    is clean (no member loses support) *and* narrow (at most
    ``max_branching`` children): members spread uniformly over many next
    digits indicate the parent itself is the allocated range, not a
    coincidence of sub-ranges. Returns ``(prefix, support)`` pairs sorted
    by descending support then prefix.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    plmn_code = plmn.code
    matching = [i.value for i in imsis if i.value.startswith(plmn_code)]
    if len(matching) < min_support:
        return []

    results: List[Tuple[str, int]] = []
    frontier: Dict[str, List[str]] = {plmn_code: matching}
    while frontier:
        next_frontier: Dict[str, List[str]] = {}
        for prefix, members in frontier.items():
            if len(prefix) >= max_prefix_len:
                results.append((prefix, len(members)))
                continue
            # Split members by their next digit.
            buckets: Dict[str, List[str]] = {}
            for value in members:
                buckets.setdefault(value[: len(prefix) + 1], []).append(value)
            survived = {
                p: vals for p, vals in buckets.items() if len(vals) >= min_support
            }
            covered = sum(len(vals) for vals in survived.values())
            if survived and covered == len(members) and len(survived) <= max_branching:
                # A clean split: every member stays supported, so the
                # children are strictly more specific — recurse.
                next_frontier.update(survived)
            else:
                # Splitting further would orphan members (or nothing
                # survives): this prefix is the maximal supported range.
                results.append((prefix, len(members)))
        frontier = next_frontier

    results.sort(key=lambda pair: (-pair[1], pair[0]))
    return results
