"""Steering of Roaming (SoR) and visited-network selection.

Figure 5 compares Airalo users against generic Play-Poland inbound
roamers and finds the roamers' volumes lower, "probably since they rely
on multiple v-MNOs in the UK (not only the one we analyze)". This module
models that mechanism: a visited country hosts several networks, devices
attach by coverage share, and the b-MNO's steering policy (OTA/SIM-based
SoR) pulls a fraction of attaches onto its preferred partners.

Airalo eSIMs are pinned differently: the profile's preferred-PLMN list
targets the one v-MNO the offering was built around, which is why the
partner network sees *all* of an Airalo user's activity but only a slice
of a generic roamer's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class VisitedNetworkOption:
    """One selectable network in a visited country."""

    operator_name: str
    coverage_share: float   # probability of being picked unsteered

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage_share <= 1.0:
            raise ValueError("coverage share must be in (0, 1]")


@dataclass(frozen=True)
class SteeringPolicy:
    """A b-MNO's roaming-steering configuration for one country.

    ``preferred`` is the ranked partner list; ``compliance`` is the
    fraction of attaches SoR successfully lands on the top available
    preference (OTA steering fails on some devices and some attaches).
    """

    b_mno_name: str
    preferred: Tuple[str, ...]
    compliance: float = 0.8

    def __post_init__(self) -> None:
        if not self.preferred:
            raise ValueError("steering needs at least one preferred partner")
        if not 0.0 <= self.compliance <= 1.0:
            raise ValueError("compliance must be a probability")


class NetworkSelector:
    """Selects the v-MNO a roamer camps on in a country."""

    def __init__(self) -> None:
        self._options: Dict[str, List[VisitedNetworkOption]] = {}
        self._policies: Dict[Tuple[str, str], SteeringPolicy] = {}

    def register_country(
        self, country_iso3: str, options: Sequence[VisitedNetworkOption]
    ) -> None:
        if not options:
            raise ValueError("a country needs at least one network")
        total = sum(option.coverage_share for option in options)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"coverage shares must sum to 1 (got {total})")
        names = [option.operator_name for option in options]
        if len(set(names)) != len(names):
            raise ValueError("duplicate operator in country options")
        self._options[country_iso3.upper()] = list(options)

    def set_policy(self, country_iso3: str, policy: SteeringPolicy) -> None:
        country = country_iso3.upper()
        if country not in self._options:
            raise KeyError(f"register {country} before setting policies")
        available = {option.operator_name for option in self._options[country]}
        if not set(policy.preferred) & available:
            raise ValueError(
                f"none of {policy.preferred} operates in {country}"
            )
        self._policies[(policy.b_mno_name, country)] = policy

    def options_in(self, country_iso3: str) -> List[VisitedNetworkOption]:
        country = country_iso3.upper()
        if country not in self._options:
            raise KeyError(f"unknown country: {country}")
        return list(self._options[country])

    def select(
        self,
        b_mno_name: str,
        country_iso3: str,
        rng: random.Random,
        pinned_operator: Optional[str] = None,
    ) -> str:
        """The network one attach lands on.

        ``pinned_operator`` models an Airalo-style preferred-PLMN list:
        when set and present in the country, it always wins (the eSIM
        profile is built for that partner).
        """
        country = country_iso3.upper()
        options = self.options_in(country)
        names = [option.operator_name for option in options]
        if pinned_operator is not None:
            if pinned_operator in names:
                return pinned_operator
            raise ValueError(f"{pinned_operator} does not operate in {country}")

        policy = self._policies.get((b_mno_name, country))
        if policy is not None and rng.random() < policy.compliance:
            for preference in policy.preferred:
                if preference in names:
                    return preference
        # Unsteered: coverage-share-weighted choice.
        threshold = rng.random()
        cumulative = 0.0
        for option in options:
            cumulative += option.coverage_share
            if threshold < cumulative:
                return option.operator_name
        return options[-1].operator_name

    def attach_distribution(
        self,
        b_mno_name: str,
        country_iso3: str,
        rng: random.Random,
        samples: int = 10_000,
        pinned_operator: Optional[str] = None,
    ) -> Dict[str, float]:
        """Empirical share of attaches per network."""
        if samples < 1:
            raise ValueError("need at least one sample")
        counts: Dict[str, int] = {}
        for _ in range(samples):
            name = self.select(b_mno_name, country_iso3, rng, pinned_operator)
            counts[name] = counts.get(name, 0) + 1
        return {name: count / samples for name, count in sorted(counts.items())}
