"""Control-plane procedures and their timing.

Models how long an attach takes under each roaming architecture. The
user-plane latency figures of Section 5 have a control-plane sibling the
signalling model (:mod:`repro.cellular.signalling`) only counts in bytes:
a roamer's authentication vectors travel from the visited MME to the
home HSS *over the IPX*, and the GTP-C session setup runs to wherever
the PGW lives — so attaching through a distant home core takes visibly
longer than attaching natively, which is part of why roaming devices
re-registering all day generate the Figure 5b signalling surplus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.cellular.core import PDNSession
from repro.cellular.mno import OperatorRegistry
from repro.cellular.roaming import RoamingArchitecture
from repro.net.latency import LatencyModel

#: Radio-side setup cost (RRC connection + NAS transport), ms.
RRC_SETUP_MS = 90.0
#: Core processing per signalling transaction, ms.
CORE_PROCESSING_MS = 15.0
#: Authentication needs two HSS round trips (AIR/AIA + ULR/ULA).
AUTH_ROUND_TRIPS = 2
#: GTP-C session establishment: one round trip to the selected PGW.
SESSION_SETUP_ROUND_TRIPS = 1
#: Signalling over the IPX is more indirect than the user plane.
IPX_SIGNALLING_STRETCH = 2.4


@dataclass(frozen=True)
class AttachTiming:
    """Breakdown of one attach procedure."""

    rrc_ms: float
    authentication_ms: float
    session_setup_ms: float

    @property
    def total_ms(self) -> float:
        return self.rrc_ms + self.authentication_ms + self.session_setup_ms


def estimate_attach_time_ms(
    session: PDNSession,
    operators: OperatorRegistry,
    latency: LatencyModel,
    rng: Optional[random.Random] = None,
) -> AttachTiming:
    """Attach-procedure duration for an established session's topology.

    Authentication runs between the visited core (the SGW's location)
    and the *home* operator's HSS; session setup runs to the session's
    PGW site. Native attaches keep both legs in-country.
    """
    b_mno = operators.get(session.b_mno_name)
    home = b_mno.home_city
    visited_location = session.sgw.location

    if session.architecture is RoamingArchitecture.NATIVE or home is None:
        hss_rtt = latency.propagation_rtt_ms(50.0, stretch=1.4)  # in-core
    else:
        hss_rtt = latency.rtt_between(
            visited_location, home.location, stretch=IPX_SIGNALLING_STRETCH
        )
    authentication = AUTH_ROUND_TRIPS * (hss_rtt + CORE_PROCESSING_MS)

    pgw_rtt = latency.rtt_between(
        visited_location, session.pgw_site.location, stretch=session.tunnel.stretch
    )
    session_setup = SESSION_SETUP_ROUND_TRIPS * (pgw_rtt + CORE_PROCESSING_MS)

    rrc = RRC_SETUP_MS
    if rng is not None:
        rrc *= 1.0 + abs(rng.gauss(0.0, 0.2))
        authentication = latency.sample_rtt_ms(authentication, rng)
        session_setup = latency.sample_rtt_ms(session_setup, rng)

    return AttachTiming(
        rrc_ms=rrc,
        authentication_ms=authentication,
        session_setup_ms=session_setup,
    )
