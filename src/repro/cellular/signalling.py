"""Signalling-plane model.

Figure 5b shows Airalo users generating *more* signalling than native
subscribers — problematic for the v-MNO because roaming signalling is
not charged. This module models the control-plane events behind that
observation mechanistically: attaches, tracking-area updates, service
requests, paging, and the authentication round-trips a roamer's visited
MME performs against the home HSS over the IPX.

Airalo devices are travellers' phones: they move more (more TAUs), they
camp on an unfamiliar network (more reselections and registration
retries), and every authentication crosses the IPX to the b-MNO — which
is exactly why their signalling volume ends up *above* the native
baseline even though their data usage looks native.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, Mapping


class SignallingEvent(enum.Enum):
    """Control-plane transaction types a core network logs."""

    ATTACH = "attach"
    DETACH = "detach"
    TRACKING_AREA_UPDATE = "tau"
    SERVICE_REQUEST = "service-request"
    PAGING = "paging"
    AUTHENTICATION = "authentication"
    HANDOVER = "handover"


#: Approximate control-plane bytes per transaction (both directions,
#: NAS + S1AP + home-network legs where applicable), in KB.
EVENT_SIZE_KB: Dict[SignallingEvent, float] = {
    SignallingEvent.ATTACH: 3.2,
    SignallingEvent.DETACH: 0.8,
    SignallingEvent.TRACKING_AREA_UPDATE: 1.4,
    SignallingEvent.SERVICE_REQUEST: 0.6,
    SignallingEvent.PAGING: 0.4,
    SignallingEvent.AUTHENTICATION: 1.8,
    SignallingEvent.HANDOVER: 1.1,
}


@dataclass(frozen=True)
class SignallingProfile:
    """Mean daily event rates for one subscriber class."""

    name: str
    daily_rates: Mapping[SignallingEvent, float]

    def __post_init__(self) -> None:
        if not self.daily_rates:
            raise ValueError("profile needs at least one event rate")
        if any(rate < 0 for rate in self.daily_rates.values()):
            raise ValueError("event rates cannot be negative")

    def expected_daily_kb(self) -> float:
        """Mean signalling volume per subscriber-day."""
        return sum(
            rate * EVENT_SIZE_KB[event] for event, rate in self.daily_rates.items()
        )

    def sample_daily_kb(self, rng: random.Random) -> float:
        """One subscriber-day: Poisson event counts times sizes."""
        total = 0.0
        for event, rate in self.daily_rates.items():
            total += _poisson(rate, rng) * EVENT_SIZE_KB[event]
        return total

    def sample_event_counts(self, rng: random.Random) -> Dict[SignallingEvent, int]:
        return {
            event: _poisson(rate, rng) for event, rate in self.daily_rates.items()
        }


def _poisson(rate: float, rng: random.Random) -> int:
    """Knuth's Poisson sampler (rates here are small)."""
    if rate <= 0:
        return 0
    threshold = math.exp(-rate)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


#: A stationary native subscriber: few attaches, moderate mobility.
NATIVE_PROFILE = SignallingProfile(
    "native",
    {
        SignallingEvent.ATTACH: 2.0,
        SignallingEvent.DETACH: 2.0,
        SignallingEvent.TRACKING_AREA_UPDATE: 8.0,
        SignallingEvent.SERVICE_REQUEST: 60.0,
        SignallingEvent.PAGING: 40.0,
        SignallingEvent.AUTHENTICATION: 3.0,
        SignallingEvent.HANDOVER: 6.0,
    },
)

#: An Airalo traveller on the same v-MNO: more mobility (sightseeing),
#: every authentication crossing the IPX to the b-MNO, periodic-TAU
#: timers tuned for roamers, and registration retries on reselection.
AIRALO_PROFILE = SignallingProfile(
    "airalo",
    {
        SignallingEvent.ATTACH: 3.5,
        SignallingEvent.DETACH: 3.5,
        SignallingEvent.TRACKING_AREA_UPDATE: 16.0,
        SignallingEvent.SERVICE_REQUEST: 62.0,
        SignallingEvent.PAGING: 38.0,
        SignallingEvent.AUTHENTICATION: 8.0,
        SignallingEvent.HANDOVER: 10.0,
    },
)

#: A generic Play-Poland roamer observed by ONE of several v-MNOs: their
#: activity is split across networks, so this network sees less of it.
ROAMER_PROFILE = SignallingProfile(
    "play-roamer",
    {
        SignallingEvent.ATTACH: 1.5,
        SignallingEvent.DETACH: 1.5,
        SignallingEvent.TRACKING_AREA_UPDATE: 5.0,
        SignallingEvent.SERVICE_REQUEST: 22.0,
        SignallingEvent.PAGING: 14.0,
        SignallingEvent.AUTHENTICATION: 3.0,
        SignallingEvent.HANDOVER: 4.0,
    },
)
