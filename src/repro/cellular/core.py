"""Core-network elements: SGW, PGW sites, GTP tunnels, PDN sessions.

A PDN session is the unit of observation for every measurement in the
repository: it fixes where the traffic breaks out (PGW site), which
public IP the device shows to the world (CG-NAT binding), how long the
invisible private path is, and how expensive the GTP tunnel is.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.cellular.roaming import RoamingArchitecture
from repro.geo.cities import City
from repro.geo.coords import GeoPoint, haversine_km
from repro.net.cgnat import CarrierGradeNAT
from repro.net.ipv4 import IPAddress


@dataclass(frozen=True)
class SGW:
    """Serving gateway inside the visited network, near the user."""

    operator_name: str
    city: City

    @property
    def location(self) -> GeoPoint:
        return self.city.location


@dataclass
class PGWSite:
    """A packet gateway deployment of one provider in one city.

    ``private_hop_depths`` is the set of traceroute depths at which the
    first public IP appears for sessions through this site (Packet Host
    shows 6-7, OVH 3, operators' own cores 4-10 in the paper). The CG-NAT
    holds the small pool of "PGW IP addresses" observed externally.
    """

    site_id: str
    provider_org: str
    provider_asn: int
    city: City
    cgnat: CarrierGradeNAT
    private_hop_depths: Tuple[int, ...] = (6, 7)
    # Mean extra RTT between first private hop (the PGW) and the CG-NAT
    # public hop; the paper measures ~8 ms on average.
    core_crossing_ms: float = 8.0

    def __post_init__(self) -> None:
        if not self.private_hop_depths:
            raise ValueError("private_hop_depths cannot be empty")
        if any(d < 1 for d in self.private_hop_depths):
            raise ValueError("hop depths must be >= 1")
        if self.core_crossing_ms < 0:
            raise ValueError("core_crossing_ms cannot be negative")

    @property
    def location(self) -> GeoPoint:
        return self.city.location

    @property
    def country_iso3(self) -> str:
        return self.city.country_iso3

    def sample_hop_depth(self, rng: random.Random) -> int:
        """Private-path length for one session through this site."""
        return rng.choice(self.private_hop_depths)


@dataclass(frozen=True)
class GTPTunnel:
    """The GTP-U tunnel from the visited SGW to the selected PGW."""

    sgw: SGW
    pgw_site: PGWSite
    base_rtt_ms: float
    stretch: float
    extra_rtt_ms: float

    def __post_init__(self) -> None:
        if self.base_rtt_ms < 0:
            raise ValueError("tunnel RTT cannot be negative")

    @property
    def distance_km(self) -> float:
        """Straight-line SGW-to-PGW distance (the lines of Figures 3-4)."""
        return haversine_km(self.sgw.location, self.pgw_site.location)


@dataclass
class PDNSession:
    """One attach: everything the measurement layer needs to observe.

    ``private_path`` lists the private-IP hops traceroute sees before the
    public demarcation point, and ``public_ip`` is both the device's
    public address and the first public hop (the paper verifies these
    match, see Section 4.3).
    """

    session_id: str
    ue_imei: str
    sim_iccid: str
    v_mno_name: str
    b_mno_name: str
    architecture: RoamingArchitecture
    sgw: SGW
    pgw_site: PGWSite
    tunnel: GTPTunnel
    public_ip: IPAddress
    private_path: List[str]
    dns_operator: str
    dns_uses_doh: bool
    dns_anycast: bool

    def __post_init__(self) -> None:
        if not self.private_path:
            raise ValueError("a session always has at least the PGW private hop")

    @property
    def is_roaming(self) -> bool:
        return self.architecture is not RoamingArchitecture.NATIVE

    @property
    def private_hop_count(self) -> int:
        """Private path length as plotted in Figure 7."""
        return len(self.private_path)

    @property
    def base_private_rtt_ms(self) -> float:
        """Deterministic RTT from SGW to public breakout (radio excluded)."""
        return self.tunnel.base_rtt_ms + self.pgw_site.core_crossing_ms

    @property
    def breakout_country(self) -> str:
        return self.pgw_site.country_iso3


def build_private_path(hop_depth: int, subnet_seed: int) -> List[str]:
    """Generate the private-IP hop addresses of a session.

    Hops live in 10.0.0.0/8, carved per-session so different sessions show
    different (but stable) internal addresses, like real PGW cores do.
    The list has ``hop_depth`` entries: the PGW itself first, then the
    internal forwarding chain up to (but excluding) the public CG-NAT hop.
    """
    if hop_depth < 1:
        raise ValueError("hop_depth must be >= 1")
    # Stay inside 10/8: 10.<a>.<b>.<i> with a,b derived from the seed.
    a = (subnet_seed >> 8) % 256
    b = subnet_seed % 256
    base = ipaddress.IPv4Address(f"10.{a}.{b}.1")
    return [str(base + i) for i in range(hop_depth)]
