"""v-MNO core-network telemetry.

Reproduces the collaboration with the UK operator (Section 4.2, Figure 5):
the v-MNO core logs per-IMSI data and signalling volumes, Airalo users are
indistinguishable from Play-Poland inbound roamers at the subscription
level, and only IMSI-range pattern matching separates them. This module
generates the three subscriber populations and implements the detector.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.cellular.identifiers import IMSI, IMSIRange, PLMN, infer_imsi_prefixes
from repro.cellular.signalling import SignallingProfile


@dataclass(frozen=True)
class SubscriberPopulation:
    """A group of subscribers with daily usage behaviour.

    ``data_mu``/``data_sigma`` parameterise daily data volume (log of MB).
    Signalling is either lognormal (``signalling_mu``/``signalling_sigma``)
    or, when a ``signalling_profile`` is supplied, generated
    mechanistically from control-plane event rates
    (:mod:`repro.cellular.signalling`). Figure 5 compares exactly these
    two dimensions.
    """

    name: str
    subscriber_count: int
    data_mu: float
    data_sigma: float
    signalling_mu: float
    signalling_sigma: float
    signalling_profile: Optional[SignallingProfile] = None

    def __post_init__(self) -> None:
        if self.subscriber_count < 1:
            raise ValueError("population needs at least one subscriber")
        if self.data_sigma < 0 or self.signalling_sigma < 0:
            raise ValueError("sigmas cannot be negative")


@dataclass(frozen=True)
class UsageRecord:
    """One subscriber-day as logged by the v-MNO core."""

    imsi: IMSI
    population: str
    day: int
    data_mb: float
    signalling_kb: float


class CoreTelemetryGenerator:
    """Generates per-IMSI daily usage for configured populations.

    Each population draws its IMSIs from a dedicated range (native users
    from the v-MNO's PLMN, roamers from the b-MNO's, Airalo users from
    the narrow rented sub-ranges) so the detector has a realistic target.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._populations: List[Tuple[SubscriberPopulation, List[IMSIRange]]] = []

    def add_population(
        self,
        population: SubscriberPopulation,
        imsi_ranges: Sequence[IMSIRange],
    ) -> None:
        if not imsi_ranges:
            raise ValueError("population needs at least one IMSI range")
        self._populations.append((population, list(imsi_ranges)))

    def generate(self, days: int) -> List[UsageRecord]:
        """All subscriber-day records for ``days`` days of observation."""
        if days < 1:
            raise ValueError("need at least one day")
        records: List[UsageRecord] = []
        for population, ranges in self._populations:
            imsis = self._draw_imsis(population.subscriber_count, ranges)
            for imsi in imsis:
                # Per-subscriber offset: heavy users are heavy every day.
                user_bias = self._rng.gauss(0.0, 0.3)
                for day in range(days):
                    data = self._lognormal(population.data_mu + user_bias, population.data_sigma)
                    if population.signalling_profile is not None:
                        signalling = population.signalling_profile.sample_daily_kb(
                            self._rng
                        ) * math.exp(0.3 * user_bias)
                    else:
                        signalling = self._lognormal(
                            population.signalling_mu + 0.5 * user_bias,
                            population.signalling_sigma,
                        )
                    records.append(
                        UsageRecord(
                            imsi=imsi,
                            population=population.name,
                            day=day,
                            data_mb=data,
                            signalling_kb=signalling,
                        )
                    )
        return records

    def _draw_imsis(self, count: int, ranges: Sequence[IMSIRange]) -> List[IMSI]:
        imsis: Set[IMSI] = set()
        attempts = 0
        while len(imsis) < count:
            imsi_range = self._rng.choice(list(ranges))
            imsis.add(imsi_range.sample(self._rng))
            attempts += 1
            if attempts > count * 100:
                raise RuntimeError("IMSI ranges too small for requested population")
        return sorted(imsis, key=lambda i: i.value)

    def _lognormal(self, mu: float, sigma: float) -> float:
        return math.exp(self._rng.gauss(mu, sigma))


def detect_airalo_imsis(
    observed_roamers: Iterable[IMSI],
    deployed_device_imsis: Sequence[IMSI],
    b_mno_plmn: PLMN,
    min_support: int = 2,
    prefix_floor: int = 8,
) -> Set[IMSI]:
    """The paper's detector: flag inbound roamers in Airalo's rented ranges.

    Starting from the IMSIs of the ten deployed devices (ground truth),
    mine their common prefixes, keep prefixes at least ``prefix_floor``
    digits long (a bare MCC/MNC match would flag *all* roamers of that
    b-MNO), and mark every observed roamer whose IMSI matches one.
    """
    mined = infer_imsi_prefixes(
        deployed_device_imsis, b_mno_plmn, min_support=min_support
    )
    prefixes = [prefix for prefix, _support in mined if len(prefix) >= prefix_floor]
    if not prefixes:
        return set()
    return {
        imsi
        for imsi in observed_roamers
        if any(imsi.value.startswith(prefix) for prefix in prefixes)
    }
