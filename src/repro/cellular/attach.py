"""Session establishment.

The :class:`SessionFactory` wires a SIM, a visited network and the
roaming-agreement fabric into a concrete PDN session: architecture
resolution (native / HR / LBO / IHBO), PGW-site selection policy,
GTP-tunnel cost, private-path depth and the CG-NAT public IP binding.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.cellular.core import SGW, GTPTunnel, PDNSession, PGWSite, build_private_path
from repro.cellular.esim import SIMProfile
from repro.cellular.mno import MobileOperator, OperatorRegistry
from repro.cellular.roaming import (
    AgreementRegistry,
    PGWSelection,
    RoamingAgreement,
    RoamingArchitecture,
)
from repro.geo.cities import City
from repro.geo.coords import haversine_km
from repro.net.latency import LatencyModel

#: Stretch applied to in-country native paths (short, well-engineered).
_NATIVE_STRETCH = 1.4

GOOGLE_DNS_NAME = "Google DNS"


class AttachError(Exception):
    """Raised when a session cannot be established."""


class AttachReject(AttachError):
    """The network refused the attach with a 3GPP EMM cause code.

    The field campaign saw these regularly (congested cells, transient
    core failures); the fault injector replays them so the orchestration
    layer's retry path is exercised.
    """

    def __init__(self, message: str, cause_code: Optional[int] = None) -> None:
        super().__init__(message)
        self.cause_code = cause_code


class SessionFactory:
    """Builds PDN sessions against a world's operators and agreements."""

    def __init__(
        self,
        operators: OperatorRegistry,
        agreements: AgreementRegistry,
        pgw_sites: Dict[str, PGWSite],
        latency: LatencyModel,
        native_site_ids: Optional[Dict[str, str]] = None,
    ) -> None:
        """``native_site_ids`` maps operator name -> its own PGW site id
        (used for native attaches and as the HR target of its roamers)."""
        self.operators = operators
        self.agreements = agreements
        self.pgw_sites = pgw_sites
        self.latency = latency
        self.native_site_ids = dict(native_site_ids or {})
        self._session_counter = 0

    # -- public API ---------------------------------------------------------

    def attach(
        self,
        imei: str,
        sim: SIMProfile,
        v_mno_name: str,
        user_city: City,
        rng: random.Random,
        data_roaming_enabled: bool = True,
        doh_enabled: bool = True,
    ) -> PDNSession:
        """Establish a data session for ``sim`` camping on ``v_mno_name``.

        ``doh_enabled`` mirrors the Android default the paper *forgot* to
        disable: it only matters for sessions whose resolver supports DoH
        (the public anycast resolver used by IHBO breakouts).
        """
        v_mno = self.operators.get(v_mno_name)
        b_mno = self.operators.get(sim.issuer_mno_name)
        architecture, agreement = self._resolve_architecture(b_mno, v_mno)

        if architecture is not RoamingArchitecture.NATIVE and not data_roaming_enabled:
            raise AttachError(
                f"{sim.iccid} roams via {b_mno.name} but data roaming is disabled"
            )

        self._session_counter += 1
        session_id = f"pdn-{self._session_counter:06d}"
        sgw = SGW(operator_name=self._ran_operator(v_mno).name, city=user_city)
        pgw_site = self._select_pgw_site(architecture, agreement, b_mno, v_mno, sgw, rng)

        stretch = agreement.tunnel_stretch if agreement else _NATIVE_STRETCH
        extra = agreement.extra_rtt_ms if agreement else 0.0
        base_rtt = self.latency.rtt_between(
            sgw.location, pgw_site.location, stretch=stretch
        ) + extra
        tunnel = GTPTunnel(
            sgw=sgw,
            pgw_site=pgw_site,
            base_rtt_ms=base_rtt,
            stretch=stretch,
            extra_rtt_ms=extra,
        )

        hop_depth = self._hop_depth(architecture, agreement, pgw_site, b_mno, rng)
        private_path = build_private_path(
            hop_depth, subnet_seed=rng.randrange(1 << 16)
        )
        public_ip = pgw_site.cgnat.bind(session_id, rng, sticky_key=b_mno.name)

        dns_operator, dns_doh, dns_anycast = self._dns_config(
            architecture, b_mno, doh_enabled
        )

        return PDNSession(
            session_id=session_id,
            ue_imei=imei,
            sim_iccid=sim.iccid,
            v_mno_name=v_mno.name,
            b_mno_name=b_mno.name,
            architecture=architecture,
            sgw=sgw,
            pgw_site=pgw_site,
            tunnel=tunnel,
            public_ip=public_ip,
            private_path=private_path,
            dns_operator=dns_operator,
            dns_uses_doh=dns_doh,
            dns_anycast=dns_anycast,
        )

    # -- internals -----------------------------------------------------------

    def _ran_operator(self, v_mno: MobileOperator) -> MobileOperator:
        """The operator actually running the radio (MVNOs ride their parent)."""
        return self.operators.parent_of(v_mno)

    def _resolve_architecture(
        self, b_mno: MobileOperator, v_mno: MobileOperator
    ):
        """Decide NATIVE vs a roaming agreement's architecture."""
        b_host = self.operators.parent_of(b_mno)
        v_host = self.operators.parent_of(v_mno)
        if b_host.name == v_host.name:
            return RoamingArchitecture.NATIVE, None
        if not self.agreements.has(b_mno.name, v_mno.name):
            raise AttachError(
                f"no roaming agreement between {b_mno.name} and {v_mno.name}"
            )
        agreement = self.agreements.get(b_mno.name, v_mno.name)
        return agreement.architecture, agreement

    def _select_pgw_site(
        self,
        architecture: RoamingArchitecture,
        agreement: Optional[RoamingAgreement],
        b_mno: MobileOperator,
        v_mno: MobileOperator,
        sgw: SGW,
        rng: random.Random,
    ) -> PGWSite:
        if architecture is RoamingArchitecture.NATIVE:
            # The issuer's own site when it has one (MVNOs can run their
            # own gateway policy, as the Korean physical SIM shows),
            # otherwise the host MNO's.
            parent = self.operators.parent_of(b_mno)
            for owner in (b_mno.name, parent.name):
                site_id = self.native_site_ids.get(owner)
                if site_id is not None:
                    return self.pgw_sites[site_id]
            raise AttachError(f"{b_mno.name} has no native PGW site configured")

        assert agreement is not None
        candidates = [self.pgw_sites[sid] for sid in agreement.pgw_site_ids]
        if agreement.selection is PGWSelection.STATIC_BMNO:
            # Pre-arranged: the b-MNO pins the first configured site.
            return candidates[0]
        if agreement.selection is PGWSelection.NEAREST:
            return min(
                candidates,
                key=lambda site: (haversine_km(sgw.location, site.location), site.site_id),
            )
        # UNIFORM: sessions spread evenly across the candidate sites.
        return rng.choice(candidates)

    def _hop_depth(
        self,
        architecture: RoamingArchitecture,
        agreement: Optional[RoamingAgreement],
        pgw_site: PGWSite,
        b_mno: MobileOperator,
        rng: random.Random,
    ) -> int:
        # Each site knows its own traceroute depth distribution —
        # operator cores and hub-breakout cores alike.
        return pgw_site.sample_hop_depth(rng)

    def _dns_config(
        self,
        architecture: RoamingArchitecture,
        b_mno: MobileOperator,
        doh_enabled: bool,
    ):
        """Resolver assignment per Section 5.1 (DNS Lookup Time).

        Breakouts inside an operator's network (native, HR, LBO) resolve
        at the b-MNO; IHBO breakouts sit in third-party space and fall
        back to Google's public anycast resolvers, where Android's
        default DoH kicks in.
        """
        if architecture is RoamingArchitecture.IHBO:
            return GOOGLE_DNS_NAME, doh_enabled, True
        dns = b_mno.dns
        assert dns is not None
        return dns.operator_name, doh_enabled and dns.supports_doh, dns.anycast
