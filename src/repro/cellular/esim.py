"""SIM profiles and remote SIM provisioning.

An MNA like Airalo does not own spectrum or subscribers: it rents IMSI
ranges from b-MNOs and provisions them onto customers' devices as eSIM
profiles via an RSP (Remote SIM Provisioning) server. Physical SIMs from
local operators use the same profile type with ``SIMKind.PHYSICAL``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cellular.identifiers import IMSI, IMSIRange, generate_iccid
from repro.cellular.mno import MobileOperator


class SIMKind(enum.Enum):
    PHYSICAL = "physical"
    ESIM = "esim"


@dataclass(frozen=True)
class SIMProfile:
    """One provisioned subscription.

    ``issuer_mno_name`` is the b-MNO whose core recognises the IMSI;
    ``provider`` is who sold it (an MNA like "Airalo", or the operator
    itself for local physical SIMs); ``plan_country`` is the country the
    plan was bought for — for Airalo this routinely differs from the
    issuer's home country, which is the paper's headline observation.
    """

    kind: SIMKind
    iccid: str
    imsi: IMSI
    issuer_mno_name: str
    provider: str
    plan_country_iso3: str

    @property
    def is_esim(self) -> bool:
        return self.kind is SIMKind.ESIM


class ProvisioningError(Exception):
    """Raised when a profile cannot be issued (no rented range, etc.)."""


class RSPServer:
    """Remote SIM Provisioning server of an eSIM marketplace.

    Issues eSIM profiles out of the IMSI ranges that b-MNOs rented to the
    MNA. Every issued IMSI is unique; issuance order is deterministic so
    a seeded campaign always provisions the same profiles.
    """

    def __init__(self, mna_name: str) -> None:
        self.mna_name = mna_name
        # (b-MNO name) -> list of (range, next_index) cursors.
        self._cursors: Dict[str, List[Tuple[IMSIRange, int]]] = {}
        self._issued: List[SIMProfile] = []

    def register_operator(self, operator: MobileOperator) -> None:
        """Pick up the IMSI ranges ``operator`` rents to this MNA."""
        ranges = operator.ranges_for(self.mna_name)
        if not ranges:
            raise ProvisioningError(
                f"{operator.name} rents no IMSI ranges to {self.mna_name}"
            )
        self._cursors[operator.name] = [(imsi_range, 0) for imsi_range in ranges]

    def issued_profiles(self) -> List[SIMProfile]:
        return list(self._issued)

    def issue(
        self,
        b_mno: MobileOperator,
        plan_country_iso3: str,
        rng: random.Random,
    ) -> SIMProfile:
        """Provision one eSIM profile for a plan in ``plan_country_iso3``."""
        if b_mno.name not in self._cursors:
            self.register_operator(b_mno)
        cursors = self._cursors[b_mno.name]
        # Fill ranges in order; move to the next when one is exhausted.
        for slot, (imsi_range, next_index) in enumerate(cursors):
            if next_index < imsi_range.capacity:
                imsi = imsi_range.issue(next_index)
                cursors[slot] = (imsi_range, next_index + 1)
                profile = SIMProfile(
                    kind=SIMKind.ESIM,
                    iccid=generate_iccid(rng),
                    imsi=imsi,
                    issuer_mno_name=b_mno.name,
                    provider=self.mna_name,
                    plan_country_iso3=plan_country_iso3.upper(),
                )
                self._issued.append(profile)
                return profile
        raise ProvisioningError(
            f"all IMSI ranges rented by {b_mno.name} to {self.mna_name} are exhausted"
        )


def issue_physical_sim(
    operator: MobileOperator,
    rng: random.Random,
    subscriber_index: Optional[int] = None,
) -> SIMProfile:
    """A local physical SIM issued directly by ``operator``.

    Uses a wide operator-owned IMSI block (PLMN prefix + random MSIN),
    distinct from any MNA-rented sub-range.
    """
    own_range = IMSIRange(prefix=operator.plmn.code, label=f"{operator.name} retail")
    if subscriber_index is None:
        imsi = own_range.sample(rng)
    else:
        imsi = own_range.issue(subscriber_index)
    return SIMProfile(
        kind=SIMKind.PHYSICAL,
        iccid=generate_iccid(rng),
        imsi=imsi,
        issuer_mno_name=operator.name,
        provider=operator.name,
        plan_country_iso3=operator.country_iso3,
    )
