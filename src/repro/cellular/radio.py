"""Radio access model.

RAT (4G LTE / 5G NR), signal quality, and the Channel Quality Indicator
(CQI) that the device-based campaign records via Android telephony. The
paper filters out speedtests with CQI < 7 (QPSK territory per 3GPP); the
same threshold and modulation mapping live here.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

#: 3GPP CQI threshold below which QPSK is used; the paper's filter bound.
CQI_QPSK_THRESHOLD = 7

#: 4G carries a fraction of what 5G sustains under the same shaper: the
#: paper's per-country means quoted "under 5G connection" sit well above
#: the mixed-RAT distribution (hence 78.8% of roaming eSIM runs <= 15
#: Mbps even where the 5G mean is ~30).
LTE_THROUGHPUT_DERATE = 0.55


class RadioAccessTechnology(enum.Enum):
    """Radio access technology of an attach."""

    LTE = "4G"
    NR = "5G"

    @property
    def base_latency_ms(self) -> float:
        """Typical UE-to-core one-way-pair (RTT) air-interface cost."""
        return 28.0 if self is RadioAccessTechnology.LTE else 11.0

    @property
    def peak_downlink_mbps(self) -> float:
        """Ballpark single-user peak under excellent conditions."""
        return 150.0 if self is RadioAccessTechnology.LTE else 600.0


def modulation_for_cqi(cqi: int) -> str:
    """Modulation scheme implied by a CQI index (3GPP 36.213 table)."""
    if not 1 <= cqi <= 15:
        raise ValueError(f"CQI must be in 1..15: {cqi}")
    if cqi < CQI_QPSK_THRESHOLD:
        return "QPSK"
    if cqi < 10:
        return "16QAM"
    return "64QAM"


@dataclass(frozen=True)
class RadioConditions:
    """Radio-level metrics an AmiGo endpoint reports with each status ping."""

    rat: RadioAccessTechnology
    cqi: int
    rsrp_dbm: float
    snr_db: float

    def __post_init__(self) -> None:
        if not 1 <= self.cqi <= 15:
            raise ValueError(f"CQI must be in 1..15: {self.cqi}")
        if not -150.0 <= self.rsrp_dbm <= -40.0:
            raise ValueError(f"implausible RSRP: {self.rsrp_dbm}")

    @property
    def modulation(self) -> str:
        return modulation_for_cqi(self.cqi)

    @property
    def usable_for_speedtest(self) -> bool:
        """The paper's CQI >= 7 filter for bandwidth analysis."""
        return self.cqi >= CQI_QPSK_THRESHOLD

    @property
    def efficiency(self) -> float:
        """Fraction of the cell's policy bandwidth this channel sustains.

        A simple monotone map from CQI: poor channels (CQI 1) reach ~15%
        of policy rate, excellent channels (CQI 15) reach 100%.
        """
        return 0.15 + 0.85 * (self.cqi - 1) / 14.0


class RadioModel:
    """Samples radio conditions and converts them to latency/throughput.

    ``mean_cqi`` centres the CQI distribution; the default keeps roughly
    80-85% of samples above the QPSK threshold, matching the 80%
    retention the paper reports after its CQI filter.
    """

    def __init__(self, mean_cqi: float = 8.9, cqi_sigma: float = 2.6) -> None:
        if not 1.0 <= mean_cqi <= 15.0:
            raise ValueError("mean_cqi must be within 1..15")
        if cqi_sigma <= 0:
            raise ValueError("cqi_sigma must be positive")
        self.mean_cqi = mean_cqi
        self.cqi_sigma = cqi_sigma

    def sample_conditions(
        self, rat: RadioAccessTechnology, rng: random.Random
    ) -> RadioConditions:
        """One radio-conditions observation."""
        cqi = int(round(rng.gauss(self.mean_cqi, self.cqi_sigma)))
        cqi = max(1, min(15, cqi))
        # RSRP and SNR correlated with CQI: good channels are strong channels.
        rsrp = -120.0 + 4.0 * cqi + rng.gauss(0.0, 3.0)
        rsrp = max(-140.0, min(-60.0, rsrp))
        snr = -5.0 + 1.8 * cqi + rng.gauss(0.0, 1.5)
        return RadioConditions(rat=rat, cqi=cqi, rsrp_dbm=rsrp, snr_db=snr)

    def access_rtt_ms(
        self,
        conditions: RadioConditions,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Air-interface RTT contribution for one measurement.

        Poor channels retransmit more, inflating latency; jitter is only
        added when an ``rng`` is supplied so deterministic baselines stay
        available to the analysis layer.
        """
        base = conditions.rat.base_latency_ms
        # HARQ retransmissions under weak channels: up to ~2x at CQI 1.
        retransmission_factor = 1.0 + (15 - conditions.cqi) / 14.0
        rtt = base * retransmission_factor
        if rng is not None:
            rtt *= 1.0 + abs(rng.gauss(0.0, 0.15))
        return rtt

    def throughput_mbps(
        self,
        policy_mbps: float,
        conditions: RadioConditions,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Achieved throughput given an operator policy cap.

        The channel can only degrade the policy rate (the v-MNO shaper is
        the binding constraint for roaming traffic, per Section 5.1), and
        can never exceed the RAT's physical peak.
        """
        if policy_mbps < 0:
            raise ValueError("policy rate cannot be negative")
        rate = min(policy_mbps, conditions.rat.peak_downlink_mbps)
        rate *= conditions.efficiency
        if conditions.rat is RadioAccessTechnology.LTE:
            rate *= LTE_THROUGHPUT_DERATE
        if rng is not None:
            rate *= max(0.05, 1.0 + rng.gauss(0.0, 0.18))
        return rate
